"""Interior-point block-partition solver (paper Sec. III.C).

The paper solves the equal-finish-time system (eq. 3-5) with IPOPT's
interior-point line-search filter method [Nocedal, Wächter & Waltz 2009].
This package implements that algorithm from scratch:

* :mod:`repro.solver.nlp` — a generic equality-constrained, bounded
  nonlinear program description;
* :mod:`repro.solver.filter` — the (constraint violation, objective)
  filter that globalises the line search;
* :mod:`repro.solver.kkt` — assembly and inertia-corrected solution of
  the primal-dual KKT systems;
* :mod:`repro.solver.ipm` — the barrier outer loop + Newton inner loop
  driver;
* :mod:`repro.solver.problem` — builds the paper's partition NLP
  (minimise the common completion time T subject to ``E_g(x_g) = T`` and
  ``sum x_g = Q``) from fitted device models;
* :mod:`repro.solver.reduction` — an independent waterfilling reduction
  of the same problem (bisection on T), used as cross-check and
  fallback;
* :mod:`repro.solver.partition` — the high-level
  :func:`solve_block_partition` entry point with its fallback chain.
"""

from repro.solver.diagnostics import (
    ConvergenceReport,
    analyze_convergence,
    render_history,
)
from repro.solver.filter import Filter, FilterEntry
from repro.solver.ipm import IPMOptions, IPMResult, InteriorPointSolver
from repro.solver.nlp import NLPProblem
from repro.solver.partition import PartitionResult, solve_block_partition
from repro.solver.problem import build_partition_nlp
from repro.solver.reduction import waterfill_partition

__all__ = [
    "NLPProblem",
    "Filter",
    "FilterEntry",
    "InteriorPointSolver",
    "IPMOptions",
    "IPMResult",
    "build_partition_nlp",
    "waterfill_partition",
    "solve_block_partition",
    "PartitionResult",
    "ConvergenceReport",
    "analyze_convergence",
    "render_history",
]
