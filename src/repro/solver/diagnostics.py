"""Convergence diagnostics for interior-point solves.

Renders an :class:`~repro.solver.ipm.IPMResult`'s recorded iteration
history (``IPMOptions(record_history=True)``) as the classic
iteration-log table optimisation practitioners read — μ, step length,
constraint violation, KKT error per iteration — plus summary judgements
(monotone feasibility progress, barrier decrease) used by tests and by
anyone debugging a hard partition instance.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.solver.ipm import IPMResult
from repro.util.tables import format_table

__all__ = ["ConvergenceReport", "analyze_convergence", "render_history"]


@dataclass(frozen=True)
class ConvergenceReport:
    """Summary judgements over one solve's iteration history."""

    iterations: int
    converged: bool
    final_kkt_error: float
    final_mu: float
    feasibility_improved: bool
    barrier_decreased: bool
    mean_step_length: float
    restorations_suspected: bool
    #: exact count from :attr:`repro.solver.ipm.IPMResult.restorations`
    restorations: int = 0

    def healthy(self) -> bool:
        """A solve that converged with sane dynamics."""
        return (
            self.converged
            and self.feasibility_improved
            and self.mean_step_length > 0.01
        )


def analyze_convergence(result: IPMResult) -> ConvergenceReport:
    """Derive a :class:`ConvergenceReport` from a recorded solve.

    Raises
    ------
    ConfigurationError
        If the solve was run without ``record_history=True``.
    """
    if not result.history:
        raise ConfigurationError(
            "no iteration history recorded; solve with "
            "IPMOptions(record_history=True)"
        )
    thetas = [h["theta"] for h in result.history]
    mus = [h["mu"] for h in result.history]
    alphas = [h["alpha"] for h in result.history]
    return ConvergenceReport(
        iterations=result.iterations,
        converged=result.converged,
        final_kkt_error=result.kkt_error,
        final_mu=result.mu_final,
        feasibility_improved=thetas[-1] <= max(thetas[0], result.kkt_error * 10)
        or thetas[-1] < 1e-6,
        barrier_decreased=mus[-1] <= mus[0],
        mean_step_length=sum(alphas) / len(alphas),
        # the exact counter supersedes the regulariser heuristic; the
        # heuristic is kept as a fallback for results recorded before
        # the counter existed (restorations defaults to 0 there)
        restorations_suspected=result.restorations > 0
        or any(h.get("delta_w", 0.0) > 1e-2 for h in result.history),
        restorations=result.restorations,
    )


def render_history(result: IPMResult, *, max_rows: int = 50) -> str:
    """ASCII iteration log of a recorded solve."""
    if not result.history:
        return "(no history recorded)"
    rows = [
        [
            h["iter"],
            h["mu"],
            h["alpha"],
            h["theta"],
            h["kkt_error"],
            "f" if h.get("f_type") else "θ",
        ]
        for h in result.history[:max_rows]
    ]
    table = format_table(
        ["iter", "mu", "alpha", "theta", "kkt_err", "step"],
        rows,
        title=f"IPM iteration log (status={result.status}, "
        f"{result.iterations} iterations)",
        precision=6,
    )
    if len(result.history) > max_rows:
        table += f"\n... ({len(result.history) - max_rows} more iterations)"
    return table
