"""The line-search filter (Wächter & Biegler, as used by IPOPT).

A filter replaces a merit function: a trial point is acceptable when it
improves *either* feasibility θ(x) = ||c(x)||₁ *or* the barrier
objective φ(x) by a sufficient margin relative to the current iterate,
and is not dominated by any previously recorded (θ, φ) pair.  This is
the globalisation strategy the paper's reference [25] describes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError

__all__ = ["FilterEntry", "Filter"]


@dataclass(frozen=True)
class FilterEntry:
    """One recorded (constraint violation, barrier objective) pair."""

    theta: float
    phi: float

    def dominates(self, theta: float, phi: float) -> bool:
        """True when this entry forbids the trial pair (both no better)."""
        return theta >= self.theta and phi >= self.phi


class Filter:
    """The Wächter-Biegler filter with sufficient-decrease margins.

    Parameters
    ----------
    gamma_theta / gamma_phi:
        Relative margins: a trial (θ, φ) is acceptable against a
        reference pair (θ_r, φ_r) when ``θ <= (1 - γ_θ) θ_r`` or
        ``φ <= φ_r - γ_φ θ_r``.
    theta_max:
        Absolute cap on constraint violation: trial points above it are
        always rejected.
    """

    def __init__(
        self,
        *,
        gamma_theta: float = 1e-5,
        gamma_phi: float = 1e-5,
        theta_max: float = 1e8,
    ) -> None:
        if not 0.0 < gamma_theta < 1.0 or not 0.0 < gamma_phi < 1.0:
            raise ConfigurationError("filter margins must lie in (0, 1)")
        if theta_max <= 0.0:
            raise ConfigurationError("theta_max must be positive")
        self.gamma_theta = gamma_theta
        self.gamma_phi = gamma_phi
        self.theta_max = theta_max
        self._entries: list[FilterEntry] = []

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def entries(self) -> tuple[FilterEntry, ...]:
        """Current filter content (for inspection/tests)."""
        return tuple(self._entries)

    def _acceptable_to(self, theta: float, phi: float, ref: FilterEntry) -> bool:
        return (
            theta <= (1.0 - self.gamma_theta) * ref.theta
            or phi <= ref.phi - self.gamma_phi * ref.theta
        )

    def acceptable(
        self, theta: float, phi: float, *, current: FilterEntry | None = None
    ) -> bool:
        """Whether a trial pair passes the filter.

        Checks the absolute θ cap, sufficient decrease against the
        current iterate (if given), and non-domination by every filter
        entry.
        """
        if theta > self.theta_max:
            return False
        if current is not None and not self._acceptable_to(theta, phi, current):
            return False
        return all(self._acceptable_to(theta, phi, e) for e in self._entries)

    def add(self, theta: float, phi: float) -> None:
        """Record a pair, pruning entries the new one dominates.

        Following the reference method, the stored corner is shifted by
        the margins so future points must strictly improve.
        """
        entry = FilterEntry(
            theta=(1.0 - self.gamma_theta) * theta,
            phi=phi - self.gamma_phi * theta,
        )
        self._entries = [
            e for e in self._entries if not (e.theta >= entry.theta and e.phi >= entry.phi)
        ]
        self._entries.append(entry)

    def reset(self) -> None:
        """Empty the filter (done when the barrier parameter changes)."""
        self._entries.clear()
