"""High-level block-partition API.

:func:`solve_block_partition` is what the PLB-HeC scheduler calls at the
end of the performance-modeling phase and on every rebalance.  The
solve is staged:

1. **Trust caps.**  Fitted curves are only trustworthy near the probed
   range, so each device's assignment is capped at a multiple of its
   largest profiled block size (caps are relaxed proportionally if they
   cannot cover the quantum).
2. **Waterfilling presolve** (:mod:`repro.solver.reduction`): a robust
   bisection on the common finish time that respects the caps and
   reveals the *active set* — devices whose fixed dispatch cost exceeds
   the common finish time get zero work (the paper's eq. 4 equality
   system is infeasible for them), devices at their trust cap are
   pinned there.
3. **Interior-point refinement** (the paper's method): the equal-time
   NLP (eq. 3-5) is solved over the free devices with the
   line-search filter method, which produces the final block sizes.
   This mirrors how IPOPT's own bound handling deals with the active
   set internally.

If the interior-point stage fails to converge or validate, the
waterfilling solution is returned (``method="waterfill"``); if even
that fails, a measured-rate proportional split caps the damage
(``method="proportional"``).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Mapping, Sequence

import numpy as np

from repro.errors import ConfigurationError, SolverError
from repro.modeling.perf_profile import DeviceModel
from repro.solver.ipm import IPMOptions, InteriorPointSolver
from repro.solver.problem import build_partition_nlp, initial_partition_point
from repro.solver.reduction import waterfill_partition
from repro.util.logging import get_logger

__all__ = ["PartitionResult", "solve_block_partition"]

_log = get_logger("solver.partition")

#: Assignments may exceed the profiled range by at most this factor —
#: the same slack the model-sanity check (`modeling.model_select`) spans.
TRUST_SLACK = 4.0


@dataclass(frozen=True)
class PartitionResult:
    """A computed distribution of one work quantum across devices.

    Attributes
    ----------
    device_ids:
        Processing units in solve order.
    units:
        Real-valued block sizes, one per device; sums to the quantum.
    predicted_time:
        The common completion time T the models predict.
    method:
        ``"ipm"``, ``"waterfill"`` or ``"proportional"`` — which path
        produced the answer.
    converged:
        Whether the producing method reported success.
    iterations:
        Interior-point iterations (0 for fallback paths).
    kkt_error:
        Final scaled KKT error (NaN for fallback paths).
    solve_time_s:
        Wall-clock seconds the whole chain took (this is the overhead
        the paper reports as ~170 ms on their master node).
    """

    device_ids: tuple[str, ...]
    units: np.ndarray = field(repr=False)
    predicted_time: float
    method: str
    converged: bool
    iterations: int
    kkt_error: float
    solve_time_s: float

    @property
    def fractions(self) -> dict[str, float]:
        """Normalised share per device (sums to 1)."""
        total = float(self.units.sum())
        if total <= 0.0:
            return {d: 0.0 for d in self.device_ids}
        return {
            d: float(u) / total for d, u in zip(self.device_ids, self.units)
        }

    @property
    def units_by_device(self) -> dict[str, float]:
        """Real-valued units per device id."""
        return {d: float(u) for d, u in zip(self.device_ids, self.units)}


def _trust_caps(models: Sequence[DeviceModel], q: float) -> np.ndarray:
    """Per-device assignment ceilings, relaxed to cover the quantum."""
    caps = np.array([max(TRUST_SLACK * m.x_max, 1.0) for m in models])
    caps = np.minimum(caps, q)
    total = caps.sum()
    if total < 1.02 * q:
        caps = caps * (1.02 * q / total)
        caps = np.minimum(caps, q)
        # a second pass: devices clipped at q free no headroom; spread
        # the shortfall over the others
        short = 1.02 * q - caps.sum()
        if short > 0:
            room = q - caps
            if room.sum() > 0:
                caps = caps + room * min(short / room.sum(), 1.0)
    return caps


def _validate(
    units: np.ndarray,
    predicted: float,
    models: Sequence[DeviceModel],
    total_units: float,
    caps: np.ndarray,
    *,
    spread_tol: float,
) -> bool:
    """Sanity-check a candidate partition against its own models.

    The equal-time property is only required of devices strictly inside
    their bounds: devices with (near-)zero work or pinned at their trust
    cap legitimately finish early.
    """
    if not np.all(np.isfinite(units)) or np.any(units < -1e-9):
        return False
    if abs(units.sum() - total_units) > 1e-6 * total_units + 1e-9:
        return False
    if not np.isfinite(predicted) or predicted <= 0.0:
        return False
    times = [
        float(m.E(u))
        for m, u, c in zip(models, units, caps)
        if u > 1e-9 * total_units and u < c * (1.0 - 1e-9)
    ]
    if not times:
        # everything at a bound: fall back to requiring finite times only
        return True
    spread = (max(times) - min(times)) / max(max(times), 1e-300)
    return spread <= spread_tol


def solve_block_partition(
    models: Mapping[str, DeviceModel] | Sequence[DeviceModel],
    total_units: float,
    *,
    ipm_options: IPMOptions | None = None,
    spread_tol: float = 0.05,
    allow_fallback: bool = True,
) -> PartitionResult:
    """Distribute ``total_units`` so all devices finish simultaneously.

    Parameters
    ----------
    models:
        Fitted device models, either ``{device_id: model}`` or a sequence
        (ids then come from each model's ``device_id``).
    total_units:
        The work quantum Q.
    ipm_options:
        Interior-point tuning; defaults favour speed at partition sizes.
    spread_tol:
        Maximum relative finish-time spread (on the models' own
        predictions) a solution may exhibit before being rejected.
    allow_fallback:
        When False, an interior-point failure raises instead of
        degrading to the waterfilling answer.

    Raises
    ------
    SolverError
        When ``allow_fallback=False`` and the interior-point stage
        fails, or when every stage fails.
    """
    if isinstance(models, Mapping):
        device_ids = tuple(models.keys())
        model_list = [models[d] for d in device_ids]
    else:
        model_list = list(models)
        device_ids = tuple(m.device_id for m in model_list)
    if not model_list:
        raise ConfigurationError("need at least one device model")
    q = float(total_units)
    if q <= 0.0:
        raise ConfigurationError(f"total_units must be positive, got {total_units}")

    n = len(model_list)
    t_start = time.perf_counter()
    # The adaptive barrier update is the subject of the paper's solver
    # reference (Nocedal, Wächter & Waltz 2009) and roughly halves the
    # iteration count on partition problems; see the solver benchmarks.
    opts = ipm_options or IPMOptions(
        tol=1e-8, max_iter=150, barrier_strategy="adaptive"
    )

    if n == 1:
        return PartitionResult(
            device_ids=device_ids,
            units=np.array([q]),
            predicted_time=float(model_list[0].E(q)),
            method="ipm",
            converged=True,
            iterations=0,
            kkt_error=0.0,
            solve_time_s=time.perf_counter() - t_start,
        )

    caps = _trust_caps(model_list, q)

    # ------------------------------------------------------------------
    # 1. waterfilling presolve: active set + pinned devices
    # ------------------------------------------------------------------
    units_wf: np.ndarray | None = None
    t_wf = float("nan")
    try:
        units_wf, t_wf = waterfill_partition(model_list, q, caps=caps)
    except SolverError as exc:
        _log.debug("waterfilling presolve failed: %s", exc)

    # ------------------------------------------------------------------
    # 2. interior-point refinement on the free set (the paper's solve)
    # ------------------------------------------------------------------
    ipm_error: Exception | None = None
    if units_wf is not None:
        pinned = units_wf >= caps * (1.0 - 1e-9)
        dropped = units_wf <= 1e-9 * q
        free = [i for i in range(n) if not pinned[i] and not dropped[i]]
        q_free = q - float(units_wf[pinned].sum())
        if len(free) >= 2 and q_free > 0:
            sub_models = [model_list[i] for i in free]
            sub_caps = caps[free]
            try:
                nlp = build_partition_nlp(sub_models, q_free, upper_units=sub_caps)
                z0 = initial_partition_point(
                    sub_models, q_free, upper_units=sub_caps
                )
                result = InteriorPointSolver(opts).solve_with_retry(nlp, z0)
                if result.converged:
                    sub_units = np.maximum(result.x[: len(free)], 0.0) * q_free
                    if sub_units.sum() > 0:
                        sub_units *= q_free / sub_units.sum()
                    units = np.where(pinned, caps, 0.0)
                    units[free] = sub_units
                    predicted = float(result.x[2 * len(free)])
                    if _validate(
                        units, predicted, model_list, q, caps,
                        spread_tol=spread_tol,
                    ):
                        return PartitionResult(
                            device_ids=device_ids,
                            units=units,
                            predicted_time=predicted,
                            method="ipm",
                            converged=True,
                            iterations=result.iterations,
                            kkt_error=result.kkt_error,
                            solve_time_s=time.perf_counter() - t_start,
                        )
                ipm_error = SolverError(
                    f"IPM refinement did not validate (status={result.status!r})"
                )
            except SolverError as exc:
                ipm_error = exc
        else:
            ipm_error = SolverError(
                "free set too small for an interior-point refinement"
            )

    if not allow_fallback and ipm_error is not None:
        raise SolverError(f"interior-point solve failed: {ipm_error}")
    if ipm_error is not None:
        _log.debug("IPM refinement failed (%s); using waterfilling", ipm_error)

    # ------------------------------------------------------------------
    # 3. waterfilling answer as-is
    # ------------------------------------------------------------------
    if units_wf is not None and _validate(
        units_wf, t_wf, model_list, q, caps, spread_tol=max(spread_tol, 0.1)
    ):
        return PartitionResult(
            device_ids=device_ids,
            units=units_wf,
            predicted_time=t_wf,
            method="waterfill",
            converged=True,
            iterations=0,
            kkt_error=float("nan"),
            solve_time_s=time.perf_counter() - t_start,
        )

    # ------------------------------------------------------------------
    # 4. measured-rate proportional split under caps (never fails)
    # ------------------------------------------------------------------
    probe = max(q / n, 1e-9)
    rates = np.array([max(m.rate(probe), 1e-12) for m in model_list])
    units = q * rates / rates.sum()
    # push cap overflows onto devices with headroom
    for _ in range(n):
        excess = np.maximum(units - caps, 0.0)
        if excess.sum() <= 1e-12 * q:
            break
        units = np.minimum(units, caps)
        room = caps - units
        if room.sum() <= 0:
            break
        units = units + room * (excess.sum() / room.sum())
    predicted = float(
        max(m.E(u) for m, u in zip(model_list, units) if u > 0)
    )
    return PartitionResult(
        device_ids=device_ids,
        units=units,
        predicted_time=predicted,
        method="proportional",
        converged=False,
        iterations=0,
        kkt_error=float("nan"),
        solve_time_s=time.perf_counter() - t_start,
    )
