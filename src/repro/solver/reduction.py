"""Waterfilling reduction of the equal-time partition problem.

Because every ``E_g`` is (after the sanity filter in model selection)
increasing, the system "all devices finish at T, work sums to Q" reduces
to one scalar equation: ``S(T) = sum_g E_g^{-1}(T) = Q`` with ``S``
non-decreasing in T.  Bisection on T is therefore a complete, derivative
-free solver for the same problem the interior-point method solves.

It is used two ways:

* as a *cross-check*: tests assert IPM and waterfilling agree;
* as a *fallback*: if the IPM reports failure on a pathological fit,
  the partition layer silently switches to this path (and notes it in
  the result's ``method`` field).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import ConfigurationError, SolverError
from repro.modeling.perf_profile import DeviceModel

__all__ = ["waterfill_partition"]


def waterfill_partition(
    models: Sequence[DeviceModel],
    total_units: float,
    *,
    caps: Sequence[float] | None = None,
    iterations: int = 100,
    rel_tol: float = 1e-10,
) -> tuple[np.ndarray, float]:
    """Equal-finish-time split of ``total_units`` by bisection on T.

    Returns ``(units, T)`` with ``units.sum() == total_units`` (exactly,
    by a final proportional correction) and ``E_g(units_g)``
    approximately T for every device that received work and is not at
    its cap.

    Parameters
    ----------
    caps:
        Optional per-device assignment ceilings (extrapolation-trust
        limits); must sum to at least ``total_units``.

    Raises
    ------
    SolverError
        If the bracket cannot be established (models broken enough that
        even assigning all work to every device is "too fast").
    """
    if not models:
        raise ConfigurationError("need at least one device model")
    q = float(total_units)
    if q <= 0.0:
        raise ConfigurationError(f"total_units must be positive, got {total_units}")
    if caps is None:
        cap_arr = np.full(len(models), q)
    else:
        cap_arr = np.asarray(list(caps), dtype=float)
        if cap_arr.shape != (len(models),) or np.any(cap_arr <= 0.0):
            raise ConfigurationError("caps must be positive, one per model")
        if cap_arr.sum() < q:
            raise ConfigurationError("caps sum below total_units: infeasible")
        cap_arr = np.minimum(cap_arr, q)

    # Precompute, per device, a monotone lookup table E(grid) so each
    # bisection probe is one searchsorted instead of a scalar-evaluation
    # bisection per device (this path is charged as scheduler overhead,
    # so its wall cost directly worsens makespans).
    grid_n = 513
    tables: list[tuple[np.ndarray, np.ndarray]] = []
    for m, c in zip(models, cap_arr):
        xs = np.linspace(0.0, float(c), grid_n)
        ys = np.asarray(m.E(xs[1:]), dtype=float)
        ys = np.concatenate([[0.0], np.maximum.accumulate(ys)])
        tables.append((xs, ys))

    def assigned(t: float) -> np.ndarray:
        out = np.empty(len(models))
        for i, (xs, ys) in enumerate(tables):
            # largest x with E(x) <= t (monotone table)
            idx = int(np.searchsorted(ys, t, side="right")) - 1
            if idx <= 0:
                out[i] = 0.0
            elif idx >= grid_n - 1:
                out[i] = xs[-1]
            else:
                # linear interpolation inside the bracketing cell
                y0, y1 = ys[idx], ys[idx + 1]
                frac = (t - y0) / (y1 - y0) if y1 > y0 else 0.0
                out[i] = xs[idx] + frac * (xs[idx + 1] - xs[idx])
        return out

    t_lo = 0.0
    t_hi = max(float(ys[-1]) for _, ys in tables)
    if assigned(t_hi).sum() < q:
        # Even the slowest device's full-load time doesn't cover Q across
        # the cluster — can happen with wildly superlinear fitted curves.
        # Expand the bracket geometrically before giving up.
        for _ in range(60):
            t_hi *= 2.0
            if assigned(t_hi).sum() >= q:
                break
        else:
            raise SolverError("waterfilling could not bracket the completion time")

    for _ in range(iterations):
        t_mid = 0.5 * (t_lo + t_hi)
        if assigned(t_mid).sum() >= q:
            t_hi = t_mid
        else:
            t_lo = t_mid
        if t_hi - t_lo <= rel_tol * max(t_hi, 1e-300):
            break

    units = assigned(t_hi)
    total = units.sum()
    if total <= 0.0:
        raise SolverError("waterfilling assigned zero work everywhere")
    if total >= q:
        units = units * (q / total)  # scaling down never violates caps
    else:
        # distribute the (tiny, bisection-residual) deficit to devices
        # with remaining cap headroom
        deficit = q - total
        room = cap_arr - units
        if room.sum() <= 0.0:
            raise SolverError("waterfilling could not place all work under caps")
        units = units + room * min(deficit / room.sum(), 1.0)
        units = units * (q / units.sum())
    return units, t_hi
