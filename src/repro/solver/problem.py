"""The paper's block-partition problem as an NLP (eq. 3-5).

Given fitted device models ``E_g`` and a work quantum ``Q`` (units to
distribute in one step), find block sizes ``x_g`` such that every
processing unit finishes by a common time ``T`` and all work is
assigned::

    minimise    T
    subject to  E_g(x_g * Q) + s_g - T = 0     g = 1..n
                sum_g x_g - 1 = 0
                0 <= x_g <= cap_g,  s_g >= 0,  T >= 0

Variables are the paper's normalised fractions (eq. 3) plus one slack
per device and the completion time: ``z = (x_1..x_n, s_1..s_n, T)``.
At the optimum each device either finishes exactly at T (``s_g = 0``,
the paper's eq. 4) or sits at a bound: ``x_g = cap_g`` (it may not be
assigned more than its model can be trusted for — the cap is the
extrapolation-trust limit derived from the profiled range) or
``x_g = 0`` (its fixed dispatch cost exceeds T, so it is best left
idle).  With all caps at 1 and every device active this reduces to the
paper's pure equal-time system; the interior-point iteration *finds*
the point while staying strictly inside the bounds, exactly the role
IPOPT plays in the paper.

Fractions (not raw unit counts) keep the KKT system well conditioned —
units span 1..10^5 while T is O(seconds), and that scale mismatch
defeats inertia tests.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.modeling.perf_profile import DeviceModel
from repro.solver.nlp import NLPProblem

__all__ = ["build_partition_nlp", "initial_partition_point"]


def _upper_fracs(
    n: int, q: float, upper_units: Sequence[float] | None
) -> np.ndarray:
    if upper_units is None:
        return np.ones(n)
    upper_arr = np.asarray(list(upper_units), dtype=float)
    if upper_arr.shape != (n,) or np.any(upper_arr <= 0.0):
        raise ConfigurationError(
            f"upper_units must be {n} positive values, got {upper_units!r}"
        )
    if upper_arr.sum() < q:
        raise ConfigurationError(
            "upper_units sum below the quantum: the capped problem is infeasible"
        )
    return np.minimum(upper_arr / q, 1.0)


def build_partition_nlp(
    models: Sequence[DeviceModel],
    total_units: float,
    *,
    upper_units: Sequence[float] | None = None,
) -> NLPProblem:
    """Construct the equal-finish-time NLP for the given device models.

    Parameters
    ----------
    models:
        One fitted :class:`~repro.modeling.perf_profile.DeviceModel` per
        processing unit (at least one).
    total_units:
        The work quantum Q to distribute (positive).
    upper_units:
        Optional per-device assignment caps in units (extrapolation
        trust limits); must sum to at least Q.  Defaults to Q each.
    """
    if not models:
        raise ConfigurationError("need at least one device model")
    q = float(total_units)
    if q <= 0.0:
        raise ConfigurationError(f"total_units must be positive, got {total_units}")
    n = len(models)
    caps = _upper_fracs(n, q, upper_units)
    nv = 2 * n + 1  # x fractions, slacks, T

    def objective(z: np.ndarray) -> float:
        return float(z[nv - 1])

    def gradient(z: np.ndarray) -> np.ndarray:
        g = np.zeros(nv)
        g[nv - 1] = 1.0
        return g

    def constraints(z: np.ndarray) -> np.ndarray:
        x, s, t = z[:n], z[n : 2 * n], z[nv - 1]
        c = np.empty(n + 1)
        for g in range(n):
            c[g] = float(models[g].E(x[g] * q)) + s[g] - t
        c[n] = float(x.sum()) - 1.0
        return c

    def jacobian(z: np.ndarray) -> np.ndarray:
        x = z[:n]
        jac = np.zeros((n + 1, nv))
        for g in range(n):
            jac[g, g] = float(models[g].dE(x[g] * q)) * q
            jac[g, n + g] = 1.0
            jac[g, nv - 1] = -1.0
        jac[n, :n] = 1.0
        return jac

    def hess_lagrangian(
        z: np.ndarray, lam: np.ndarray, obj_factor: float
    ) -> np.ndarray:
        # objective is linear, slacks enter linearly, the sum constraint
        # is affine; curvature comes only from the E_g terms.
        x = z[:n]
        h = np.zeros((nv, nv))
        for g in range(n):
            h[g, g] = lam[g] * float(models[g].d2E(x[g] * q)) * q * q
        return h

    lower = np.zeros(nv)
    upper = np.concatenate([caps, np.full(n, np.inf), [np.inf]])
    return NLPProblem(
        n=nv,
        m=n + 1,
        objective=objective,
        gradient=gradient,
        constraints=constraints,
        jacobian=jacobian,
        hess_lagrangian=hess_lagrangian,
        lower=lower,
        upper=upper,
        name=f"partition[{n} devices, Q={q:g}]",
    )


def initial_partition_point(
    models: Sequence[DeviceModel],
    total_units: float,
    *,
    upper_units: Sequence[float] | None = None,
) -> np.ndarray:
    """A strictly interior warm start: split proportionally to rates.

    Returns the full variable vector ``(fractions, slacks, T)``: rates
    are measured at the equal-share size ``Q/n``, fractions are clipped
    under the caps and renormalised, T starts at the worst predicted
    device time (so every slack can start positive).
    """
    n = len(models)
    q = float(total_units)
    caps = _upper_fracs(n, q, upper_units)
    probe = max(q / n, 1e-9)
    rates = np.array([max(m.rate(probe), 1e-12) for m in models])
    frac0 = rates / rates.sum()
    # respect the caps (approximately; clip_interior refines further)
    frac0 = np.minimum(frac0, 0.9 * caps)
    total = frac0.sum()
    if total <= 0.0:
        frac0 = caps / caps.sum()
    else:
        deficit = 1.0 - total
        if deficit > 0.0:
            room = np.maximum(0.95 * caps - frac0, 0.0)
            if room.sum() > 0.0:
                frac0 = frac0 + room * (min(deficit, room.sum()) / room.sum())
        frac0 = frac0 / frac0.sum()
    times = np.array([float(m.E(f * q)) for m, f in zip(models, frac0)])
    t0 = float(times.max()) * 1.05 + 1e-9
    slacks = np.maximum(t0 - times, 1e-9)
    return np.concatenate([frac0, slacks, [t0]])
