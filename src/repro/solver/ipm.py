"""Interior-point line-search filter solver.

A from-scratch implementation of the algorithm family the paper uses via
IPOPT (reference [25]: Nocedal, Wächter & Waltz, "Adaptive barrier
update strategies for nonlinear interior methods"):

* log-barrier handling of bounds with primal-dual bound multipliers,
* Newton steps on the condensed KKT system with inertia correction
  (:mod:`repro.solver.kkt`),
* a line-search filter for globalisation (:mod:`repro.solver.filter`),
* fraction-to-boundary step caps,
* monotone (Fiacco-McCormick) barrier-parameter reduction, and
* a Gauss-Newton feasibility-restoration phase.

The implementation is dense and dimension-agnostic but tuned for the
library's workload: partition problems with one variable per processing
unit (n ≲ 32), where eigenvalue-based inertia checks are essentially
free.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConvergenceError, SolverError
from repro.obs.metrics import get_registry
from repro.obs.profiler import profile_phase
from repro.solver.filter import Filter, FilterEntry
from repro.solver.kkt import solve_kkt
from repro.solver.nlp import NLPProblem
from repro.util.logging import get_logger

__all__ = ["IPMOptions", "IPMResult", "InteriorPointSolver"]

_log = get_logger("solver.ipm")

_KAPPA_SIGMA = 1e10  # bound-multiplier safeguard corridor (IPOPT kappa_Sigma)


@dataclass(frozen=True)
class IPMOptions:
    """Tuning knobs of the interior-point solver (IPOPT-style defaults).

    ``barrier_strategy`` selects the update rule of the cited reference
    (Nocedal, Wächter & Waltz 2009, "Adaptive barrier update strategies
    for nonlinear interior methods"):

    * ``"monotone"`` — the Fiacco-McCormick rule: hold μ fixed until the
      barrier subproblem is solved to ``kappa_epsilon * mu``, then cut it
      by ``min(kappa_mu * mu, mu^theta_mu)``;
    * ``"adaptive"`` — μ follows the iterates: each iteration sets
      ``mu = sigma * (complementarity average)`` with a centrality-based
      σ (the LOQO rule studied in that paper), globalised by the same
      filter; falls back to monotone safeguards near convergence.
    * ``"probing"`` — Mehrotra-style predictor probing (the third rule
      of that paper): an affine-scaling step (μ = 0) is solved first,
      the complementarity it would reach determines
      ``sigma = (mu_affine / mu_current)^3``, at the cost of one extra
      KKT solve per iteration.
    """

    tol: float = 1e-8
    mu_init: float = 1e-1
    mu_min: float = 1e-12
    kappa_mu: float = 0.2  # linear barrier decrease factor
    theta_mu: float = 1.5  # superlinear barrier decrease exponent
    kappa_epsilon: float = 10.0  # barrier subproblem tolerance = kappa_eps * mu
    tau_min: float = 0.99  # fraction-to-boundary floor
    max_iter: int = 300
    max_backtracks: int = 40
    alpha_min: float = 1e-12
    armijo_eta: float = 1e-4
    max_restoration_steps: int = 50
    record_history: bool = False
    barrier_strategy: str = "monotone"

    def __post_init__(self) -> None:
        if self.barrier_strategy not in ("monotone", "adaptive", "probing"):
            raise SolverError(
                f"barrier_strategy must be 'monotone', 'adaptive' or "
                f"'probing', got {self.barrier_strategy!r}"
            )


@dataclass
class IPMResult:
    """Outcome of one interior-point solve."""

    x: np.ndarray
    lam: np.ndarray
    z_lower: np.ndarray
    z_upper: np.ndarray
    status: str  # "optimal" | "max_iterations" | "restoration_failed"
    iterations: int
    kkt_error: float
    constraint_violation: float
    objective: float
    mu_final: float
    wall_time_s: float
    history: list[dict] = field(default_factory=list)
    #: feasibility-restoration phases entered during the solve (an exact
    #: count, unlike the history-based heuristic in
    #: :mod:`repro.solver.diagnostics`, which it supersedes)
    restorations: int = 0

    @property
    def converged(self) -> bool:
        """True when first-order optimality was reached."""
        return self.status == "optimal"


class InteriorPointSolver:
    """Solves :class:`~repro.solver.nlp.NLPProblem` instances.

    One solver instance is reusable across problems; all state is local
    to :meth:`solve`.
    """

    def __init__(self, options: IPMOptions | None = None) -> None:
        self.options = options or IPMOptions()

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def solve(self, problem: NLPProblem, x0: np.ndarray) -> IPMResult:
        """Run the interior-point iteration from ``x0``.

        ``x0`` is projected strictly inside the bounds first.  Returns an
        :class:`IPMResult`; a non-converged status is reported in the
        result rather than raised, so callers can inspect the best point
        found (the partition layer falls back to waterfilling on
        failure).
        """
        # Attribute solver time to the "solve" profile phase even when
        # called outside the policy (direct solves from the dashboard or
        # experiments); nested re-entry from the policy's own solve
        # scope is a cheap no-op.
        with profile_phase("solve"):
            return self._solve_impl(problem, x0)

    def solve_with_retry(
        self,
        problem: NLPProblem,
        x0: np.ndarray,
        *,
        max_attempts: int = 2,
        perturb: float = 0.05,
    ) -> IPMResult:
        """Bounded-retry :meth:`solve`: perturb the start on failure.

        Non-convergence is frequently a bad-starting-point artefact
        (an x0 too close to a bound corner stalls the filter).  Each
        retry nudges the previous start by ±``perturb`` on alternating
        coordinates — deterministic, so runs stay reproducible — and
        :meth:`solve` re-projects it strictly inside the bounds.  The
        best result by KKT error is returned when every attempt fails
        to converge; a raising attempt after at least one completed
        attempt returns that attempt's result instead of propagating.
        """
        if max_attempts < 1:
            raise SolverError(f"max_attempts must be >= 1, got {max_attempts}")
        registry = get_registry()
        best: IPMResult | None = None
        x = np.asarray(x0, dtype=float)
        signs = np.where(np.arange(x.size) % 2 == 0, 1.0, -1.0)
        for attempt in range(max_attempts):
            try:
                result = self.solve(problem, x)
            except SolverError:
                if best is None and attempt == max_attempts - 1:
                    raise
                result = None
            if result is not None:
                if result.converged:
                    if attempt > 0:
                        registry.inc("ipm.retry_successes")
                    return result
                if best is None or result.kkt_error < best.kkt_error:
                    best = result
            if attempt < max_attempts - 1:
                registry.inc("ipm.retries")
                x = x * (1.0 + perturb * signs)
        assert best is not None  # loop raised otherwise
        return best

    def _solve_impl(self, problem: NLPProblem, x0: np.ndarray) -> IPMResult:
        opts = self.options
        t0 = time.perf_counter()

        lo, up = problem.lower, problem.upper
        has_lo, has_up = problem.has_lower(), problem.has_upper()

        x = problem.clip_interior(np.asarray(x0, dtype=float))
        lam = np.zeros(problem.m)
        mu = opts.mu_init
        z_lo = np.where(has_lo, mu / np.maximum(x - lo, 1e-12), 0.0)
        z_up = np.where(has_up, mu / np.maximum(up - x, 1e-12), 0.0)

        flt = Filter()
        history: list[dict] = []
        delta_w_last = 0.0
        status = "max_iterations"
        iteration = 0
        restorations = 0

        for iteration in range(1, opts.max_iter + 1):
            grad = problem.eval_gradient(x)
            c = problem.eval_constraints(x)
            jac = problem.eval_jacobian(x)

            kkt_err0 = self._kkt_error(problem, x, lam, z_lo, z_up, grad, c, jac, 0.0)
            if kkt_err0 <= opts.tol:
                status = "optimal"
                break

            if opts.barrier_strategy == "monotone":
                kkt_err_mu = self._kkt_error(
                    problem, x, lam, z_lo, z_up, grad, c, jac, mu
                )
                if kkt_err_mu <= opts.kappa_epsilon * mu and mu > opts.mu_min:
                    mu = max(
                        opts.mu_min,
                        min(opts.kappa_mu * mu, mu**opts.theta_mu),
                    )
                    flt.reset()
                    # refresh bound multipliers toward the new central path
                    z_lo = self._safeguard(z_lo, x - lo, mu, has_lo)
                    z_up = self._safeguard(z_up, up - x, mu, has_up)
                    continue

            # --- Newton direction on the condensed system -------------
            hess = problem.eval_hessian(x, lam, 1.0)
            sigma = np.zeros(problem.n)
            sigma[has_lo] += z_lo[has_lo] / (x[has_lo] - lo[has_lo])
            sigma[has_up] += z_up[has_up] / (up[has_up] - x[has_up])
            w_sigma = hess + np.diag(sigma)

            if opts.barrier_strategy == "adaptive":
                new_mu = self._adaptive_mu(problem, x, z_lo, z_up, mu)
            elif opts.barrier_strategy == "probing":
                new_mu = self._probing_mu(
                    problem, x, lam, z_lo, z_up, grad, c, jac, w_sigma, mu
                )
            else:
                new_mu = mu
            if new_mu != mu:
                if new_mu < 0.5 * mu or new_mu > 2.0 * mu:
                    flt.reset()  # the barrier objective changed scale
                mu = new_mu

            rhs_x = -(
                grad
                + jac.T @ lam
                - np.where(has_lo, mu / (x - lo), 0.0)
                + np.where(has_up, mu / (up - x), 0.0)
            )
            rhs_c = -c
            try:
                sol = solve_kkt(
                    w_sigma, jac, rhs_x, rhs_c, delta_w_init=0.0
                )
            except SolverError:
                # retry warm-started with the last successful regulariser
                sol = solve_kkt(
                    w_sigma, jac, rhs_x, rhs_c, delta_w_init=max(delta_w_last, 1e-8)
                )
            delta_w_last = sol.delta_w
            dx, dlam = sol.dx, sol.dlam

            dz_lo = np.where(
                has_lo,
                mu / np.maximum(x - lo, 1e-300)
                - z_lo
                - z_lo * dx / np.maximum(x - lo, 1e-300),
                0.0,
            )
            dz_up = np.where(
                has_up,
                mu / np.maximum(up - x, 1e-300)
                - z_up
                + z_up * dx / np.maximum(up - x, 1e-300),
                0.0,
            )

            # --- fraction-to-boundary step caps ------------------------
            tau = max(opts.tau_min, 1.0 - mu)
            alpha_pri_max = self._max_step(x - lo, dx, has_lo, tau)
            alpha_pri_max = min(
                alpha_pri_max, self._max_step(up - x, -dx, has_up, tau)
            )
            alpha_dual = min(
                self._max_step(z_lo, dz_lo, has_lo, tau),
                self._max_step(z_up, dz_up, has_up, tau),
            )

            # --- filter line search ------------------------------------
            theta_k = float(np.abs(c).sum())
            phi_k = self._barrier_value(problem, x, mu)
            dphi = float(
                (grad
                 - np.where(has_lo, mu / (x - lo), 0.0)
                 + np.where(has_up, mu / (up - x), 0.0)
                 ) @ dx
            )
            current = FilterEntry(theta=theta_k, phi=phi_k)

            alpha = alpha_pri_max
            accepted = False
            f_type = False
            for _ in range(opts.max_backtracks):
                if alpha < opts.alpha_min:
                    break
                x_trial = x + alpha * dx
                try:
                    theta_t = float(
                        np.abs(problem.eval_constraints(x_trial)).sum()
                    )
                    phi_t = self._barrier_value(problem, x_trial, mu)
                except Exception:
                    alpha *= 0.5
                    continue
                armijo_ok = (
                    dphi < 0.0
                    and phi_t <= phi_k + opts.armijo_eta * alpha * dphi
                    and theta_t <= max(theta_k, opts.tol)
                )
                if armijo_ok:
                    accepted, f_type = True, True
                    break
                if flt.acceptable(theta_t, phi_t, current=current):
                    accepted, f_type = True, False
                    break
                alpha *= 0.5

            if not accepted:
                # --- feasibility restoration ---------------------------
                restorations += 1
                x_new, ok = self._restore(problem, x, theta_k)
                if not ok:
                    status = "restoration_failed"
                    break
                x = x_new
                lam = np.zeros(problem.m)
                z_lo = np.where(has_lo, mu / np.maximum(x - lo, 1e-12), 0.0)
                z_up = np.where(has_up, mu / np.maximum(up - x, 1e-12), 0.0)
                flt.reset()
                continue

            if not f_type:
                flt.add(theta_k, phi_k)

            x = x + alpha * dx
            lam = lam + alpha * dlam
            z_lo = self._safeguard(z_lo + alpha_dual * dz_lo, x - lo, mu, has_lo)
            z_up = self._safeguard(z_up + alpha_dual * dz_up, up - x, mu, has_up)

            if opts.record_history:
                history.append(
                    {
                        "iter": iteration,
                        "mu": mu,
                        "alpha": alpha,
                        "theta": theta_k,
                        "phi": phi_k,
                        "kkt_error": kkt_err0,
                        "f_type": f_type,
                        "delta_w": delta_w_last,
                    }
                )

        grad = problem.eval_gradient(x)
        c = problem.eval_constraints(x)
        jac = problem.eval_jacobian(x)
        final_err = self._kkt_error(problem, x, lam, z_lo, z_up, grad, c, jac, 0.0)
        if final_err <= self.options.tol:
            status = "optimal"
        registry = get_registry()
        registry.inc("ipm.solves")
        registry.inc("ipm.iterations", iteration)
        registry.inc("ipm.restorations", restorations)
        registry.set_gauge("ipm.kkt_error", final_err)
        registry.observe("ipm.solve_ms", (time.perf_counter() - t0) * 1e3)
        if status != "optimal":
            registry.inc("ipm.failures", **{"status": status})
        return IPMResult(
            x=x,
            lam=lam,
            z_lower=z_lo,
            z_upper=z_up,
            status=status,
            iterations=iteration,
            kkt_error=final_err,
            constraint_violation=float(np.abs(c).sum()),
            objective=problem.eval_objective(x),
            mu_final=mu,
            wall_time_s=time.perf_counter() - t0,
            history=history,
            restorations=restorations,
        )

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    @staticmethod
    def _max_step(
        slack: np.ndarray, direction: np.ndarray, mask: np.ndarray, tau: float
    ) -> float:
        """Largest alpha in (0, 1] keeping ``slack + alpha*dir >= (1-tau)*slack``."""
        alpha = 1.0
        shrinking = mask & (direction < 0.0)
        if np.any(shrinking):
            ratios = -tau * slack[shrinking] / direction[shrinking]
            alpha = min(alpha, float(ratios.min()))
        return max(alpha, 0.0)

    @staticmethod
    def _safeguard(
        z: np.ndarray, slack: np.ndarray, mu: float, mask: np.ndarray
    ) -> np.ndarray:
        """Clip bound multipliers into IPOPT's kappa_Sigma corridor."""
        out = np.where(mask, np.maximum(z, 0.0), 0.0)
        s = np.maximum(slack, 1e-300)
        lo_corridor = mu / (_KAPPA_SIGMA * s)
        hi_corridor = _KAPPA_SIGMA * mu / s
        out = np.where(mask, np.clip(out, lo_corridor, hi_corridor), 0.0)
        return out

    def _adaptive_mu(
        self,
        problem: NLPProblem,
        x: np.ndarray,
        z_lo: np.ndarray,
        z_up: np.ndarray,
        mu: float,
    ) -> float:
        """LOQO-style centrality-based barrier update (NWW 2009, eq. 2.2).

        With complementarity products ``w_i = slack_i * z_i``, the update
        sets ``mu = sigma * avg(w)`` where σ grows when the iterate is
        badly centred (``min(w)/avg(w)`` small) and shrinks toward the
        superlinear regime when it is well centred.
        """
        has_lo, has_up = problem.has_lower(), problem.has_upper()
        w = np.concatenate(
            [
                (x[has_lo] - problem.lower[has_lo]) * z_lo[has_lo],
                (problem.upper[has_up] - x[has_up]) * z_up[has_up],
            ]
        )
        if w.size == 0:
            return mu
        avg = float(w.mean())
        if avg <= 0.0:
            return mu
        xi = float(w.min()) / avg
        sigma = 0.1 * min(0.05 * (1.0 - xi) / max(xi, 1e-12), 2.0) ** 3
        new_mu = sigma * avg
        # safeguards: never below the floor, never ballooning upward
        return float(np.clip(new_mu, self.options.mu_min, max(10.0 * mu, 1e-6)))

    def _probing_mu(
        self,
        problem: NLPProblem,
        x: np.ndarray,
        lam: np.ndarray,
        z_lo: np.ndarray,
        z_up: np.ndarray,
        grad: np.ndarray,
        c: np.ndarray,
        jac: np.ndarray,
        w_sigma: np.ndarray,
        mu: float,
    ) -> float:
        """Mehrotra probing update (NWW 2009, Sec. 2.3).

        Solves the affine-scaling predictor (the Newton system with
        μ = 0), measures how far complementarity would fall along it,
        and sets ``sigma = (mu_affine / mu_avg)^3``.  Falls back to the
        current μ if the predictor solve fails.
        """
        lo, up = problem.lower, problem.upper
        has_lo, has_up = problem.has_lower(), problem.has_upper()
        w = np.concatenate(
            [
                (x[has_lo] - lo[has_lo]) * z_lo[has_lo],
                (up[has_up] - x[has_up]) * z_up[has_up],
            ]
        )
        if w.size == 0:
            return mu
        mu_avg = float(w.mean())
        if mu_avg <= 0.0:
            return mu
        rhs_x = -(grad + jac.T @ lam - z_lo + z_up)
        try:
            sol = solve_kkt(w_sigma, jac, rhs_x, -c)
        except SolverError:
            return mu
        dx = sol.dx
        slack_lo = np.maximum(x - lo, 1e-300)
        slack_up = np.maximum(up - x, 1e-300)
        dz_lo = np.where(has_lo, -z_lo - z_lo * dx / slack_lo, 0.0)
        dz_up = np.where(has_up, -z_up + z_up * dx / slack_up, 0.0)
        alpha_pri = min(
            self._max_step(x - lo, dx, has_lo, 1.0),
            self._max_step(up - x, -dx, has_up, 1.0),
        )
        alpha_dual = min(
            self._max_step(z_lo, dz_lo, has_lo, 1.0),
            self._max_step(z_up, dz_up, has_up, 1.0),
        )
        slack_lo_aff = (x + alpha_pri * dx)[has_lo] - lo[has_lo]
        slack_up_aff = up[has_up] - (x + alpha_pri * dx)[has_up]
        z_lo_aff = (z_lo + alpha_dual * dz_lo)[has_lo]
        z_up_aff = (z_up + alpha_dual * dz_up)[has_up]
        w_aff = np.concatenate(
            [slack_lo_aff * z_lo_aff, slack_up_aff * z_up_aff]
        )
        mu_aff = max(float(w_aff.mean()), 0.0)
        sigma = min((mu_aff / mu_avg) ** 3, 1.0)
        new_mu = sigma * mu_avg
        return float(np.clip(new_mu, self.options.mu_min, max(10.0 * mu, 1e-6)))

    def _barrier_value(self, problem: NLPProblem, x: np.ndarray, mu: float) -> float:
        lo, up = problem.lower, problem.upper
        has_lo, has_up = problem.has_lower(), problem.has_upper()
        slack_lo = x[has_lo] - lo[has_lo]
        slack_up = up[has_up] - x[has_up]
        if np.any(slack_lo <= 0.0) or np.any(slack_up <= 0.0):
            raise SolverError("barrier evaluated outside the interior")
        val = problem.eval_objective(x)
        if mu > 0.0:
            val -= mu * float(np.log(slack_lo).sum())
            val -= mu * float(np.log(slack_up).sum())
        return val

    @staticmethod
    def _kkt_error(
        problem: NLPProblem,
        x: np.ndarray,
        lam: np.ndarray,
        z_lo: np.ndarray,
        z_up: np.ndarray,
        grad: np.ndarray,
        c: np.ndarray,
        jac: np.ndarray,
        mu: float,
    ) -> float:
        """Scaled optimality error E_mu (IPOPT eq. (5))."""
        has_lo, has_up = problem.has_lower(), problem.has_upper()
        r_dual = grad + jac.T @ lam - z_lo + z_up
        comp = np.concatenate(
            [
                (x[has_lo] - problem.lower[has_lo]) * z_lo[has_lo] - mu,
                (problem.upper[has_up] - x[has_up]) * z_up[has_up] - mu,
            ]
        )
        s_max = 100.0
        denom = problem.m + np.sum(has_lo) + np.sum(has_up)
        avg_mult = (
            (np.abs(lam).sum() + z_lo.sum() + z_up.sum()) / max(denom, 1)
            if denom
            else 0.0
        )
        s_d = max(s_max, avg_mult) / s_max
        err = max(
            float(np.abs(r_dual).max(initial=0.0)) / s_d,
            float(np.abs(c).max(initial=0.0)),
        )
        if comp.size:
            err = max(err, float(np.abs(comp).max()) / s_d)
        return err

    def _restore(
        self, problem: NLPProblem, x: np.ndarray, theta0: float
    ) -> tuple[np.ndarray, bool]:
        """Gauss-Newton feasibility restoration.

        Reduces ||c(x)||² while staying strictly interior; succeeds when
        the violation drops by 10x (or reaches near-feasibility).
        """
        x_cur = x.copy()
        target = max(theta0 * 0.1, self.options.tol * 0.1)
        for _ in range(self.options.max_restoration_steps):
            c = problem.eval_constraints(x_cur)
            theta = float(np.abs(c).sum())
            if theta <= target:
                return x_cur, True
            jac = problem.eval_jacobian(x_cur)
            jjt = jac @ jac.T + 1e-10 * np.eye(problem.m)
            try:
                dx = -jac.T @ np.linalg.solve(jjt, c)
            except np.linalg.LinAlgError:
                return x_cur, False
            alpha = 1.0
            improved = False
            for _ in range(30):
                x_trial = problem.clip_interior(x_cur + alpha * dx)
                c_trial = problem.eval_constraints(x_trial)
                if float(np.abs(c_trial).sum()) < theta * (1.0 - 1e-4 * alpha):
                    x_cur = x_trial
                    improved = True
                    break
                alpha *= 0.5
            if not improved:
                return x_cur, theta <= max(theta0 * 0.5, self.options.tol)
        theta = float(np.abs(problem.eval_constraints(x_cur)).sum())
        return x_cur, theta < theta0
