"""Assembly and inertia-corrected solution of the primal-dual KKT system.

Each Newton step of the barrier subproblem solves the *condensed*
system (bound duals eliminated)::

    [ W + Σ + δ_w I    Jᵀ       ] [ dx  ]   [ -(∇f - z_L + z_U + Jᵀ λ) ]
    [ J               -δ_c I    ] [ dλ  ] = [ -c                        ]

with ``Σ = Z_L (X - L)⁻¹ + Z_U (U - X)⁻¹``.  For Newton directions to be
descent directions of the barrier problem the matrix must have inertia
(n, m, 0); when it does not, the primal regularisation δ_w is increased
geometrically (and a tiny dual regularisation δ_c handles rank-deficient
Jacobians), mirroring IPOPT's IC-1 heuristic.  Problem sizes here are
tiny, so the inertia is read directly off the eigenvalues.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import SolverError

__all__ = ["KKTSolution", "solve_kkt"]

_MAX_REG_TRIES = 40


@dataclass(frozen=True)
class KKTSolution:
    """A computed Newton direction with the regularisation that produced it."""

    dx: np.ndarray
    dlam: np.ndarray
    delta_w: float
    delta_c: float


def _inertia(matrix: np.ndarray) -> tuple[int, int, int]:
    """(positive, negative, zero) eigenvalue counts of a symmetric matrix."""
    eigvals = np.linalg.eigvalsh(matrix)
    scale = max(float(np.max(np.abs(eigvals))), 1.0)
    tol = 1e-12 * scale
    pos = int(np.sum(eigvals > tol))
    neg = int(np.sum(eigvals < -tol))
    return pos, neg, matrix.shape[0] - pos - neg


def solve_kkt(
    w_sigma: np.ndarray,
    jac: np.ndarray,
    rhs_x: np.ndarray,
    rhs_c: np.ndarray,
    *,
    delta_w_init: float = 0.0,
    delta_min: float = 1e-20,
) -> KKTSolution:
    """Solve the condensed KKT system with inertia correction.

    Parameters
    ----------
    w_sigma:
        ``W + Σ`` — Lagrangian Hessian plus barrier diagonal, (n, n).
    jac:
        Constraint Jacobian, (m, n).
    rhs_x / rhs_c:
        Negated dual and primal residuals (the right-hand side above).
    delta_w_init:
        Starting primal regularisation (pass the last successful value
        to warm-start, as IPOPT does).

    Raises
    ------
    SolverError
        If no regularisation in the search schedule produces the
        required inertia.
    """
    n = w_sigma.shape[0]
    m = jac.shape[0]
    if w_sigma.shape != (n, n) or jac.shape != (m, n):
        raise SolverError(
            f"inconsistent KKT shapes: W{w_sigma.shape}, J{jac.shape}"
        )
    rhs = np.concatenate([rhs_x, rhs_c])

    delta_w = delta_w_init
    delta_c = 0.0
    for attempt in range(_MAX_REG_TRIES):
        kkt = np.zeros((n + m, n + m))
        kkt[:n, :n] = w_sigma + delta_w * np.eye(n)
        kkt[:n, n:] = jac.T
        kkt[n:, :n] = jac
        kkt[n:, n:] = -delta_c * np.eye(m)

        # Symmetric equilibration: barrier terms near active bounds blow
        # the matrix scale up to ~1/slack², which makes an absolute
        # eigenvalue tolerance misclassify small-but-genuine pivots.
        # Diagonal congruence preserves inertia and solves that.
        row_max = np.abs(kkt).max(axis=1)
        d = 1.0 / np.sqrt(np.maximum(row_max, 1e-300))
        kkt_eq = kkt * d[:, None] * d[None, :]

        pos, neg, zero = _inertia(kkt_eq)
        if pos == n and neg == m and zero == 0:
            try:
                sol_eq = np.linalg.solve(kkt_eq, d * rhs)
                sol = d * sol_eq
            except np.linalg.LinAlgError:
                sol = None
            if sol is not None and np.all(np.isfinite(sol)):
                return KKTSolution(
                    dx=sol[:n], dlam=sol[n:], delta_w=delta_w, delta_c=delta_c
                )
        # wrong inertia (or singular): bump the regularisations
        if zero > 0 and delta_c == 0.0:
            delta_c = 1e-8
        if delta_w == 0.0:
            delta_w = max(delta_min, 1e-4)
        else:
            delta_w *= 8.0 if attempt < 10 else 100.0
        if delta_w > 1e40:
            break
    raise SolverError(
        "KKT inertia correction failed: system remains singular/indefinite "
        f"(final delta_w={delta_w:.3e})"
    )
