"""Generic smooth nonlinear program description.

The interior-point solver consumes problems of the form::

    minimise    f(x)
    subject to  c(x) = 0         (m equality constraints)
                l <= x <= u      (component-wise, +-inf allowed)

All callbacks are dense-NumPy; problem sizes in this library are tiny
(one variable per processing unit), so sparsity machinery would be
noise.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["NLPProblem"]


@dataclass
class NLPProblem:
    """An equality-constrained, bound-constrained smooth NLP.

    Attributes
    ----------
    n / m:
        Number of variables / equality constraints.
    objective / gradient:
        ``f(x) -> float`` and ``∇f(x) -> (n,)``.
    constraints / jacobian:
        ``c(x) -> (m,)`` and ``J(x) -> (m, n)``.
    hess_lagrangian:
        ``(x, lam, obj_factor) -> (n, n)`` — Hessian of
        ``obj_factor * f + lam . c``.  Must be symmetric.
    lower / upper:
        Variable bounds; use ``-np.inf`` / ``np.inf`` for free variables.
    name:
        Label for diagnostics.
    """

    n: int
    m: int
    objective: Callable[[np.ndarray], float]
    gradient: Callable[[np.ndarray], np.ndarray]
    constraints: Callable[[np.ndarray], np.ndarray]
    jacobian: Callable[[np.ndarray], np.ndarray]
    hess_lagrangian: Callable[[np.ndarray, np.ndarray, float], np.ndarray]
    lower: np.ndarray = field(default=None)  # type: ignore[assignment]
    upper: np.ndarray = field(default=None)  # type: ignore[assignment]
    name: str = "nlp"

    def __post_init__(self) -> None:
        if self.n <= 0:
            raise ConfigurationError(f"n must be positive, got {self.n}")
        if self.m < 0:
            raise ConfigurationError(f"m must be >= 0, got {self.m}")
        if self.lower is None:
            self.lower = np.full(self.n, -np.inf)
        if self.upper is None:
            self.upper = np.full(self.n, np.inf)
        self.lower = np.asarray(self.lower, dtype=float)
        self.upper = np.asarray(self.upper, dtype=float)
        if self.lower.shape != (self.n,) or self.upper.shape != (self.n,):
            raise ConfigurationError(
                f"bounds must have shape ({self.n},), got "
                f"{self.lower.shape} and {self.upper.shape}"
            )
        if np.any(self.lower > self.upper):
            raise ConfigurationError("lower bound exceeds upper bound")

    # ------------------------------------------------------------------
    # checked evaluation wrappers
    # ------------------------------------------------------------------
    def eval_objective(self, x: np.ndarray) -> float:
        """Evaluate f with a finiteness check."""
        v = float(self.objective(x))
        if not np.isfinite(v):
            raise ConfigurationError(f"{self.name}: objective not finite at {x}")
        return v

    def eval_gradient(self, x: np.ndarray) -> np.ndarray:
        """Evaluate ∇f with shape/finiteness checks."""
        g = np.asarray(self.gradient(x), dtype=float)
        if g.shape != (self.n,):
            raise ConfigurationError(
                f"{self.name}: gradient shape {g.shape} != ({self.n},)"
            )
        if not np.all(np.isfinite(g)):
            raise ConfigurationError(f"{self.name}: gradient not finite at {x}")
        return g

    def eval_constraints(self, x: np.ndarray) -> np.ndarray:
        """Evaluate c with shape/finiteness checks."""
        c = np.asarray(self.constraints(x), dtype=float)
        if c.shape != (self.m,):
            raise ConfigurationError(
                f"{self.name}: constraints shape {c.shape} != ({self.m},)"
            )
        if not np.all(np.isfinite(c)):
            raise ConfigurationError(f"{self.name}: constraints not finite at {x}")
        return c

    def eval_jacobian(self, x: np.ndarray) -> np.ndarray:
        """Evaluate J with shape/finiteness checks."""
        j = np.asarray(self.jacobian(x), dtype=float)
        if j.shape != (self.m, self.n):
            raise ConfigurationError(
                f"{self.name}: jacobian shape {j.shape} != ({self.m}, {self.n})"
            )
        if not np.all(np.isfinite(j)):
            raise ConfigurationError(f"{self.name}: jacobian not finite at {x}")
        return j

    def eval_hessian(
        self, x: np.ndarray, lam: np.ndarray, obj_factor: float = 1.0
    ) -> np.ndarray:
        """Evaluate the Lagrangian Hessian, symmetrised."""
        h = np.asarray(self.hess_lagrangian(x, lam, obj_factor), dtype=float)
        if h.shape != (self.n, self.n):
            raise ConfigurationError(
                f"{self.name}: hessian shape {h.shape} != ({self.n}, {self.n})"
            )
        if not np.all(np.isfinite(h)):
            raise ConfigurationError(f"{self.name}: hessian not finite at {x}")
        return 0.5 * (h + h.T)

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    def has_lower(self) -> np.ndarray:
        """Boolean mask of variables with a finite lower bound."""
        return np.isfinite(self.lower)

    def has_upper(self) -> np.ndarray:
        """Boolean mask of variables with a finite upper bound."""
        return np.isfinite(self.upper)

    def clip_interior(self, x: np.ndarray, margin: float = 1e-8) -> np.ndarray:
        """Project a point strictly inside the bounds.

        The margin is both absolute and relative to the bound gap, as in
        IPOPT's initialisation (``kappa_1``/``kappa_2`` style).
        """
        x = np.asarray(x, dtype=float).copy()
        gap = np.where(
            np.isfinite(self.lower) & np.isfinite(self.upper),
            self.upper - self.lower,
            1.0,
        )
        pad = np.maximum(margin, 1e-2 * gap * 0)  # absolute margin
        pad = np.maximum(pad, margin * np.maximum(np.abs(x), 1.0))
        lo_mask = self.has_lower()
        up_mask = self.has_upper()
        x[lo_mask] = np.maximum(x[lo_mask], self.lower[lo_mask] + pad[lo_mask])
        x[up_mask] = np.minimum(x[up_mask], self.upper[up_mask] - pad[up_mask])
        # if bounds are so tight that the pads cross, take the midpoint
        both = lo_mask & up_mask
        crossed = both & (x < self.lower) | both & (x > self.upper)
        x[crossed] = 0.5 * (self.lower[crossed] + self.upper[crossed])
        return x
