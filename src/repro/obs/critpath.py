"""Critical-path extraction and 100 % makespan attribution.

PLB-HeC's claims are *lower makespan* and *lower device idleness* than
profile-free balancers; this module answers the follow-up question the
raw numbers cannot: **why** was the makespan what it was, and where is
the remaining headroom?

The analysis builds a causality chain over a completed
:class:`~repro.sim.trace.ExecutionTrace` and walks it *backwards* from
the makespan:

* per-worker busy chains come from the ``TaskRecord`` intervals
  (``start_time``/``end_time``, split into retry / transfer / exec
  segments);
* dispatch barriers come from the executor's timing contract — a record
  whose ``start_time`` exceeds its ``dispatch_time`` was stalled by a
  charged model-fit/solve overhead (``solver_overhead_times``), so the
  gap is scheduler time by construction;
* failure → recovery → re-dispatch edges come from ``failures`` /
  ``recoveries`` / ``lost_blocks``: gaps that fall inside a device
  down-window are fault recovery, and completions whose data range was
  previously lost are rework;
* everything else separating two causally-linked events is device idle.

Because the walk partitions ``[0, makespan]`` into contiguous,
non-overlapping segments, the category totals sum to the makespan *by
construction* (``abs(sum(categories) - makespan) < 1e-9`` — asserted by
``repro why --assert-bound`` and the CI smoke step).

On top of the attribution the module derives **what-if lower bounds**
(all provably ``<= makespan``):

* ``zero_transfer`` — makespan minus transfer time on the critical path
  (perfect interconnect);
* ``zero_scheduler`` — makespan minus solver stalls on the path (free
  partitioning decisions);
* ``perfect_balance`` — ``total_work / total_rate`` with per-device
  rates measured from the trace (the Σwork/Σspeed oracle of the
  functional-performance-model literature, cf. Lastovetsky et al.);
* ``device_speedup`` — per device, the makespan if that device computed
  ``speedup_factor``× faster (only its on-path exec time shrinks).

The resulting document (``critpath.json``) is schema-validated by
:func:`validate_critpath`, ridden into sweep payloads by
:func:`payload_from_analysis` (deterministic, so warm-cache / parallel
replays are byte-identical), flagged into the Chrome trace export, and
summarised in the dashboard's "Critical path" section.
"""

from __future__ import annotations

import json
import math
from pathlib import Path
from typing import Any, Mapping

from repro.sim.trace import ExecutionTrace, TaskRecord

__all__ = [
    "CRITPATH_SCHEMA",
    "CATEGORIES",
    "analyze_trace",
    "category_shares",
    "payload_from_analysis",
    "validate_critpath",
    "write_critpath",
]

#: Bump when the analysis document layout changes incompatibly.
CRITPATH_SCHEMA = 1

#: Every makespan second lands in exactly one of these buckets.
CATEGORIES = (
    "compute",
    "transfer",
    "idle",
    "solver",
    "retries",
    "fault_recovery",
    "rework",
)

#: Attribution must be exact to this absolute tolerance (the acceptance
#: bar: ``abs(sum(categories) - makespan) < 1e-9``).
ATTRIBUTION_TOLERANCE = 1e-9

#: Default k for the per-device "if X were k× faster" sensitivity.
DEFAULT_SPEEDUP_FACTOR = 2.0


def _down_windows(trace: ExecutionTrace) -> list[tuple[float, float]]:
    """Device down-windows [t_down, t_up), open ones capped at makespan.

    Each failure pairs with the first recovery of the same device at or
    after it (the fault-isolation invariant's pairing rule); unpaired
    failures are permanent and stay down until the end of the run.
    """
    recoveries = sorted(trace.recoveries)
    windows: list[tuple[float, float]] = []
    for t_down, device in trace.failures:
        t_up = trace.makespan
        for t_rec, rec_device in recoveries:
            if rec_device == device and t_rec >= t_down:
                t_up = min(t_rec, trace.makespan)
                break
        if t_up > t_down:
            windows.append((t_down, t_up))
    return _merge_intervals(windows)


def _merge_intervals(intervals: list[tuple[float, float]]) -> list[tuple[float, float]]:
    """Union of half-open intervals, sorted and coalesced."""
    merged: list[tuple[float, float]] = []
    for start, end in sorted(intervals):
        if merged and start <= merged[-1][1]:
            merged[-1] = (merged[-1][0], max(merged[-1][1], end))
        else:
            merged.append((start, end))
    return merged


def _lost_ranges(trace: ExecutionTrace) -> list[tuple[float, int, int]]:
    """(loss_time, start_unit, end_unit) for range-tracked lost blocks."""
    return [
        (t, start, start + units)
        for t, _device, units, start in trace.lost_blocks
        if start >= 0 and units > 0
    ]


def _is_rework(
    record: TaskRecord, lost: list[tuple[float, int, int]]
) -> bool:
    """A record reprocesses lost data iff its range intersects a range
    lost *before* it was dispatched."""
    if record.start_unit < 0 or not lost:
        return False
    lo, hi = record.start_unit, record.start_unit + record.units
    for t_lost, l_lo, l_hi in lost:
        if record.dispatch_time >= t_lost and lo < l_hi and l_lo < hi:
            return True
    return False


def analyze_trace(
    trace: ExecutionTrace,
    *,
    speedup_factor: float = DEFAULT_SPEEDUP_FACTOR,
) -> dict[str, Any]:
    """Extract the critical path and attribute 100 % of the makespan.

    Returns the ``critpath.json`` document (see module docstring);
    :func:`validate_critpath` checks the shape and the invariants.
    """
    makespan = float(trace.makespan)
    eps = 1e-12 * max(1.0, makespan)
    down = _down_windows(trace)
    lost = _lost_ranges(trace)
    worker_index = {w: i for i, w in enumerate(trace.worker_ids)}

    # ------------------------------------------------------------------
    # backward walk: partition [0, makespan] into attributed segments
    # ------------------------------------------------------------------
    segments: dict[str, list[float]] = {cat: [] for cat in CATEGORIES}
    transfer_on_path: list[float] = []          # incl. rework transfers
    exec_on_path: dict[str, list[float]] = {}   # per device, incl. rework
    path: list[dict[str, Any]] = []             # built backwards
    consumed: set[int] = set()
    cursor = makespan
    end_times = [(r.end_time, i) for i, r in enumerate(trace.records)]
    max_steps = 4 * len(trace.records) + 16

    def add(cat: str, length: float) -> None:
        if length > 0.0:
            segments[cat].append(length)

    for _ in range(max_steps):
        if cursor <= eps:
            break
        # predecessor: a record ending exactly at the cursor
        candidates = [
            i
            for t, i in end_times
            if i not in consumed and abs(t - cursor) <= eps
        ]
        if candidates:
            # deterministic tie-break: longest busy interval first, then
            # stable worker order, then data range
            best = min(
                candidates,
                key=lambda i: (
                    trace.records[i].start_time,
                    worker_index.get(trace.records[i].worker_id, 1 << 30),
                    trace.records[i].start_unit,
                ),
            )
            r = trace.records[best]
            consumed.add(best)
            start = min(r.start_time, cursor)
            rework = _is_rework(r, lost)
            # forward sub-segments within [start, cursor]:
            #   retry | transfer | exec  (exec absorbs rounding residue)
            retry_end = min(start + r.retry_time, cursor)
            transfer_end = min(retry_end + r.transfer_time, cursor)
            add("retries", retry_end - start)
            add("rework" if rework else "transfer", transfer_end - retry_end)
            add("rework" if rework else "compute", cursor - transfer_end)
            transfer_on_path.append(transfer_end - retry_end)
            exec_on_path.setdefault(r.worker_id, []).append(cursor - transfer_end)
            path.append(
                {
                    "kind": "task",
                    "worker": r.worker_id,
                    "start": start,
                    "end": cursor,
                    "units": r.units,
                    "phase": r.phase,
                    "decision": r.decision,
                    "rework": rework,
                    "cause": "busy",
                }
            )
            if r.dispatch_time < start - eps:
                # the executor only delays a dispatched block for one
                # reason: a charged solver overhead stalls the worker
                add("solver", start - r.dispatch_time)
                path.append(
                    {
                        "kind": "solver",
                        "worker": r.worker_id,
                        "start": r.dispatch_time,
                        "end": start,
                        "cause": "solver-stall",
                    }
                )
                cursor = r.dispatch_time
            else:
                cursor = min(start, cursor)
            continue
        # no completion at the cursor: a causal gap.  Its lower edge is
        # the latest earlier event (completion, failure, recovery) — or
        # t=0 when nothing precedes it.
        prev = 0.0
        for t, i in end_times:
            if i not in consumed and t < cursor - eps:
                prev = max(prev, t)
        for t, _d in trace.failures:
            if t < cursor - eps:
                prev = max(prev, t)
        for t, _d in trace.recoveries:
            if t < cursor - eps:
                prev = max(prev, t)
        # carve the gap into fault-recovery (inside down-windows) and
        # genuine idle, in chronological order
        pieces: list[tuple[float, float, str]] = []
        at = prev
        for w_start, w_end in down:
            lo, hi = max(w_start, at), min(w_end, cursor)
            if hi > lo:
                if lo > at:
                    pieces.append((at, lo, "idle"))
                pieces.append((lo, hi, "fault_recovery"))
                at = hi
        if cursor > at:
            pieces.append((at, cursor, "idle"))
        for g_start, g_end, cat in reversed(pieces):
            add(cat, g_end - g_start)
            path.append(
                {
                    "kind": cat,
                    "start": g_start,
                    "end": g_end,
                    "cause": "downtime" if cat == "fault_recovery" else "wait",
                }
            )
        cursor = prev
    else:
        # safety valve: never under-attribute, even on a trace that
        # violates the walk's assumptions (the busy-overlap invariant
        # in repro.resilience.invariants catches the real culprits)
        if cursor > eps:
            add("idle", cursor)
            path.append(
                {"kind": "idle", "start": 0.0, "end": cursor, "cause": "wait"}
            )

    path.reverse()
    categories = {cat: math.fsum(segments[cat]) for cat in CATEGORIES}
    attributed = math.fsum(v for vals in segments.values() for v in vals)

    # ------------------------------------------------------------------
    # what-if lower bounds (each provably <= makespan)
    # ------------------------------------------------------------------
    total_units = trace.total_units()
    rate_sum = 0.0
    for worker in trace.worker_ids:
        units = sum(r.units for r in trace.records if r.worker_id == worker)
        busy = trace.busy_time(worker)
        if units > 0 and busy > 0.0:
            # busy <= makespan, so rate >= units / makespan and the
            # Σwork/Σspeed quotient cannot exceed the observed makespan
            rate_sum += units / busy
    bounds: dict[str, Any] = {
        "zero_transfer": max(0.0, makespan - math.fsum(transfer_on_path)),
        "zero_scheduler": max(0.0, makespan - categories["solver"]),
        "perfect_balance": (total_units / rate_sum) if rate_sum > 0.0 else 0.0,
        "speedup_factor": float(speedup_factor),
        "device_speedup": {
            worker: max(
                0.0,
                makespan
                - (1.0 - 1.0 / speedup_factor)
                * math.fsum(exec_on_path.get(worker, [])),
            )
            for worker in trace.worker_ids
        },
    }

    # ------------------------------------------------------------------
    # bottleneck device + decision blame (the ledger join)
    # ------------------------------------------------------------------
    on_path_busy: dict[str, dict[str, float]] = {}
    for node in path:
        if node["kind"] != "task":
            continue
        agg = on_path_busy.setdefault(
            node["worker"], {"busy_s": 0.0, "tasks": 0.0, "units": 0.0}
        )
        agg["busy_s"] += node["end"] - node["start"]
        agg["tasks"] += 1
        agg["units"] += node["units"]
    bottleneck: dict[str, Any] = {}
    if on_path_busy:
        name = max(
            on_path_busy,
            key=lambda w: (on_path_busy[w]["busy_s"], -worker_index.get(w, 0)),
        )
        agg = on_path_busy[name]
        bottleneck = {
            "device": name,
            "busy_s": agg["busy_s"],
            "share": agg["busy_s"] / makespan if makespan > 0.0 else 0.0,
            "tasks": int(agg["tasks"]),
            "units": int(agg["units"]),
        }
    blame: dict[str, dict[str, float]] = {}
    for node in path:
        if node["kind"] != "task" or not node["decision"]:
            continue
        agg = blame.setdefault(node["decision"], {"tasks": 0.0, "busy_s": 0.0})
        agg["tasks"] += 1
        agg["busy_s"] += node["end"] - node["start"]
    decisions = [
        {"id": did, "tasks": int(agg["tasks"]), "busy_s": agg["busy_s"]}
        for did, agg in sorted(
            blame.items(), key=lambda kv: (-kv[1]["busy_s"], kv[0])
        )
    ]

    return {
        "schema": CRITPATH_SCHEMA,
        "makespan": makespan,
        "total_units": total_units,
        "categories": categories,
        "attributed": attributed,
        "path": path,
        "path_tasks": sum(1 for n in path if n["kind"] == "task"),
        "bounds": bounds,
        "bottleneck": bottleneck,
        "decisions": decisions,
        "devices_on_path": {
            w: agg["busy_s"] for w, agg in sorted(on_path_busy.items())
        },
    }


def category_shares(analysis: Mapping[str, Any]) -> dict[str, float]:
    """Per-category fraction of the makespan (all zero for empty runs)."""
    makespan = float(analysis.get("makespan", 0.0) or 0.0)
    cats = analysis.get("categories", {})
    if makespan <= 0.0:
        return {cat: 0.0 for cat in CATEGORIES}
    return {cat: float(cats.get(cat, 0.0)) / makespan for cat in CATEGORIES}


def payload_from_analysis(analysis: Mapping[str, Any]) -> dict[str, Any]:
    """The compact, deterministic form carried in sweep payloads.

    Drops the per-node ``path`` (which can run to hundreds of entries)
    but keeps everything the compare tables, chaos scorecards and
    regression detectors consume.  Pure dict-of-plain-data in, pure
    dict-of-plain-data out: replaying from a warm cache or under a
    different job count yields byte-identical JSON.
    """
    return {
        "schema": analysis["schema"],
        "makespan": analysis["makespan"],
        "categories": dict(analysis["categories"]),
        "attributed": analysis["attributed"],
        "path_tasks": analysis["path_tasks"],
        "bounds": {
            "zero_transfer": analysis["bounds"]["zero_transfer"],
            "zero_scheduler": analysis["bounds"]["zero_scheduler"],
            "perfect_balance": analysis["bounds"]["perfect_balance"],
            "speedup_factor": analysis["bounds"]["speedup_factor"],
            "device_speedup": dict(analysis["bounds"]["device_speedup"]),
        },
        "bottleneck": dict(analysis["bottleneck"]),
        "decisions": [dict(d) for d in analysis["decisions"]],
    }


def validate_critpath(doc: Mapping[str, Any]) -> list[str]:
    """Schema-check an analysis document; returns problems (empty = ok).

    Checks the two hard guarantees alongside the shape: the categories
    sum to the makespan within :data:`ATTRIBUTION_TOLERANCE`, and every
    what-if bound is at most the observed makespan.
    """
    problems: list[str] = []
    for key in ("schema", "makespan", "categories", "attributed", "path", "bounds"):
        if key not in doc:
            problems.append(f"missing key {key!r}")
    if problems:
        return problems
    if doc["schema"] != CRITPATH_SCHEMA:
        problems.append(
            f"schema {doc['schema']!r} != expected {CRITPATH_SCHEMA}"
        )
    makespan = doc["makespan"]
    if not isinstance(makespan, (int, float)) or makespan < 0:
        problems.append("makespan must be a non-negative number")
        return problems
    cats = doc["categories"]
    if not isinstance(cats, dict) or set(cats) != set(CATEGORIES):
        problems.append(
            f"categories must carry exactly {sorted(CATEGORIES)}"
        )
        return problems
    for cat, value in cats.items():
        if not isinstance(value, (int, float)) or value < -ATTRIBUTION_TOLERANCE:
            problems.append(f"category {cat!r} must be a non-negative number")
    total = math.fsum(float(v) for v in cats.values())
    if abs(total - makespan) >= ATTRIBUTION_TOLERANCE:
        problems.append(
            f"categories sum to {total!r}, not the makespan {makespan!r} "
            f"(off by {abs(total - makespan):.3e})"
        )
    if makespan > 0 and not doc["path"]:
        problems.append("non-zero makespan but empty critical path")
    bounds = doc["bounds"]
    if not isinstance(bounds, dict):
        problems.append("bounds must be a dict")
        return problems
    tol = ATTRIBUTION_TOLERANCE
    for name in ("zero_transfer", "zero_scheduler", "perfect_balance"):
        value = bounds.get(name)
        if not isinstance(value, (int, float)) or value < 0:
            problems.append(f"bound {name!r} must be a non-negative number")
        elif value > makespan + tol:
            problems.append(
                f"bound {name!r} = {value!r} exceeds the makespan {makespan!r}"
            )
    for device, value in dict(bounds.get("device_speedup", {})).items():
        if not isinstance(value, (int, float)) or value < 0:
            problems.append(
                f"device_speedup[{device!r}] must be a non-negative number"
            )
        elif value > makespan + tol:
            problems.append(
                f"device_speedup[{device!r}] = {value!r} exceeds the "
                f"makespan {makespan!r}"
            )
    return problems


def write_critpath(path: str | Path, analysis: Mapping[str, Any]) -> Path:
    """Validate and atomically write an analysis to ``critpath.json``.

    Raises
    ------
    ValueError
        When the analysis fails :func:`validate_critpath` — a broken
        attribution artifact is worse than none.
    """
    problems = validate_critpath(analysis)
    if problems:
        raise ValueError(
            "refusing to write invalid critpath document: " + "; ".join(problems)
        )
    path = Path(path)
    tmp = path.with_suffix(path.suffix + ".tmp")
    tmp.write_text(
        json.dumps(analysis, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    tmp.replace(path)
    return path
