"""The scheduler decision ledger: *why* every allocation happened.

The rest of the obs stack records what a run did (metrics, traces,
history); the ledger records the scheduler's side of the story.  Every
time PLB-HeC fixes block sizes — a probe round, the end-of-modeling
selection, a skew-triggered rebalance, a fault redistribution, a
fallback — it opens a :class:`DecisionRecord` capturing the full causal
chain: what triggered the decision, the per-device model state it was
made from, the solver outcome (or which fallback-chain stage fired),
the chosen allocation ``x_g`` and the predicted per-device block times.

The executor then closes the loop: each dispatched block is stamped
with the id of the decision that placed it, and on completion the
policy feeds the ``(predicted, observed)`` pair back via
:meth:`DecisionLedger.attribute`.  The ledger accumulates residuals per
(decision, device) and per-device whole-run calibration
(:mod:`repro.obs.calibration`), which is what ``repro explain``, the
``explain.jsonl`` artifact, the ``plbhec.calibration.*`` gauges and the
dashboard's "Scheduler decisions" section all render.

Determinism: a ledger contains virtual times and pure solver/model
numbers only — no wall-clock timestamps — so two runs of the same
configuration (under a pinned overhead charge) produce byte-identical
ledgers, and the sweep engine can cache them next to the
:class:`~repro.obs.report.RunReport`.
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import dataclass, field
from math import isfinite
from typing import Any, Iterable, Sequence

from repro.errors import ConfigurationError
from repro.obs.calibration import DRIFT_ALPHA, DeviceCalibration

__all__ = [
    "EXPLAIN_SCHEMA",
    "DecisionRecord",
    "DecisionLedger",
    "read_explain",
    "validate_explain",
    "write_explain",
]

#: Version of the ``explain.jsonl`` line format.
EXPLAIN_SCHEMA = 1

#: Trigger vocabulary — every decision carries exactly one of these.
TRIGGERS = (
    "probe-round",
    "selection",
    "warm-start",
    "rebalance",
    "fault",
    "recovery",
)


def json_safe(obj: Any) -> Any:
    """Recursively replace non-finite floats with None.

    ``json.dumps`` would otherwise emit bare ``NaN`` tokens, which are
    not JSON and break strict parsers on the artifact's consumers.
    """
    if isinstance(obj, float):
        return obj if isfinite(obj) else None
    if isinstance(obj, dict):
        return {k: json_safe(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [json_safe(v) for v in obj]
    return obj


@dataclass(frozen=True)
class DecisionRecord:
    """One scheduling decision: the allocation and everything behind it.

    Attributes
    ----------
    decision_id:
        Ledger-sequential id (``"d0000"``, ``"d0001"``, ...).
    trigger:
        Why the decision was taken — one of :data:`TRIGGERS`.
    t:
        Virtual time the decision was made at.
    phase:
        Scheduler phase (``"modeling"`` or ``"execution"``).
    allocation:
        Chosen integer block sizes per device (the ``x_g``).
    predicted:
        Predicted seconds per device for its allocated block (empty when
        no models existed, e.g. probe rounds).
    predicted_time:
        The common finish time T the solve predicted (NaN when
        unavailable).
    solver:
        Solver outcome: ``method``, ``converged``, ``iterations``,
        ``kkt_error``, ``solve_time_s`` and — on the degradation path —
        ``fallback_stage`` and ``error``.
    models:
        Per-device model state at decision time (basis, coefficients,
        R², profile-point count; see
        :meth:`~repro.modeling.perf_profile.DeviceModel.state_summary`).
    detail:
        Trigger-specific context (e.g. the skew value that tripped a
        rebalance).
    """

    decision_id: str
    trigger: str
    t: float
    phase: str
    allocation: dict[str, int] = field(default_factory=dict)
    predicted: dict[str, float] = field(default_factory=dict)
    predicted_time: float = float("nan")
    solver: dict = field(default_factory=dict)
    models: dict[str, dict] = field(default_factory=dict)
    detail: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.trigger not in TRIGGERS:
            raise ConfigurationError(
                f"trigger must be one of {TRIGGERS}, got {self.trigger!r}"
            )


class _Residuals:
    """Per-(decision, device) predicted-vs-observed accumulator."""

    __slots__ = ("blocks", "units", "sum_pred", "sum_obs", "sum_abs", "sum_rel", "scored")

    def __init__(self) -> None:
        self.blocks = 0
        self.units = 0
        self.sum_pred = 0.0
        self.sum_obs = 0.0
        self.sum_abs = 0.0
        self.sum_rel = 0.0
        self.scored = 0

    def to_dict(self) -> dict:
        n = self.scored
        return {
            "blocks": self.blocks,
            "units": self.units,
            "mean_predicted_s": self.sum_pred / n if n else None,
            "mean_observed_s": self.sum_obs / n if n else None,
            "mape": self.sum_abs / n if n else None,
            "bias": self.sum_rel / n if n else None,
        }


class DecisionLedger:
    """Accumulates decisions and the observations attributed to them."""

    def __init__(self, run_id: str = "", *, alpha: float = DRIFT_ALPHA) -> None:
        self.run_id = run_id
        self.alpha = alpha
        self.decisions: list[DecisionRecord] = []
        self._by_id: dict[str, DecisionRecord] = {}
        self._observed: dict[str, dict[str, _Residuals]] = {}
        self._calibrations: dict[str, DeviceCalibration] = {}
        self.attributed_blocks = 0
        self.unattributed_blocks = 0

    # ------------------------------------------------------------------
    # decision side
    # ------------------------------------------------------------------
    def open_decision(
        self,
        *,
        trigger: str,
        t: float,
        phase: str,
        allocation: dict[str, int] | None = None,
        predicted: dict[str, float] | None = None,
        predicted_time: float = float("nan"),
        solver: dict | None = None,
        models: dict[str, dict] | None = None,
        detail: dict | None = None,
    ) -> str:
        """Record a new decision; returns its ledger id."""
        decision_id = f"d{len(self.decisions):04d}"
        record = DecisionRecord(
            decision_id=decision_id,
            trigger=trigger,
            t=float(t),
            phase=phase,
            allocation=dict(allocation or {}),
            predicted={k: float(v) for k, v in (predicted or {}).items()},
            predicted_time=float(predicted_time),
            solver=dict(solver or {}),
            models=dict(models or {}),
            detail=dict(detail or {}),
        )
        self.decisions.append(record)
        self._by_id[decision_id] = record
        self._observed[decision_id] = {}
        return decision_id

    @property
    def current_id(self) -> str | None:
        """Id of the decision currently governing dispatches (or None)."""
        return self.decisions[-1].decision_id if self.decisions else None

    def get(self, decision_id: str) -> DecisionRecord | None:
        """Look up a decision by id (None if unknown)."""
        return self._by_id.get(decision_id)

    # ------------------------------------------------------------------
    # observation side
    # ------------------------------------------------------------------
    def attribute(
        self,
        decision_id: str | None,
        device_id: str,
        *,
        units: int,
        predicted_s: float | None,
        observed_s: float,
    ) -> None:
        """Attribute one completed block back to the decision that placed it.

        A block carrying no (or an unknown) decision id is counted as
        unattributed — the explain report surfaces the coverage ratio,
        so attribution gaps are visible instead of silent.
        """
        if decision_id is None or decision_id not in self._observed:
            self.unattributed_blocks += 1
            return
        self.attributed_blocks += 1
        acc = self._observed[decision_id].setdefault(device_id, _Residuals())
        acc.blocks += 1
        acc.units += int(units)
        cal = self._calibrations.get(device_id)
        if cal is None:
            cal = self._calibrations[device_id] = DeviceCalibration(
                device_id, alpha=self.alpha
            )
        pred = float("nan") if predicted_s is None else float(predicted_s)
        e = cal.observe(pred, float(observed_s))
        if e is not None:
            acc.scored += 1
            acc.sum_pred += pred
            acc.sum_obs += float(observed_s)
            acc.sum_abs += abs(e)
            acc.sum_rel += e

    # ------------------------------------------------------------------
    # derived views
    # ------------------------------------------------------------------
    def observed_for(self, decision_id: str) -> dict[str, dict]:
        """Per-device residual aggregates of one decision."""
        return {
            d: acc.to_dict()
            for d, acc in self._observed.get(decision_id, {}).items()
        }

    def calibration(self) -> dict[str, DeviceCalibration]:
        """Per-device whole-run calibration accumulators."""
        return dict(self._calibrations)

    def device_calibration(self, device_id: str) -> DeviceCalibration | None:
        """One device's calibration accumulator (None before any block)."""
        return self._calibrations.get(device_id)

    def fallback_stages(self) -> list[str]:
        """Fallback-chain stages fired, in decision order."""
        return [
            d.solver["fallback_stage"]
            for d in self.decisions
            if d.solver.get("fallback_stage")
        ]

    def trigger_counts(self) -> dict[str, int]:
        """Decision counts keyed by trigger."""
        counts: dict[str, int] = {}
        for d in self.decisions:
            counts[d.trigger] = counts.get(d.trigger, 0) + 1
        return counts

    def to_dict(self) -> dict:
        """The full plain-data ledger (JSON-safe, deterministic order)."""
        decisions = []
        for d in self.decisions:
            decisions.append(
                {
                    "id": d.decision_id,
                    "trigger": d.trigger,
                    "t": d.t,
                    "phase": d.phase,
                    "allocation": dict(d.allocation),
                    "predicted": dict(d.predicted),
                    "predicted_time": d.predicted_time,
                    "solver": dict(d.solver),
                    "models": dict(d.models),
                    "detail": dict(d.detail),
                    "observed": self.observed_for(d.decision_id),
                }
            )
        return json_safe(
            {
                "schema": EXPLAIN_SCHEMA,
                "run_id": self.run_id,
                "decisions": decisions,
                "calibration": {
                    d: c.to_dict() for d, c in self._calibrations.items()
                },
                "attribution": {
                    "attributed": self.attributed_blocks,
                    "unattributed": self.unattributed_blocks,
                },
                "triggers": self.trigger_counts(),
                "fallback_stages": self.fallback_stages(),
            }
        )


# ----------------------------------------------------------------------
# the explain.jsonl artifact
# ----------------------------------------------------------------------
def write_explain(ledger: "DecisionLedger | dict", path: str) -> int:
    """Write the ``explain.jsonl`` artifact; returns the line count.

    Line 1 is a header (schema, run id, coverage), then one line per
    decision (with its observed residuals), then one calibration
    summary line — the same run-id-correlated JSON-lines shape the
    structured event log uses, so the two artifacts join on ``run_id``.
    The write is atomic (temp file + rename).
    """
    data = ledger.to_dict() if isinstance(ledger, DecisionLedger) else ledger
    lines = [
        {
            "type": "header",
            "schema": data["schema"],
            "run_id": data["run_id"],
            "decisions": len(data["decisions"]),
            "attribution": data["attribution"],
            "triggers": data["triggers"],
            "fallback_stages": data["fallback_stages"],
        }
    ]
    for decision in data["decisions"]:
        lines.append({"type": "decision", "run_id": data["run_id"], **decision})
    lines.append(
        {
            "type": "calibration",
            "run_id": data["run_id"],
            "devices": data["calibration"],
        }
    )
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=directory, suffix=".tmp")
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as fh:
            for line in lines:
                fh.write(json.dumps(line, sort_keys=True) + "\n")
        os.replace(tmp, path)
    except BaseException:
        if os.path.exists(tmp):
            os.unlink(tmp)
        raise
    return len(lines)


def validate_explain(objs: Sequence[dict]) -> dict:
    """Validate parsed ``explain.jsonl`` objects; returns a summary view.

    Raises
    ------
    ConfigurationError
        On a missing/misplaced header, an unsupported schema, a decision
        line missing required keys, or a missing calibration line.
    """
    if not objs or objs[0].get("type") != "header":
        raise ConfigurationError("explain artifact must start with a header line")
    header = objs[0]
    schema = header.get("schema")
    if schema != EXPLAIN_SCHEMA:
        raise ConfigurationError(
            f"unsupported explain schema {schema!r} (expected {EXPLAIN_SCHEMA})"
        )
    decisions = []
    calibration = None
    required = ("id", "trigger", "t", "phase", "allocation", "solver", "observed")
    for i, obj in enumerate(objs[1:], start=2):
        kind = obj.get("type")
        if kind == "decision":
            missing = [k for k in required if k not in obj]
            if missing:
                raise ConfigurationError(
                    f"explain line {i}: decision missing keys {missing}"
                )
            if obj["trigger"] not in TRIGGERS:
                raise ConfigurationError(
                    f"explain line {i}: unknown trigger {obj['trigger']!r}"
                )
            decisions.append(obj)
        elif kind == "calibration":
            calibration = obj
        else:
            raise ConfigurationError(
                f"explain line {i}: unknown line type {kind!r}"
            )
    if calibration is None:
        raise ConfigurationError("explain artifact has no calibration line")
    if len(decisions) != header.get("decisions"):
        raise ConfigurationError(
            f"header promises {header.get('decisions')} decisions, "
            f"found {len(decisions)}"
        )
    return {
        "header": header,
        "decisions": decisions,
        "calibration": calibration,
    }


def read_explain(path: str) -> dict:
    """Parse and validate an ``explain.jsonl`` file."""
    objs: list[dict] = []
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                objs.append(json.loads(line))
    return validate_explain(objs)


def decision_rows(data: dict) -> Iterable[dict]:
    """Flatten a ledger dict into per-decision display rows.

    Shared by ``repro explain`` and the dashboard's decision table.
    """
    for d in data.get("decisions", []):
        observed = d.get("observed", {})
        blocks = sum(o.get("blocks", 0) for o in observed.values())
        mapes = [
            o["mape"] for o in observed.values() if o.get("mape") is not None
        ]
        yield {
            "id": d["id"],
            "t": d["t"],
            "trigger": d["trigger"],
            "phase": d["phase"],
            "method": d.get("solver", {}).get("method", ""),
            "fallback_stage": d.get("solver", {}).get("fallback_stage"),
            "iterations": d.get("solver", {}).get("iterations", 0),
            "kkt_error": d.get("solver", {}).get("kkt_error"),
            "predicted_time": d.get("predicted_time"),
            "devices": len(d.get("allocation", {})),
            "blocks": blocks,
            "mape": sum(mapes) / len(mapes) if mapes else None,
        }
