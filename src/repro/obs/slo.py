"""Declarative SLOs over cluster telemetry: spec, evaluator, alerts.

Sits on top of :mod:`repro.obs.timeseries`: an :class:`SLOSpec` is a
set of objectives written as small expressions over recorded series —

``p95(device_idle_frac) < 0.2`` · ``fairness > 0.9`` ·
``mean(goodput_units_per_s) >= 50000``

— and :func:`evaluate_slo` turns a spec plus a
:class:`~repro.obs.timeseries.TimeSeriesStore` into a JSON report with
one verdict row per objective.

Two evaluation modes per objective:

* **Aggregate** (``budget`` unset): the verdict is the aggregated value
  compared against the threshold — ``p95(x) < 0.2`` fails iff the
  whole-run p95 crosses 0.2.
* **Error budget** (``budget`` set): a fraction of *samples* is allowed
  to violate the point-wise condition; the verdict fails when the
  violating fraction exceeds the budget.  ``burn_rate`` reports how fast
  the budget is being consumed over a trailing sliding window
  (violating fraction in the window divided by the budget — > 1 means
  the budget will not survive the run).

A bare series name picks the *strictest* aggregate for the comparison
direction (``fairness > 0.9`` must hold at the minimum sample;
``imbalance < 3`` at the maximum), so an unadorned objective can never
pass on a lucky average.

Failing objectives become structured ``alert.slo.*`` events in the
EventLog (:func:`emit_slo_alerts`), anomaly findings for the dashboard
(:func:`repro.obs.regress.detect_slo_anomalies`), and instant markers
on the Chrome-trace scheduler track (via the ``alerts`` parameter of
:func:`repro.obs.trace_export.trace_to_chrome`).
"""

from __future__ import annotations

import json
import math
import re
import threading
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Mapping

from repro.errors import ConfigurationError
from repro.obs.events import EventLog
from repro.obs.metrics import Histogram
from repro.obs.timeseries import TimeSeriesStore

__all__ = [
    "SLO_REPORT_SCHEMA",
    "SLOObjective",
    "SLOSpec",
    "DEFAULT_SLO_SPEC",
    "load_slo_spec",
    "spec_from_dict",
    "evaluate_slo",
    "slo_alerts",
    "emit_slo_alerts",
    "write_slo_report",
    "validate_slo_report",
]

#: ``slo_report.json`` schema version.
SLO_REPORT_SCHEMA = 1

_events = EventLog("slo")

_AGGS = ("min", "max", "mean", "last", "p50", "p90", "p95", "p99")
_OPS = ("<=", ">=", "<", ">")
_EXPR_RE = re.compile(
    r"^\s*(?:(?P<agg>min|max|mean|last|p50|p90|p95|p99)\s*\(\s*"
    r"(?P<inner>[A-Za-z_][\w.]*)\s*\)|(?P<bare>[A-Za-z_][\w.]*))"
    r"\s*(?P<op><=|>=|<|>)\s*(?P<thr>[-+]?(?:\d+\.?\d*|\.\d+)(?:[eE][-+]?\d+)?)\s*$"
)


@dataclass(frozen=True)
class SLOObjective:
    """One objective: an aggregate (or budgeted point-wise) condition.

    Attributes
    ----------
    name:
        Stable identifier (used in alert/anomaly event names).
    expr:
        The source expression, e.g. ``"p95(device_idle_frac) < 0.2"``.
    series / agg / op / threshold:
        The parsed form.  ``agg`` is one of min/max/mean/last/p50/p90/
        p95/p99.
    budget:
        Optional error budget: the allowed fraction of point-wise
        violating samples (None = pure aggregate objective).
    window:
        Sliding-window length in virtual seconds for the burn rate
        (default: the trailing 25 % of the sampled span).
    severity:
        ``"critical"`` or ``"warning"`` — carried into alerts and
        anomaly findings.
    """

    name: str
    expr: str
    series: str
    agg: str
    op: str
    threshold: float
    budget: float | None = None
    window: float | None = None
    severity: str = "critical"

    def __post_init__(self) -> None:
        if self.agg not in _AGGS:
            raise ConfigurationError(f"unknown aggregate {self.agg!r}")
        if self.op not in _OPS:
            raise ConfigurationError(f"unknown comparison {self.op!r}")
        if self.budget is not None and not 0.0 <= self.budget < 1.0:
            raise ConfigurationError(
                f"error budget must be in [0, 1), got {self.budget}"
            )
        if self.window is not None and self.window <= 0.0:
            raise ConfigurationError(f"window must be > 0, got {self.window}")
        if self.severity not in ("critical", "warning"):
            raise ConfigurationError(
                f"severity must be 'critical' or 'warning', got {self.severity!r}"
            )

    def holds(self, value: float) -> bool:
        """Does ``value`` satisfy this objective's comparison?"""
        if self.op == "<":
            return value < self.threshold
        if self.op == "<=":
            return value <= self.threshold
        if self.op == ">":
            return value > self.threshold
        return value >= self.threshold


def parse_objective(
    name: str,
    expr: str,
    *,
    budget: float | None = None,
    window: float | None = None,
    severity: str = "critical",
) -> SLOObjective:
    """Parse ``AGG(series) OP number`` (or ``series OP number``).

    A bare series name gets the strictest aggregate for the comparison
    direction: ``min`` for ``>``/``>=`` objectives, ``max`` for
    ``<``/``<=``.
    """
    m = _EXPR_RE.match(expr)
    if m is None:
        raise ConfigurationError(
            f"cannot parse SLO expression {expr!r}; expected "
            "'AGG(series) OP number' with AGG in "
            f"{'/'.join(_AGGS)} or a bare series name"
        )
    op = m.group("op")
    if m.group("bare"):
        series = m.group("bare")
        agg = "min" if op in (">", ">=") else "max"
    else:
        series = m.group("inner")
        agg = m.group("agg")
    return SLOObjective(
        name=name,
        expr=expr.strip(),
        series=series,
        agg=agg,
        op=op,
        threshold=float(m.group("thr")),
        budget=budget,
        window=window,
        severity=severity,
    )


@dataclass(frozen=True)
class SLOSpec:
    """A named set of objectives (what ``--slo FILE`` loads)."""

    name: str
    objectives: tuple[SLOObjective, ...]
    description: str = ""

    def __post_init__(self) -> None:
        if not self.objectives:
            raise ConfigurationError("an SLO spec needs at least one objective")
        names = [o.name for o in self.objectives]
        if len(set(names)) != len(names):
            raise ConfigurationError(f"duplicate objective names in {names}")


def spec_from_dict(doc: Mapping[str, Any]) -> SLOSpec:
    """Build an :class:`SLOSpec` from its JSON form.

    Expected shape::

        {"name": "...", "description": "...",
         "objectives": [{"name": "...", "expr": "p95(x) < 0.2",
                         "budget": 0.05, "window": 0.5,
                         "severity": "warning"}, ...]}
    """
    if not isinstance(doc, Mapping):
        raise ConfigurationError("SLO spec must be a JSON object")
    rows = doc.get("objectives")
    if not isinstance(rows, list) or not rows:
        raise ConfigurationError("SLO spec needs a non-empty 'objectives' list")
    objectives = []
    for i, row in enumerate(rows):
        if not isinstance(row, Mapping) or "expr" not in row:
            raise ConfigurationError(f"objective #{i} needs an 'expr' field")
        objectives.append(
            parse_objective(
                str(row.get("name") or f"objective-{i}"),
                str(row["expr"]),
                budget=row.get("budget"),
                window=row.get("window"),
                severity=str(row.get("severity", "critical")),
            )
        )
    return SLOSpec(
        name=str(doc.get("name", "slo")),
        objectives=tuple(objectives),
        description=str(doc.get("description", "")),
    )


def load_slo_spec(path: str | Path) -> SLOSpec:
    """Load and validate an SLO spec JSON file."""
    try:
        doc = json.loads(Path(path).read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise ConfigurationError(f"SLO file {path} is not valid JSON: {exc}")
    return spec_from_dict(doc)


#: The default objectives ``repro dashboard`` and chaos campaigns
#: evaluate: generous enough that a healthy fault-free run passes, tight
#: enough that a wedged device or collapsed goodput shows up.
DEFAULT_SLO_SPEC = SLOSpec(
    name="default",
    description="baseline cluster health: devices mostly busy, progress "
    "shared fairly, work actually completing",
    objectives=(
        parse_objective(
            # mean, not p95: per-window idle is near-binary, so any
            # device fully idle for 5% of windows (normal during the
            # probe phase) would pin p95 at 1.0 and fail healthy runs.
            "device-idle", "mean(device_idle_frac) < 0.9", severity="warning"
        ),
        parse_objective("fairness", "mean(fairness) > 0.5"),
        parse_objective("completion", "last(backlog_units) <= 0"),
        parse_objective("goodput", "max(goodput_units_per_s) > 0"),
    ),
)


def _aggregate(values: list[float], agg: str, max_samples: int) -> float:
    if agg == "min":
        return min(values)
    if agg == "max":
        return max(values)
    if agg == "mean":
        return sum(values) / len(values)
    if agg == "last":
        return values[-1]
    hist = Histogram(threading.RLock(), max_samples=max(max_samples, len(values)))
    for v in values:
        hist.observe(v)
    return hist.percentile(float(agg[1:]))


def evaluate_slo(
    spec: SLOSpec,
    store: TimeSeriesStore,
    *,
    run_id: str = "",
) -> dict[str, Any]:
    """Evaluate every objective of ``spec`` against ``store``.

    Returns the ``slo_report.json`` document: one row per objective with
    a ``verdict`` of ``"pass"``, ``"fail"`` or ``"no-data"`` (a series
    the run never recorded), plus the overall ``ok`` (no objective
    failed — missing data is surfaced, not failed).
    """
    rows: list[dict[str, Any]] = []
    for obj in spec.objectives:
        merged: list[tuple[float, float]] = []
        for pts in store.matching(obj.series).values():
            merged.extend(pts)
        merged.sort(key=lambda p: p[0])
        row: dict[str, Any] = {
            "name": obj.name,
            "expr": obj.expr,
            "series": obj.series,
            "agg": obj.agg,
            "op": obj.op,
            "threshold": obj.threshold,
            "severity": obj.severity,
            "budget": obj.budget,
            "samples": len(merged),
        }
        if not merged:
            row.update(
                measured=None, verdict="no-data", violating_samples=0,
                violating_fraction=0.0, burn_rate=None, first_violation_t=None,
            )
            rows.append(row)
            continue
        values = [v for _, v in merged]
        measured = _aggregate(values, obj.agg, store.max_points)
        violating = [(t, v) for t, v in merged if not obj.holds(v)]
        fraction = len(violating) / len(merged)
        t_lo, t_hi = merged[0][0], merged[-1][0]
        window = obj.window
        if window is None:
            window = max((t_hi - t_lo) * 0.25, 1e-12)
        w_pts = [(t, v) for t, v in merged if t >= t_hi - window]
        w_frac = (
            sum(1 for t, v in w_pts if not obj.holds(v)) / len(w_pts)
            if w_pts
            else 0.0
        )
        if obj.budget is not None:
            ok = fraction <= obj.budget + 1e-12
            burn = w_frac / obj.budget if obj.budget > 0 else None
        else:
            ok = obj.holds(measured)
            burn = None
        row.update(
            measured=measured,
            verdict="pass" if ok else "fail",
            violating_samples=len(violating),
            violating_fraction=fraction,
            window=window,
            window_violating_fraction=w_frac,
            burn_rate=burn,
            first_violation_t=violating[0][0] if violating else None,
        )
        rows.append(row)
    failed = [r for r in rows if r["verdict"] == "fail"]
    return {
        "schema": SLO_REPORT_SCHEMA,
        "spec": spec.name,
        "description": spec.description,
        "run_id": run_id,
        "ok": not failed,
        "objectives": rows,
        "evaluated": len(rows),
        "violations": len(failed),
        "no_data": sum(1 for r in rows if r["verdict"] == "no-data"),
    }


# ----------------------------------------------------------------------
# alerts
# ----------------------------------------------------------------------
def slo_alerts(report: Mapping[str, Any]) -> list[dict[str, Any]]:
    """The alert list for a report's failing objectives.

    Each alert carries the virtual time to stamp on the trace (the first
    violating sample when the objective has one, else 0.0 — an
    aggregate breach has no single onset).
    """
    alerts = []
    for row in report.get("objectives", []):
        if row.get("verdict") != "fail":
            continue
        t = row.get("first_violation_t")
        alerts.append(
            {
                "name": f"slo:{row['name']}",
                "objective": row["name"],
                "expr": row.get("expr", ""),
                "severity": row.get("severity", "critical"),
                "t": float(t) if t is not None else 0.0,
                "measured": row.get("measured"),
                "threshold": row.get("threshold"),
                "message": (
                    f"SLO {row['name']} violated: {row.get('expr')} "
                    f"(measured {row.get('measured')})"
                ),
            }
        )
    return alerts


def emit_slo_alerts(report: Mapping[str, Any]) -> list[dict[str, Any]]:
    """Emit one ``alert.slo.<objective>`` EventLog instant per violation.

    Returns the alerts (same as :func:`slo_alerts`) so callers can also
    stamp them onto the trace export.
    """
    alerts = slo_alerts(report)
    for alert in alerts:
        measured = alert.get("measured")
        _events.instant(
            f"alert.slo.{alert['objective']}",
            severity=alert["severity"],
            expr=alert["expr"],
            measured=round(measured, 6) if isinstance(measured, float) else measured,
            threshold=alert.get("threshold"),
            virtual_t=alert["t"],
            message=alert["message"],
        )
    return alerts


# ----------------------------------------------------------------------
# slo_report.json (write / validate)
# ----------------------------------------------------------------------
def write_slo_report(path: str | Path, report: Mapping[str, Any]) -> Path:
    """Write ``slo_report.json`` (validated, atomic)."""
    problems = validate_slo_report(report)
    if problems:
        raise ConfigurationError(f"refusing to write invalid SLO report: {problems}")
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_text(
        json.dumps(report, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    tmp.replace(path)
    return path


def validate_slo_report(report: Mapping[str, Any]) -> list[str]:
    """Schema-check an SLO report dict; returns a list of problems."""
    problems: list[str] = []
    if not isinstance(report, Mapping):
        return ["report must be a JSON object"]
    if report.get("schema") != SLO_REPORT_SCHEMA:
        problems.append(
            f"unsupported schema {report.get('schema')!r} "
            f"(expected {SLO_REPORT_SCHEMA})"
        )
    if not isinstance(report.get("ok"), bool):
        problems.append("missing boolean 'ok'")
    rows = report.get("objectives")
    if not isinstance(rows, list) or not rows:
        problems.append("'objectives' must be a non-empty list")
        return problems
    fails = 0
    for i, row in enumerate(rows):
        if not isinstance(row, Mapping):
            problems.append(f"objective #{i} must be an object")
            continue
        for field_name in ("name", "expr", "series", "agg", "op"):
            if not isinstance(row.get(field_name), str):
                problems.append(f"objective #{i}: missing string {field_name!r}")
        if row.get("verdict") not in ("pass", "fail", "no-data"):
            problems.append(f"objective #{i}: bad verdict {row.get('verdict')!r}")
        if row.get("verdict") == "fail":
            fails += 1
        measured = row.get("measured")
        if measured is not None and (
            not isinstance(measured, (int, float))
            or (isinstance(measured, float) and not math.isfinite(measured))
        ):
            problems.append(f"objective #{i}: measured must be finite or null")
    if isinstance(report.get("violations"), int) and report["violations"] != fails:
        problems.append(
            f"'violations' says {report['violations']} but "
            f"{fails} objectives failed"
        )
    if report.get("ok") is True and fails:
        problems.append("'ok' is true but objectives failed")
    return problems
