"""Self-contained HTML observability dashboard (``repro dashboard``).

One static file that answers "what changed and why" for a run of the
reproduction: per-policy makespan and idleness (the shape of the
paper's Figs. 4-7), the benchmark trend from the history store, solver
convergence (KKT error per interior-point iteration), a per-worker
Gantt strip rendered from the :class:`~repro.sim.trace.ExecutionTrace`,
and the anomaly findings from :mod:`repro.obs.regress`.

Constraints, enforced by the tests:

* **zero dependencies** — stdlib only, charts are hand-rolled inline
  SVG;
* **self-contained** — no external requests of any kind (no CDN
  scripts, fonts, or images), so the artifact renders identically from
  a CI upload, an airgapped machine, or a mail attachment;
* **both color schemes** — light and dark are separately chosen
  palettes (not an automatic inversion), switched on
  ``prefers-color-scheme``.

Chart conventions follow one system: categorical series colors are
assigned to policies in fixed order (never cycled), marks are thin with
rounded data-ends, values are directly labeled at bar tips (two light
series sit below 3:1 contrast on the light surface, so labels + the
table views carry the numbers), text wears text tokens rather than
series colors, and every mark has a ``<title>`` hover tooltip.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Any, Mapping, Sequence
from xml.sax.saxutils import escape

from repro.obs.history import HistoryStore, git_rev, host_fingerprint
from repro.obs.ledger import decision_rows
from repro.obs.regress import Anomaly

if TYPE_CHECKING:  # the render stack is imported lazily: repro.obs is
    # loaded by low-level modules (sim.engine), and importing the
    # experiment/simulator layers here would close an import cycle
    from repro.experiments.runner import SweepPoint
    from repro.sim.trace import ExecutionTrace
    from repro.solver.diagnostics import ConvergenceReport

__all__ = [
    "DashboardData",
    "chaos_dashboard_data",
    "collect_dashboard_data",
    "render_dashboard",
    "write_dashboard",
]

#: Fixed categorical assignment: paper policies in presentation order.
#: (Validated 4-slot palette; light/dark steps of the same hues.)
_SERIES_VARS = ("--series-1", "--series-2", "--series-3", "--series-4")

_CSS = """
:root { color-scheme: light; }
body {
  margin: 0; padding: 0 0 48px;
  font-family: system-ui, -apple-system, "Segoe UI", sans-serif;
  background: var(--page); color: var(--text-primary);
  --page: #f9f9f7; --surface-1: #fcfcfb;
  --text-primary: #0b0b0b; --text-secondary: #52514e; --text-muted: #898781;
  --grid: #e1e0d9; --axis: #c3c2b7; --border: rgba(11,11,11,0.10);
  --series-1: #2a78d6; --series-2: #eb6834;
  --series-3: #1baf7a; --series-4: #eda100;
  --status-good: #0ca30c; --status-warning: #fab219;
  --status-serious: #ec835a; --status-critical: #d03b3b;
}
@media (prefers-color-scheme: dark) {
  :root { color-scheme: dark; }
  body {
    --page: #0d0d0d; --surface-1: #1a1a19;
    --text-primary: #ffffff; --text-secondary: #c3c2b7; --text-muted: #898781;
    --grid: #2c2c2a; --axis: #383835; --border: rgba(255,255,255,0.10);
    --series-1: #3987e5; --series-2: #d95926;
    --series-3: #199e70; --series-4: #c98500;
  }
}
main { max-width: 960px; margin: 0 auto; padding: 0 20px; }
header.page { max-width: 960px; margin: 0 auto; padding: 28px 20px 4px; }
h1 { font-size: 22px; font-weight: 600; margin: 0 0 4px; }
h2 { font-size: 16px; font-weight: 600; margin: 0 0 2px; }
.sub { color: var(--text-secondary); font-size: 13px; margin: 0 0 6px; }
.meta { color: var(--text-muted); font-size: 12px; }
section {
  background: var(--surface-1); border: 1px solid var(--border);
  border-radius: 10px; padding: 18px 20px 16px; margin: 16px 0;
}
.hero { display: flex; gap: 32px; align-items: baseline; flex-wrap: wrap; }
.hero .value { font-size: 48px; font-weight: 600; line-height: 1.1; }
.tiles { display: flex; gap: 24px; flex-wrap: wrap; margin: 8px 0 4px; }
.tile .label { color: var(--text-secondary); font-size: 12px; }
.tile .value { font-size: 24px; font-weight: 600; }
.tile .hint { color: var(--text-muted); font-size: 11px; }
.legend { display: flex; gap: 16px; flex-wrap: wrap; margin: 6px 0 10px;
  font-size: 12px; color: var(--text-secondary); }
.legend .key { display: inline-flex; align-items: center; gap: 6px; }
.swatch { width: 10px; height: 10px; border-radius: 3px; display: inline-block; }
svg { display: block; }
svg text { font-family: system-ui, -apple-system, "Segoe UI", sans-serif; }
.axis-label { font-size: 11px; fill: var(--text-muted); }
.value-label { font-size: 11px; fill: var(--text-primary); }
.series-label { font-size: 11px; fill: var(--text-secondary); }
.axis-line { stroke: var(--axis); stroke-width: 1; }
.gridline { stroke: var(--grid); stroke-width: 1; }
table { border-collapse: collapse; font-size: 12px; margin-top: 10px; width: 100%; }
th { text-align: left; color: var(--text-secondary); font-weight: 600; }
th, td { padding: 3px 10px 3px 0; border-bottom: 1px solid var(--grid); }
td.num, th.num { text-align: right; font-variant-numeric: tabular-nums; }
.anomaly { display: flex; gap: 10px; align-items: baseline; padding: 6px 0;
  border-bottom: 1px solid var(--grid); font-size: 13px; }
.anomaly:last-child { border-bottom: none; }
.badge { font-size: 11px; font-weight: 600; padding: 1px 8px; border-radius: 8px;
  color: #fff; white-space: nowrap; }
.badge.warning { background: var(--status-serious); }
.badge.critical { background: var(--status-critical); }
.allclear { color: var(--status-good); font-size: 13px; font-weight: 600; }
.empty { color: var(--text-muted); font-size: 13px; font-style: italic; }
details.table-view summary { color: var(--text-muted); font-size: 12px;
  cursor: pointer; margin-top: 8px; }
footer { max-width: 960px; margin: 0 auto; padding: 8px 20px;
  color: var(--text-muted); font-size: 12px; }
"""


@dataclass
class DashboardData:
    """Everything one rendered dashboard shows."""

    config: dict = field(default_factory=dict)
    generated_at: str = ""
    host: dict = field(default_factory=dict)
    git_rev: str | None = None
    point: SweepPoint | None = None
    bench_trend: list[dict] = field(default_factory=list)
    convergence: ConvergenceReport | None = None
    convergence_history: list[dict] = field(default_factory=list)
    trace: ExecutionTrace | None = None
    trace_policy: str = "plb-hec"
    anomalies: list[Anomaly] = field(default_factory=list)
    profile: dict = field(default_factory=dict)
    #: chaos-campaign scorecard (``repro chaos`` output); empty = none
    resilience: dict = field(default_factory=dict)
    #: decision ledger of the live run (``DecisionLedger.to_dict`` form)
    ledger: dict = field(default_factory=dict)
    #: virtual-time telemetry of the live run (``interval``, ``samples``,
    #: and a ``TimeSeriesStore.to_payload`` store); empty = not sampled
    series: dict = field(default_factory=dict)
    #: SLO evaluation (``repro.obs.slo.evaluate_slo`` report) over it
    slo: dict = field(default_factory=dict)
    #: critical-path analysis of the live run
    #: (``repro.obs.critpath.analyze_trace`` document); empty = no trace
    critpath: dict = field(default_factory=dict)


def collect_dashboard_data(
    *,
    app: str = "matmul",
    size: int = 16384,
    machines: int = 4,
    seed: int = 0,
    noise: float = 0.005,
    replications: int = 2,
    jobs: int | None = None,
    history: HistoryStore | None = None,
    trend_last: int = 30,
    scorecard: Mapping[str, Any] | None = None,
) -> DashboardData:
    """Run the workload and gather every section's inputs.

    The policy comparison goes through the sweep engine (so
    ``REPRO_JOBS``/``REPRO_CACHE`` apply); the Gantt/anomaly section
    re-runs one PLB-HeC instance to get a live trace and a per-run
    metrics delta; the convergence section performs one recorded
    interior-point solve on models fitted for the same scenario.
    """
    from repro.cluster import paper_cluster
    from repro.experiments.runner import make_application, make_policy, run_policies
    from repro.experiments.solver_overhead import fitted_models_for_scenario
    from repro.obs.metrics import diff_snapshots, get_registry
    from repro.obs.regress import detect_anomalies
    from repro.runtime import Runtime
    from repro.solver.diagnostics import analyze_convergence
    from repro.solver.ipm import IPMOptions, InteriorPointSolver
    from repro.solver.problem import build_partition_nlp, initial_partition_point

    data = DashboardData(
        config={
            "app": app,
            "size": size,
            "machines": machines,
            "seed": seed,
            "noise": noise,
            "replications": replications,
        },
        generated_at=time.strftime("%Y-%m-%d %H:%M:%S %z"),
        host=host_fingerprint(),
        git_rev=git_rev(),
        resilience=dict(scorecard) if scorecard else {},
    )

    data.point = run_policies(
        app,
        size,
        machines,
        replications=replications,
        seed=seed,
        noise_sigma=noise,
        jobs=jobs,
    )

    # One live PLB-HeC run: Gantt strip + anomaly detectors over its
    # metrics delta, idle fractions and phase summary.  The run executes
    # under the phase profiler so the CPU-profile section shows where
    # this scenario's host time actually goes.
    from repro.obs.profiler import profiling

    application = make_application(app, size)
    registry = get_registry()
    before = registry.snapshot()
    runtime = Runtime(
        paper_cluster(machines), application.codelet(), seed=seed, noise_sigma=noise
    )
    from repro.obs.regress import detect_slo_anomalies
    from repro.obs.slo import DEFAULT_SLO_SPEC, evaluate_slo
    from repro.obs.timeseries import ClusterSampler

    sampler = ClusterSampler(0.0)  # auto interval, ~makespan/128
    with profiling() as prof:
        result = runtime.run(
            make_policy("plb-hec"),
            application.total_units,
            application.default_initial_block_size(),
            sampler=sampler,
        )
    data.profile = prof.snapshot()
    delta = diff_snapshots(before, registry.snapshot())
    data.trace = result.trace
    if result.ledger is not None:
        data.ledger = result.ledger.to_dict()
    data.series = {
        "interval": sampler.interval or 0.0,
        "samples": sampler.samples_taken,
        "store": sampler.store.to_payload(),
    }
    data.slo = evaluate_slo(DEFAULT_SLO_SPEC, sampler.store, run_id=result.run_id)
    data.anomalies = detect_anomalies(
        phase_summary=result.trace.phase_summary(),
        metrics=delta,
        idle_fractions=result.idle_fractions,
    )
    data.anomalies += detect_slo_anomalies(data.slo)

    from repro.obs.critpath import analyze_trace
    from repro.obs.regress import detect_critpath_anomalies

    data.critpath = analyze_trace(result.trace)
    data.anomalies += detect_critpath_anomalies(data.critpath)

    # One recorded solve for the convergence section.
    models = list(
        fitted_models_for_scenario(
            app_name=app, size=size, num_machines=machines, seed=seed,
            noise_sigma=noise,
        ).values()
    )
    total_units = float(application.total_units)
    nlp = build_partition_nlp(models, total_units)
    x0 = initial_partition_point(models, total_units)
    solver = InteriorPointSolver(
        IPMOptions(
            tol=1e-8, max_iter=150, barrier_strategy="adaptive", record_history=True
        )
    )
    ipm_result = solver.solve(nlp, x0)
    data.convergence = analyze_convergence(ipm_result)
    data.convergence_history = list(ipm_result.history)

    if history is not None:
        data.bench_trend = history.entries(kind="bench", last=trend_last)
    return data


def chaos_dashboard_data(scorecard: Mapping[str, Any]) -> DashboardData:
    """A dashboard carrying only the resilience section.

    ``repro chaos --dashboard`` renders its scorecard without paying
    for the full sweep/convergence/profile collection; every other
    section shows its empty state.
    """
    return DashboardData(
        config=dict(scorecard.get("config", {})),
        generated_at=time.strftime("%Y-%m-%d %H:%M:%S %z"),
        host=host_fingerprint(),
        git_rev=git_rev(),
        resilience=dict(scorecard),
    )


# ----------------------------------------------------------------------
# SVG chart helpers (stdlib only)
# ----------------------------------------------------------------------

def _nice_ticks(lo: float, hi: float, n: int = 5) -> list[float]:
    """Round tick positions covering [lo, hi]."""
    if hi <= lo:
        hi = lo + 1.0
    raw = (hi - lo) / max(n - 1, 1)
    mag = 10 ** math.floor(math.log10(raw))
    for mult in (1, 2, 2.5, 5, 10):
        step = mult * mag
        if step >= raw:
            break
    start = math.floor(lo / step) * step
    ticks = []
    t = start
    while t <= hi + step * 0.5:
        ticks.append(round(t, 10))
        t += step
    return ticks


def _fmt_value(v: float) -> str:
    if v == 0:
        return "0"
    if abs(v) >= 1000:
        return f"{v:,.0f}"
    if abs(v) >= 1:
        return f"{v:.3g}"
    return f"{v:.2g}"


def _hbar_chart(
    rows: Sequence[tuple[str, float, str]],
    *,
    width: int = 860,
    unit: str = "s",
) -> str:
    """Horizontal bars: label, thin rounded bar, value at the tip."""
    if not rows:
        return "<p class='empty'>(no data)</p>"
    label_w, value_w, bar_h, row_h = 110, 86, 18, 30
    plot_w = width - label_w - value_w
    height = row_h * len(rows) + 6
    vmax = max(v for _, v, _ in rows) or 1.0
    parts = [
        f'<svg viewBox="0 0 {width} {height}" width="100%" role="img" '
        f'xmlns="http://www.w3.org/2000/svg">'
    ]
    for i, (label, value, color) in enumerate(rows):
        y = i * row_h + 4
        w = max(value / vmax * plot_w, 1.5)
        parts.append(
            f'<text x="{label_w - 8}" y="{y + bar_h - 5}" text-anchor="end" '
            f'class="axis-label">{escape(label)}</text>'
            f'<rect x="{label_w}" y="{y}" width="{w:.2f}" height="{bar_h}" '
            f'rx="4" fill="{color}">'
            f"<title>{escape(label)}: {value:.4f}{unit}</title></rect>"
            f'<text x="{label_w + w + 8:.2f}" y="{y + bar_h - 5}" '
            f'class="value-label">{_fmt_value(value)}{unit}</text>'
        )
    parts.append("</svg>")
    return "".join(parts)


def _grouped_columns(
    groups: Sequence[str],
    series: Sequence[tuple[str, str, Sequence[float]]],
    *,
    width: int = 860,
    height: int = 220,
    y_unit: str = "",
    percent: bool = False,
) -> str:
    """Grouped columns: one cluster per group, one column per series."""
    if not groups or not series:
        return "<p class='empty'>(no data)</p>"
    margin_l, margin_b, margin_t = 52, 26, 8
    plot_w, plot_h = width - margin_l - 10, height - margin_b - margin_t
    vmax = max((max(vals) for _, _, vals in series), default=1.0) or 1.0
    ticks = _nice_ticks(0.0, vmax)
    vmax = ticks[-1]
    group_w = plot_w / len(groups)
    col_w = min((group_w * 0.8 - 2 * (len(series) - 1)) / len(series), 24)
    cluster_w = col_w * len(series) + 2 * (len(series) - 1)

    def y(v: float) -> float:
        return margin_t + plot_h * (1.0 - v / vmax)

    parts = [
        f'<svg viewBox="0 0 {width} {height}" width="100%" role="img" '
        f'xmlns="http://www.w3.org/2000/svg">'
    ]
    for t in ticks:
        label = f"{t * 100:.0f}%" if percent else f"{_fmt_value(t)}{y_unit}"
        parts.append(
            f'<line x1="{margin_l}" y1="{y(t):.1f}" x2="{width - 10}" '
            f'y2="{y(t):.1f}" class="gridline"/>'
            f'<text x="{margin_l - 6}" y="{y(t) + 4:.1f}" text-anchor="end" '
            f'class="axis-label">{label}</text>'
        )
    for gi, group in enumerate(groups):
        x0 = margin_l + gi * group_w + (group_w - cluster_w) / 2
        parts.append(
            f'<text x="{margin_l + gi * group_w + group_w / 2:.1f}" '
            f'y="{height - 8}" text-anchor="middle" class="axis-label">'
            f"{escape(group)}</text>"
        )
        for si, (name, color, vals) in enumerate(series):
            v = float(vals[gi])
            x = x0 + si * (col_w + 2)
            h = max(plot_h * v / vmax, 1.0)
            label = f"{v * 100:.0f}%" if percent else f"{_fmt_value(v)}{y_unit}"
            parts.append(
                f'<rect x="{x:.2f}" y="{y(v):.1f}" width="{col_w:.2f}" '
                f'height="{h:.1f}" rx="3" fill="{color}">'
                f"<title>{escape(name)} on {escape(group)}: {label}</title></rect>"
            )
    parts.append(
        f'<line x1="{margin_l}" y1="{margin_t + plot_h}" x2="{width - 10}" '
        f'y2="{margin_t + plot_h}" class="axis-line"/></svg>'
    )
    return "".join(parts)


def _line_chart(
    series: Sequence[tuple[str, str, Sequence[tuple[float, float]]]],
    *,
    width: int = 860,
    height: int = 240,
    log_y: bool = False,
    y_unit: str = "",
    x_label: str = "",
) -> str:
    """2px lines with ringed >=8px markers, hairline grid, end labels."""
    series = [(n, c, [(x, y) for x, y in pts if y == y]) for n, c, pts in series]
    series = [(n, c, pts) for n, c, pts in series if pts]
    if not series:
        return "<p class='empty'>(no data)</p>"
    margin_l, margin_r, margin_b, margin_t = 64, 92, 28, 10
    plot_w, plot_h = width - margin_l - margin_r, height - margin_b - margin_t
    xs = [x for _, _, pts in series for x, _ in pts]
    ys = [y for _, _, pts in series for _, y in pts]
    x_lo, x_hi = min(xs), max(xs)
    if x_hi <= x_lo:
        x_hi = x_lo + 1.0
    if log_y:
        floor = min((y for y in ys if y > 0), default=1e-12)
        ys = [max(y, floor) for y in ys]
        lo_e = math.floor(math.log10(min(ys)))
        hi_e = math.ceil(math.log10(max(ys))) or lo_e + 1
        if hi_e == lo_e:
            hi_e += 1
        ticks = [10.0**e for e in range(lo_e, hi_e + 1)]

        def ty(v: float) -> float:
            frac = (math.log10(max(v, floor)) - lo_e) / (hi_e - lo_e)
            return margin_t + plot_h * (1.0 - frac)

        def tick_label(t: float) -> str:
            return f"1e{int(math.log10(t))}"
    else:
        ticks = _nice_ticks(min(min(ys), 0.0), max(ys))

        def ty(v: float) -> float:
            return margin_t + plot_h * (1.0 - (v - ticks[0]) / (ticks[-1] - ticks[0]))

        def tick_label(t: float) -> str:
            return f"{_fmt_value(t)}{y_unit}"

    def tx(v: float) -> float:
        return margin_l + (v - x_lo) / (x_hi - x_lo) * plot_w

    parts = [
        f'<svg viewBox="0 0 {width} {height}" width="100%" role="img" '
        f'xmlns="http://www.w3.org/2000/svg">'
    ]
    for t in ticks:
        parts.append(
            f'<line x1="{margin_l}" y1="{ty(t):.1f}" x2="{width - margin_r}" '
            f'y2="{ty(t):.1f}" class="gridline"/>'
            f'<text x="{margin_l - 6}" y="{ty(t) + 4:.1f}" text-anchor="end" '
            f'class="axis-label">{tick_label(t)}</text>'
        )
    for name, color, pts in series:
        path = " ".join(
            f"{'M' if i == 0 else 'L'}{tx(x):.1f},{ty(y):.1f}"
            for i, (x, y) in enumerate(pts)
        )
        parts.append(
            f'<path d="{path}" fill="none" stroke="{color}" stroke-width="2" '
            f'stroke-linejoin="round" stroke-linecap="round"/>'
        )
        for x, y in pts:
            parts.append(
                f'<circle cx="{tx(x):.1f}" cy="{ty(y):.1f}" r="4" fill="{color}" '
                f'stroke="var(--surface-1)" stroke-width="2">'
                f"<title>{escape(name)}: {y:.5g}{y_unit} (x={x:.6g})</title></circle>"
            )
        ex, ey = pts[-1]
        parts.append(
            f'<text x="{tx(ex) + 10:.1f}" y="{ty(ey) + 4:.1f}" '
            f'class="series-label">{escape(name)}</text>'
        )
    parts.append(
        f'<line x1="{margin_l}" y1="{margin_t + plot_h}" '
        f'x2="{width - margin_r}" y2="{margin_t + plot_h}" class="axis-line"/>'
    )
    if x_label:
        parts.append(
            f'<text x="{margin_l + plot_w / 2:.0f}" y="{height - 6}" '
            f'text-anchor="middle" class="axis-label">{escape(x_label)}</text>'
        )
    parts.append("</svg>")
    return "".join(parts)


def _scatter_chart(
    series: Sequence[tuple[str, str, Sequence[tuple[float, float]]]],
    *,
    width: int = 860,
    height: int = 240,
    unit: str = "s",
) -> str:
    """Predicted-vs-observed scatter with an identity diagonal.

    Points on the dashed ``y = x`` line are perfect predictions; above
    it the model over-predicted, below it under-predicted.
    """
    series = [
        (n, c, [(x, y) for x, y in pts if x == x and y == y])
        for n, c, pts in series
    ]
    series = [(n, c, pts) for n, c, pts in series if pts]
    if not series:
        return "<p class='empty'>(no scored predictions)</p>"
    margin_l, margin_r, margin_b, margin_t = 64, 16, 30, 10
    plot_w, plot_h = width - margin_l - margin_r, height - margin_b - margin_t
    values = [v for _, _, pts in series for p in pts for v in p]
    lo, hi = 0.0, max(values) * 1.05 or 1.0
    ticks = _nice_ticks(lo, hi)
    hi = ticks[-1]

    def sx(v: float) -> float:
        return margin_l + (v - lo) / (hi - lo) * plot_w

    def sy(v: float) -> float:
        return margin_t + plot_h * (1.0 - (v - lo) / (hi - lo))

    parts = [
        f'<svg viewBox="0 0 {width} {height}" width="100%" role="img" '
        f'xmlns="http://www.w3.org/2000/svg">'
    ]
    for t in ticks:
        parts.append(
            f'<line x1="{margin_l}" y1="{sy(t):.1f}" x2="{width - margin_r}" '
            f'y2="{sy(t):.1f}" class="gridline"/>'
            f'<text x="{margin_l - 6}" y="{sy(t) + 4:.1f}" text-anchor="end" '
            f'class="axis-label">{_fmt_value(t)}{unit}</text>'
            f'<text x="{sx(t):.1f}" y="{height - 12}" text-anchor="middle" '
            f'class="axis-label">{_fmt_value(t)}{unit}</text>'
        )
    parts.append(
        f'<line x1="{sx(lo):.1f}" y1="{sy(lo):.1f}" x2="{sx(hi):.1f}" '
        f'y2="{sy(hi):.1f}" class="axis-line" stroke-dasharray="4 4">'
        "<title>perfect prediction (y = x)</title></line>"
    )
    for name, color, pts in series:
        for obs, pred in pts:
            parts.append(
                f'<circle cx="{sx(obs):.1f}" cy="{sy(pred):.1f}" r="4" '
                f'fill="{color}" fill-opacity="0.75">'
                f"<title>{escape(name)}: predicted {pred:.4g}{unit}, "
                f"observed {obs:.4g}{unit}</title></circle>"
            )
    parts.append(
        f'<line x1="{margin_l}" y1="{margin_t + plot_h}" '
        f'x2="{width - margin_r}" y2="{margin_t + plot_h}" class="axis-line"/>'
        "</svg>"
    )
    return "".join(parts)


def _legend(entries: Sequence[tuple[str, str]]) -> str:
    keys = "".join(
        f'<span class="key"><span class="swatch" style="background:{color}">'
        f"</span>{escape(name)}</span>"
        for name, color in entries
    )
    return f'<div class="legend">{keys}</div>'


def _table(headers: Sequence[str], rows: Sequence[Sequence[Any]]) -> str:
    head = "".join(
        f'<th{" class=num" if i else ""}>{escape(str(h))}</th>'
        for i, h in enumerate(headers)
    )
    body = "".join(
        "<tr>"
        + "".join(
            f'<td{" class=num" if i else ""}>'
            + escape(_fmt_value(c) if isinstance(c, float) else str(c))
            + "</td>"
            for i, c in enumerate(row)
        )
        + "</tr>"
        for row in rows
    )
    return (
        "<details class='table-view'><summary>table view</summary>"
        f"<table><thead><tr>{head}</tr></thead><tbody>{body}</tbody></table></details>"
    )


# ----------------------------------------------------------------------
# sections
# ----------------------------------------------------------------------

def _policy_colors(names: Sequence[str]) -> dict[str, str]:
    """Fixed-order categorical assignment, one slot per policy."""
    return {
        name: f"var({_SERIES_VARS[i % len(_SERIES_VARS)]})"
        for i, name in enumerate(names)
    }


def _section_policies(point: SweepPoint | None) -> str:
    if point is None or not point.outcomes:
        return "<section><h2>Policy comparison</h2><p class='empty'>no sweep data</p></section>"
    names = list(point.outcomes)
    colors = _policy_colors(names)
    bars = [
        (name, point.outcomes[name].mean_makespan, colors[name]) for name in names
    ]
    devices = sorted(
        {d for name in names for d in point.outcomes[name].mean_idle()}
    )
    idle_series = [
        (
            name,
            colors[name],
            [point.outcomes[name].mean_idle().get(d, 0.0) for d in devices],
        )
        for name in names
    ]
    table = _table(
        ["policy", "mean makespan (s)", "std (s)", "speedup vs greedy", "rebalances"],
        [
            [
                name,
                point.outcomes[name].mean_makespan,
                point.outcomes[name].std_makespan,
                point.speedup_vs("greedy", name) if "greedy" in point.outcomes else float("nan"),
                sum(point.outcomes[name].rebalances),
            ]
            for name in names
        ],
    )
    return (
        "<section><h2>Policy comparison</h2>"
        f"<p class='sub'>{point.app_name}, size {point.size:,}, "
        f"{point.num_machines} machine(s) — mean makespan and per-device "
        "idleness over replications (the paper's Figs. 4-7 shape)</p>"
        + _legend([(n, colors[n]) for n in names])
        + _hbar_chart(bars, unit="s")
        + "<h2 style='margin-top:18px'>Idleness per device</h2>"
        + _grouped_columns(devices, idle_series, percent=True)
        + table
        + "</section>"
    )


def _section_trend(entries: Sequence[Mapping[str, Any]]) -> str:
    if not entries:
        return (
            "<section><h2>Benchmark trend</h2><p class='empty'>no history yet — "
            "run <code>python -m repro bench</code> to start recording "
            "(see docs/TUTORIAL.md §7)</p></section>"
        )
    laps = sorted({lap for e in entries for lap in e.get("laps", {})})
    lap_colors = {
        lap: f"var({_SERIES_VARS[i % len(_SERIES_VARS)]})"
        for i, lap in enumerate(laps)
    }
    series = []
    for lap in laps:
        pts = [
            (float(i), float(e["laps"][lap]))
            for i, e in enumerate(entries)
            if lap in e.get("laps", {})
        ]
        series.append((lap, lap_colors[lap], pts))
    rows = [
        [
            e.get("recorded_at", "?"),
            e.get("git_rev") or "-",
        ]
        + [e.get("laps", {}).get(lap, float("nan")) for lap in laps]
        for e in entries
    ]
    return (
        "<section><h2>Benchmark trend</h2>"
        f"<p class='sub'>{len(entries)} recorded <code>repro bench</code> "
        "entries from the history store (log scale; lower is better)</p>"
        + _legend([(lap, lap_colors[lap]) for lap in laps])
        + _line_chart(series, log_y=True, y_unit="s", x_label="history entry")
        + _table(["recorded", "git rev"] + laps, rows)
        + "</section>"
    )


def _section_convergence(
    report: ConvergenceReport | None, history: Sequence[Mapping[str, Any]]
) -> str:
    if report is None:
        return "<section><h2>Solver convergence</h2><p class='empty'>no recorded solve</p></section>"
    tiles = (
        ("iterations", f"{report.iterations}", ""),
        ("converged", "yes" if report.converged else "NO", ""),
        ("final KKT error", f"{report.final_kkt_error:.2e}", ""),
        ("restorations", f"{report.restorations}", ""),
        ("mean step length", f"{report.mean_step_length:.3f}", ""),
    )
    tiles_html = "".join(
        f'<div class="tile"><div class="label">{escape(label)}</div>'
        f'<div class="value">{escape(value)}</div>'
        f'<div class="hint">{escape(hint)}</div></div>'
        for label, value, hint in tiles
    )
    chart = ""
    if history:
        pts = [
            (float(h.get("iter", i)), float(h.get("kkt_error", float("nan"))))
            for i, h in enumerate(history)
        ]
        chart = _line_chart(
            [("KKT error", "var(--series-1)", pts)],
            log_y=True,
            x_label="interior-point iteration",
        )
    return (
        "<section><h2>Solver convergence</h2>"
        "<p class='sub'>one recorded interior-point block-partition solve "
        "for this scenario (Sec. V.a overhead statistic)</p>"
        f'<div class="tiles">{tiles_html}</div>' + chart + "</section>"
    )


def _section_gantt(trace: ExecutionTrace | None, policy: str) -> str:
    if trace is None:
        return "<section><h2>Execution timeline</h2><p class='empty'>no trace</p></section>"
    from repro.util.gantt import render_gantt_svg

    svg = render_gantt_svg(
        trace,
        phase_colors={
            "exec": "var(--series-1)",
            "probe": "var(--series-2)",
        },
    )
    return (
        "<section><h2>Execution timeline</h2>"
        f"<p class='sub'>per-worker Gantt strip of one {escape(policy)} run — "
        "probe (orange) vs execution (blue) intervals, dashed rules at "
        "rebalances</p>"
        + _legend([("exec", "var(--series-1)"), ("probe", "var(--series-2)")])
        + svg
        + "</section>"
    )


#: Fixed category palette for the makespan-attribution bars (status
#: colors carry the fault/retry buckets so they read as trouble).
_CRITPATH_COLORS = {
    "compute": "var(--series-1)",
    "transfer": "var(--series-2)",
    "idle": "var(--series-4)",
    "solver": "var(--series-3)",
    "retries": "var(--status-warning)",
    "fault_recovery": "var(--status-critical)",
    "rework": "var(--status-serious)",
}


def _section_critpath(critpath: Mapping[str, Any]) -> str:
    if not critpath or not critpath.get("path"):
        return (
            "<section><h2>Critical path</h2><p class='empty'>no "
            "critical-path analysis (run <code>repro why</code> for a "
            "standalone report)</p></section>"
        )
    from repro.obs.critpath import CATEGORIES, category_shares

    makespan = float(critpath.get("makespan", 0.0))
    shares = category_shares(critpath)
    categories = dict(critpath.get("categories", {}))
    bars = [
        (cat, float(categories.get(cat, 0.0)), _CRITPATH_COLORS[cat])
        for cat in CATEGORIES
        if float(categories.get(cat, 0.0)) > 0.0
    ]

    bounds = dict(critpath.get("bounds", {}))

    def headroom(bound: float) -> str:
        if makespan <= 0.0:
            return "—"
        return f"-{max(0.0, makespan - bound) / makespan * 100:.1f}%"

    tiles = [
        ("makespan", f"{makespan:.4f}s", "100% attributed"),
        (
            "zero transfer",
            f"{float(bounds.get('zero_transfer', 0.0)):.4f}s",
            f"{headroom(float(bounds.get('zero_transfer', 0.0)))} headroom",
        ),
        (
            "zero scheduler",
            f"{float(bounds.get('zero_scheduler', 0.0)):.4f}s",
            f"{headroom(float(bounds.get('zero_scheduler', 0.0)))} headroom",
        ),
        (
            "perfect balance",
            f"{float(bounds.get('perfect_balance', 0.0)):.4f}s",
            f"{headroom(float(bounds.get('perfect_balance', 0.0)))} headroom",
        ),
    ]
    tiles_html = "".join(
        f'<div class="tile"><div class="label">{escape(label)}</div>'
        f'<div class="value">{escape(value)}</div>'
        f'<div class="hint">{escape(hint)}</div></div>'
        for label, value, hint in tiles
    )

    bottleneck = dict(critpath.get("bottleneck", {}))
    speedup = dict(bounds.get("device_speedup", {}))
    factor = float(bounds.get("speedup_factor", 0.0)) or 2.0
    devices_on_path = dict(critpath.get("devices_on_path", {}))
    device_rows = [
        [
            device
            # a literal star: _table escapes cells, so an entity would
            # render as text
            + (" ★" if device == bottleneck.get("device") else ""),
            busy_s,
            f"{busy_s / makespan * 100:.1f}%" if makespan > 0 else "—",
            float(speedup.get(device, makespan)),
            headroom(float(speedup.get(device, makespan))),
        ]
        for device, busy_s in sorted(
            devices_on_path.items(), key=lambda kv: (-kv[1], kv[0])
        )
    ]
    device_table = _table(
        [
            "device",
            "on-path busy (s)",
            "share",
            f"makespan if {factor:g}&#215; faster (s)",
            "headroom",
        ],
        device_rows,
    )
    blame = list(critpath.get("decisions", []))
    blame_html = ""
    if blame:
        blame_html = _table(
            ["decision", "on-path tasks", "on-path busy (s)"],
            [[d["id"], d["tasks"], d["busy_s"]] for d in blame[:8]],
        )
    return (
        "<section><h2>Critical path</h2>"
        f"<p class='sub'>every makespan second attributed to one bucket "
        f"by a backward walk over the causality chain — "
        f"{int(critpath.get('path_tasks', 0))} task(s) on the path, "
        f"compute {shares['compute'] * 100:.1f}%, idle "
        f"{shares['idle'] * 100:.1f}%, solver "
        f"{shares['solver'] * 100:.1f}% (<code>repro why</code>)</p>"
        + _legend([(c, _CRITPATH_COLORS[c]) for c, _v, _col in bars])
        + _hbar_chart(bars, unit="s")
        + "<h2 style='margin-top:18px'>What-if lower bounds</h2>"
        "<p class='sub'>provable floors on this run's makespan under "
        "idealized conditions — how much a perfect interconnect, a free "
        "scheduler, or the &#931;work/&#931;speed oracle could save</p>"
        f'<div class="tiles">{tiles_html}</div>'
        + device_table
        + blame_html
        + "</section>"
    )


def _section_profile(profile: Mapping[str, Any]) -> str:
    if not profile or not profile.get("phases"):
        return (
            "<section><h2>CPU profile</h2><p class='empty'>no profile "
            "captured</p></section>"
        )
    from repro.obs.profiler import (
        hot_functions,
        phase_breakdown,
        render_flamegraph_svg,
    )

    breakdown = phase_breakdown(profile)
    tiles_html = "".join(
        f'<div class="tile"><div class="label">{escape(phase)}</div>'
        f'<div class="value">{d["share"] * 100:.1f}%</div>'
        f'<div class="hint">{d["self_s"] * 1e3:.1f}ms self</div></div>'
        for phase, d in breakdown.items()
    )
    flame = render_flamegraph_svg(
        profile, title="host CPU time by phase and call stack"
    )
    hot = hot_functions(profile, top=10)
    table = _table(
        ["function", "phase", "calls", "self (ms)", "cum (ms)", "share"],
        [
            [
                h["function"],
                h["phase"],
                h["calls"],
                h["self_s"] * 1e3,
                h["cum_s"] * 1e3,
                f"{h['share'] * 100:.1f}%",
            ]
            for h in hot
        ],
    )
    return (
        "<section><h2>CPU profile</h2>"
        "<p class='sub'>deterministic phase-attributed profile of the live "
        "PLB-HeC run above — where the scheduler's host time goes "
        "(probe/fit/solve/execute/overhead)</p>"
        f'<div class="tiles">{tiles_html}</div>'
        + flame
        + table
        + "</section>"
    )


def _section_anomalies(anomalies: Sequence[Anomaly]) -> str:
    if not anomalies:
        body = '<p class="allclear">&#10003; no anomalies detected</p>'
    else:
        body = "".join(
            f'<div class="anomaly"><span class="badge {a.severity}">'
            f'{"&#9888;" if a.severity == "warning" else "&#10007;"} '
            f"{escape(a.severity)}</span>"
            f"<span><strong>{escape(a.name)}</strong> — {escape(a.message)}</span></div>"
            for a in anomalies
        )
    return (
        "<section><h2>Anomalies</h2>"
        "<p class='sub'>built-in detectors over this run's telemetry "
        "(probe share, per-device R&#178;, load imbalance, IPM restorations)</p>"
        + body
        + "</section>"
    )


def _section_decisions(ledger: Mapping[str, Any]) -> str:
    if not ledger or not ledger.get("decisions"):
        return (
            "<section><h2>Scheduler decisions</h2><p class='empty'>no "
            "decision ledger (policy keeps none, or the run predates "
            "<code>repro explain</code>)</p></section>"
        )
    decisions = list(decision_rows(dict(ledger)))
    attribution = dict(ledger.get("attribution", {}))
    attributed = int(attribution.get("attributed", 0) or 0)
    unattributed = int(attribution.get("unattributed", 0) or 0)
    total_blocks = attributed + unattributed
    coverage = attributed / total_blocks if total_blocks else 0.0
    # the ledger lists fired fallback stages in decision order
    fallback_stages: dict[str, int] = {}
    for stage in ledger.get("fallback_stages", ()):
        fallback_stages[stage] = fallback_stages.get(stage, 0) + 1
    tiles = (
        ("decisions", str(len(decisions)), ""),
        (
            "blocks attributed",
            f"{coverage * 100:.0f}%",
            f"{attributed}/{total_blocks}",
        ),
        (
            "fallback decisions",
            str(sum(fallback_stages.values())),
            ", ".join(sorted(fallback_stages)) if fallback_stages else "none",
        ),
    )
    tiles_html = "".join(
        f'<div class="tile"><div class="label">{escape(label)}</div>'
        f'<div class="value">{escape(value)}</div>'
        f'<div class="hint">{escape(hint)}</div></div>'
        for label, value, hint in tiles
    )

    calibration = dict(ledger.get("calibration", {}))
    devices = sorted(calibration)
    device_colors = {
        d: f"var({_SERIES_VARS[i % len(_SERIES_VARS)]})"
        for i, d in enumerate(devices)
    }
    # calibration scatter: per-device mean predicted vs mean observed
    # block time of each decision the device executed under
    scatter_series = []
    for device in devices:
        pts = []
        for d in ledger.get("decisions", []):
            o = (d.get("observed") or {}).get(device) or {}
            pred, obs = o.get("mean_predicted_s"), o.get("mean_observed_s")
            if pred is not None and obs is not None:
                pts.append((float(obs), float(pred)))
        scatter_series.append((device, device_colors[device], pts))

    drift_series = [
        (
            device,
            device_colors[device],
            [
                (float(i), float(e))
                for i, e in enumerate(calibration[device].get("series", []))
            ],
        )
        for device in devices
    ]

    head = (
        "<tr><th>id</th><th>trigger</th><th>method</th>"
        "<th class=num>iterations</th><th class=num>KKT error</th>"
        "<th class=num>t (s)</th><th class=num>predicted (s)</th>"
        "<th class=num>blocks</th><th class=num>MAPE</th></tr>"
    )
    body_rows = []
    for row in decisions:
        method = escape(str(row["method"]))
        if row["fallback_stage"]:
            method += (
                f' <span class="badge warning">fallback: '
                f"{escape(str(row['fallback_stage']))}</span>"
            )
        kkt = row["kkt_error"]
        pred = row["predicted_time"]
        mape_v = row["mape"]
        body_rows.append(
            f"<tr><td>{escape(str(row['id']))}</td>"
            f"<td>{escape(str(row['trigger']))}</td>"
            f"<td>{method}</td>"
            f"<td class=num>{int(row['iterations'])}</td>"
            f"<td class=num>{f'{kkt:.2e}' if isinstance(kkt, float) else '—'}</td>"
            f"<td class=num>{float(row['t']):.4f}</td>"
            f"<td class=num>{f'{pred:.4f}' if isinstance(pred, float) else '—'}</td>"
            f"<td class=num>{int(row['blocks'])}</td>"
            f"<td class=num>{f'{mape_v * 100:.1f}%' if mape_v is not None else '—'}</td>"
            "</tr>"
        )
    table = (
        f"<table><thead>{head}</thead><tbody>{''.join(body_rows)}</tbody></table>"
    )

    cal_rows = [
        [
            device,
            int(calibration[device].get("blocks") or 0),
            int(calibration[device].get("skipped") or 0),
            f"{calibration[device]['mape'] * 100:.1f}%"
            if calibration[device].get("mape") is not None
            else "—",
            f"{calibration[device]['bias'] * 100:+.1f}%"
            if calibration[device].get("bias") is not None
            else "—",
            f"{calibration[device]['drift'] * 100:+.1f}%"
            if calibration[device].get("drift") is not None
            else "—",
        ]
        for device in devices
    ]
    cal_table = _table(
        ["device", "scored blocks", "skipped", "MAPE", "bias", "drift (EWMA)"],
        cal_rows,
    )
    return (
        "<section><h2>Scheduler decisions</h2>"
        "<p class='sub'>the decision ledger of the live PLB-HeC run above "
        "— every partition the scheduler committed to, what the solver "
        "reported, and how its block-time predictions calibrated against "
        "execution (<code>repro explain</code>)</p>"
        f'<div class="tiles">{tiles_html}</div>'
        + table
        + "<h2 style='margin-top:18px'>Prediction calibration</h2>"
        "<p class='sub'>per-device mean predicted vs observed block time "
        "per decision; the dashed diagonal is a perfect prediction</p>"
        + _legend([(d, device_colors[d]) for d in devices])
        + _scatter_chart(scatter_series)
        + "<h2 style='margin-top:18px'>Calibration drift</h2>"
        "<p class='sub'>signed relative error of each scored block in "
        "completion order — a trend away from zero is model drift</p>"
        + _line_chart(drift_series, x_label="scored block (completion order)")
        + cal_table
        + "</section>"
    )


def _spark_svg(
    values: Sequence[float],
    *,
    color: str = "var(--series-1)",
    width: int = 240,
    height: int = 32,
    lo: float | None = None,
    hi: float | None = None,
    title: str = "",
) -> str:
    """A small inline-SVG sparkline (polyline, no axes)."""
    if not values:
        return "<span class='empty'>(no samples)</span>"
    vlo = min(values) if lo is None else lo
    vhi = max(values) if hi is None else hi
    if vhi <= vlo:
        vhi = vlo + 1.0
    n = len(values)
    pts = " ".join(
        f"{(i / max(n - 1, 1)) * (width - 4) + 2:.1f},"
        f"{(1.0 - (v - vlo) / (vhi - vlo)) * (height - 6) + 3:.1f}"
        for i, v in enumerate(values)
    )
    hover = f"<title>{escape(title)}</title>" if title else ""
    return (
        f'<svg viewBox="0 0 {width} {height}" width="{width}" '
        f'height="{height}" role="img" xmlns="http://www.w3.org/2000/svg">'
        f'<polyline points="{pts}" fill="none" stroke="{color}" '
        f'stroke-width="1.5" stroke-linejoin="round" '
        f'stroke-linecap="round"/>{hover}</svg>'
    )


def _section_telemetry(series: Mapping[str, Any], slo: Mapping[str, Any]) -> str:
    header = "<section><h2>Cluster telemetry</h2>"
    if not series or not series.get("store"):
        return (
            header + "<p class='empty'>no sampled series (attach the "
            "virtual-time sampler with <code>repro run "
            "--sample-interval 0</code>)</p></section>"
        )
    from repro.obs.timeseries import store_from_payload

    store = store_from_payload(series["store"])
    utils = store.matching("device_util")
    rows = []
    for key in sorted(utils):
        device = key.split("device=", 1)[-1].rstrip("}")
        values = [v for _, v in utils[key]]
        mean_util = sum(values) / len(values) if values else 0.0
        rows.append(
            f"<tr><td>{escape(device)}</td>"
            f"<td>{_spark_svg(values, lo=0.0, hi=1.0, title=f'{device} utilization')}</td>"
            f"<td class=num>{mean_util * 100:.1f}%</td></tr>"
        )
    cluster_rows = []
    for name, color in (
        ("backlog_units", "var(--series-2)"),
        ("goodput_units_per_s", "var(--series-3)"),
        ("fairness", "var(--series-4)"),
    ):
        values = [v for _, v in store.points(name)]
        if not values:
            continue
        lo, hi = (0.0, 1.0) if name == "fairness" else (0.0, None)
        cluster_rows.append(
            f"<tr><td>{escape(name)}</td>"
            f"<td>{_spark_svg(values, color=color, lo=lo, hi=hi, title=name)}</td>"
            f"<td class=num>{_fmt_value(values[-1])}</td></tr>"
        )
    tables = (
        "<table><thead><tr><th>device</th><th>utilization</th>"
        "<th class=num>mean</th></tr></thead>"
        f"<tbody>{''.join(rows)}</tbody></table>"
        "<table><thead><tr><th>series</th><th>timeline</th>"
        "<th class=num>last</th></tr></thead>"
        f"<tbody>{''.join(cluster_rows)}</tbody></table>"
    )
    slo_html = ""
    if slo:
        tiles = []
        for row in slo.get("objectives", []):
            verdict = row.get("verdict", "-")
            badge = {
                "pass": "<span class='allclear'>&#10003; pass</span>",
                "fail": "<span class='badge critical'>&#10007; fail</span>",
                "no-data": "<span class='empty'>no data</span>",
            }.get(verdict, escape(verdict))
            burn = row.get("burn_rate")
            hint = f"burn {burn:.2f}&#215;" if burn is not None else escape(
                str(row.get("expr", ""))
            )
            measured = row.get("measured")
            shown = (
                _fmt_value(float(measured)) if measured is not None else "—"
            )
            tiles.append(
                f'<div class="tile"><div class="label">'
                f"{escape(str(row.get('name')))}</div>"
                f'<div class="value">{shown}</div>'
                f'<div class="hint">{hint} {badge}</div></div>'
            )
        status = (
            '<p class="allclear">&#10003; all objectives met</p>'
            if slo.get("ok")
            else (
                f"<p class='sub'>{int(slo.get('violations', 0))} "
                "objective(s) violated</p>"
            )
        )
        slo_html = (
            "<h2 style='margin-top:18px'>SLO burn-down</h2>"
            f"<p class='sub'>spec <code>{escape(str(slo.get('spec', '-')))}"
            "</code> evaluated over the recorded series</p>"
            + status
            + f'<div class="tiles">{"".join(tiles)}</div>'
        )
    return (
        header
        + f"<p class='sub'>{int(series.get('samples', 0))} virtual-time "
        f"samples at {series.get('interval', 0.0):.3g}s interval from the "
        "live PLB-HeC run — per-device utilization and cluster health "
        "(<code>repro top</code> shows the same series in a terminal)</p>"
        + tables
        + slo_html
        + "</section>"
    )


def _section_resilience(scorecard: Mapping[str, Any]) -> str:
    if not scorecard:
        return (
            "<section><h2>Resilience</h2><p class='empty'>no chaos "
            "campaign scorecard (run <code>repro chaos</code>)</p></section>"
        )
    total = scorecard.get("total_runs", 0)
    survived = scorecard.get("survived_runs", 0)
    violations = scorecard.get("total_violations", 0)
    ok = scorecard.get("all_invariants_ok", False)
    verdict = (
        '<p class="allclear">&#10003; all invariants satisfied</p>'
        if ok
        else (
            f'<div class="anomaly"><span class="badge error">&#10007; '
            f"error</span><span><strong>invariants</strong> — "
            f"{violations} violation(s) across the campaign</span></div>"
        )
    )
    tiles = (
        f'<div class="tiles"><div class="tile"><div class="label">runs</div>'
        f'<div class="value">{int(total)}</div></div>'
        f'<div class="tile"><div class="label">survived</div>'
        f'<div class="value">{int(survived)}</div></div>'
        f'<div class="tile"><div class="label">violations</div>'
        f'<div class="value">{int(violations)}</div></div></div>'
    )
    rows = []
    for name, agg in dict(scorecard.get("policies", {})).items():
        mean_deg = agg.get("mean_degradation")
        max_deg = agg.get("max_degradation")
        lag = agg.get("mean_recovery_lag")
        attribution = agg.get("mean_attribution") or {}

        def share(category: str) -> str:
            value = attribution.get(category)
            return f"{value * 100:.1f}%" if value is not None else "—"

        rows.append(
            [
                name,
                f"{agg.get('survived', 0)}/{agg.get('runs', 0)}",
                f"{agg.get('survival_rate', 0.0) * 100:.0f}%",
                f"{mean_deg:.3f}&#215;" if mean_deg is not None else "—",
                f"{max_deg:.3f}&#215;" if max_deg is not None else "—",
                f"{lag * 1e3:.1f}ms" if lag is not None else "—",
                agg.get("violations", 0),
                share("fault_recovery"),
                share("rework"),
                share("idle"),
            ]
        )
    table = _table(
        [
            "policy",
            "survived",
            "rate",
            "mean degradation",
            "max degradation",
            "mean recovery lag",
            "violations",
            "fault recovery",
            "rework",
            "idle",
        ],
        rows,
    )
    return (
        "<section><h2>Resilience</h2>"
        "<p class='sub'>chaos-campaign scorecard: per-policy survival and "
        "makespan degradation under randomized fault schedules "
        "(failures, transients, perturbations, transfer faults)</p>"
        + verdict
        + tiles
        + table
        + "</section>"
    )


def render_dashboard(data: DashboardData) -> str:
    """Render the full dashboard document as a string."""
    cfg = data.config
    hero = ""
    if data.point is not None and {"greedy", "plb-hec"} <= set(data.point.outcomes):
        speedup = data.point.speedup_vs("greedy", "plb-hec")
        hero = (
            '<div class="hero"><div><div class="tile"><div class="label">'
            "PLB-HeC speedup vs greedy</div>"
            f'<div class="value">{speedup:.2f}&#215;</div></div></div></div>'
        )
    host = data.host
    meta_bits = [
        f"{escape(str(cfg.get('app', '?')))} size {cfg.get('size', '?')}",
        f"{cfg.get('machines', '?')} machine(s)",
        f"{cfg.get('replications', '?')} replication(s)",
        escape(str(host.get("platform", "?"))),
        f"python {escape(str(host.get('python', '?')))}",
        f"{host.get('cpu_count', '?')} cpu(s)",
    ]
    if data.git_rev:
        meta_bits.append(f"rev {escape(data.git_rev)}")
    meta_bits.append(escape(data.generated_at))
    sections = [
        _section_policies(data.point),
        _section_trend(data.bench_trend),
        _section_convergence(data.convergence, data.convergence_history),
        _section_gantt(data.trace, data.trace_policy),
        _section_critpath(data.critpath),
        _section_telemetry(data.series, data.slo),
        _section_decisions(data.ledger),
        _section_profile(data.profile),
        _section_resilience(data.resilience),
        _section_anomalies(data.anomalies),
    ]
    return (
        "<!DOCTYPE html>\n<html lang='en'><head><meta charset='utf-8'>"
        "<meta name='viewport' content='width=device-width, initial-scale=1'>"
        "<title>PLB-HeC observability dashboard</title>"
        f"<style>{_CSS}</style></head><body>"
        "<header class='page'><h1>PLB-HeC observability dashboard</h1>"
        f"<p class='meta'>{' &#183; '.join(meta_bits)}</p>" + hero + "</header>"
        "<main>" + "".join(sections) + "</main>"
        "<footer>generated by <code>python -m repro dashboard</code> — "
        "self-contained, no external requests</footer></body></html>\n"
    )


def write_dashboard(path: str | Path, data: DashboardData) -> Path:
    """Render and atomically write the dashboard file."""
    target = Path(path)
    html = render_dashboard(data)
    tmp = target.with_suffix(target.suffix + ".tmp")
    tmp.write_text(html, encoding="utf-8")
    tmp.replace(target)
    return target
