"""Cross-cutting observability: metrics, events, traces, profiles.

The legs every experiment stands on:

* :mod:`repro.obs.metrics` — a zero-dependency metrics registry
  (counters, gauges, histograms with labels) instrumented through the
  DES engine, the PLB-HeC policy, the interior-point solver and the
  parallel sweep engine;
* :mod:`repro.obs.events` — structured span/instant events with run-id
  correlation, emitted through the ``repro`` logging hierarchy
  (JSON-lines with ``--log-format json``);
* :mod:`repro.obs.trace_export` — Chrome trace-event / Perfetto export
  of :class:`~repro.sim.trace.ExecutionTrace` objects
  (``python -m repro trace ... --out trace.json``);
* :mod:`repro.obs.profiler` — deterministic phase-attributed CPU
  profiling (``repro profile``, ``--profile`` on run/bench/compare):
  collapsed stacks, flamegraph SVGs, hot-function tables;
* :mod:`repro.obs.report` — the per-run :class:`RunReport` manifest
  cached alongside sweep results;
* :mod:`repro.obs.history` — the append-only JSONL benchmark/run
  history store (``.repro_history/``, ``REPRO_HISTORY``);
* :mod:`repro.obs.regress` — the statistical perf-regression gate
  (``repro bench --check``), built-in anomaly detectors, and the
  hot-path drift detector over recorded profiles;
* :mod:`repro.obs.ledger` — the scheduler decision ledger: one record
  per partition decision (trigger, model state, solver outcome,
  allocation, predictions) with per-block attribution, serialized as
  the ``explain.jsonl`` artifact behind ``repro explain``;
* :mod:`repro.obs.calibration` — pure predicted-vs-observed math
  (MAPE, signed bias, EWMA drift) the ledger accumulates per device;
* :mod:`repro.obs.timeseries` — the virtual-time cluster sampler and
  bounded time-series store behind ``series.jsonl`` and ``repro top``
  (per-device utilization, backlog, imbalance, Jain's fairness);
* :mod:`repro.obs.slo` — declarative service-level objectives over the
  recorded series (``p95(device_idle_frac) < 0.2``), error budgets with
  burn rates, and the ``alert.slo.*`` alert rules (``repro run --slo``);
* :mod:`repro.obs.critpath` — critical-path extraction and 100 %
  makespan attribution with what-if lower bounds (``repro why``,
  ``critpath.json``);
* :mod:`repro.obs.dashboard` — the self-contained HTML dashboard
  (``repro dashboard``).
"""

from repro.obs.calibration import (
    DeviceCalibration,
    ewma_drift,
    mape,
    relative_errors,
    signed_bias,
    summarize_calibration,
)
from repro.obs.critpath import (
    CATEGORIES,
    CRITPATH_SCHEMA,
    analyze_trace,
    category_shares,
    payload_from_analysis,
    validate_critpath,
    write_critpath,
)
from repro.obs.dashboard import (
    DashboardData,
    collect_dashboard_data,
    render_dashboard,
    write_dashboard,
)
from repro.obs.events import (
    EventLog,
    attach_jsonl_sink,
    current_run_id,
    detach_sink,
    new_run_id,
    push_run_id,
)
from repro.obs.history import (
    HistoryStore,
    bench_entry,
    calibration_entry,
    fingerprint_hash,
    git_rev,
    host_fingerprint,
    run_entry,
    validate_entry,
)
from repro.obs.ledger import (
    DecisionLedger,
    DecisionRecord,
    decision_rows,
    read_explain,
    validate_explain,
    write_explain,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    diff_snapshots,
    get_registry,
    merge_snapshots,
    reset_registry,
    set_registry,
    snapshot_to_prometheus,
)
from repro.obs.profiler import (
    PROFILE_PHASES,
    PhaseProfiler,
    active_profiler,
    collapsed_stacks,
    hot_functions,
    merge_profiles,
    phase_breakdown,
    profile_phase,
    profiling,
    render_flamegraph_svg,
    switch_phase,
    write_collapsed,
    write_flamegraph,
)
from repro.obs.regress import (
    Anomaly,
    BenchCheck,
    Comparison,
    check_bench_report,
    compare_samples,
    detect_anomalies,
    detect_critpath_anomalies,
    detect_hot_path_drift,
    detect_report_anomalies,
    detect_slo_anomalies,
    mann_whitney_u,
    overall_verdict,
)
from repro.obs.report import RunReport, config_hash
from repro.obs.slo import (
    DEFAULT_SLO_SPEC,
    SLO_REPORT_SCHEMA,
    SLOObjective,
    SLOSpec,
    emit_slo_alerts,
    evaluate_slo,
    load_slo_spec,
    slo_alerts,
    spec_from_dict,
    validate_slo_report,
    write_slo_report,
)
from repro.obs.timeseries import (
    SERIES_SCHEMA,
    ClusterSampler,
    TimeSeriesStore,
    jain_fairness,
    publish_windowed_gauges,
    read_series,
    render_top,
    sparkline,
    store_from_payload,
    validate_series,
    write_series,
)
from repro.obs.trace_export import (
    profile_to_events,
    trace_to_chrome,
    trace_to_events,
    validate_chrome_trace,
    write_chrome_trace,
)

__all__ = [
    "Anomaly",
    "BenchCheck",
    "CATEGORIES",
    "CRITPATH_SCHEMA",
    "ClusterSampler",
    "Comparison",
    "Counter",
    "DEFAULT_SLO_SPEC",
    "DashboardData",
    "DecisionLedger",
    "DecisionRecord",
    "DeviceCalibration",
    "EventLog",
    "Gauge",
    "Histogram",
    "HistoryStore",
    "MetricsRegistry",
    "PROFILE_PHASES",
    "PhaseProfiler",
    "RunReport",
    "SERIES_SCHEMA",
    "SLOObjective",
    "SLOSpec",
    "SLO_REPORT_SCHEMA",
    "TimeSeriesStore",
    "active_profiler",
    "analyze_trace",
    "attach_jsonl_sink",
    "bench_entry",
    "calibration_entry",
    "category_shares",
    "check_bench_report",
    "collapsed_stacks",
    "collect_dashboard_data",
    "compare_samples",
    "config_hash",
    "current_run_id",
    "decision_rows",
    "detach_sink",
    "detect_anomalies",
    "detect_critpath_anomalies",
    "detect_hot_path_drift",
    "detect_report_anomalies",
    "detect_slo_anomalies",
    "diff_snapshots",
    "emit_slo_alerts",
    "evaluate_slo",
    "ewma_drift",
    "fingerprint_hash",
    "get_registry",
    "git_rev",
    "hot_functions",
    "host_fingerprint",
    "jain_fairness",
    "load_slo_spec",
    "mann_whitney_u",
    "mape",
    "merge_profiles",
    "merge_snapshots",
    "new_run_id",
    "overall_verdict",
    "payload_from_analysis",
    "phase_breakdown",
    "profile_phase",
    "profile_to_events",
    "profiling",
    "publish_windowed_gauges",
    "push_run_id",
    "read_explain",
    "read_series",
    "relative_errors",
    "render_dashboard",
    "render_flamegraph_svg",
    "render_top",
    "reset_registry",
    "run_entry",
    "set_registry",
    "signed_bias",
    "slo_alerts",
    "snapshot_to_prometheus",
    "sparkline",
    "spec_from_dict",
    "store_from_payload",
    "summarize_calibration",
    "switch_phase",
    "trace_to_chrome",
    "trace_to_events",
    "validate_chrome_trace",
    "validate_critpath",
    "validate_entry",
    "validate_explain",
    "validate_series",
    "validate_slo_report",
    "write_chrome_trace",
    "write_collapsed",
    "write_critpath",
    "write_dashboard",
    "write_explain",
    "write_flamegraph",
    "write_series",
    "write_slo_report",
]
