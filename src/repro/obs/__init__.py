"""Cross-cutting observability: metrics, structured events, trace export.

The three legs every experiment stands on:

* :mod:`repro.obs.metrics` — a zero-dependency metrics registry
  (counters, gauges, histograms with labels) instrumented through the
  DES engine, the PLB-HeC policy, the interior-point solver and the
  parallel sweep engine;
* :mod:`repro.obs.events` — structured span/instant events with run-id
  correlation, emitted through the ``repro`` logging hierarchy
  (JSON-lines with ``--log-format json``);
* :mod:`repro.obs.trace_export` — Chrome trace-event / Perfetto export
  of :class:`~repro.sim.trace.ExecutionTrace` objects
  (``python -m repro trace ... --out trace.json``);
* :mod:`repro.obs.report` — the per-run :class:`RunReport` manifest
  cached alongside sweep results.
"""

from repro.obs.events import EventLog, current_run_id, new_run_id, push_run_id
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    diff_snapshots,
    get_registry,
    merge_snapshots,
    reset_registry,
    set_registry,
)
from repro.obs.report import RunReport, config_hash
from repro.obs.trace_export import (
    trace_to_chrome,
    trace_to_events,
    validate_chrome_trace,
    write_chrome_trace,
)

__all__ = [
    "Counter",
    "EventLog",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "RunReport",
    "config_hash",
    "current_run_id",
    "diff_snapshots",
    "get_registry",
    "merge_snapshots",
    "new_run_id",
    "push_run_id",
    "reset_registry",
    "set_registry",
    "trace_to_chrome",
    "trace_to_events",
    "validate_chrome_trace",
    "write_chrome_trace",
]
