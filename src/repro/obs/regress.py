"""Statistical performance-regression gate and anomaly detectors.

Point-comparing two wall-clock numbers cannot tell a regression from
scheduler jitter; the gate here compares the *distribution* of matched
history samples (same config hash, same host fingerprint — see
:mod:`repro.obs.history`) against the current measurement and issues one
of four documented verdicts:

``regressed``
    The change is statistically significant *and* practically
    significant (relative change beyond the threshold) in the slow
    direction.  CI exit code 2.
``improved``
    Same evidence bar, fast direction.  Exit code 0.
``no-change``
    Enough data, no significant difference.  Exit code 0.
``insufficient-data``
    Too few matched baseline samples — including the case where history
    exists but only from *other* hosts, which is never compared (exit
    code 0; CI stays neutral, it does not guess).

Significance is two-layered: with at least four samples on both sides a
two-sided Mann-Whitney U test (normal approximation with tie
correction) at ``alpha``; with fewer, a conservative threshold rule that
also requires the change to exceed 1.5x the baseline's own relative
spread, so a noisy baseline cannot trip the gate.

The second half of the module is a set of built-in **anomaly
detectors** over a run's telemetry (phase summary, metrics snapshot,
idle fractions) encoding the paper's own health criteria: probing must
stay a small fraction of the application data (Sec. IV), per-device
model fits should reach R2 >= 0.7 before the solver trusts them,
interior-point restorations should be rare, and the whole point of
PLB-HeC is a *balanced* load (Fig. 7).  Each finding is emitted as a
structured warning through the event log and rendered by the
dashboard.
"""

from __future__ import annotations

import logging
import math
from dataclasses import dataclass, field
from typing import Any, Mapping, Sequence

from repro.obs.events import EventLog
from repro.obs.history import HistoryStore, fingerprint_hash
from repro.obs.report import config_hash

__all__ = [
    "VERDICTS",
    "EXIT_CODES",
    "Comparison",
    "BenchCheck",
    "Anomaly",
    "mann_whitney_u",
    "compare_samples",
    "overall_verdict",
    "check_bench_report",
    "detect_anomalies",
    "detect_hot_path_drift",
    "detect_report_anomalies",
    "detect_slo_anomalies",
    "detect_critpath_anomalies",
]

_events = EventLog("obs.regress", level=logging.WARNING)

#: The documented verdicts, in severity order.
VERDICTS = ("regressed", "improved", "no-change", "insufficient-data")

#: Process exit code per overall verdict (CI gates on non-zero).
EXIT_CODES = {
    "regressed": 2,
    "improved": 0,
    "no-change": 0,
    "insufficient-data": 0,
}

#: Fewest baseline samples a comparison will accept.
MIN_BASELINE_SAMPLES = 2

#: Both sides need this many samples before Mann-Whitney is meaningful.
_MW_MIN_SAMPLES = 4


def _median(values: Sequence[float]) -> float:
    ordered = sorted(values)
    n = len(ordered)
    mid = n // 2
    return ordered[mid] if n % 2 else 0.5 * (ordered[mid - 1] + ordered[mid])


def mann_whitney_u(a: Sequence[float], b: Sequence[float]) -> tuple[float, float]:
    """Two-sided Mann-Whitney U test (normal approximation, tie-corrected).

    Returns ``(U, p_value)`` where ``U`` is the statistic of sample
    ``a``.  The normal approximation is adequate from about four samples
    per side, which is where the gate starts using it.
    """
    n1, n2 = len(a), len(b)
    if n1 == 0 or n2 == 0:
        raise ValueError("mann_whitney_u needs non-empty samples")
    pooled = sorted((v, 0) for v in a)
    pooled += sorted((v, 1) for v in b)
    pooled.sort(key=lambda t: t[0])
    # midranks with tie groups
    ranks = [0.0] * len(pooled)
    tie_term = 0.0
    i = 0
    while i < len(pooled):
        j = i
        while j + 1 < len(pooled) and pooled[j + 1][0] == pooled[i][0]:
            j += 1
        rank = (i + j) / 2.0 + 1.0
        for k in range(i, j + 1):
            ranks[k] = rank
        t = j - i + 1
        if t > 1:
            tie_term += t**3 - t
        i = j + 1
    r1 = sum(rank for rank, (_, which) in zip(ranks, pooled) if which == 0)
    u1 = r1 - n1 * (n1 + 1) / 2.0
    mu = n1 * n2 / 2.0
    n = n1 + n2
    sigma_sq = n1 * n2 / 12.0 * ((n + 1) - tie_term / (n * (n - 1)))
    if sigma_sq <= 0.0:  # all values identical
        return (u1, 1.0)
    z = (u1 - mu - (0.5 if u1 > mu else -0.5 if u1 < mu else 0.0)) / math.sqrt(sigma_sq)
    p = 2.0 * 0.5 * math.erfc(abs(z) / math.sqrt(2.0))
    return (u1, min(p, 1.0))


@dataclass(frozen=True)
class Comparison:
    """Verdict of one metric's baseline-vs-current comparison."""

    metric: str
    verdict: str
    rel_change: float | None
    p_value: float | None
    baseline_n: int
    current_n: int
    reason: str = ""


def compare_samples(
    baseline: Sequence[float],
    current: Sequence[float],
    *,
    metric: str = "metric",
    rel_threshold: float = 0.30,
    alpha: float = 0.05,
    min_baseline: int = MIN_BASELINE_SAMPLES,
) -> Comparison:
    """Compare current measurements against a matched baseline.

    Parameters
    ----------
    baseline / current:
        Samples of the same metric under the same config on the same
        host.  Lower is better (wall-clock semantics).
    rel_threshold:
        Practical-significance floor on ``|median change| / baseline``.
    alpha:
        Mann-Whitney significance level (used when both sides have
        at least four samples).
    min_baseline:
        Below this many baseline samples the verdict is
        ``insufficient-data``.
    """
    baseline = [float(v) for v in baseline]
    current = [float(v) for v in current]
    if len(baseline) < min_baseline or not current:
        return Comparison(
            metric=metric,
            verdict="insufficient-data",
            rel_change=None,
            p_value=None,
            baseline_n=len(baseline),
            current_n=len(current),
            reason=f"need >= {min_baseline} baseline and >= 1 current sample(s)",
        )
    med_b = _median(baseline)
    med_c = _median(current)
    if med_b <= 0.0:
        return Comparison(
            metric=metric,
            verdict="insufficient-data",
            rel_change=None,
            p_value=None,
            baseline_n=len(baseline),
            current_n=len(current),
            reason="baseline median is not positive",
        )
    rel_change = (med_c - med_b) / med_b
    p_value: float | None = None
    if len(baseline) >= _MW_MIN_SAMPLES and len(current) >= _MW_MIN_SAMPLES:
        _, p_value = mann_whitney_u(baseline, current)
        significant = p_value < alpha
        reason = f"mann-whitney p={p_value:.4f}"
    else:
        # Conservative small-sample rule: the shift must clear the
        # baseline's own relative spread with margin, so two noisy
        # baseline entries cannot flag noise as a regression.
        noise_band = (max(baseline) - min(baseline)) / med_b
        significant = abs(rel_change) > 1.5 * noise_band
        reason = f"threshold rule (baseline spread {noise_band:.1%})"
    practical = abs(rel_change) > rel_threshold
    if significant and practical:
        verdict = "regressed" if rel_change > 0 else "improved"
    else:
        verdict = "no-change"
    return Comparison(
        metric=metric,
        verdict=verdict,
        rel_change=rel_change,
        p_value=p_value,
        baseline_n=len(baseline),
        current_n=len(current),
        reason=reason,
    )


def overall_verdict(comparisons: Sequence[Comparison]) -> str:
    """Fold per-metric verdicts into one: worst wins, data permitting."""
    verdicts = {c.verdict for c in comparisons}
    if "regressed" in verdicts:
        return "regressed"
    if not verdicts or verdicts == {"insufficient-data"}:
        return "insufficient-data"
    if "improved" in verdicts:
        return "improved"
    return "no-change"


@dataclass(frozen=True)
class BenchCheck:
    """The regression gate's full answer for one bench report."""

    verdict: str
    comparisons: tuple[Comparison, ...]
    baseline_entries: int
    reason: str = ""

    @property
    def exit_code(self) -> int:
        return EXIT_CODES[self.verdict]


#: Laps whose baseline median is below this many seconds are too
#: noise-dominated for relative comparison (a warm-cache lap of ~2ms
#: can jitter 60% on a loaded host without meaning anything).
MIN_MEASURABLE_S = 0.05


def check_bench_report(
    report: Mapping[str, Any],
    baseline: HistoryStore,
    *,
    rel_threshold: float = 0.50,
    alpha: float = 0.05,
    min_baseline: int = MIN_BASELINE_SAMPLES,
    last: int | None = 20,
    min_abs_s: float = MIN_MEASURABLE_S,
) -> BenchCheck:
    """Gate one ``repro bench`` report against a history store.

    Matching is strict: only bench entries with the same config hash
    (grid + job count) *and* the same host fingerprint hash are pooled
    as baseline.  Entries from other hosts are counted and reported but
    never compared — a different machine is a different experiment.

    ``rel_threshold`` defaults higher than :func:`compare_samples`'s
    generic 0.30: single-shot wall clocks on shared machines routinely
    swing 30-40% without any code change, and a real regression worth
    gating on (the acceptance case is a 2x slowdown, +100%) clears 0.50
    easily.  Laps whose baseline median is under ``min_abs_s`` are
    reported but never gated — relative change of a 2ms measurement is
    noise by construction.

    Profiling is excluded on both sides: a report measured under
    ``--profile`` carries tracer overhead and is never gated (verdict
    ``insufficient-data``), and baseline entries tagged ``profiled``
    are never pooled as comparison samples.
    """
    meta = dict(report.get("meta", {}))
    if meta.get("profiled"):
        comparisons = tuple(
            Comparison(
                metric=lap,
                verdict="insufficient-data",
                rel_change=None,
                p_value=None,
                baseline_n=0,
                current_n=1,
                reason="measured under the profiler; tracer overhead is not comparable",
            )
            for lap in report["timings_s"]
        )
        return BenchCheck(
            verdict="insufficient-data",
            comparisons=comparisons,
            baseline_entries=0,
            reason=(
                "report was measured with --profile; profiled laps carry "
                "deterministic-tracer overhead and never gate"
            ),
        )
    cfg = {"grid": meta.get("grid", {}), "jobs": meta.get("jobs")}
    cfg_hash = config_hash(cfg)
    host = fingerprint_hash(report.get("host"))
    matched = baseline.entries(
        kind="bench",
        config_hash=cfg_hash,
        host_hash=host,
        last=last,
        profiled=False,
    )
    any_config = baseline.entries(kind="bench", config_hash=cfg_hash, profiled=False)
    if not matched and any_config:
        comparisons = tuple(
            Comparison(
                metric=lap,
                verdict="insufficient-data",
                rel_change=None,
                p_value=None,
                baseline_n=0,
                current_n=1,
                reason="host fingerprint mismatch",
            )
            for lap in report["timings_s"]
        )
        return BenchCheck(
            verdict="insufficient-data",
            comparisons=comparisons,
            baseline_entries=0,
            reason=(
                f"{len(any_config)} baseline entr{'y' if len(any_config) == 1 else 'ies'} "
                "exist for this config but none from this host; refusing "
                "cross-host comparison"
            ),
        )
    comparisons = []
    for lap, value in report["timings_s"].items():
        samples = [float(e["laps"][lap]) for e in matched if lap in e.get("laps", {})]
        if samples and _median(samples) < min_abs_s:
            comparisons.append(
                Comparison(
                    metric=lap,
                    verdict="no-change",
                    rel_change=None,
                    p_value=None,
                    baseline_n=len(samples),
                    current_n=1,
                    reason=(
                        f"baseline median {_median(samples) * 1e3:.1f}ms is "
                        f"below the {min_abs_s * 1e3:.0f}ms measurement floor"
                    ),
                )
            )
            continue
        comparisons.append(
            compare_samples(
                samples,
                [float(value)],
                metric=lap,
                rel_threshold=rel_threshold,
                alpha=alpha,
                min_baseline=min_baseline,
            )
        )
    verdict = overall_verdict(comparisons)
    check = BenchCheck(
        verdict=verdict,
        comparisons=tuple(comparisons),
        baseline_entries=len(matched),
        reason="" if matched else "no matched baseline entries",
    )
    if verdict == "regressed":
        worst = max(
            (c for c in comparisons if c.verdict == "regressed"),
            key=lambda c: c.rel_change or 0.0,
        )
        _events.instant(
            "regression.detected",
            metric=worst.metric,
            rel_change=round(worst.rel_change or 0.0, 4),
            baseline_n=worst.baseline_n,
        )
    return check


# ----------------------------------------------------------------------
# anomaly detectors
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class Anomaly:
    """One telemetry finding; severity is ``"warning"`` or ``"critical"``."""

    name: str
    severity: str
    message: str
    value: float
    threshold: float
    context: dict = field(default_factory=dict)


#: Probing beyond this share of the application data defeats the point
#: of a short modeling phase (paper Sec. IV: ~10% observed).
PROBE_SHARE_THRESHOLD = 0.20

#: The policy's own trust floor for per-device fits.
R2_THRESHOLD = 0.7

#: Max-minus-min idle fraction beyond this is an imbalanced run.
IMBALANCE_THRESHOLD = 0.25

#: Feasibility restorations per interior-point solve beyond this are a
#: numerically struggling solver.
RESTORATION_RATE_THRESHOLD = 1.0

#: A per-device signed prediction bias beyond this magnitude means the
#: model systematically mis-sizes blocks for that device.
CALIBRATION_BIAS_THRESHOLD = 0.15

#: Per-device mean absolute prediction error beyond this means the
#: equal-finish-time partition is built on predictions that are wrong
#: by a quarter on average.
CALIBRATION_MAPE_THRESHOLD = 0.25


def _gauge_by_device(metrics: Mapping[str, Any], name: str) -> dict[str, float]:
    """Collect ``name{device=...}`` gauges into ``{device: value}``."""
    out: dict[str, float] = {}
    prefix = name + "{"
    for key, value in metrics.get("gauges", {}).items():
        if key.startswith(prefix) and "device=" in key:
            label = key[len(prefix):-1]
            for part in label.split(","):
                if part.startswith("device="):
                    out[part[len("device="):]] = float(value)
    return out


def detect_anomalies(
    *,
    phase_summary: Mapping[str, Any] | None = None,
    metrics: Mapping[str, Any] | None = None,
    idle_fractions: Mapping[str, float] | None = None,
    probe_share_threshold: float = PROBE_SHARE_THRESHOLD,
    r2_threshold: float = R2_THRESHOLD,
    imbalance_threshold: float = IMBALANCE_THRESHOLD,
    restoration_rate_threshold: float = RESTORATION_RATE_THRESHOLD,
    calibration_bias_threshold: float = CALIBRATION_BIAS_THRESHOLD,
    calibration_mape_threshold: float = CALIBRATION_MAPE_THRESHOLD,
    emit: bool = True,
) -> list[Anomaly]:
    """Run every built-in detector over one run's telemetry.

    Each finding is also emitted as a structured ``anomaly.<name>``
    warning through the event log (suppress with ``emit=False``), so
    JSON-lines consumers see them without rendering a dashboard.
    """
    findings: list[Anomaly] = []
    phase_summary = phase_summary or {}
    metrics = metrics or {}

    probe_share = float(phase_summary.get("probe", {}).get("unit_share", 0.0))
    if probe_share > probe_share_threshold:
        findings.append(
            Anomaly(
                name="probe-share",
                severity="warning",
                message=(
                    f"probe phase consumed {probe_share:.1%} of the application "
                    f"data (threshold {probe_share_threshold:.0%}); the modeling "
                    "phase is not amortising"
                ),
                value=probe_share,
                threshold=probe_share_threshold,
            )
        )

    r2 = _gauge_by_device(metrics, "plbhec.r2")
    weak = {d: v for d, v in r2.items() if v < r2_threshold}
    if weak:
        worst_dev = min(weak, key=weak.get)
        findings.append(
            Anomaly(
                name="low-r2",
                severity="warning",
                message=(
                    f"{len(weak)} device model(s) below R2 {r2_threshold} at solve "
                    f"time (worst: {worst_dev} at {weak[worst_dev]:.3f}); the "
                    "partition solver is extrapolating from a poor fit"
                ),
                value=weak[worst_dev],
                threshold=r2_threshold,
                context={"devices": dict(sorted(weak.items()))},
            )
        )

    if idle_fractions:
        values = [float(v) for v in idle_fractions.values()]
        spread = max(values) - min(values)
        if spread > imbalance_threshold:
            laziest = max(idle_fractions, key=idle_fractions.get)
            findings.append(
                Anomaly(
                    name="load-imbalance",
                    severity="critical",
                    message=(
                        f"idle-fraction spread {spread:.1%} across devices "
                        f"(threshold {imbalance_threshold:.0%}); {laziest} sat "
                        f"idle {idle_fractions[laziest]:.1%} of the run"
                    ),
                    value=spread,
                    threshold=imbalance_threshold,
                    context={"idle_fractions": dict(idle_fractions)},
                )
            )

    counters = metrics.get("counters", {})
    solves = float(counters.get("ipm.solves", 0.0))
    restorations = float(counters.get("ipm.restorations", 0.0))
    if solves > 0:
        rate = restorations / solves
        if rate > restoration_rate_threshold:
            findings.append(
                Anomaly(
                    name="ipm-restorations",
                    severity="warning",
                    message=(
                        f"{restorations:.0f} feasibility restorations over "
                        f"{solves:.0f} interior-point solve(s) "
                        f"({rate:.2f}/solve, threshold "
                        f"{restoration_rate_threshold:.1f}); the solver is "
                        "repeatedly leaving the feasible region"
                    ),
                    value=rate,
                    threshold=restoration_rate_threshold,
                )
            )

    bias = _gauge_by_device(metrics, "plbhec.calibration.bias")
    biased = {d: v for d, v in bias.items() if abs(v) > calibration_bias_threshold}
    if biased:
        worst_dev = max(biased, key=lambda d: abs(biased[d]))
        direction = "over" if biased[worst_dev] > 0 else "under"
        findings.append(
            Anomaly(
                name="calibration-bias",
                severity="warning",
                message=(
                    f"{len(biased)} device model(s) with systematic prediction "
                    f"bias beyond ±{calibration_bias_threshold:.0%} (worst: "
                    f"{worst_dev} {direction}-predicts by "
                    f"{abs(biased[worst_dev]):.1%}); block sizes for these "
                    "devices are consistently mis-targeted"
                ),
                value=biased[worst_dev],
                threshold=calibration_bias_threshold,
                context={"devices": dict(sorted(biased.items()))},
            )
        )

    mape = _gauge_by_device(metrics, "plbhec.calibration.mape")
    noisy = {d: v for d, v in mape.items() if v > calibration_mape_threshold}
    if noisy:
        worst_dev = max(noisy, key=noisy.get)
        findings.append(
            Anomaly(
                name="calibration-mape",
                severity="warning",
                message=(
                    f"{len(noisy)} device model(s) with mean absolute "
                    f"prediction error beyond {calibration_mape_threshold:.0%} "
                    f"(worst: {worst_dev} at {noisy[worst_dev]:.1%}); the "
                    "equal-finish-time partition rests on unreliable "
                    "predictions for these devices"
                ),
                value=noisy[worst_dev],
                threshold=calibration_mape_threshold,
                context={"devices": dict(sorted(noisy.items()))},
            )
        )

    if emit:
        for finding in findings:
            _events.instant(
                f"anomaly.{finding.name}",
                severity=finding.severity,
                value=round(finding.value, 6),
                threshold=finding.threshold,
                message=finding.message,
            )
    return findings


#: A hot function's share of total profiled time moving by more than
#: this many percentage points against matched history is drift worth
#: flagging (5pp absorbs tracer jitter; a real hot-path regression —
#: a new O(n^2) loop, a lost cache — moves double digits).
HOT_PATH_DRIFT_PP = 5.0


def detect_hot_path_drift(
    hot_functions: Sequence[Mapping[str, Any]],
    baseline_shares: Sequence[Mapping[str, float]],
    *,
    drift_pp: float = HOT_PATH_DRIFT_PP,
    min_samples: int = MIN_BASELINE_SAMPLES,
    emit: bool = True,
) -> list[Anomaly]:
    """Flag hot functions whose time share drifted against history.

    Parameters
    ----------
    hot_functions:
        The current profile's top-N table (rows with ``function`` and
        ``share``, as produced by :func:`repro.obs.profiler.hot_functions`
        and recorded into history by ``repro bench --profile``).
    baseline_shares:
        One ``{function: share}`` map per matched historical profile —
        :meth:`repro.obs.history.HistoryStore.hot_function_shares`
        applies the same config-hash + host-fingerprint matching rules
        as the wall-clock gate, so call it with those filters.
    drift_pp:
        Flag when ``|current - median(baseline)|`` exceeds this many
        percentage points.  A function absent from a baseline sample
        counts as 0% there (new hot paths are drift too).
    min_samples:
        Fewer matched baseline profiles than this yields no findings —
        the detector stays neutral rather than guessing.

    Findings are advisory (``severity="warning"``): profiled laps never
    drive the exit-code gate, drift tells you *where* to look when the
    unprofiled gate says something got slower.
    """
    if len(baseline_shares) < min_samples:
        return []
    findings: list[Anomaly] = []
    for row in hot_functions:
        function = str(row.get("function", ""))
        if not function:
            continue
        current = float(row.get("share", 0.0))
        history = sorted(float(s.get(function, 0.0)) for s in baseline_shares)
        base = _median(history)
        delta_pp = (current - base) * 100.0
        if abs(delta_pp) > drift_pp:
            direction = "grew" if delta_pp > 0 else "shrank"
            findings.append(
                Anomaly(
                    name="hot-path-drift",
                    severity="warning",
                    message=(
                        f"{function} {direction} from {base:.1%} to "
                        f"{current:.1%} of profiled time "
                        f"({delta_pp:+.1f}pp, threshold "
                        f"±{drift_pp:.1f}pp over "
                        f"{len(baseline_shares)} matched profiles)"
                    ),
                    value=delta_pp,
                    threshold=drift_pp,
                    context={
                        "function": function,
                        "current_share": current,
                        "baseline_median": base,
                        "samples": len(baseline_shares),
                    },
                )
            )
    if emit:
        for finding in findings:
            _events.instant(
                "anomaly.hot-path-drift",
                severity=finding.severity,
                value=round(finding.value, 3),
                threshold=finding.threshold,
                message=finding.message,
            )
    return findings


def detect_report_anomalies(report: Mapping[str, Any], **kwargs: Any) -> list[Anomaly]:
    """Run the detectors over a RunReport dict (as stored by sweeps)."""
    return detect_anomalies(
        phase_summary=report.get("phase_summary", {}),
        metrics=report.get("metrics", {}),
        **kwargs,
    )


def detect_slo_anomalies(
    report: Mapping[str, Any], *, emit: bool = True
) -> list[Anomaly]:
    """Convert failing SLO objectives into :class:`Anomaly` findings.

    ``report`` is the plain dict produced by
    :func:`repro.obs.slo.evaluate_slo` (taken as a mapping here so this
    module stays import-cycle-free).  Each ``"fail"`` row becomes one
    finding named ``slo.<objective>`` carrying the objective's own
    severity; ``"no-data"`` rows are skipped — absence of telemetry is
    surfaced by the SLO report itself, not escalated as an anomaly.
    Findings are emitted as ``anomaly.slo.<objective>`` instants unless
    ``emit=False``, matching the other detectors.
    """
    findings: list[Anomaly] = []
    for row in report.get("objectives", []):
        if row.get("verdict") != "fail":
            continue
        name = str(row.get("name", "objective"))
        measured = row.get("measured")
        threshold = float(row.get("threshold", 0.0))
        budget = row.get("budget")
        if budget is not None:
            detail = (
                f"violating fraction "
                f"{float(row.get('violating_fraction') or 0.0):.1%} exceeds "
                f"error budget {float(budget):.1%}"
            )
        else:
            detail = (
                f"measured {measured} violates "
                f"{row.get('agg')}({row.get('series')}) "
                f"{row.get('op')} {threshold}"
            )
        findings.append(
            Anomaly(
                name=f"slo.{name}",
                severity=str(row.get("severity", "critical")),
                message=f"SLO {name} failed: {row.get('expr')} — {detail}",
                value=float(measured) if measured is not None else 0.0,
                threshold=threshold,
                context={
                    "expr": row.get("expr"),
                    "budget": budget,
                    "burn_rate": row.get("burn_rate"),
                    "first_violation_t": row.get("first_violation_t"),
                },
            )
        )
    if emit:
        for finding in findings:
            _events.instant(
                f"anomaly.{finding.name}",
                severity=finding.severity,
                value=round(finding.value, 6),
                threshold=finding.threshold,
                message=finding.message,
            )
    return findings


#: Device idle beyond this share of the critical path means the
#: bottleneck device repeatedly waits for nothing in particular — a
#: balanced PLB-HeC run keeps its slowest device saturated, so a large
#: idle share signals the partition (not the hardware) is the problem.
CRITPATH_IDLE_SHARE_THRESHOLD = 0.20

#: Solver stalls beyond this share of the critical path mean the
#: scheduler charges more than it saves; the paper's overhead-honesty
#: argument only holds while solve time stays a small tax on compute.
CRITPATH_SOLVER_SHARE_THRESHOLD = 0.25

#: A critical-path category share moving by more than this many
#: percentage points against matched history is drift worth flagging
#: (same rationale as HOT_PATH_DRIFT_PP: jitter stays in single
#: digits, structural shifts — a new barrier, a lost overlap — don't).
CRITPATH_DRIFT_PP = 5.0


def detect_critpath_anomalies(
    analysis: Mapping[str, Any],
    baseline_shares: Sequence[Mapping[str, float]] = (),
    *,
    idle_share_threshold: float = CRITPATH_IDLE_SHARE_THRESHOLD,
    solver_share_threshold: float = CRITPATH_SOLVER_SHARE_THRESHOLD,
    drift_pp: float = CRITPATH_DRIFT_PP,
    min_samples: int = MIN_BASELINE_SAMPLES,
    emit: bool = True,
) -> list[Anomaly]:
    """Flag makespan-attribution pathologies in a critical-path analysis.

    ``analysis`` is the dict produced by
    :func:`repro.obs.critpath.analyze_trace` (or its cached
    ``payload_from_analysis`` form — only ``makespan`` and
    ``categories`` are read, so either works; taken as a mapping to
    keep this module import-cycle-free).

    Two absolute checks fire without any history: device idle share
    above ``idle_share_threshold`` (``critpath.idle-share``) and solver
    share above ``solver_share_threshold`` (``critpath.solver-share``).
    When ``baseline_shares`` carries at least ``min_samples`` prior
    ``{category: share}`` maps, every category whose share moved more
    than ``drift_pp`` percentage points off the baseline median is
    flagged as ``critpath.drift`` — the same neutral-below-min-samples,
    median-compare contract as :func:`detect_hot_path_drift`.

    Findings are advisory (``severity="warning"``): attribution tells
    you *where* the makespan went, the wall-clock gate decides whether
    that is a regression.
    """
    findings: list[Anomaly] = []
    makespan = float(analysis.get("makespan", 0.0))
    categories = dict(analysis.get("categories", {}))
    if makespan <= 0.0:
        return findings
    shares = {k: float(v) / makespan for k, v in categories.items()}

    idle_share = shares.get("idle", 0.0)
    if idle_share > idle_share_threshold:
        findings.append(
            Anomaly(
                name="critpath.idle-share",
                severity="warning",
                message=(
                    f"device idle is {idle_share:.1%} of the critical "
                    f"path (threshold {idle_share_threshold:.0%}); the "
                    "bottleneck device starves — the partition leaves "
                    "headroom the solver should have claimed"
                ),
                value=idle_share,
                threshold=idle_share_threshold,
                context={"categories": {k: round(v, 6) for k, v in shares.items()}},
            )
        )

    solver_share = shares.get("solver", 0.0)
    if solver_share > solver_share_threshold:
        findings.append(
            Anomaly(
                name="critpath.solver-share",
                severity="warning",
                message=(
                    f"solver stalls are {solver_share:.1%} of the "
                    f"critical path (threshold "
                    f"{solver_share_threshold:.0%}); scheduling overhead "
                    "is eating the balance it buys — consider a larger "
                    "block size or fewer rebalances"
                ),
                value=solver_share,
                threshold=solver_share_threshold,
                context={"categories": {k: round(v, 6) for k, v in shares.items()}},
            )
        )

    if len(baseline_shares) >= min_samples:
        for category in sorted(shares):
            current = shares[category]
            history = sorted(
                float(s.get(category, 0.0)) for s in baseline_shares
            )
            base = _median(history)
            delta_pp = (current - base) * 100.0
            if abs(delta_pp) > drift_pp:
                direction = "grew" if delta_pp > 0 else "shrank"
                findings.append(
                    Anomaly(
                        name="critpath.drift",
                        severity="warning",
                        message=(
                            f"critical-path {category} {direction} from "
                            f"{base:.1%} to {current:.1%} of makespan "
                            f"({delta_pp:+.1f}pp, threshold "
                            f"±{drift_pp:.1f}pp over "
                            f"{len(baseline_shares)} matched runs)"
                        ),
                        value=delta_pp,
                        threshold=drift_pp,
                        context={
                            "category": category,
                            "current_share": current,
                            "baseline_median": base,
                            "samples": len(baseline_shares),
                        },
                    )
                )

    if emit:
        for finding in findings:
            _events.instant(
                f"anomaly.{finding.name}",
                severity=finding.severity,
                value=round(finding.value, 6),
                threshold=finding.threshold,
                message=finding.message,
            )
    return findings
