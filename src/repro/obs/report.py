"""Per-run telemetry manifest (:class:`RunReport`).

One run = one manifest: what configuration ran (and its content hash),
what the run did (makespan, rebalances, phase summary) and what the
instruments measured while it ran (a metrics-registry snapshot).  The
sweep engine stores the manifest inside every cache entry, so a
cache-served run carries *identical* telemetry to a freshly executed
one — warm-cache figure regeneration stays fully observable.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field

from repro.errors import ConfigurationError

__all__ = ["RunReport", "config_hash"]

_SCHEMA = 1


def config_hash(config: dict) -> str:
    """SHA-256 over the canonical JSON of a run's configuration."""
    blob = json.dumps(config, sort_keys=True, default=str)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class RunReport:
    """The telemetry manifest of one completed run.

    Attributes
    ----------
    run_id:
        Correlation id shared with the structured event log.
    config:
        The run-determining inputs (app, size, machines, policy, seed,
        noise, overhead mode).
    config_hash:
        SHA-256 of the canonical JSON of ``config``.
    makespan / rebalances / solver_overhead_s:
        Headline outcomes.
    phase_summary:
        :meth:`~repro.sim.trace.ExecutionTrace.phase_summary` output.
    metrics:
        Metrics-registry snapshot (or per-run delta) captured at run
        completion.
    """

    run_id: str
    config: dict
    config_hash: str
    makespan: float
    rebalances: int
    solver_overhead_s: float
    phase_summary: dict = field(default_factory=dict)
    metrics: dict = field(default_factory=dict)
    schema: int = _SCHEMA

    @classmethod
    def build(
        cls,
        *,
        config: dict,
        makespan: float,
        rebalances: int,
        solver_overhead_s: float,
        phase_summary: dict | None = None,
        metrics: dict | None = None,
        run_id: str | None = None,
    ) -> "RunReport":
        """Assemble a report, deriving the hash and a default run id."""
        digest = config_hash(config)
        return cls(
            run_id=run_id or f"run-{digest[:12]}",
            config=dict(config),
            config_hash=digest,
            makespan=float(makespan),
            rebalances=int(rebalances),
            solver_overhead_s=float(solver_overhead_s),
            phase_summary=dict(phase_summary or {}),
            metrics=dict(metrics or {}),
        )

    def to_dict(self) -> dict:
        """JSON-compatible plain-data form."""
        return {
            "schema": self.schema,
            "run_id": self.run_id,
            "config": self.config,
            "config_hash": self.config_hash,
            "makespan": self.makespan,
            "rebalances": self.rebalances,
            "solver_overhead_s": self.solver_overhead_s,
            "phase_summary": self.phase_summary,
            "metrics": self.metrics,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "RunReport":
        """Rebuild a report serialised by :meth:`to_dict`.

        Verifies the config hash: a manifest whose config no longer
        matches its recorded hash has been tampered with or corrupted.
        """
        try:
            report = cls(
                run_id=str(data["run_id"]),
                config=dict(data["config"]),
                config_hash=str(data["config_hash"]),
                makespan=float(data["makespan"]),
                rebalances=int(data["rebalances"]),
                solver_overhead_s=float(data["solver_overhead_s"]),
                phase_summary=dict(data.get("phase_summary", {})),
                metrics=dict(data.get("metrics", {})),
                schema=int(data.get("schema", _SCHEMA)),
            )
        except KeyError as exc:
            raise ConfigurationError(f"run report missing key: {exc}") from exc
        if config_hash(report.config) != report.config_hash:
            raise ConfigurationError(
                "run report config hash mismatch (corrupted manifest?)"
            )
        return report
