"""Zero-dependency metrics registry: counters, gauges, histograms.

The paper's entire evaluation (Sec. V) is instrumentation — probe
rounds, rebalance counts, solver iterations, idleness — and every later
performance or robustness change to this repo needs those signals
visible without attaching a debugger.  This module provides the
substrate: a :class:`MetricsRegistry` of named instruments with
optional labels, safe to update from multiple threads, whose
:meth:`~MetricsRegistry.snapshot` is a plain JSON-compatible dict that
crosses process boundaries (the parallel sweep engine ships per-run
snapshots back from its pool workers).

Design choices, deliberately boring:

* **No dependencies.**  Prometheus/OpenTelemetry clients are heavy and
  unavailable in the hermetic test environment; the snapshot dict is
  trivially convertible to either later.
* **One lock per registry.**  Instruments share their registry's lock;
  updates are a dict lookup plus a float add, so contention is
  negligible at this library's event rates (the DES hot path batches
  its counts and flushes once per run — see :mod:`repro.sim.engine`).
* **Bounded label cardinality.**  A typo'd label value must not grow
  the registry without bound: past ``max_label_sets`` distinct label
  combinations per metric name, updates fold into a single overflow
  series (labelled ``{"overflow": "true"}``) and a warning is logged
  once per metric.

Usage::

    from repro.obs.metrics import get_registry

    reg = get_registry()
    reg.inc("plbhec.rebalances")
    reg.set_gauge("plbhec.r2", 0.93, device="A.gpu0")
    reg.observe("sweep.job_wall_s", 0.41)
    reg.snapshot()["counters"]["plbhec.rebalances"]  # -> 1.0
"""

from __future__ import annotations

import threading
from typing import Mapping

from repro.errors import ConfigurationError
from repro.util.logging import get_logger

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_registry",
    "set_registry",
    "reset_registry",
    "diff_snapshots",
    "merge_snapshots",
    "snapshot_to_prometheus",
]

_log = get_logger("obs.metrics")

#: Snapshot key of a labelled series: ``name{k=v,k2=v2}`` (sorted keys).
_OVERFLOW_LABELS = {"overflow": "true"}


def _series_key(name: str, labels: Mapping[str, str] | None) -> str:
    if not labels:
        return name
    inner = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
    return f"{name}{{{inner}}}"


class Counter:
    """A monotonically increasing value."""

    __slots__ = ("_lock", "value")

    def __init__(self, lock: threading.RLock) -> None:
        self._lock = lock
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be >= 0) to the counter."""
        if amount < 0.0:
            raise ConfigurationError(f"counter increment must be >= 0, got {amount}")
        with self._lock:
            self.value += amount


class Gauge:
    """A value that can go up and down (last write wins)."""

    __slots__ = ("_lock", "value")

    def __init__(self, lock: threading.RLock) -> None:
        self._lock = lock
        self.value = 0.0

    def set(self, value: float) -> None:
        """Set the gauge to ``value``."""
        with self._lock:
            self.value = float(value)

    def add(self, delta: float) -> None:
        """Shift the gauge by ``delta`` (negative allowed)."""
        with self._lock:
            self.value += float(delta)


class Histogram:
    """A bounded-reservoir histogram with exact percentiles.

    Keeps the most recent ``max_samples`` observations (plus running
    count/sum/min/max over *all* observations), so percentile queries
    reflect recent behaviour while the totals stay exact.  The default
    reservoir (8192) is far above anything a single run produces.
    """

    __slots__ = ("_lock", "_samples", "max_samples", "count", "total", "min", "max")

    def __init__(self, lock: threading.RLock, *, max_samples: int = 8192) -> None:
        if max_samples < 1:
            raise ConfigurationError("max_samples must be >= 1")
        self._lock = lock
        self._samples: list[float] = []
        self.max_samples = max_samples
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def observe(self, value: float) -> None:
        """Record one observation."""
        value = float(value)
        with self._lock:
            self.count += 1
            self.total += value
            self.min = min(self.min, value)
            self.max = max(self.max, value)
            self._samples.append(value)
            if len(self._samples) > self.max_samples:
                del self._samples[0 : len(self._samples) - self.max_samples]

    def percentile(self, q: float) -> float:
        """The ``q``-th percentile (0..100) over the retained reservoir.

        Linear interpolation between closest ranks; 0.0 on an empty
        histogram.
        """
        if not 0.0 <= q <= 100.0:
            raise ConfigurationError(f"percentile must be in [0, 100], got {q}")
        with self._lock:
            if not self._samples:
                return 0.0
            ordered = sorted(self._samples)
        rank = (q / 100.0) * (len(ordered) - 1)
        lo = int(rank)
        hi = min(lo + 1, len(ordered) - 1)
        frac = rank - lo
        return ordered[lo] * (1.0 - frac) + ordered[hi] * frac

    def summary(self) -> dict[str, float]:
        """count/sum/min/max/mean plus p50/p90/p99."""
        with self._lock:
            if self.count == 0:
                return {"count": 0, "sum": 0.0}
            return {
                "count": self.count,
                "sum": self.total,
                "min": self.min,
                "max": self.max,
                "mean": self.total / self.count,
                "p50": self.percentile(50.0),
                "p90": self.percentile(90.0),
                "p99": self.percentile(99.0),
            }


class MetricsRegistry:
    """A named collection of counters, gauges and histograms.

    Instruments are created on first use (``counter("x")`` is
    get-or-create), so instrumented modules never need registration
    boilerplate and an un-exercised code path simply contributes no
    series.
    """

    def __init__(self, *, max_label_sets: int = 128) -> None:
        if max_label_sets < 1:
            raise ConfigurationError("max_label_sets must be >= 1")
        self._lock = threading.RLock()
        self.max_label_sets = max_label_sets
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}
        self._label_sets: dict[str, int] = {}  # metric name -> distinct series
        self._overflowed: set[str] = set()

    # ------------------------------------------------------------------
    # instrument access
    # ------------------------------------------------------------------
    def _key(self, name: str, labels: Mapping[str, str] | None, table: dict) -> str:
        """Resolve the series key, folding runaway cardinality."""
        if not name:
            raise ConfigurationError("metric name must be non-empty")
        key = _series_key(name, labels)
        if labels and key not in table:
            seen = self._label_sets.get(name, 0)
            if seen >= self.max_label_sets:
                if name not in self._overflowed:
                    self._overflowed.add(name)
                    _log.warning(
                        "metric %r exceeded %d label sets; folding further "
                        "series into an overflow bucket",
                        name,
                        self.max_label_sets,
                    )
                return _series_key(name, _OVERFLOW_LABELS)
            self._label_sets[name] = seen + 1
        return key

    def counter(self, name: str, **labels: str) -> Counter:
        """Get or create the counter for ``name`` + label set."""
        with self._lock:
            key = self._key(name, labels, self._counters)
            inst = self._counters.get(key)
            if inst is None:
                inst = self._counters[key] = Counter(self._lock)
            return inst

    def gauge(self, name: str, **labels: str) -> Gauge:
        """Get or create the gauge for ``name`` + label set."""
        with self._lock:
            key = self._key(name, labels, self._gauges)
            inst = self._gauges.get(key)
            if inst is None:
                inst = self._gauges[key] = Gauge(self._lock)
            return inst

    def histogram(self, name: str, **labels: str) -> Histogram:
        """Get or create the histogram for ``name`` + label set."""
        with self._lock:
            key = self._key(name, labels, self._histograms)
            inst = self._histograms.get(key)
            if inst is None:
                inst = self._histograms[key] = Histogram(self._lock)
            return inst

    # ------------------------------------------------------------------
    # convenience updates (the forms instrumented code actually calls)
    # ------------------------------------------------------------------
    def inc(self, name: str, amount: float = 1.0, **labels: str) -> None:
        """Increment the named counter."""
        self.counter(name, **labels).inc(amount)

    def set_gauge(self, name: str, value: float, **labels: str) -> None:
        """Set the named gauge."""
        self.gauge(name, **labels).set(value)

    def observe(self, name: str, value: float, **labels: str) -> None:
        """Record one observation into the named histogram."""
        self.histogram(name, **labels).observe(value)

    # ------------------------------------------------------------------
    # snapshots
    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """A JSON-compatible point-in-time view of every series.

        Returns ``{"counters": {key: value}, "gauges": {key: value},
        "histograms": {key: summary}}``.  The result is a deep plain-data
        copy: safe to serialise, diff, or ship across processes.
        """
        with self._lock:
            return {
                "counters": {k: c.value for k, c in self._counters.items()},
                "gauges": {k: g.value for k, g in self._gauges.items()},
                "histograms": {k: h.summary() for k, h in self._histograms.items()},
            }

    def to_prometheus(self) -> str:
        """The registry in Prometheus text exposition format.

        See :func:`snapshot_to_prometheus` for the mapping rules.
        """
        return snapshot_to_prometheus(self.snapshot())

    def reset(self) -> None:
        """Drop every series (used by tests and per-run isolation)."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()
            self._label_sets.clear()
            self._overflowed.clear()


def diff_snapshots(before: dict, after: dict) -> dict:
    """Per-run metrics from two global snapshots (after minus before).

    Counters and histogram counts/sums subtract; gauges take the
    ``after`` value (a gauge is a level, not a flow).  Series absent
    from ``before`` pass through unchanged.  Used by pool workers that
    process several runs in one process: the delta isolates one run's
    contribution.
    """
    out = {"counters": {}, "gauges": dict(after.get("gauges", {})), "histograms": {}}
    before_c = before.get("counters", {})
    for key, value in after.get("counters", {}).items():
        delta = value - before_c.get(key, 0.0)
        if delta != 0.0:
            out["counters"][key] = delta
    before_h = before.get("histograms", {})
    for key, summ in after.get("histograms", {}).items():
        prev = before_h.get(key)
        if prev is None:
            out["histograms"][key] = dict(summ)
            continue
        count = summ.get("count", 0) - prev.get("count", 0)
        if count <= 0:
            continue
        delta = {"count": count, "sum": summ.get("sum", 0.0) - prev.get("sum", 0.0)}
        # min/max/percentiles are not subtractable; keep the after-view
        for stat in ("min", "max", "mean", "p50", "p90", "p99"):
            if stat in summ:
                delta[stat] = summ[stat]
        out["histograms"][key] = delta
    return out


def merge_snapshots(into: dict, other: dict) -> dict:
    """Accumulate ``other`` into ``into`` (counters/histograms add).

    Gauges take ``other``'s value when present.  Returns ``into`` for
    chaining.  The inverse of :func:`diff_snapshots` for aggregating
    per-run deltas shipped back from sweep workers.
    """
    into.setdefault("counters", {})
    into.setdefault("gauges", {})
    into.setdefault("histograms", {})
    for key, value in other.get("counters", {}).items():
        into["counters"][key] = into["counters"].get(key, 0.0) + value
    for key, value in other.get("gauges", {}).items():
        into["gauges"][key] = value
    for key, summ in other.get("histograms", {}).items():
        prev = into["histograms"].get(key)
        if prev is None:
            into["histograms"][key] = dict(summ)
            continue
        merged = dict(prev)
        merged["count"] = prev.get("count", 0) + summ.get("count", 0)
        merged["sum"] = prev.get("sum", 0.0) + summ.get("sum", 0.0)
        if "min" in summ:
            merged["min"] = min(prev.get("min", summ["min"]), summ["min"])
        if "max" in summ:
            merged["max"] = max(prev.get("max", summ["max"]), summ["max"])
        if merged["count"] > 0:
            merged["mean"] = merged["sum"] / merged["count"]
        into["histograms"][key] = merged
    return into


# ----------------------------------------------------------------------
# Prometheus text exposition
# ----------------------------------------------------------------------
_PROM_QUANTILES = (("p50", "0.5"), ("p90", "0.9"), ("p99", "0.99"))


def _prom_name(name: str) -> str:
    """Sanitize a metric name to ``[a-zA-Z_:][a-zA-Z0-9_:]*``."""
    out = []
    for i, ch in enumerate(name):
        if ch.isascii() and (ch.isalpha() or ch in "_:" or (ch.isdigit() and i > 0)):
            out.append(ch)
        else:
            out.append("_")
    return "".join(out) or "_"


def _prom_escape(value: str) -> str:
    """Escape a label value per the exposition-format rules."""
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _prom_unescape(value: str) -> str:
    """Invert :func:`_prom_escape` (label values round-trip exactly)."""
    out = []
    it = iter(value)
    for ch in it:
        if ch != "\\":
            out.append(ch)
            continue
        nxt = next(it, "")
        out.append({"n": "\n", '"': '"', "\\": "\\"}.get(nxt, "\\" + nxt))
    return "".join(out)


def _prom_help(family: str, kind: str) -> str:
    """The ``# HELP`` line of one family.

    HELP text escapes only backslash and newline (the exposition format
    does not quote it); family names are already sanitized, so this is
    belt and braces.
    """
    text = f"repro {kind} metric {family}"
    text = text.replace("\\", "\\\\").replace("\n", "\\n")
    return f"# HELP {family} {text}"


def _prom_split(key: str) -> tuple[str, list[tuple[str, str]]]:
    """Split a ``name{k=v,...}`` series key into name and label pairs."""
    brace = key.find("{")
    if brace < 0:
        return key, []
    name = key[:brace]
    labels = []
    body = key[brace + 1 :].rstrip("}")
    for pair in body.split(","):
        if "=" in pair:
            k, v = pair.split("=", 1)
            labels.append((k, v))
    return name, labels


def _prom_series(key: str, extra: list[tuple[str, str]] | None = None) -> str:
    """Render one series reference: sanitized name plus label braces."""
    name, labels = _prom_split(key)
    labels = labels + (extra or [])
    rendered = _prom_name(name)
    if labels:
        body = ",".join(
            f'{_prom_name(k)}="{_prom_escape(v)}"' for k, v in labels
        )
        rendered += "{" + body + "}"
    return rendered


def _prom_value(value: float) -> str:
    if value != value:  # NaN
        return "NaN"
    if value == float("inf"):
        return "+Inf"
    if value == float("-inf"):
        return "-Inf"
    return repr(float(value))


def snapshot_to_prometheus(snapshot: dict) -> str:
    """A registry snapshot in Prometheus text exposition format.

    Mapping rules: counters and gauges become ``counter``/``gauge``
    families; histogram summaries become ``summary`` families with
    ``quantile="0.5"/"0.9"/"0.99"`` series (from p50/p90/p99) plus the
    conventional ``_sum``/``_count`` lines.  Metric names are sanitized
    (dots become underscores); label values are escaped (and round-trip
    through :func:`_prom_unescape`).  Families are emitted sorted by
    name, each preceded by ``# HELP`` and ``# TYPE`` comments, and the
    output ends with a newline (as scrapers expect).  An empty snapshot
    yields the empty string — a valid (empty) exposition.
    """
    lines: list[str] = []

    def families(section: dict) -> dict[str, list[str]]:
        by_name: dict[str, list[str]] = {}
        for key in sorted(section):
            name, _ = _prom_split(key)
            by_name.setdefault(_prom_name(name), []).append(key)
        return by_name

    for family, keys in sorted(families(snapshot.get("counters", {})).items()):
        lines.append(_prom_help(family, "counter"))
        lines.append(f"# TYPE {family} counter")
        for key in keys:
            value = snapshot["counters"][key]
            lines.append(f"{_prom_series(key)} {_prom_value(value)}")
    for family, keys in sorted(families(snapshot.get("gauges", {})).items()):
        lines.append(_prom_help(family, "gauge"))
        lines.append(f"# TYPE {family} gauge")
        for key in keys:
            value = snapshot["gauges"][key]
            lines.append(f"{_prom_series(key)} {_prom_value(value)}")
    for family, keys in sorted(families(snapshot.get("histograms", {})).items()):
        lines.append(_prom_help(family, "summary"))
        lines.append(f"# TYPE {family} summary")
        for key in keys:
            summ = snapshot["histograms"][key]
            name, labels = _prom_split(key)
            for stat, quantile in _PROM_QUANTILES:
                if stat in summ:
                    lines.append(
                        f"{_prom_series(key, [('quantile', quantile)])} "
                        f"{_prom_value(summ[stat])}"
                    )
            base = _prom_name(name)
            suffix = ""
            if labels:
                body = ",".join(
                    f'{_prom_name(k)}="{_prom_escape(v)}"' for k, v in labels
                )
                suffix = "{" + body + "}"
            lines.append(f"{base}_sum{suffix} {_prom_value(summ.get('sum', 0.0))}")
            lines.append(f"{base}_count{suffix} {_prom_value(summ.get('count', 0))}")
    return "\n".join(lines) + "\n" if lines else ""


# ----------------------------------------------------------------------
# process-default registry
# ----------------------------------------------------------------------
_default_registry = MetricsRegistry()
_registry_lock = threading.Lock()


def get_registry() -> MetricsRegistry:
    """The process-wide default registry instrumented modules write to."""
    return _default_registry


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Swap the default registry (returns the previous one)."""
    global _default_registry
    with _registry_lock:
        previous = _default_registry
        _default_registry = registry
        return previous


def reset_registry() -> None:
    """Clear the default registry (test isolation helper)."""
    _default_registry.reset()
