"""Deterministic phase-attributed CPU profiling (``repro profile``).

The observability layer up to here can say *that* a run got slower
(metrics, history, the Mann-Whitney gate in :mod:`repro.obs.regress`)
but not *where*.  This module closes that gap with a zero-dependency
profiling subsystem built on :mod:`cProfile`:

* :class:`PhaseProfiler` keeps **one deterministic profile per
  scheduler phase** (``probe``/``fit``/``solve``/``execute``/
  ``overhead``).  Instrumented code declares phases through the ambient
  :func:`profile_phase` / :func:`switch_phase` hooks (contextvar-backed,
  like the run-id correlation in :mod:`repro.obs.events`); when no
  profiler is active the hooks are near-free no-ops, so the
  instrumentation can stay in the hot paths permanently.
* :func:`snapshot` turns the captured profiles into a plain-data
  (JSON/pickle-safe) stats document; :func:`merge_profiles` folds
  several such documents into one — that is how per-worker profiles
  from ``ProcessPoolExecutor`` sweep jobs are aggregated in
  :mod:`repro.experiments.parallel`.
* Exports: :func:`collapsed_stacks` (flamegraph.pl / speedscope
  compatible collapsed-stack text), :func:`render_flamegraph_svg`
  (self-contained, dark-mode aware SVG, same conventions as
  :mod:`repro.obs.dashboard`), :func:`hot_functions` (the top-N table
  recorded into history entries for the hot-path drift detector in
  :mod:`repro.obs.regress`), and :func:`phase_breakdown`.

Determinism note: ``cProfile`` is a tracing (not sampling) profiler —
call counts are exact and reproducible for a seeded simulation, which
is what makes the multiprocess merge testable (serial and parallel
sweeps must agree on every call count) and the drift detector
meaningful.  Only the profiler-owning thread is traced; the simulated
backend is single-threaded, which is the intended target.
"""

from __future__ import annotations

import cProfile
import contextlib
import contextvars
import time
from typing import Any, Iterator, Mapping, Sequence
from xml.sax.saxutils import escape

from repro.errors import ConfigurationError

__all__ = [
    "PROFILE_PHASES",
    "PROFILE_SCHEMA",
    "PhaseProfiler",
    "active_profiler",
    "profiling",
    "profile_phase",
    "switch_phase",
    "snapshot",
    "merge_profiles",
    "hot_functions",
    "phase_breakdown",
    "collapsed_stacks",
    "render_flamegraph_svg",
    "write_flamegraph",
    "write_collapsed",
]

#: The named phases profiled time is attributed to.  ``overhead`` is the
#: base phase (harness work outside any instrumented scope), so every
#: profiled sample belongs to exactly one named phase by construction.
PROFILE_PHASES = ("probe", "fit", "solve", "execute", "overhead")

#: Bump when the snapshot document layout changes incompatibly.
PROFILE_SCHEMA = 1

_active: contextvars.ContextVar["PhaseProfiler | None"] = contextvars.ContextVar(
    "repro_profiler", default=None
)


def _pretty_name(filename: str, lineno: int, funcname: str) -> str:
    """A human-readable qualified name for one profiled function."""
    if filename in ("~", ""):
        return funcname  # builtins: already "<built-in method ...>"
    path = filename.replace("\\", "/")
    if path.endswith(".py"):
        path = path[:-3]
    marker = "/repro/"
    if marker in path:
        module = "repro." + path.rsplit(marker, 1)[1].replace("/", ".")
        return f"{module}.{funcname}"
    return f"{path.rsplit('/', 1)[-1]}.{funcname}"


class PhaseProfiler:
    """One ``cProfile.Profile`` per phase, switched as phases change.

    The profiler keeps a phase *stack*: :meth:`phase` pushes a scoped
    phase (a model fit, an interior-point solve) and restores the
    previous one on exit; :meth:`switch` replaces the current phase
    in place (the simulated executor's probe -> execute transition,
    which is not lexically scoped).  Exactly one underlying profile is
    enabled at any moment, so every sample lands in exactly one phase.
    """

    def __init__(self) -> None:
        self._profiles: dict[str, cProfile.Profile] = {}
        self._wall: dict[str, float] = {}
        self._stack: list[str] = []
        self._current: str | None = None
        self._seg_t0 = 0.0
        self.running = False

    # ------------------------------------------------------------------
    def _check(self, phase: str) -> str:
        if phase not in PROFILE_PHASES:
            raise ConfigurationError(
                f"unknown profile phase {phase!r} (expected one of "
                f"{PROFILE_PHASES})"
            )
        return phase

    def _profile(self, phase: str) -> cProfile.Profile:
        prof = self._profiles.get(phase)
        if prof is None:
            prof = self._profiles[phase] = cProfile.Profile()
            self._wall.setdefault(phase, 0.0)
        return prof

    def _hop(self, phase: str) -> None:
        """Disable the current phase's profile and enable ``phase``'s."""
        if phase == self._current:
            return
        now = time.perf_counter()
        if self._current is not None:
            self._profiles[self._current].disable()
            self._wall[self._current] += now - self._seg_t0
        self._seg_t0 = now
        self._current = phase
        self._profile(phase).enable()

    # ------------------------------------------------------------------
    def start(self, phase: str = "overhead") -> "PhaseProfiler":
        """Begin capturing under ``phase`` (the base of the stack)."""
        if self.running:
            raise ConfigurationError("profiler is already running")
        self.running = True
        self._stack = [self._check(phase)]
        self._hop(phase)
        return self

    def stop(self) -> "PhaseProfiler":
        """Stop capturing; the profiler can be inspected afterwards."""
        if not self.running:
            raise ConfigurationError("profiler is not running")
        now = time.perf_counter()
        assert self._current is not None
        self._profiles[self._current].disable()
        self._wall[self._current] += now - self._seg_t0
        self._current = None
        self.running = False
        return self

    @contextlib.contextmanager
    def phase(self, name: str) -> Iterator[None]:
        """Attribute the block's samples to ``name``, then restore."""
        if not self.running:
            yield
            return
        self._check(name)
        self._stack.append(name)
        self._hop(name)
        try:
            yield
        finally:
            if self.running:
                self._stack.pop()
                self._hop(self._stack[-1])
            elif self._stack and self._stack[-1] == name:
                self._stack.pop()

    def switch(self, name: str) -> None:
        """Replace the current (top-of-stack) phase in place."""
        if not self.running:
            return
        self._check(name)
        self._stack[-1] = name
        self._hop(name)

    # ------------------------------------------------------------------
    def snapshot(self) -> dict[str, Any]:
        """The captured profiles as a plain-data stats document.

        Layout (all JSON/pickle-safe)::

            {"schema": 1,
             "wall_s": {phase: seconds},
             "total_self_s": float,
             "phases": {phase: {"self_s": float,
                                "functions": {key: {"name", "ncalls",
                                                    "self_s", "cum_s",
                                                    "callers": {key: cum_s}}}}}}

        ``key`` is the stable ``file:line:function`` identity used for
        cross-process merging; ``name`` is the readable qualified form.
        """
        if self.running:
            raise ConfigurationError("stop the profiler before snapshotting")
        phases: dict[str, Any] = {}
        total = 0.0
        for phase, prof in self._profiles.items():
            prof.create_stats()
            functions: dict[str, Any] = {}
            self_s = 0.0
            for func, (cc, nc, tt, ct, callers) in prof.stats.items():
                key = "%s:%d:%s" % func
                functions[key] = {
                    "name": _pretty_name(*func),
                    "ncalls": int(nc),
                    "self_s": float(tt),
                    "cum_s": float(ct),
                    "callers": {
                        "%s:%d:%s" % caller: float(edge[3])
                        for caller, edge in callers.items()
                    },
                }
                self_s += float(tt)
            phases[phase] = {"self_s": self_s, "functions": functions}
            total += self_s
        return {
            "schema": PROFILE_SCHEMA,
            "wall_s": {p: float(w) for p, w in self._wall.items()},
            "total_self_s": total,
            "phases": phases,
        }


# ----------------------------------------------------------------------
# ambient hooks (the instrumented code's API)
# ----------------------------------------------------------------------

def active_profiler() -> PhaseProfiler | None:
    """The profiler the current context captures into (or ``None``)."""
    return _active.get()


@contextlib.contextmanager
def profiling(base_phase: str = "overhead") -> Iterator[PhaseProfiler]:
    """Capture a phase-attributed profile of the ``with`` block.

    Activates a fresh :class:`PhaseProfiler` as the ambient profiler so
    the permanent :func:`profile_phase` / :func:`switch_phase` hooks in
    the runtime, the PLB-HeC policy and the interior-point solver
    attribute their work.  Yields the profiler; call
    :meth:`PhaseProfiler.snapshot` after the block for the stats.
    """
    if _active.get() is not None:
        raise ConfigurationError("a profiler is already active in this context")
    prof = PhaseProfiler()
    token = _active.set(prof)
    prof.start(base_phase)
    try:
        yield prof
    finally:
        prof.stop()
        _active.reset(token)


@contextlib.contextmanager
def profile_phase(name: str) -> Iterator[None]:
    """Scope hook: attribute the block to ``name`` when profiling.

    A no-op (one contextvar read) when no profiler is active, so
    instrumented hot paths pay effectively nothing by default.
    """
    prof = _active.get()
    if prof is None:
        yield
        return
    with prof.phase(name):
        yield


def switch_phase(name: str) -> None:
    """Transition hook: replace the current phase when profiling.

    Used where phase changes are not lexically scoped (the simulated
    executor's dispatch loop crossing from probing into execution).
    No-op when no profiler is active.
    """
    prof = _active.get()
    if prof is not None:
        prof.switch(name)


# ----------------------------------------------------------------------
# plain-data stats: snapshot / merge / tables
# ----------------------------------------------------------------------

def snapshot(profiler: PhaseProfiler) -> dict[str, Any]:
    """Functional alias for :meth:`PhaseProfiler.snapshot`."""
    return profiler.snapshot()


def merge_profiles(into: dict[str, Any], other: Mapping[str, Any]) -> dict[str, Any]:
    """Merge one snapshot document into another, in place.

    Call counts, self/cumulative times, caller edges and per-phase wall
    clocks are summed — this is the multiprocess aggregation used by the
    sweep engine, so a ``REPRO_JOBS=N`` sweep's merged profile carries
    the same call counts as the serial run's.  ``into`` may be an empty
    dict (it is initialised to an empty snapshot).  Returns ``into``.
    """
    if not into:
        into.update(
            {"schema": PROFILE_SCHEMA, "wall_s": {}, "total_self_s": 0.0, "phases": {}}
        )
    for phase, wall in other.get("wall_s", {}).items():
        into["wall_s"][phase] = into["wall_s"].get(phase, 0.0) + float(wall)
    for phase, pdata in other.get("phases", {}).items():
        dest = into["phases"].setdefault(phase, {"self_s": 0.0, "functions": {}})
        dest["self_s"] += float(pdata.get("self_s", 0.0))
        for key, f in pdata.get("functions", {}).items():
            df = dest["functions"].get(key)
            if df is None:
                dest["functions"][key] = {
                    "name": f["name"],
                    "ncalls": int(f["ncalls"]),
                    "self_s": float(f["self_s"]),
                    "cum_s": float(f["cum_s"]),
                    "callers": dict(f.get("callers", {})),
                }
            else:
                df["ncalls"] += int(f["ncalls"])
                df["self_s"] += float(f["self_s"])
                df["cum_s"] += float(f["cum_s"])
                for ck, edge in f.get("callers", {}).items():
                    df["callers"][ck] = df["callers"].get(ck, 0.0) + float(edge)
    into["total_self_s"] = sum(
        p["self_s"] for p in into["phases"].values()
    )
    return into


def phase_breakdown(snap: Mapping[str, Any]) -> dict[str, dict[str, float]]:
    """Per-phase time attribution: ``{phase: {self_s, wall_s, share}}``.

    ``share`` is the phase's fraction of total profiled (self) time;
    the shares sum to 1.0 whenever anything was profiled — every sample
    belongs to exactly one named phase by construction.
    """
    total = float(snap.get("total_self_s", 0.0))
    out: dict[str, dict[str, float]] = {}
    for phase in PROFILE_PHASES:
        pdata = snap.get("phases", {}).get(phase)
        if pdata is None:
            continue
        self_s = float(pdata.get("self_s", 0.0))
        out[phase] = {
            "self_s": self_s,
            "wall_s": float(snap.get("wall_s", {}).get(phase, 0.0)),
            "share": self_s / total if total > 0 else 0.0,
        }
    return out


def hot_functions(snap: Mapping[str, Any], *, top: int = 10) -> list[dict[str, Any]]:
    """The top-N hot functions across phases, with phase attribution.

    Each row: ``{function, calls, self_s, cum_s, share, phase}`` where
    ``share`` is the function's fraction of total profiled self time and
    ``phase`` is the phase it spent most of that time in.  This is the
    table recorded into history entries and consumed by the hot-path
    drift detector.
    """
    agg: dict[str, dict[str, Any]] = {}
    for phase, pdata in snap.get("phases", {}).items():
        for key, f in pdata.get("functions", {}).items():
            e = agg.get(key)
            if e is None:
                e = agg[key] = {
                    "function": f["name"],
                    "calls": 0,
                    "self_s": 0.0,
                    "cum_s": 0.0,
                    "by_phase": {},
                }
            e["calls"] += int(f["ncalls"])
            e["self_s"] += float(f["self_s"])
            e["cum_s"] += float(f["cum_s"])
            e["by_phase"][phase] = e["by_phase"].get(phase, 0.0) + float(f["self_s"])
    total = sum(e["self_s"] for e in agg.values())
    rows = []
    for e in sorted(agg.values(), key=lambda e: (-e["self_s"], e["function"])):
        by_phase = e.pop("by_phase")
        e["share"] = e["self_s"] / total if total > 0 else 0.0
        e["phase"] = max(sorted(by_phase), key=by_phase.get) if by_phase else ""
        rows.append(e)
    return rows[:top]


# ----------------------------------------------------------------------
# collapsed stacks (flamegraph.pl / speedscope format)
# ----------------------------------------------------------------------

def collapsed_stacks(
    snap: Mapping[str, Any],
    *,
    max_depth: int = 64,
    min_fraction: float = 1e-4,
) -> list[str]:
    """Collapsed-stack lines: ``phase;frame;frame <microseconds>``.

    cProfile records a caller/callee graph, not raw stacks, so stacks
    are reconstructed by walking the graph from its roots and splitting
    each function's self time across incoming paths proportionally to
    the callers' edge cumulative times (the ``flameprof`` approach).
    The root frame of every stack is the phase name, so a flamegraph of
    the output is phase-partitioned at its first level.  Lines are
    deterministic (sorted) and the value unit is integer microseconds —
    directly loadable by flamegraph.pl and https://speedscope.app.
    """
    lines: dict[str, float] = {}
    for phase in PROFILE_PHASES:
        pdata = snap.get("phases", {}).get(phase)
        if not pdata:
            continue
        funcs = pdata.get("functions", {})
        if not funcs:
            continue
        children: dict[str, list[tuple[str, float]]] = {}
        inbound: dict[str, float] = {}
        for key, f in funcs.items():
            known = {
                ck: float(edge)
                for ck, edge in f.get("callers", {}).items()
                if ck in funcs
            }
            inbound[key] = sum(known.values())
            for ck, edge in known.items():
                children.setdefault(ck, []).append((key, edge))
        roots = sorted(k for k in funcs if inbound[k] <= 0.0)
        if not roots:  # fully cyclic graph: degrade to a flat profile
            for key in sorted(funcs):
                f = funcs[key]
                if f["self_s"] > 0:
                    lines[f"{phase};{f['name']}"] = (
                        lines.get(f"{phase};{f['name']}", 0.0) + f["self_s"]
                    )
            continue
        cutoff = max(pdata.get("self_s", 0.0) * min_fraction, 1e-7)

        def walk(key: str, factor: float, on_path: frozenset, stack: str) -> None:
            f = funcs[key]
            self_s = f["self_s"] * factor
            if self_s > 0.0:
                lines[stack] = lines.get(stack, 0.0) + self_s
            if len(on_path) >= max_depth:
                return
            for child, edge in sorted(children.get(key, ())):
                if child in on_path:
                    continue  # recursion: charge to the first occurrence
                denom = inbound[child]
                if denom <= 0.0:
                    continue
                cf = factor * (edge / denom)
                if funcs[child]["cum_s"] * cf < cutoff:
                    continue
                walk(
                    child,
                    cf,
                    on_path | {child},
                    stack + ";" + funcs[child]["name"],
                )

        for root in roots:
            walk(root, 1.0, frozenset((root,)), f"{phase};{funcs[root]['name']}")

    out = []
    for stack in sorted(lines):
        value_us = int(round(lines[stack] * 1e6))
        if value_us > 0:
            out.append(f"{stack} {value_us}")
    return out


def write_collapsed(path, lines: Sequence[str]):
    """Write collapsed-stack lines to ``path`` (one stack per line)."""
    from pathlib import Path

    target = Path(path)
    target.write_text("\n".join(lines) + ("\n" if lines else ""), encoding="utf-8")
    return target


# ----------------------------------------------------------------------
# flamegraph SVG (self-contained, dark-mode aware)
# ----------------------------------------------------------------------

#: Phase palette: (light fill, dark fill) pairs chosen to match the
#: dashboard's series/status hues in both color schemes.
_FLAME_COLORS = {
    "probe": ("#eb6834", "#d95926"),
    "fit": ("#1baf7a", "#199e70"),
    "solve": ("#8a63d2", "#7a55c4"),
    "execute": ("#2a78d6", "#3987e5"),
    "overhead": ("#9a9892", "#6e6d68"),
    "other": ("#c3c2b7", "#52514e"),
}


class _FlameNode:
    """One frame of the flamegraph tree (internal)."""

    __slots__ = ("name", "self_us", "children")

    def __init__(self, name: str) -> None:
        self.name = name
        self.self_us = 0
        self.children: dict[str, "_FlameNode"] = {}

    def child(self, name: str) -> "_FlameNode":
        node = self.children.get(name)
        if node is None:
            node = self.children[name] = _FlameNode(name)
        return node

    def total(self) -> int:
        return self.self_us + sum(c.total() for c in self.children.values())


def _flame_tree(lines: Sequence[str]) -> _FlameNode:
    root = _FlameNode("all")
    for line in lines:
        stack, _, value = line.rpartition(" ")
        try:
            value_us = int(value)
        except ValueError:
            continue
        node = root
        for frame in stack.split(";"):
            node = node.child(frame)
        node.self_us += value_us
    return root


def render_flamegraph_svg(
    snap_or_lines: Mapping[str, Any] | Sequence[str],
    *,
    width: int = 1180,
    row_h: int = 17,
    min_px: float = 0.4,
    title: str = "phase-attributed CPU profile",
) -> str:
    """Render a flamegraph as one self-contained SVG string.

    Accepts either a snapshot document (collapsed internally) or
    pre-collapsed lines.  The output embeds its own ``<style>`` with
    separate light and dark palettes switched on
    ``prefers-color-scheme`` (no external requests of any kind), first
    levels are the profile phases in their dashboard hues, and every
    frame carries a ``<title>`` tooltip with exact time and share — the
    same conventions as the rest of :mod:`repro.obs.dashboard`.
    """
    if isinstance(snap_or_lines, Mapping):
        lines = collapsed_stacks(snap_or_lines)
    else:
        lines = list(snap_or_lines)
    root = _flame_tree(lines)
    total = root.total()

    frames: list[tuple[int, float, float, str, int, str]] = []
    max_depth = 0

    def layout(node: _FlameNode, depth: int, x: float, phase: str) -> None:
        nonlocal max_depth
        node_total = node.total()
        w = node_total / total * width if total else 0.0
        if w < min_px:
            return
        max_depth = max(max_depth, depth)
        frames.append((depth, x, w, node.name, node_total, phase))
        cx = x
        for name in sorted(node.children):
            child = node.children[name]
            child_phase = phase or (name if name in _FLAME_COLORS else "other")
            cw = child.total() / total * width if total else 0.0
            layout(child, depth + 1, cx, child_phase)
            cx += cw

    if total > 0:
        cx = 0.0
        for name in sorted(root.children):
            child = root.children[name]
            phase = name if name in _FLAME_COLORS else "other"
            layout(child, 0, cx, phase)
            cx += child.total() / total * width

    header_h = 34
    height = header_h + (max_depth + 1) * row_h + 8 if frames else header_h + row_h
    light = "".join(
        f".rf-{p}{{fill:{lc}}}" for p, (lc, _) in _FLAME_COLORS.items()
    )
    dark = "".join(
        f".rf-{p}{{fill:{dc}}}" for p, (_, dc) in _FLAME_COLORS.items()
    )
    style = (
        "svg.repro-flame{font-family:system-ui,-apple-system,'Segoe UI',sans-serif}"
        ".rf-bg{fill:#f9f9f7}.rf-title{fill:#0b0b0b;font-size:13px;font-weight:600}"
        ".rf-sub{fill:#52514e;font-size:11px}"
        ".rf-label{fill:#0b0b0b;font-size:10px;pointer-events:none}"
        "rect.rf-frame{stroke:#f9f9f7;stroke-width:0.6;rx:2}"
        + light
        + "@media (prefers-color-scheme:dark){"
        ".rf-bg{fill:#0d0d0d}.rf-title{fill:#ffffff}.rf-sub{fill:#c3c2b7}"
        ".rf-label{fill:#ffffff}rect.rf-frame{stroke:#0d0d0d}"
        + dark
        + "}"
    )
    parts = [
        f'<svg class="repro-flame" viewBox="0 0 {width} {height}" width="100%" '
        f'xmlns="http://www.w3.org/2000/svg" role="img">',
        f"<style>{style}</style>",
        f'<rect class="rf-bg" x="0" y="0" width="{width}" height="{height}"/>',
        f'<text class="rf-title" x="8" y="16">{escape(title)}</text>',
        f'<text class="rf-sub" x="8" y="29">{total / 1e6:.4f}s profiled '
        f"&#183; {len(frames)} frames &#183; phases colored "
        "probe/fit/solve/execute/overhead</text>",
    ]
    if not frames:
        parts.append(
            f'<text class="rf-sub" x="8" y="{header_h + 12}">(empty profile)</text>'
        )
    for depth, x, w, name, node_total, phase in frames:
        y = header_h + depth * row_h
        pct = node_total / total * 100 if total else 0.0
        tip = f"{escape(name)} &#8212; {node_total / 1e6:.4f}s ({pct:.2f}%)"
        parts.append(
            f'<g class="rf-{phase}"><rect class="rf-frame" x="{x:.2f}" y="{y}" '
            f'width="{max(w - 0.5, 0.5):.2f}" height="{row_h - 1}" '
            f'fill-opacity="{0.92 if depth % 2 == 0 else 0.78}">'
            f"<title>{tip}</title></rect>"
        )
        if w >= 40:
            shown = name if len(name) * 6 < w - 8 else name[: max(int((w - 8) / 6), 1)]
            parts.append(
                f'<text class="rf-label" x="{x + 3:.2f}" y="{y + row_h - 5}">'
                f"{escape(shown)}</text>"
            )
        parts.append("</g>")
    parts.append("</svg>")
    return "".join(parts)


def write_flamegraph(path, snap_or_lines, **kwargs):
    """Render and write a flamegraph SVG; returns the written path."""
    from pathlib import Path

    target = Path(path)
    target.write_text(render_flamegraph_svg(snap_or_lines, **kwargs), encoding="utf-8")
    return target
