"""Virtual-time cluster telemetry: sampler, series store, ``repro top``.

Everything the observability stack recorded so far is *post-hoc*: a
trace, a metrics snapshot, a ledger — all views of a finished run.  This
module watches the cluster **as a function of virtual time**: a
:class:`ClusterSampler` rides the discrete-event engine, waking at a
fixed virtual interval to record per-device utilization, queue depth,
outstanding/completed work, imbalance and Jain's fairness index into a
bounded ring-buffer :class:`TimeSeriesStore`.

Design constraints, in order of importance:

* **Byte-identical schedules.**  The sampler only *reads* simulation
  state; it never consumes randomness, never dispatches, and its pending
  tick is cancelled the instant the run is over, so the virtual clock
  (and therefore every trace byte) is identical with sampling on or
  off.  ``tests/obs/test_timeseries.py`` locks this in.
* **Zero cost when disabled.**  The executor's hot path pays one
  ``is not None`` check per dispatch/completion when no sampler is
  attached.
* **Deterministic.**  Samples are pure functions of the (seeded)
  simulation state, so series ride sweep payloads cache-compatibly and
  parallel sweeps merge series identical to serial ones.

The store's windowed aggregation (mean/max/p50/p95/p99) reuses the
metrics registry's bounded-reservoir :class:`~repro.obs.metrics.Histogram`
machinery, and :func:`publish_windowed_gauges` exposes the aggregates as
``ts.*`` gauges for the Prometheus exposition.  ``series.jsonl`` is the
on-disk artifact (:func:`write_series` / :func:`read_series` /
:func:`validate_series`); :func:`render_top` turns it into the
``repro top`` terminal view.
"""

from __future__ import annotations

import json
import math
import threading
from collections import deque
from pathlib import Path
from typing import Any, Callable, Iterable, Mapping, Sequence

from repro.errors import ConfigurationError
from repro.obs.metrics import Histogram, _series_key, get_registry

__all__ = [
    "SERIES_SCHEMA",
    "TimeSeriesStore",
    "ClusterSampler",
    "jain_fairness",
    "publish_windowed_gauges",
    "store_from_payload",
    "write_series",
    "read_series",
    "validate_series",
    "render_top",
    "sparkline",
]

#: ``series.jsonl`` schema version (header line ``schema`` field).
SERIES_SCHEMA = 1

#: Cluster-level series names a sampler records each tick.
CLUSTER_SERIES = (
    "queue_depth",
    "backlog_units",
    "outstanding_units",
    "completed_units",
    "goodput_units_per_s",
    "imbalance",
    "fairness",
)

#: Per-device series names (labelled ``{device=...}``).
DEVICE_SERIES = ("device_util", "device_idle_frac", "device_busy_s")


def jain_fairness(values: Sequence[float]) -> float:
    """Jain's fairness index ``(Σx)² / (n·Σx²)`` over ``values``.

    1.0 means perfectly even progress; ``1/n`` means one device did all
    the work.  An empty or all-zero input (nothing has progressed yet)
    is *defined* as perfectly fair, 1.0.
    """
    if not values:
        return 1.0
    total = float(sum(values))
    squares = float(sum(v * v for v in values))
    if squares <= 0.0:
        return 1.0
    return (total * total) / (len(values) * squares)


class TimeSeriesStore:
    """Bounded ring buffers of ``(t, value)`` samples, one per series.

    Series are keyed exactly like metrics-registry series
    (``name{label=value,...}`` with sorted label keys), so the store,
    the Prometheus exposition and the dashboard all agree on naming.
    Each series keeps at most ``max_points`` samples (oldest dropped
    first), bounding memory for arbitrarily long campaigns.
    """

    def __init__(self, *, max_points: int = 4096) -> None:
        if max_points < 1:
            raise ConfigurationError("max_points must be >= 1")
        self.max_points = int(max_points)
        self._series: dict[str, deque[tuple[float, float]]] = {}

    def record(self, name: str, t: float, value: float, **labels: str) -> None:
        """Append one sample to the named series."""
        if not name:
            raise ConfigurationError("series name must be non-empty")
        key = _series_key(name, labels)
        buf = self._series.get(key)
        if buf is None:
            buf = self._series[key] = deque(maxlen=self.max_points)
        buf.append((float(t), float(value)))

    def keys(self) -> list[str]:
        """Series keys in first-recorded order."""
        return list(self._series)

    def points(self, key: str) -> list[tuple[float, float]]:
        """The ``(t, value)`` samples of one series key (empty if absent)."""
        return list(self._series.get(key, ()))

    def matching(self, name: str) -> dict[str, list[tuple[float, float]]]:
        """All series whose base name is ``name``, keyed by full key."""
        out = {}
        for key, buf in self._series.items():
            base = key.split("{", 1)[0]
            if base == name:
                out[key] = list(buf)
        return out

    def values(self, name: str) -> list[float]:
        """All sample values across every label set of ``name``, in time order."""
        merged: list[tuple[float, float]] = []
        for pts in self.matching(name).values():
            merged.extend(pts)
        merged.sort(key=lambda p: p[0])
        return [v for _, v in merged]

    def __len__(self) -> int:
        return sum(len(buf) for buf in self._series.values())

    def __bool__(self) -> bool:
        return any(self._series.values())

    def aggregate(
        self, key: str, *, t_min: float | None = None, t_max: float | None = None
    ) -> dict[str, float]:
        """Windowed aggregate of one series key.

        Returns ``{count, mean, min, max, last, p50, p95, p99}`` over the
        samples with ``t_min <= t <= t_max`` (whole series by default).
        Percentiles come from the metrics registry's bounded-reservoir
        histogram, so the two aggregation paths can never disagree.
        An empty window returns ``{"count": 0}``.
        """
        hist = Histogram(threading.RLock(), max_samples=self.max_points)
        last = None
        for t, v in self._series.get(key, ()):
            if t_min is not None and t < t_min:
                continue
            if t_max is not None and t > t_max:
                continue
            hist.observe(v)
            last = v
        if hist.count == 0:
            return {"count": 0}
        return {
            "count": hist.count,
            "mean": hist.total / hist.count,
            "min": hist.min,
            "max": hist.max,
            "last": last,
            "p50": hist.percentile(50.0),
            "p95": hist.percentile(95.0),
            "p99": hist.percentile(99.0),
        }

    def to_payload(self) -> dict[str, Any]:
        """A JSON-compatible dump (rides sweep payloads across processes)."""
        return {
            "max_points": self.max_points,
            "series": {k: [[t, v] for t, v in buf] for k, buf in self._series.items()},
        }


def store_from_payload(payload: Mapping[str, Any]) -> TimeSeriesStore:
    """Rebuild a :class:`TimeSeriesStore` from :meth:`~TimeSeriesStore.to_payload`."""
    store = TimeSeriesStore(max_points=int(payload.get("max_points", 4096)))
    for key, pts in payload.get("series", {}).items():
        name, _, body = key.partition("{")
        labels = {}
        if body:
            for pair in body.rstrip("}").split(","):
                k, _, v = pair.partition("=")
                labels[k] = v
        for t, v in pts:
            store.record(name, t, v, **labels)
    return store


class ClusterSampler:
    """Deterministic periodic sampler of a simulated cluster.

    Single-use: attach one instance to one
    :meth:`~repro.runtime.runtime.Runtime.run` call.  The executor calls
    :meth:`start` once the engine exists, notifies the sampler on every
    dispatch/completion/loss, and the sampler self-schedules its ticks
    on the engine — reading state only, so the simulated schedule is
    byte-identical with or without it.

    Parameters
    ----------
    interval:
        Virtual seconds between samples.  ``None`` or ``0.0`` means
        *auto*: the executor substitutes a deterministic estimate
        (~1/128th of the predicted makespan) at run start.
    store:
        Destination :class:`TimeSeriesStore` (a fresh bounded store by
        default).
    max_points:
        Ring size of the default store.
    """

    def __init__(
        self,
        interval: float | None = None,
        *,
        store: TimeSeriesStore | None = None,
        max_points: int = 4096,
    ) -> None:
        if interval is not None and interval < 0.0:
            raise ConfigurationError(
                f"sample interval must be >= 0, got {interval}"
            )
        if interval == 0.0:
            interval = None  # 0.0 is the CLI spelling of "auto"
        self.interval = interval
        self.store = store if store is not None else TimeSeriesStore(max_points=max_points)
        self.samples_taken = 0
        self._engine = None
        self._work_remaining: Callable[[], int] | None = None
        self._devices: tuple[str, ...] = ()
        self._total_units = 0
        self._task = None
        self._started = False
        # per-device busy accounting: closed intervals + the in-flight one
        self._closed_busy: dict[str, float] = {}
        self._inflight: dict[str, tuple[float, float, int]] = {}
        self._completed_units = 0
        self._last_t = 0.0
        self._last_busy: dict[str, float] = {}
        self._last_completed = 0

    # ------------------------------------------------------------------
    # executor-facing lifecycle
    # ------------------------------------------------------------------
    def start(
        self,
        engine,
        *,
        devices: Sequence[str],
        total_units: int,
        work_remaining: Callable[[], int],
    ) -> None:
        """Bind to a run and schedule the first tick.

        ``interval`` must be resolved (> 0) by the time this is called;
        the executor substitutes its auto estimate beforehand.
        """
        if self._started:
            raise ConfigurationError(
                "ClusterSampler is single-use: attach a fresh instance per run"
            )
        if not self.interval or self.interval <= 0.0:
            raise ConfigurationError(
                "sampler interval unresolved; pass interval > 0 or let the "
                "executor auto-derive it"
            )
        self._started = True
        self._engine = engine
        self._devices = tuple(devices)
        self._total_units = int(total_units)
        self._work_remaining = work_remaining
        self._closed_busy = {d: 0.0 for d in self._devices}
        self._last_busy = {d: 0.0 for d in self._devices}
        # keep ticking while the run can still progress: a deadlocked or
        # finished run must drain (bool(queue) is False once the tick
        # itself popped), or the sampler would keep the engine alive
        self._task = engine.schedule_periodic(
            self.interval,
            self._tick,
            tag="sample",
            continue_while=lambda: bool(engine.queue)
            and (self._work_remaining() > 0 or bool(self._inflight)),
        )

    def on_dispatch(self, worker_id: str, t0: float, t1: float, units: int) -> None:
        """A block now occupies ``worker_id`` over ``[t0, t1]``."""
        self._inflight[worker_id] = (float(t0), float(t1), int(units))

    def on_complete(self, worker_id: str, units: int) -> None:
        """The in-flight block on ``worker_id`` finished."""
        entry = self._inflight.pop(worker_id, None)
        if entry is not None:
            t0, t1, _ = entry
            self._closed_busy[worker_id] += max(0.0, t1 - t0)
        self._completed_units += int(units)

    def on_lost(self, worker_id: str, t: float) -> None:
        """The in-flight block on ``worker_id`` was lost at time ``t``.

        The device still *occupied* ``[t0, min(t, t1)]`` (it was
        transferring/retrying/executing right up to the loss), so that
        span counts as busy even though no task record will exist.
        """
        entry = self._inflight.pop(worker_id, None)
        if entry is not None:
            t0, t1, _ = entry
            self._closed_busy[worker_id] += max(0.0, min(float(t), t1) - t0)

    def stop(self) -> None:
        """Cancel the pending tick (the run is over; never extend the clock)."""
        if self._task is not None:
            self._task.cancel()

    def finish(self, t: float) -> None:
        """Take the closing sample at the makespan (no-op if already there)."""
        if self._started and t > self._last_t:
            self._sample(float(t))

    # ------------------------------------------------------------------
    # sampling
    # ------------------------------------------------------------------
    def _busy_until(self, device: str, t: float) -> float:
        """Cumulative busy seconds of ``device`` up to time ``t``."""
        busy = self._closed_busy[device]
        entry = self._inflight.get(device)
        if entry is not None:
            t0, t1, _ = entry
            busy += max(0.0, min(t, t1) - t0)
        return busy

    def _tick(self, now: float) -> None:
        self._sample(now)

    def _sample(self, t: float) -> None:
        dt = t - self._last_t
        if dt <= 0.0:
            return
        record = self.store.record
        cumulative: dict[str, float] = {}
        for device in self._devices:
            busy = self._busy_until(device, t)
            cumulative[device] = busy
            util = min(max((busy - self._last_busy[device]) / dt, 0.0), 1.0)
            record("device_util", t, util, device=device)
            record("device_idle_frac", t, 1.0 - util, device=device)
            record("device_busy_s", t, busy, device=device)
            self._last_busy[device] = busy
        backlog = self._work_remaining()
        outstanding = sum(units for _, _, units in self._inflight.values())
        completed = self._completed_units
        record("queue_depth", t, float(len(self._engine.queue)))
        record("backlog_units", t, float(backlog))
        record("outstanding_units", t, float(outstanding))
        record("completed_units", t, float(completed))
        record("goodput_units_per_s", t, (completed - self._last_completed) / dt)
        progress = list(cumulative.values())
        lo, hi = min(progress), max(progress)
        # max/min cumulative progress; 0.0 flags "some device has not
        # started yet" rather than emitting an unbounded ratio
        record("imbalance", t, hi / lo if lo > 0.0 else 0.0)
        record("fairness", t, jain_fairness(progress))
        self._last_t = t
        self._last_completed = completed
        self.samples_taken += 1


# ----------------------------------------------------------------------
# Prometheus bridge
# ----------------------------------------------------------------------
def publish_windowed_gauges(
    store: TimeSeriesStore, registry=None, *, prefix: str = "ts"
) -> int:
    """Publish each series' windowed aggregates as ``<prefix>.*`` gauges.

    For every series the store holds, sets
    ``<prefix>.<name>.{mean,max,p50,p95,p99}`` gauges (with the series'
    own labels) on ``registry`` (the process default when omitted), so
    ``--metrics-format prom`` exports the telemetry without a second
    aggregation path.  Returns the number of gauges written.
    """
    if registry is None:
        registry = get_registry()
    written = 0
    for key in store.keys():
        agg = store.aggregate(key)
        if agg.get("count", 0) == 0:
            continue
        name, _, body = key.partition("{")
        labels = {}
        if body:
            for pair in body.rstrip("}").split(","):
                k, _, v = pair.partition("=")
                labels[k] = v
        for stat in ("mean", "max", "p50", "p95", "p99"):
            registry.set_gauge(f"{prefix}.{name}.{stat}", agg[stat], **labels)
            written += 1
    return written


# ----------------------------------------------------------------------
# series.jsonl (write / read / validate)
# ----------------------------------------------------------------------
def write_series(
    path: str | Path,
    store: TimeSeriesStore,
    *,
    run_id: str = "",
    interval: float | None = None,
    meta: Mapping[str, Any] | None = None,
) -> Path:
    """Write the store as a ``series.jsonl`` artifact (atomic).

    Line 1 is a header (``kind: header``) carrying the schema version,
    run id, sample interval and series inventory; every following line
    is one sample (``kind: sample``).  The writer validates its own
    output before moving it into place.
    """
    path = Path(path)
    lines = [
        json.dumps(
            {
                "kind": "header",
                "schema": SERIES_SCHEMA,
                "run_id": run_id,
                "interval": interval,
                "series": store.keys(),
                "samples": len(store),
                "meta": dict(meta) if meta else {},
            },
            sort_keys=True,
        )
    ]
    for key in store.keys():
        name, _, body = key.partition("{")
        labels = {}
        if body:
            for pair in body.rstrip("}").split(","):
                k, _, v = pair.partition("=")
                labels[k] = v
        for t, v in store.points(key):
            lines.append(
                json.dumps(
                    {"kind": "sample", "series": name, "labels": labels,
                     "t": t, "v": v},
                    sort_keys=True,
                )
            )
    text = "\n".join(lines) + "\n"
    problems = validate_series(text.splitlines())
    if problems:  # pragma: no cover - the writer emits what it validates
        raise ConfigurationError(f"refusing to write invalid series: {problems}")
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_text(text, encoding="utf-8")
    tmp.replace(path)
    return path


def read_series(path: str | Path) -> tuple[dict[str, Any], TimeSeriesStore]:
    """Read a ``series.jsonl`` artifact back into ``(header, store)``.

    Validates before parsing; raises :class:`ConfigurationError` on a
    malformed file.
    """
    lines = Path(path).read_text(encoding="utf-8").splitlines()
    problems = validate_series(lines)
    if problems:
        raise ConfigurationError(
            f"invalid series file {path}: {'; '.join(problems[:5])}"
        )
    header = json.loads(lines[0])
    store = TimeSeriesStore()
    for line in lines[1:]:
        if not line.strip():
            continue
        row = json.loads(line)
        store.record(row["series"], row["t"], row["v"], **row.get("labels", {}))
    return header, store


def validate_series(lines: Iterable[str]) -> list[str]:
    """Schema-check ``series.jsonl`` content; returns a list of problems."""
    problems: list[str] = []
    lines = [ln for ln in lines if ln.strip()]
    if not lines:
        return ["empty file (missing header line)"]
    try:
        header = json.loads(lines[0])
    except json.JSONDecodeError as exc:
        return [f"header is not JSON: {exc}"]
    if not isinstance(header, dict) or header.get("kind") != "header":
        problems.append("first line must be a kind=header object")
        return problems
    if header.get("schema") != SERIES_SCHEMA:
        problems.append(
            f"unsupported schema {header.get('schema')!r} "
            f"(expected {SERIES_SCHEMA})"
        )
    declared = header.get("series")
    if not isinstance(declared, list):
        problems.append("header.series must be a list of series keys")
        declared = []
    seen_last_t: dict[str, float] = {}
    count = 0
    for i, line in enumerate(lines[1:], 2):
        try:
            row = json.loads(line)
        except json.JSONDecodeError as exc:
            problems.append(f"line {i}: not JSON: {exc}")
            continue
        if not isinstance(row, dict) or row.get("kind") != "sample":
            problems.append(f"line {i}: expected a kind=sample object")
            continue
        name = row.get("series")
        labels = row.get("labels", {})
        if not isinstance(name, str) or not name:
            problems.append(f"line {i}: missing series name")
            continue
        if not isinstance(labels, dict):
            problems.append(f"line {i}: labels must be an object")
            continue
        for field in ("t", "v"):
            value = row.get(field)
            if not isinstance(value, (int, float)) or (
                isinstance(value, float) and not math.isfinite(value)
            ):
                problems.append(f"line {i}: {field} must be a finite number")
                break
        else:
            key = _series_key(name, {str(k): str(v) for k, v in labels.items()})
            if declared and key not in declared:
                problems.append(f"line {i}: undeclared series {key!r}")
            t = float(row["t"])
            if key in seen_last_t and t < seen_last_t[key]:
                problems.append(f"line {i}: time goes backwards in {key!r}")
            seen_last_t[key] = t
            count += 1
    samples = header.get("samples")
    if isinstance(samples, int) and samples != count and not problems:
        problems.append(f"header declares {samples} samples, found {count}")
    return problems


# ----------------------------------------------------------------------
# `repro top`
# ----------------------------------------------------------------------
_SPARK_BLOCKS = "▁▂▃▄▅▆▇█"


def sparkline(
    values: Sequence[float],
    *,
    width: int = 40,
    lo: float | None = None,
    hi: float | None = None,
) -> str:
    """A unicode block sparkline of ``values`` resampled to ``width`` cells.

    ``lo``/``hi`` pin the value range (e.g. 0..1 for utilizations);
    by default the range is the data's own min/max.
    """
    if not values:
        return ""
    if lo is None:
        lo = min(values)
    if hi is None:
        hi = max(values)
    span = hi - lo
    cells = []
    n = len(values)
    width = min(width, n) if n else width
    for i in range(width):
        # average the bucket of samples this cell covers
        a = i * n // width
        b = max((i + 1) * n // width, a + 1)
        v = sum(values[a:b]) / (b - a)
        frac = 0.0 if span <= 0 else (v - lo) / span
        frac = min(max(frac, 0.0), 1.0)
        cells.append(_SPARK_BLOCKS[round(frac * (len(_SPARK_BLOCKS) - 1))])
    return "".join(cells)


def render_top(
    header: Mapping[str, Any],
    store: TimeSeriesStore,
    *,
    width: int = 40,
    slo_report: Mapping[str, Any] | None = None,
) -> str:
    """The ``repro top`` frame: per-device strips + cluster health.

    Pure function of the series content (and optionally an SLO report),
    so CI can assert on it with ``--once``.
    """
    lines: list[str] = []
    utils = store.matching("device_util")
    serve_mode = False
    if not utils:
        # service episodes record serve_device_busy{device=} 0/1 flags
        # instead of batch device_util fractions
        serve_utils = store.matching("serve_device_busy")
        if serve_utils:
            utils = serve_utils
            serve_mode = True
    t_now = 0.0
    for pts in utils.values():
        if pts:
            t_now = max(t_now, pts[-1][0])
    run_id = header.get("run_id") or "-"
    interval = header.get("interval")
    lines.append(
        f"repro top — run {run_id}  t={t_now:.4f}s"
        + (f"  interval={interval:.4g}s" if interval else "")
    )
    lines.append("")
    if not utils:
        lines.append("(no device_util samples in this series file)")
        return "\n".join(lines)
    name_w = max(len(k.split("device=", 1)[-1].rstrip("}")) for k in utils)
    busy_col = "busy" if serve_mode else "busy_s"
    lines.append(
        f"{'device'.ljust(name_w)}  util  {'timeline'.ljust(width)}  {busy_col}"
    )
    for key in sorted(utils):
        device = key.split("device=", 1)[-1].rstrip("}")
        pts = utils[key]
        values = [v for _, v in pts]
        current = values[-1] if values else 0.0
        if serve_mode:
            share = sum(values) / len(values) if values else 0.0
            busy_cell = f"{share:.0%} of samples"
        else:
            busy_pts = store.points(
                _series_key("device_busy_s", {"device": device})
            )
            busy = busy_pts[-1][1] if busy_pts else 0.0
            busy_cell = f"{busy:.4f}"
        lines.append(
            f"{device.ljust(name_w)}  {current:>4.0%}  "
            f"{sparkline(values, width=width, lo=0.0, hi=1.0).ljust(width)}  "
            f"{busy_cell}"
        )
    lines.append("")
    if serve_mode:
        backlog = [v for _, v in store.points("serve_backlog_jobs")]
        completed = [v for _, v in store.points("serve_completed_total")]
        done = completed[-1] if completed else 0.0
        in_flight = backlog[-1] if backlog else 0.0
        total = done + in_flight
        pct = done / total if total else 0.0
        lines.append(
            f"backlog   {sparkline(backlog, width=width, lo=0.0).ljust(width)}  "
            f"{int(in_flight)} jobs in flight ({pct:.0%} done)"
        )
        goodput = [v for _, v in store.points("serve_goodput_jobs_per_s")]
        if goodput:
            lines.append(
                f"goodput   "
                f"{sparkline(goodput, width=width, lo=0.0).ljust(width)}  "
                f"{goodput[-1]:,.2f} jobs/s"
            )
        fairness = [v for _, v in store.points("serve_tenant_fairness")]
        queue = [v for _, v in store.points("serve_queue_depth")]
        shed = [v for _, v in store.points("serve_shed_total")]
        summary = []
        if fairness:
            summary.append(f"tenant-fairness {fairness[-1]:.3f}")
        if queue:
            summary.append(f"queue {int(queue[-1])}")
        if shed:
            summary.append(f"shed {int(shed[-1])}")
        if summary:
            lines.append("  ".join(summary))
        return _render_top_slo(lines, slo_report)
    backlog = [v for _, v in store.points("backlog_units")]
    completed = [v for _, v in store.points("completed_units")]
    outstanding = [v for _, v in store.points("outstanding_units")]
    # Work conservation: queued + in-flight + done = the domain size at
    # every tick; the first sample already has units in flight, so the
    # total must count all three.
    total = (
        backlog[0] + outstanding[0] + completed[0]
        if backlog and outstanding and completed
        else 0.0
    )
    done = completed[-1] if completed else 0.0
    pct = done / total if total else 0.0
    lines.append(
        f"backlog   {sparkline(backlog, width=width, lo=0.0).ljust(width)}  "
        f"{int(backlog[-1]) if backlog else 0} units left ({pct:.0%} done)"
    )
    goodput = [v for _, v in store.points("goodput_units_per_s")]
    if goodput:
        lines.append(
            f"goodput   {sparkline(goodput, width=width, lo=0.0).ljust(width)}  "
            f"{goodput[-1]:,.0f} units/s"
        )
    fairness = [v for _, v in store.points("fairness")]
    imbalance = [v for _, v in store.points("imbalance")]
    queue = [v for _, v in store.points("queue_depth")]
    summary = []
    if fairness:
        summary.append(f"fairness {fairness[-1]:.3f}")
    if imbalance:
        summary.append(f"imbalance {imbalance[-1]:.2f}x")
    if queue:
        summary.append(f"queue {int(queue[-1])}")
    if summary:
        lines.append("  ".join(summary))
    return _render_top_slo(lines, slo_report)


def _render_top_slo(
    lines: list[str], slo_report: Mapping[str, Any] | None
) -> str:
    if slo_report:
        lines.append("")
        lines.append(f"SLO: {slo_report.get('spec', '-')}")
        for row in slo_report.get("objectives", []):
            verdict = row.get("verdict", "-")
            mark = {"pass": "ok", "fail": "FAIL", "no-data": "n/a"}.get(
                verdict, verdict
            )
            measured = row.get("measured")
            shown = f"{measured:.4g}" if isinstance(measured, (int, float)) else "-"
            lines.append(
                f"  [{mark:>4}] {row.get('name')}: {row.get('expr')} "
                f"(measured {shown})"
            )
    return "\n".join(lines)
