"""Structured event log: spans and instants with run-id correlation.

The observability layer's second leg (next to the metrics registry and
the Chrome-trace exporter): every interesting host-side moment — a run
starting, a model fit, an interior-point solve, a sweep batch — can be
emitted as a *structured* record through the normal ``repro`` logging
hierarchy.  With the default text formatter the records read as
ordinary log lines; with ``--log-format json`` (see
:func:`repro.util.logging.configure_logging`) each becomes one JSON
object per line, ready for ``jq``/ingestion.

Correlation: a run id set via :func:`push_run_id` (the
:class:`~repro.runtime.runtime.Runtime` does this for every run) is
attached to every event emitted underneath it, from any module, without
threading the id through call signatures — it lives in a
:class:`contextvars.ContextVar`, so it is safe under threads and is
inherited by the real executor's worker threads.

Spans use *wall* time: they measure the host-side cost of scheduler
decisions (the paper's "~170 ms per solve" statistic), not virtual
simulation time — virtual-time spans live in
:class:`~repro.sim.trace.ExecutionTrace` and are exported by
:mod:`repro.obs.trace_export`.
"""

from __future__ import annotations

import contextlib
import contextvars
import hashlib
import itertools
import logging
import logging.handlers
import os
import time
from typing import Any, Iterator

from repro.errors import ConfigurationError
from repro.util.logging import JsonFormatter, get_logger

__all__ = [
    "EventLog",
    "current_run_id",
    "push_run_id",
    "new_run_id",
    "attach_jsonl_sink",
    "detach_sink",
]

_run_id_var: contextvars.ContextVar[str | None] = contextvars.ContextVar(
    "repro_run_id", default=None
)
_run_counter = itertools.count(1)


def new_run_id(seed_material: str = "") -> str:
    """A short, human-scannable run id.

    Deterministic inputs (config hashes) pass ``seed_material``;
    otherwise the id is a process-local sequence number plus the time,
    unique enough for log correlation without any global coordination.
    """
    if seed_material:
        digest = hashlib.sha256(seed_material.encode("utf-8")).hexdigest()
        return f"run-{digest[:12]}"
    return f"run-{int(time.time()) % 100000:05d}-{next(_run_counter)}"


def current_run_id() -> str | None:
    """The run id events in this context correlate under (or None)."""
    return _run_id_var.get()


@contextlib.contextmanager
def push_run_id(run_id: str) -> Iterator[str]:
    """Set the ambient run id for the duration of the ``with`` block."""
    token = _run_id_var.set(run_id)
    try:
        yield run_id
    finally:
        _run_id_var.reset(token)


class _TruncatingFileHandler(logging.handlers.RotatingFileHandler):
    """A size-capped sink with no backup generations.

    With ``backupCount=0`` the stdlib handler's rollover reopens the
    file in append mode — i.e. it never actually sheds bytes.  This
    variant truncates on rollover so ``max_bytes`` stays a real bound.
    """

    def doRollover(self) -> None:
        if self.stream:
            self.stream.close()
            self.stream = None
        self.stream = open(  # noqa: SIM115 - logging owns the handle
            self.baseFilename, "w", encoding=self.encoding
        )


def attach_jsonl_sink(
    path: str,
    *,
    max_bytes: int | None = None,
    backup_count: int = 1,
    level: int = logging.INFO,
) -> logging.Handler:
    """Attach a JSON-lines file sink to the ``repro`` logger hierarchy.

    Every record (structured events included) is appended to ``path``
    as one JSON object per line, independent of any console handler.
    With ``max_bytes`` set, the file rotates once it would exceed that
    size, keeping ``backup_count`` old files (``path.1`` .. ``path.N``)
    — long chaos campaigns get bounded disk use.  ``backup_count=0``
    keeps no history at all: the file is truncated in place once it
    reaches the cap.  With ``max_bytes``
    unset (the default) the file grows without limit, exactly as a
    plain append sink: default behaviour is unchanged.

    Returns the handler; pass it to :func:`detach_sink` to stop and
    close it.  The root logger level is lowered to ``level`` if it is
    currently stricter, so sink records are not filtered out by a
    console configuration.
    """
    if max_bytes is not None and max_bytes <= 0:
        raise ConfigurationError(
            f"max_bytes must be positive when set, got {max_bytes}"
        )
    if backup_count < 0:
        raise ConfigurationError(
            f"backup_count must be >= 0, got {backup_count}"
        )
    parent = os.path.dirname(os.path.abspath(path))
    os.makedirs(parent, exist_ok=True)
    if max_bytes is None:
        handler: logging.Handler = logging.FileHandler(path, encoding="utf-8")
    elif backup_count == 0:
        # stdlib RotatingFileHandler quietly keeps appending when
        # backupCount is 0, which would break the bounded-disk promise;
        # truncate in place instead.
        handler = _TruncatingFileHandler(
            path, maxBytes=int(max_bytes), encoding="utf-8"
        )
    else:
        handler = logging.handlers.RotatingFileHandler(
            path,
            maxBytes=int(max_bytes),
            backupCount=int(backup_count),
            encoding="utf-8",
        )
    handler.setFormatter(JsonFormatter())
    handler.setLevel(level)
    root = get_logger("repro")
    root.addHandler(handler)
    if root.level == logging.NOTSET or root.level > level:
        root.setLevel(level)
    return handler


def detach_sink(handler: logging.Handler) -> None:
    """Remove and close a sink previously attached by this module."""
    get_logger("repro").removeHandler(handler)
    handler.close()


class EventLog:
    """Emit structured span/instant events through a ``repro`` logger.

    Parameters
    ----------
    name:
        Logger suffix the events are emitted under (``obs.events`` by
        default; instrumented modules pass their own so per-module
        level filtering keeps working).
    level:
        Logging level of emitted records (INFO by default).
    """

    def __init__(self, name: str = "obs.events", *, level: int = logging.INFO) -> None:
        self._log = get_logger(name)
        self._level = level

    # ------------------------------------------------------------------
    def _emit(self, payload: dict[str, Any], message: str) -> None:
        run_id = _run_id_var.get()
        if run_id is not None:
            payload.setdefault("run_id", run_id)
        self._log.log(self._level, "%s", message, extra={"repro_event": payload})

    def instant(self, name: str, **attrs: Any) -> None:
        """Emit a point-in-time event."""
        payload = {"type": "instant", "name": name, "ts": time.time(), **attrs}
        detail = " ".join(f"{k}={v}" for k, v in attrs.items())
        self._emit(payload, f"event {name}" + (f" {detail}" if detail else ""))

    @contextlib.contextmanager
    def span(self, name: str, **attrs: Any) -> Iterator[dict[str, Any]]:
        """Emit begin/end events around a block, measuring wall time.

        Yields a mutable dict; keys added inside the block are attached
        to the end event (e.g. result sizes discovered mid-span).
        """
        extra: dict[str, Any] = {}
        t0 = time.perf_counter()
        payload = {"type": "span_begin", "name": name, "ts": time.time(), **attrs}
        self._emit(payload, f"begin {name}")
        try:
            yield extra
        finally:
            duration = time.perf_counter() - t0
            payload = {
                "type": "span_end",
                "name": name,
                "ts": time.time(),
                "duration_s": duration,
                **attrs,
                **extra,
            }
            self._emit(payload, f"end {name} ({duration * 1e3:.1f} ms)")
