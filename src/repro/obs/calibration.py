"""Prediction-calibration math for the scheduler decision ledger.

PLB-HeC allocates work from *predicted* per-device block times (the
fitted ``E_p[x]`` curves feeding the interior-point solve); this module
quantifies how wrong those predictions turn out to be once the blocks
actually execute.  Three statistics per device, all over relative
errors ``(predicted - observed) / observed``:

* **MAPE** — mean absolute percentage error, the headline accuracy
  number (Stevens & Klöckner's accuracy-vs-scope framing);
* **signed bias** — mean signed relative error: positive means the
  model systematically over-predicts (the device is faster than
  modelled), negative means under-prediction;
* **drift** — an EWMA of the signed relative error in completion
  order, so a model that *was* calibrated but stopped being so (device
  slowdown, workload shift) shows a moving tail even while the
  whole-run MAPE still looks fine.

Everything here is pure, NaN-safe math: observations with a
non-finite or non-positive side are skipped, never propagated, so a
fallback decision whose prediction could not be derived simply
contributes no residual.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from math import isfinite
from typing import Iterable, Sequence

from repro.errors import ConfigurationError

__all__ = [
    "DeviceCalibration",
    "ewma_drift",
    "mape",
    "relative_errors",
    "signed_bias",
    "summarize_calibration",
]

#: Default EWMA smoothing factor for the drift statistic: ~the last
#: seven observations dominate, matching the per-step cadence at the
#: default ``num_steps`` of the scheduler.
DRIFT_ALPHA = 0.3


def _valid(predicted: float, observed: float) -> bool:
    return (
        isfinite(predicted)
        and isfinite(observed)
        and predicted > 0.0
        and observed > 0.0
    )


def relative_errors(
    predicted: Sequence[float], observed: Sequence[float]
) -> list[float]:
    """Signed relative errors ``(p - o) / o`` over the valid pairs.

    Pairs with a non-finite or non-positive side are skipped (a NaN
    prediction means "the scheduler could not predict", not "infinitely
    wrong").
    """
    if len(predicted) != len(observed):
        raise ConfigurationError(
            f"predicted ({len(predicted)}) and observed ({len(observed)}) "
            "must pair up"
        )
    return [
        (p - o) / o for p, o in zip(predicted, observed) if _valid(p, o)
    ]


def mape(predicted: Sequence[float], observed: Sequence[float]) -> float:
    """Mean absolute percentage error over the valid pairs (NaN if none)."""
    errors = relative_errors(predicted, observed)
    if not errors:
        return float("nan")
    return sum(abs(e) for e in errors) / len(errors)


def signed_bias(
    predicted: Sequence[float], observed: Sequence[float]
) -> float:
    """Mean signed relative error over the valid pairs (NaN if none).

    Positive = over-prediction (device faster than modelled).
    """
    errors = relative_errors(predicted, observed)
    if not errors:
        return float("nan")
    return sum(errors) / len(errors)


def ewma_drift(
    rel_errors: Iterable[float], *, alpha: float = DRIFT_ALPHA
) -> float:
    """Final EWMA of a signed relative-error sequence (NaN if empty).

    ``drift_t = alpha * e_t + (1 - alpha) * drift_{t-1}``, seeded with
    the first error — the rolling tail the anomaly detector watches.
    """
    if not 0.0 < alpha <= 1.0:
        raise ConfigurationError(f"alpha must be in (0, 1], got {alpha}")
    drift = float("nan")
    for e in rel_errors:
        if not isfinite(e):
            continue
        drift = e if not isfinite(drift) else alpha * e + (1.0 - alpha) * drift
    return drift


@dataclass
class DeviceCalibration:
    """Streaming predicted-vs-observed accumulator for one device.

    Feed it completion-ordered ``(predicted_s, observed_s)`` pairs via
    :meth:`observe`; read the whole-run MAPE/bias and the rolling drift
    at any point.  Invalid pairs are counted (``skipped``) but excluded
    from every statistic.
    """

    device_id: str
    alpha: float = DRIFT_ALPHA
    count: int = 0
    skipped: int = 0
    _sum_abs: float = 0.0
    _sum_signed: float = 0.0
    _drift: float = float("nan")
    #: completion-ordered signed relative errors (the drift sparkline)
    series: list[float] = field(default_factory=list)

    def observe(self, predicted_s: float, observed_s: float) -> float | None:
        """Accumulate one pair; returns its relative error (None if skipped)."""
        if not _valid(predicted_s, observed_s):
            self.skipped += 1
            return None
        e = (predicted_s - observed_s) / observed_s
        self.count += 1
        self._sum_abs += abs(e)
        self._sum_signed += e
        self._drift = (
            e
            if not isfinite(self._drift)
            else self.alpha * e + (1.0 - self.alpha) * self._drift
        )
        self.series.append(e)
        return e

    @property
    def mape(self) -> float:
        return self._sum_abs / self.count if self.count else float("nan")

    @property
    def bias(self) -> float:
        return self._sum_signed / self.count if self.count else float("nan")

    @property
    def drift(self) -> float:
        return self._drift

    def to_dict(self) -> dict:
        """JSON-friendly summary (NaN statistics become None)."""

        def clean(v: float) -> float | None:
            return v if isfinite(v) else None

        return {
            "device": self.device_id,
            "blocks": self.count,
            "skipped": self.skipped,
            "mape": clean(self.mape),
            "bias": clean(self.bias),
            "drift": clean(self.drift),
            "series": list(self.series),
        }


def summarize_calibration(
    calibrations: Iterable[DeviceCalibration],
) -> dict[str, dict]:
    """Per-device summary dicts keyed by device id, insertion-ordered."""
    return {c.device_id: c.to_dict() for c in calibrations}
