"""Append-only benchmark/run history store (JSONL).

``BENCH_wallclock.json`` is a single overwritten snapshot: it tells you
where the repo is, never where it came from.  This module gives every
``repro bench`` invocation and every sweep execution a *trajectory*: one
JSON line per event, appended to ``.repro_history/history.jsonl`` (or
wherever ``REPRO_HISTORY`` points), carrying everything a later
comparison needs to decide whether two measurements are comparable at
all:

* a **host fingerprint** (platform, python, cpu count) plus its hash —
  black-box performance numbers do not transfer across machines
  (Stevens & Klöckner, arXiv:1904.09538), so the regression gate in
  :mod:`repro.obs.regress` refuses to compare entries whose
  fingerprints differ;
* the **config hash** of what ran (grid/app/policy/seed), so only
  like-for-like samples are pooled;
* the **git revision**, so a trend line can be mapped back to commits;
* the measured **laps** (bench entries) or outcome **samples** (run
  entries) and an optional metrics snapshot.

The store is deliberately dumb: append-only JSON lines, no index, no
locking beyond O_APPEND atomicity for the line sizes involved.  Query
helpers filter in memory — history files stay small (hundreds of
entries) for the lifetime of a repo.
"""

from __future__ import annotations

import hashlib
import json
import os
import platform
import subprocess
import time
from pathlib import Path
from typing import Any, Iterable, Mapping

from repro.errors import ConfigurationError
from repro.obs.report import config_hash
from repro.util.logging import get_logger

__all__ = [
    "HISTORY_SCHEMA",
    "DEFAULT_HISTORY_DIR",
    "HistoryStore",
    "bench_entry",
    "run_entry",
    "chaos_entry",
    "calibration_entry",
    "host_fingerprint",
    "fingerprint_hash",
    "git_rev",
    "validate_entry",
]

_log = get_logger("obs.history")

#: Bump when the entry layout changes incompatibly.
#: ("2": bench entries gained the ``profiled`` flag and the optional
#: ``hot_functions`` table; schema-1 entries read back as unprofiled.
#: "3": the ``chaos`` kind records campaign scorecards; the perf gate
#: pools bench laps only, so chaos entries are excluded by construction.
#: "4": the ``calibration`` kind records per-device prediction-accuracy
#: summaries from scheduler decision ledgers; like chaos entries they
#: carry an explicit marker and are excluded from the perf gate.)
HISTORY_SCHEMA = 4

#: Default store location, relative to the working directory.
DEFAULT_HISTORY_DIR = ".repro_history"

#: Entry kinds the store understands.
_KINDS = ("bench", "run", "chaos", "calibration")

#: Keys every entry must carry to be usable by the regression gate.
_REQUIRED_KEYS = ("schema", "kind", "recorded_at", "host", "host_hash", "config_hash")


def host_fingerprint() -> dict[str, Any]:
    """The machine identity performance numbers are only valid on."""
    return {
        "platform": platform.platform(),
        "python": platform.python_version(),
        "cpu_count": os.cpu_count(),
    }


def fingerprint_hash(fingerprint: Mapping[str, Any] | None = None) -> str:
    """Short stable hash of a host fingerprint (default: this host)."""
    blob = json.dumps(
        dict(fingerprint if fingerprint is not None else host_fingerprint()),
        sort_keys=True,
        default=str,
    )
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:12]


def git_rev(cwd: str | os.PathLike[str] | None = None) -> str | None:
    """The current git revision, or None outside a repo / without git."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=cwd,
            capture_output=True,
            text=True,
            timeout=5,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    rev = out.stdout.strip()
    return rev if out.returncode == 0 and rev else None


def validate_entry(entry: Mapping[str, Any]) -> list[str]:
    """Schema-check one entry; returns a list of problems (empty = ok)."""
    problems: list[str] = []
    for key in _REQUIRED_KEYS:
        if key not in entry:
            problems.append(f"missing key {key!r}")
    if problems:
        return problems
    if entry["kind"] not in _KINDS:
        problems.append(f"unknown kind {entry['kind']!r} (expected one of {_KINDS})")
    if not isinstance(entry["schema"], int):
        problems.append("schema must be an integer")
    if not isinstance(entry["host"], dict):
        problems.append("host must be a fingerprint dict")
    if entry["kind"] == "bench":
        laps = entry.get("laps")
        if not isinstance(laps, dict) or not laps:
            problems.append("bench entry needs a non-empty 'laps' dict")
        else:
            for name, value in laps.items():
                if not isinstance(value, (int, float)) or value != value or value < 0:
                    problems.append(f"lap {name!r} must be a non-negative number")
    if entry["kind"] == "run":
        samples = entry.get("samples")
        if not isinstance(samples, dict) or "makespan" not in samples:
            problems.append("run entry needs a 'samples' dict with 'makespan'")
    if entry["kind"] == "chaos":
        summary = entry.get("summary")
        if not isinstance(summary, dict) or "survival_rate" not in summary:
            problems.append(
                "chaos entry needs a 'summary' dict with 'survival_rate'"
            )
    if entry["kind"] == "calibration":
        devices = entry.get("devices")
        if not isinstance(devices, dict) or not devices:
            problems.append(
                "calibration entry needs a non-empty 'devices' dict"
            )
        else:
            for device, summary in devices.items():
                if not isinstance(summary, dict) or "mape" not in summary:
                    problems.append(
                        f"calibration device {device!r} needs a dict with 'mape'"
                    )
                    break
    # Schema-2 additions: both optional so schema-1 lines (and minimal
    # hand-written entries) stay readable, but malformed when present.
    if not isinstance(entry.get("profiled", False), bool):
        problems.append("'profiled' must be a boolean when present")
    hot = entry.get("hot_functions")
    if hot is not None:
        if not isinstance(hot, list):
            problems.append("'hot_functions' must be a list when present")
        else:
            for i, row in enumerate(hot):
                if not isinstance(row, dict) or "function" not in row:
                    problems.append(
                        f"hot_functions[{i}] must be a dict with 'function'"
                    )
                    break
    return problems


def _stamp(entry: dict[str, Any]) -> dict[str, Any]:
    """Fill the shared bookkeeping fields an entry may omit."""
    entry.setdefault("schema", HISTORY_SCHEMA)
    entry.setdefault("recorded_at", time.strftime("%Y-%m-%dT%H:%M:%S%z"))
    entry.setdefault("host", host_fingerprint())
    entry.setdefault("host_hash", fingerprint_hash(entry["host"]))
    entry.setdefault("git_rev", git_rev())
    return entry


def bench_entry(report: Mapping[str, Any]) -> dict[str, Any]:
    """Build a history entry from a :func:`repro.util.timing.perf_report`.

    The config hash covers the grid *and* the job count: a ``jobs=1``
    parallel lap is a different experiment from a ``jobs=8`` one.

    Benchmarks taken under ``--profile`` carry ``profiled: true`` plus
    their ``hot_functions`` table.  The profiled flag is deliberately
    *outside* the config hash: a profiled lap measures the same
    experiment (just with tracer overhead), so the perf gate finds the
    entry via the same hash and excludes it explicitly — hiding it
    behind a different hash would make the exclusion untestable.
    """
    meta = dict(report.get("meta", {}))
    config = {"grid": meta.get("grid", {}), "jobs": meta.get("jobs")}
    entry: dict[str, Any] = {
        "kind": "bench",
        "config": config,
        "config_hash": config_hash(config),
        "laps": dict(report["timings_s"]),
        "profiled": bool(meta.get("profiled", False)),
        "meta": {
            k: meta.get(k)
            for k in (
                "parallel_speedup",
                "parallel_speedup_reason",
                "effective_jobs",
                "warm_over_cold_fraction",
                "parallel_matches_serial",
            )
            if k in meta
        },
    }
    if meta.get("hot_functions"):
        entry["hot_functions"] = [dict(row) for row in meta["hot_functions"]]
    if "host" in report:
        entry["host"] = dict(report["host"])
    return _stamp(entry)


def run_entry(report: Mapping[str, Any], *, wall_s: float | None = None) -> dict[str, Any]:
    """Build a history entry from a RunReport dict (sweep payloads)."""
    entry: dict[str, Any] = {
        "kind": "run",
        "run_id": report.get("run_id"),
        "config": dict(report.get("config", {})),
        "config_hash": report["config_hash"],
        "samples": {
            "makespan": report["makespan"],
            "solver_overhead_s": report.get("solver_overhead_s"),
            "rebalances": report.get("rebalances"),
        },
    }
    if wall_s is not None:
        entry["samples"]["wall_s"] = float(wall_s)
    return _stamp(entry)


def chaos_entry(scorecard: Mapping[str, Any]) -> dict[str, Any]:
    """Build a history entry from a chaos-campaign scorecard.

    The config hash covers the campaign grid (apps, sizes, policies,
    seed, fault budget), so survival-rate trends pool like-for-like
    campaigns only.  Mirroring the bench ``profiled`` pattern, the
    ``chaos: true`` marker is *outside* the hash: the perf-regression
    gate pools bench laps exclusively, and the explicit marker keeps
    that exclusion assertable instead of incidental.
    """
    config = dict(scorecard.get("config", {}))
    policies = {
        name: {
            "survival_rate": agg.get("survival_rate"),
            "mean_degradation": agg.get("mean_degradation"),
            "mean_recovery_lag": agg.get("mean_recovery_lag"),
            "violations": agg.get("violations"),
        }
        for name, agg in dict(scorecard.get("policies", {})).items()
    }
    total = int(scorecard.get("total_runs", 0) or 0)
    survived = int(scorecard.get("survived_runs", 0) or 0)
    entry: dict[str, Any] = {
        "kind": "chaos",
        "chaos": True,
        "config": config,
        "config_hash": config_hash(config),
        "summary": {
            "survival_rate": survived / total if total else 0.0,
            "total_runs": total,
            "survived_runs": survived,
            "total_violations": int(scorecard.get("total_violations", 0) or 0),
            "all_invariants_ok": bool(scorecard.get("all_invariants_ok")),
            "policies": policies,
        },
    }
    return _stamp(entry)


def calibration_entry(
    report: Mapping[str, Any], ledger: Mapping[str, Any]
) -> dict[str, Any]:
    """Build a history entry from a run's decision-ledger calibration.

    ``report`` is the RunReport dict the ledger belongs to (supplies the
    config/config-hash/run-id identity); ``ledger`` is the ledger's
    ``to_dict`` form.  Mirroring the chaos pattern, the
    ``calibration: true`` marker sits *outside* the config hash: the
    perf-regression gate pools bench laps only, and the explicit marker
    keeps that exclusion assertable instead of incidental.
    """
    devices = {
        device: {
            "mape": summary.get("mape"),
            "bias": summary.get("bias"),
            "drift": summary.get("drift"),
            "blocks": summary.get("blocks"),
            "skipped": summary.get("skipped"),
        }
        for device, summary in dict(ledger.get("calibration", {})).items()
    }
    attribution = dict(ledger.get("attribution", {}))
    # the ledger lists fired stages in decision order; the history
    # entry stores the per-stage counts (the chaos scorecard's shape)
    stages: dict[str, int] = {}
    for stage in ledger.get("fallback_stages", ()):
        stages[stage] = stages.get(stage, 0) + 1
    entry: dict[str, Any] = {
        "kind": "calibration",
        "calibration": True,
        "run_id": report.get("run_id") or ledger.get("run_id"),
        "config": dict(report.get("config", {})),
        "config_hash": report["config_hash"],
        "devices": devices,
        "summary": {
            "decisions": len(ledger.get("decisions", ())),
            "attributed": attribution.get("attributed"),
            "unattributed": attribution.get("unattributed"),
            "triggers": dict(ledger.get("triggers", {})),
            "fallback_stages": stages,
        },
    }
    return _stamp(entry)


class HistoryStore:
    """The append-only JSONL store with filtering query helpers.

    ``root`` may be a directory (entries live in ``<root>/history.jsonl``)
    or a path ending in ``.jsonl`` (used verbatim — how CI points the
    gate at a committed baseline file).
    """

    def __init__(self, root: str | os.PathLike[str] = DEFAULT_HISTORY_DIR) -> None:
        root = Path(root)
        if root.suffix == ".jsonl":
            self.path = root
            self.root = root.parent
        else:
            self.root = root
            self.path = root / "history.jsonl"

    @staticmethod
    def from_env() -> "HistoryStore | None":
        """Honour ``REPRO_HISTORY``: off / ``1`` = default dir / a path."""
        value = os.environ.get("REPRO_HISTORY", "").strip()
        if value in ("", "0", "off", "false", "no"):
            return None
        if value in ("1", "on", "true", "yes"):
            return HistoryStore(DEFAULT_HISTORY_DIR)
        return HistoryStore(value)

    # ------------------------------------------------------------------
    def append(self, entry: Mapping[str, Any]) -> dict[str, Any]:
        """Stamp, validate and append one entry; returns the stored form.

        Raises
        ------
        ConfigurationError
            When the entry fails :func:`validate_entry` — a malformed
            entry would silently poison every later comparison.
        """
        stored = _stamp(dict(entry))
        problems = validate_entry(stored)
        if problems:
            raise ConfigurationError(
                "refusing to append malformed history entry: " + "; ".join(problems)
            )
        self.path.parent.mkdir(parents=True, exist_ok=True)
        line = json.dumps(stored, sort_keys=True, default=str)
        with self.path.open("a", encoding="utf-8") as fh:
            fh.write(line + "\n")
        return stored

    def entries(
        self,
        *,
        kind: str | None = None,
        config_hash: str | None = None,
        host_hash: str | None = None,
        last: int | None = None,
        profiled: bool | None = None,
    ) -> list[dict[str, Any]]:
        """Entries in append order, filtered; corrupt lines are skipped.

        ``profiled=False`` keeps only entries recorded without the
        profiler (schema-1 entries predate the flag and count as
        unprofiled); ``profiled=True`` keeps only profiled ones;
        ``None`` disables the filter.
        """
        out: list[dict[str, Any]] = []
        try:
            lines: Iterable[str] = self.path.read_text(encoding="utf-8").splitlines()
        except FileNotFoundError:
            return out
        for lineno, line in enumerate(lines, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                entry = json.loads(line)
            except json.JSONDecodeError:
                _log.warning("skipping corrupt history line %s:%d", self.path, lineno)
                continue
            if not isinstance(entry, dict):
                _log.warning("skipping non-object history line %s:%d", self.path, lineno)
                continue
            if kind is not None and entry.get("kind") != kind:
                continue
            if config_hash is not None and entry.get("config_hash") != config_hash:
                continue
            if host_hash is not None and entry.get("host_hash") != host_hash:
                continue
            if profiled is not None and bool(entry.get("profiled", False)) != profiled:
                continue
            out.append(entry)
        if last is not None:
            out = out[-last:]
        return out

    # ------------------------------------------------------------------
    def lap_samples(
        self,
        lap: str,
        *,
        config_hash: str | None = None,
        host_hash: str | None = None,
        last: int | None = None,
        profiled: bool | None = None,
    ) -> list[float]:
        """The trajectory of one bench lap, oldest first."""
        return [
            float(e["laps"][lap])
            for e in self.entries(
                kind="bench",
                config_hash=config_hash,
                host_hash=host_hash,
                last=last,
                profiled=profiled,
            )
            if lap in e.get("laps", {})
        ]

    def hot_function_shares(
        self,
        *,
        config_hash: str | None = None,
        host_hash: str | None = None,
        last: int | None = None,
    ) -> list[dict[str, float]]:
        """Per-entry ``{function: share}`` maps from profiled benches.

        One dict per matched profiled bench entry, oldest first — the
        baseline samples for the hot-path drift detector in
        :mod:`repro.obs.regress`.
        """
        out: list[dict[str, float]] = []
        for e in self.entries(
            kind="bench",
            config_hash=config_hash,
            host_hash=host_hash,
            last=last,
            profiled=True,
        ):
            rows = e.get("hot_functions") or []
            shares = {
                str(row["function"]): float(row.get("share", 0.0))
                for row in rows
                if isinstance(row, dict) and "function" in row
            }
            if shares:
                out.append(shares)
        return out

    def survival_samples(
        self,
        config_hash: str,
        *,
        host_hash: str | None = None,
        last: int | None = None,
    ) -> list[float]:
        """Survival-rate trajectory of one campaign config, oldest first."""
        return [
            float(e["summary"]["survival_rate"])
            for e in self.entries(
                kind="chaos",
                config_hash=config_hash,
                host_hash=host_hash,
                last=last,
            )
            if e.get("summary", {}).get("survival_rate") is not None
        ]

    def makespan_samples(
        self,
        config_hash: str,
        *,
        host_hash: str | None = None,
        last: int | None = None,
    ) -> list[float]:
        """Recorded makespans of one run configuration, oldest first."""
        return [
            float(e["samples"]["makespan"])
            for e in self.entries(
                kind="run", config_hash=config_hash, host_hash=host_hash, last=last
            )
            if e.get("samples", {}).get("makespan") is not None
        ]
