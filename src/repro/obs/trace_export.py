"""Chrome trace-event / Perfetto export of execution traces.

Converts an :class:`~repro.sim.trace.ExecutionTrace` into the Chrome
trace-event JSON format (the ``{"traceEvents": [...]}`` document
``chrome://tracing`` and https://ui.perfetto.dev load directly), so a
simulated run can be inspected on a real timeline UI instead of ASCII
Gantt art:

* one named thread track per processing unit, carrying two slices per
  task — the transfer (``cat="transfer"``) and the computation
  (``cat="exec"``/``"probe"``, coloured by phase);
* a ``scheduler`` track with one slice per charged solver/fit overhead
  (the paper's "master thinking time") and instant markers for phase
  transitions;
* global instant markers for rebalances and device failures;
* optionally, the critical path from a :mod:`repro.obs.critpath`
  analysis: on-path execution slices are recolored and chained by flow
  arrows (``s``/``t``/``f`` events), so the device chain that bounded
  the makespan reads straight off the timeline.

Virtual seconds are exported as microseconds (the format's native
unit), so a 3.2 s simulated makespan reads as 3.2 s on the UI ruler.

The format reference is the "Trace Event Format" document (Google,
2016); ``X`` (complete), ``i`` (instant), ``M`` (metadata) and the
``s``/``t``/``f`` flow events are emitted, which every viewer supports.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro.errors import ConfigurationError
from repro.sim.trace import ExecutionTrace

__all__ = [
    "profile_to_events",
    "trace_to_events",
    "trace_to_chrome",
    "write_chrome_trace",
    "validate_chrome_trace",
]

#: chrome://tracing reserved colour names per phase label; unknown
#: phases fall back to the viewer's hash-based palette.
PHASE_CNAMES = {
    "probe": "thread_state_iowait",
    "exec": "thread_state_running",
}
_TRANSFER_CNAME = "rail_load"
#: chrome://tracing reserved colour for slices on the critical path.
_CRITPATH_CNAME = "terrible"
_SCHEDULER_TID = 0
_US = 1e6  # seconds -> microseconds


def _meta(pid: int, name: str, value: str, tid: int | None = None) -> dict:
    event = {"ph": "M", "pid": pid, "name": name, "args": {"name": value}}
    if tid is not None:
        event["tid"] = tid
    return event


def trace_to_events(
    trace: ExecutionTrace,
    *,
    pid: int = 1,
    process_name: str = "simulation",
    run_id: str | None = None,
    decisions: list[dict] | None = None,
    alerts: list[dict] | None = None,
    critpath: dict | None = None,
) -> list[dict]:
    """Flatten one trace into trace-event dicts under one process id.

    ``pid``/``process_name`` allow several runs (e.g. one per policy in
    a comparison) to coexist in a single document as separate process
    groups.  ``decisions`` (decision dicts from a
    :meth:`~repro.obs.ledger.DecisionLedger.to_dict`) adds one instant
    marker per scheduler decision on the scheduler track, linking the
    timeline back to ``repro explain`` ids.  ``alerts`` (SLO alert
    dicts from :func:`repro.obs.slo.slo_alerts`) adds one global
    instant per violated objective at its first violating sample, so a
    breached SLO is visible right on the timeline.  ``critpath`` (an
    analysis from :func:`repro.obs.critpath.analyze_trace` of this
    trace) recolors on-path execution slices, tags them with
    ``args.critpath``, and chains them with one flow-arrow sequence.
    """
    # (worker, start, end) identity of the critical path's task nodes;
    # floats come from the same records, so exact equality matches
    on_path: set[tuple[str, float, float]] = set()
    for node in (critpath or {}).get("path", []):
        if node.get("kind") == "task":
            on_path.add((node["worker"], node["start"], node["end"]))
    events: list[dict] = [_meta(pid, "process_name", process_name)]
    if run_id:
        events.append(
            {
                "ph": "M",
                "pid": pid,
                "name": "process_labels",
                "args": {"labels": run_id},
            }
        )

    # --- per-worker tracks (tid 0 is reserved for the scheduler) -------
    tids = {worker: i + 1 for i, worker in enumerate(trace.worker_ids)}
    events.append(_meta(pid, "thread_name", "scheduler", _SCHEDULER_TID))
    for worker, tid in tids.items():
        events.append(_meta(pid, "thread_name", worker, tid))

    flow_anchors: list[tuple[float, int, str]] = []  # (ts, tid, worker)
    for r in trace.records:
        tid = tids[r.worker_id]
        flagged = (r.worker_id, r.start_time, r.end_time) in on_path
        args = {"units": r.units, "step": r.step, "phase": r.phase}
        if flagged:
            args = dict(args, critpath=True)
        if r.transfer_time > 0.0:
            events.append(
                {
                    "ph": "X",
                    "pid": pid,
                    "tid": tid,
                    "name": f"transfer {r.units}u",
                    "cat": "transfer",
                    "cname": _TRANSFER_CNAME,
                    "ts": r.start_time * _US,
                    "dur": r.transfer_time * _US,
                    "args": args,
                }
            )
        exec_event = {
            "ph": "X",
            "pid": pid,
            "tid": tid,
            "name": f"{r.phase} {r.units}u",
            "cat": r.phase,
            "ts": (r.start_time + r.transfer_time) * _US,
            "dur": r.exec_time * _US,
            "args": args,
        }
        cname = _CRITPATH_CNAME if flagged else PHASE_CNAMES.get(r.phase)
        if cname:
            exec_event["cname"] = cname
        events.append(exec_event)
        if flagged:
            flow_anchors.append((exec_event["ts"], tid, r.worker_id))

    # one flow-arrow chain threading the on-path slices in time order
    # (anchored at each slice's start so viewers bind them correctly)
    flow_anchors.sort()
    if len(flow_anchors) >= 2:
        for i, (ts, tid, worker) in enumerate(flow_anchors):
            ph = "s" if i == 0 else ("f" if i == len(flow_anchors) - 1 else "t")
            event = {
                "ph": ph,
                "pid": pid,
                "tid": tid,
                "name": "critical-path",
                "cat": "critpath",
                "id": pid,
                "ts": ts,
                "args": {"worker": worker, "hop": i},
            }
            if ph == "f":
                event["bp"] = "e"
            events.append(event)

    # --- scheduler track: solver overhead spans + phase marks ----------
    for start, seconds in zip(trace.solver_overhead_times, trace.solver_overheads):
        events.append(
            {
                "ph": "X",
                "pid": pid,
                "tid": _SCHEDULER_TID,
                "name": "solver",
                "cat": "scheduler",
                "cname": "thread_state_runnable",
                "ts": start * _US,
                "dur": seconds * _US,
                "args": {"overhead_s": seconds},
            }
        )
    for t, phase in trace.phase_marks:
        events.append(
            {
                "ph": "i",
                "pid": pid,
                "tid": _SCHEDULER_TID,
                "name": f"phase:{phase}",
                "cat": "phase",
                "s": "p",
                "ts": t * _US,
            }
        )
    for d in decisions or []:
        solver = d.get("solver") or {}
        ts = float(d.get("t") or 0.0)
        events.append(
            {
                "ph": "i",
                "pid": pid,
                "tid": _SCHEDULER_TID,
                "name": f"decision:{d.get('id', '?')}",
                "cat": "decision",
                "s": "p",
                "ts": max(ts, 0.0) * _US,
                "args": {
                    "id": d.get("id"),
                    "trigger": d.get("trigger"),
                    "method": solver.get("method"),
                    "fallback_stage": solver.get("fallback_stage"),
                    "predicted_time_s": d.get("predicted_time"),
                },
            }
        )

    for alert in alerts or []:
        events.append(
            {
                "ph": "i",
                "pid": pid,
                "tid": _SCHEDULER_TID,
                "name": str(alert.get("name", "alert")),
                "cat": "alert",
                "s": "g",
                "ts": max(float(alert.get("t", 0.0)), 0.0) * _US,
                "args": {
                    "objective": alert.get("objective"),
                    "severity": alert.get("severity"),
                    "expr": alert.get("expr"),
                    "measured": alert.get("measured"),
                    "threshold": alert.get("threshold"),
                },
            }
        )

    # --- global markers ------------------------------------------------
    for t in trace.rebalance_times:
        events.append(
            {
                "ph": "i",
                "pid": pid,
                "tid": _SCHEDULER_TID,
                "name": "rebalance",
                "cat": "rebalance",
                "s": "g",
                "ts": t * _US,
            }
        )
    for t, device in trace.failures:
        events.append(
            {
                "ph": "i",
                "pid": pid,
                "tid": tids.get(device, _SCHEDULER_TID),
                "name": f"failure:{device}",
                "cat": "failure",
                "s": "g",
                "ts": t * _US,
            }
        )
    for t, device in trace.recoveries:
        events.append(
            {
                "ph": "i",
                "pid": pid,
                "tid": tids.get(device, _SCHEDULER_TID),
                "name": f"recovery:{device}",
                "cat": "recovery",
                "s": "g",
                "ts": t * _US,
            }
        )
    return events


def profile_to_events(
    snapshot: dict,
    *,
    pid: int,
    process_name: str = "cpu-profile",
    top_per_phase: int = 15,
) -> list[dict]:
    """Render a profiler snapshot as trace-event slices under one pid.

    The snapshot (see :meth:`repro.obs.profiler.PhaseProfiler.snapshot`)
    has no timeline — cProfile keeps aggregates — so the slices are a
    *synthetic* sequential layout: one span per phase (in canonical
    phase order, width = the phase's host wall clock), and inside each
    phase its hottest functions laid end to end by self time.  Widths
    are proportional to real measured time; only the ordering is
    synthetic.  Keeping the profile in its own process group means the
    virtual-time simulation tracks in the same document are untouched —
    host microseconds and virtual microseconds never share a track.
    """
    events: list[dict] = [_meta(pid, "process_name", process_name)]
    events.append(_meta(pid, "thread_name", "host-cpu", _SCHEDULER_TID))
    cursor = 0.0
    phases = snapshot.get("phases", {})
    wall = snapshot.get("wall_s", {})
    order = [p for p in ("probe", "fit", "solve", "execute", "overhead") if p in phases]
    order += sorted(p for p in phases if p not in order)
    for phase in order:
        pdata = phases[phase]
        phase_dur = max(float(wall.get(phase, pdata.get("self_s", 0.0))), 0.0)
        if phase_dur <= 0.0:
            continue
        events.append(
            {
                "ph": "X",
                "pid": pid,
                "tid": _SCHEDULER_TID,
                "name": f"profile:{phase}",
                "cat": "cpu-profile",
                "ts": cursor * _US,
                "dur": phase_dur * _US,
                "args": {
                    "phase": phase,
                    "self_s": float(pdata.get("self_s", 0.0)),
                    "wall_s": float(wall.get(phase, 0.0)),
                },
            }
        )
        hot = sorted(
            pdata.get("functions", {}).values(),
            key=lambda f: (-float(f.get("self_s", 0.0)), f.get("name", "")),
        )[:top_per_phase]
        inner = cursor
        for f in hot:
            dur = min(float(f.get("self_s", 0.0)), cursor + phase_dur - inner)
            if dur <= 0.0:
                continue
            events.append(
                {
                    "ph": "X",
                    "pid": pid,
                    "tid": _SCHEDULER_TID + 1,
                    "name": str(f.get("name", "?")),
                    "cat": "cpu-profile-function",
                    "ts": inner * _US,
                    "dur": dur * _US,
                    "args": {
                        "phase": phase,
                        "ncalls": int(f.get("ncalls", 0)),
                        "self_s": float(f.get("self_s", 0.0)),
                        "cum_s": float(f.get("cum_s", 0.0)),
                    },
                }
            )
            inner += dur
        cursor += phase_dur
    if len(events) > 2:
        events.insert(2, _meta(pid, "thread_name", "hot-functions", _SCHEDULER_TID + 1))
    return events


def trace_to_chrome(
    traces: ExecutionTrace | list[tuple[str, ExecutionTrace]],
    *,
    run_id: str | None = None,
    metadata: dict | None = None,
    profile: dict | None = None,
    decisions: list[dict] | None = None,
    alerts: list[dict] | None = None,
    critpath: dict | None = None,
) -> dict:
    """Build a complete Chrome trace-event document.

    Parameters
    ----------
    traces:
        A single trace, or ``[(label, trace), ...]`` — each labelled
        trace becomes its own process group (used by ``compare
        --trace-out`` to put every policy on one timeline).
    run_id / metadata:
        Attached under ``otherData`` for provenance.
    profile:
        Optional profiler snapshot; its slices are appended as a
        dedicated process group *after* every simulation process (pid
        ``len(traces) + 1``), so host-time profile slices never mix
        with virtual-time simulation tracks.
    decisions:
        Optional decision dicts (from a decision ledger's ``to_dict``)
        rendered as instant markers on the *first* trace's scheduler
        track — the ``repro run`` path exports one trace, which is the
        one the ledger belongs to.
    alerts:
        Optional SLO alert dicts (:func:`repro.obs.slo.slo_alerts`),
        stamped as global instants on the first trace like decisions.
    critpath:
        Optional :func:`repro.obs.critpath.analyze_trace` analysis of
        the first trace; its on-path slices are recolored and chained
        with flow arrows (first trace only, like decisions).
    """
    if isinstance(traces, ExecutionTrace):
        traces = [("simulation", traces)]
    if not traces:
        raise ConfigurationError("trace export needs at least one trace")
    events: list[dict] = []
    for index, (label, trace) in enumerate(traces):
        events.extend(
            trace_to_events(
                trace,
                pid=index + 1,
                process_name=label,
                run_id=run_id,
                decisions=decisions if index == 0 else None,
                alerts=alerts if index == 0 else None,
                critpath=critpath if index == 0 else None,
            )
        )
    if profile is not None:
        events.extend(profile_to_events(profile, pid=len(traces) + 1))
    other = {"source": "repro", "schema": "chrome-trace-event"}
    if run_id:
        other["run_id"] = run_id
    if metadata:
        other.update(metadata)
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": other,
    }


def write_chrome_trace(
    doc_or_trace: dict | ExecutionTrace,
    path: str | os.PathLike[str],
    **kwargs,
) -> Path:
    """Write a trace document (building it first if given a raw trace).

    Atomic (temp file + rename): a crashed export never leaves a torn
    ``trace.json`` behind.  Returns the written path.
    """
    if isinstance(doc_or_trace, ExecutionTrace):
        doc = trace_to_chrome(doc_or_trace, **kwargs)
    else:
        if kwargs:
            raise ConfigurationError(
                "keyword options only apply when passing a raw ExecutionTrace"
            )
        doc = doc_or_trace
    errors = validate_chrome_trace(doc)
    if errors:
        raise ConfigurationError(
            "refusing to write invalid trace document: " + "; ".join(errors[:5])
        )
    target = Path(path)
    tmp = target.with_suffix(target.suffix + ".tmp%d" % os.getpid())
    tmp.write_text(json.dumps(doc, sort_keys=True), encoding="utf-8")
    tmp.replace(target)
    return target


def validate_chrome_trace(doc: dict) -> list[str]:
    """Check a document against the trace-event format's requirements.

    Returns a list of problems (empty = valid).  Used by the exporter
    itself, the test suite, and the CI artefact check; intentionally a
    validator rather than an assertion so callers choose the failure
    mode.
    """
    errors: list[str] = []
    if not isinstance(doc, dict):
        return ["document must be a JSON object"]
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents must be a list"]
    if not events:
        errors.append("traceEvents is empty")
    for i, ev in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(ev, dict):
            errors.append(f"{where}: not an object")
            continue
        ph = ev.get("ph")
        if ph not in ("X", "B", "E", "i", "I", "M", "C", "b", "e", "n", "s", "t", "f"):
            errors.append(f"{where}: unknown phase {ph!r}")
            continue
        if "name" not in ev:
            errors.append(f"{where}: missing name")
        if "pid" not in ev:
            errors.append(f"{where}: missing pid")
        if ph == "M":
            continue  # metadata events need no timestamp
        ts = ev.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            errors.append(f"{where}: bad ts {ts!r}")
        if ph == "X":
            dur = ev.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                errors.append(f"{where}: complete event with bad dur {dur!r}")
        if len(errors) >= 50:
            errors.append("... (further problems suppressed)")
            break
    return errors
