"""The StarPU greedy baseline.

"The greedy consisted in dividing the input set in pieces and assigning
each piece of input to any idle processing unit, without any priority
assignment" (paper Sec. IV): the input is cut into a fixed number of
equal pieces up front, and idle units self-schedule from that pool.

Its weakness on heterogeneous clusters is structural, and exactly what
the paper's evaluation shows: piece size ignores device speed, so a
slow CPU that grabs a piece near the end of the run straggles the whole
makespan — harmless with one (nearly homogeneous) machine, ruinous with
four heterogeneous ones.  For small inputs the pieces are small, all
algorithms run the devices below saturation, and greedy's zero decision
overhead makes it the best of the lot — the paper's observed crossover.
"""

from __future__ import annotations

from repro.runtime.scheduler_api import SchedulingContext, SchedulingPolicy

__all__ = ["Greedy"]


class Greedy(SchedulingPolicy):
    """Fixed-division self-scheduling: idle workers take the next piece.

    Parameters
    ----------
    num_pieces:
        How many equal pieces the input is divided into (default 64,
        a typical StarPU eager-scheduler task count).
    piece_size:
        Explicit piece size in units; overrides ``num_pieces``.
    """

    name = "greedy"

    def __init__(
        self, *, num_pieces: int = 64, piece_size: int | None = None
    ) -> None:
        if num_pieces <= 0:
            raise ValueError(f"num_pieces must be positive, got {num_pieces}")
        if piece_size is not None and piece_size <= 0:
            raise ValueError(f"piece_size must be positive, got {piece_size}")
        self.num_pieces = num_pieces
        self._piece_size = piece_size

    def setup(self, ctx: SchedulingContext) -> None:
        super().setup(ctx)
        if self._piece_size is not None:
            self.piece_size = self._piece_size
        else:
            self.piece_size = max(ctx.total_units // self.num_pieces, 1)

    def next_block(self, worker_id: str, now: float) -> int:
        return self.piece_size
