"""An omniscient upper-bound policy (ablation tool, not a paper baseline).

Reads the simulator's hidden ground truth to compute the ideal
equal-finish-time partition, then dispatches each device its exact share
in a single block.  No online algorithm can beat it (up to measurement
noise and integer rounding), so experiment reports use it to show how
much of the attainable headroom each real policy captures.
"""

from __future__ import annotations

from repro.cluster.perfmodel import GroundTruth
from repro.errors import ConfigurationError
from repro.runtime.scheduler_api import SchedulingContext, SchedulingPolicy

__all__ = ["Oracle"]


class Oracle(SchedulingPolicy):
    """Dispatches the ground-truth ideal partition in one step.

    Parameters
    ----------
    ground_truth:
        The simulator's :class:`~repro.cluster.perfmodel.GroundTruth`.
        Handing this to a policy is deliberate cheating — it exists only
        to calibrate the other policies' results.
    """

    name = "oracle"

    def __init__(self, ground_truth: GroundTruth) -> None:
        if not isinstance(ground_truth, GroundTruth):
            raise ConfigurationError(
                f"ground_truth must be a GroundTruth, got {ground_truth!r}"
            )
        self.ground_truth = ground_truth

    def setup(self, ctx: SchedulingContext) -> None:
        super().setup(ctx)
        ideal = self.ground_truth.ideal_partition(ctx.total_units)
        # Hamilton (largest remainder) rounding to integers summing to N
        floors = {d: int(v) for d, v in ideal.items()}
        leftover = ctx.total_units - sum(floors.values())
        by_frac = sorted(
            ideal, key=lambda d: ideal[d] - floors[d], reverse=True
        )
        for d in by_frac[:leftover]:
            floors[d] += 1
        self._assignment = floors
        self._dispatched: set[str] = set()
        self._mop_up = False

    def next_block(self, worker_id: str, now: float) -> int:
        if self._mop_up:
            return max(self.ctx.initial_block_size, 1)
        if worker_id in self._dispatched:
            return 0
        units = self._assignment.get(worker_id, 0)
        if units <= 0:
            return 0
        self._dispatched.add(worker_id)
        return units

    def on_device_failed(self, device_id: str, now: float) -> None:
        """Degrade to self-scheduled mop-up of the lost device's range.

        The oracle's one-shot split is invalidated by a failure; the
        surviving devices drain the returned work in small pieces (the
        oracle keeps no online model to re-split optimally mid-run).
        """
        self._mop_up = True
