"""Guided self-scheduling (Polychronopoulos & Kuck, 1987).

A classic from the self-scheduling literature the paper's related work
builds on: each idle processor takes ``remaining / P`` iterations, so
chunks start large (low dispatch overhead) and shrink geometrically
toward the tail (good load balance).  GSS is *heterogeneity-blind* —
every processor gets the same fair-share formula regardless of speed —
which is precisely the gap the weighted approaches (HDSS) and the
model-based approach (PLB-HeC) close; having it in the baseline set
isolates how much of their gain comes from weighting at all versus from
tapering alone.
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.runtime.scheduler_api import SchedulingContext, SchedulingPolicy

__all__ = ["GuidedSelfScheduling"]


class GuidedSelfScheduling(SchedulingPolicy):
    """Chunks of ``remaining / (P * k)`` per request.

    Parameters
    ----------
    divisor:
        The ``k`` factor; 1 is classic GSS, larger values taper faster.
    min_chunk:
        Chunk floor (defaults to the run's initial block size, the
        shared granularity knob of the evaluation).
    """

    name = "gss"

    def __init__(self, *, divisor: float = 1.0, min_chunk: int | None = None) -> None:
        if divisor <= 0.0:
            raise ConfigurationError(f"divisor must be > 0, got {divisor}")
        if min_chunk is not None and min_chunk < 1:
            raise ConfigurationError(f"min_chunk must be >= 1, got {min_chunk}")
        self.divisor = divisor
        self._min_chunk = min_chunk

    def setup(self, ctx: SchedulingContext) -> None:
        super().setup(ctx)
        self._remaining = ctx.total_units
        self._num_workers = len(ctx.device_ids)
        self.min_chunk = self._min_chunk or max(ctx.initial_block_size // 2, 1)

    def next_block(self, worker_id: str, now: float) -> int:
        chunk = int(self._remaining / (self._num_workers * self.divisor))
        return max(chunk, self.min_chunk)

    def on_block_dispatched(self, worker_id: str, granted: int, now: float) -> None:
        self._remaining = max(self._remaining - granted, 0)

    def on_task_finished(self, record, remaining: int, now: float) -> None:
        self._remaining = remaining

    def on_device_failed(self, device_id: str, now: float) -> None:
        """Shrink the fair-share divisor to the surviving workers."""
        self._num_workers = max(self._num_workers - 1, 1)
