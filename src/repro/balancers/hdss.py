"""HDSS — Heterogeneous Dynamic Self-Scheduling [Belviranli et al. 2013].

Per the paper's Sec. II description of [19], two phases:

* **Adaptive phase**: block sizes grow geometrically
  (``s0, 2 s0, 4 s0, ...``) while the scheduler accumulates
  (block size, achieved rate) samples; a *logarithmic* curve
  ``rate(x) = a + b ln x`` is least-squares fitted per unit and its
  value at the large-block end becomes the unit's scalar weight.  The
  weights are computed once and "are not changed throughout the
  execution".
* **Completion phase**: remaining work is self-scheduled with block
  sizes proportional to the weights and *decreasing* over time (larger
  blocks first, a guided-scheduling taper), which smooths the tail.

The default adaptive phase follows the evaluated paper's
characterisation: probe sizes are *uniform across devices* and rounds
are synchronised ("non-optimal block sizes are used to estimate the
computational capabilities of each processing unit", producing the
phase-1 idleness its Fig. 7 shows — fast devices wait for slow ones to
chew through the same-size block).  Passing ``per_device_growth=True``
enables a smarter variant — asynchronous, per-device size growth that
stops at a rate plateau — useful as an ablation showing how much of
PLB-HeC's advantage comes from its speed-scaled probing alone.

Either way, the single-number-per-device weight is the limitation the
paper contrasts PLB-HeC's full performance curves against.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.runtime.scheduler_api import SchedulingContext, SchedulingPolicy
from repro.sim.trace import TaskRecord

__all__ = ["HDSS"]


class HDSS(SchedulingPolicy):
    """Log-fit weighted self-scheduling with a decreasing-block tail.

    Parameters
    ----------
    max_adaptive_rounds:
        Cap on probe rounds (sizes ``s0, 2 s0, 4 s0, ...``).
    adaptive_fraction:
        Adaptive phase budget: it ends once this fraction of the data
        has been consumed (bounds the cost of uniform probing).
    per_device_growth:
        False (default): uniform sizes, synchronised rounds — the
        behaviour the evaluated paper attributes to HDSS.  True:
        asynchronous per-device growth stopping at a rate plateau.
    plateau_tol:
        Relative rate improvement that counts as "still improving"
        (per-device variant only).
    taper:
        Fraction of a device's fair share of the remaining work it
        receives per completion-phase request (guided scheduling;
        0.5 halves block sizes as the run progresses).
    min_block:
        Floor for completion-phase blocks; defaults to half the initial
        block size.
    """

    name = "hdss"

    def __init__(
        self,
        *,
        max_adaptive_rounds: int = 4,
        adaptive_fraction: float = 0.04,
        per_device_growth: bool = False,
        plateau_tol: float = 0.05,
        taper: float = 0.5,
        min_block: int | None = None,
    ) -> None:
        if max_adaptive_rounds < 2:
            raise ConfigurationError("max_adaptive_rounds must be >= 2")
        if not 0.0 < adaptive_fraction <= 1.0:
            raise ConfigurationError("adaptive_fraction must be in (0, 1]")
        if plateau_tol <= 0.0:
            raise ConfigurationError("plateau_tol must be > 0")
        if not 0.0 < taper <= 1.0:
            raise ConfigurationError(f"taper must be in (0,1], got {taper}")
        if min_block is not None and min_block < 1:
            raise ConfigurationError("min_block must be >= 1")
        self.max_adaptive_rounds = max_adaptive_rounds
        self.adaptive_fraction = adaptive_fraction
        self.per_device_growth = per_device_growth
        self.plateau_tol = plateau_tol
        self.taper = taper
        self.min_block = min_block

    # ------------------------------------------------------------------
    def setup(self, ctx: SchedulingContext) -> None:
        super().setup(ctx)
        self._ids = ctx.device_ids
        self._phase = "adaptive"
        self._round: dict[str, int] = {d: 0 for d in self._ids}
        self._samples: dict[str, list[tuple[float, float]]] = {
            d: [] for d in self._ids
        }
        self._stable: set[str] = set()
        self._weights: dict[str, float] = {}
        self._remaining_estimate = ctx.total_units
        self._consumed = 0
        self._min_block = self.min_block or max(ctx.initial_block_size // 2, 1)
        # uniform-round bookkeeping
        self._uniform_round = 1
        self._in_round: set[str] = set()
        self._done_round: set[str] = set()

    # ------------------------------------------------------------------
    # adaptive phase
    # ------------------------------------------------------------------
    def _size_for_round(self, round_index: int) -> int:
        return self.ctx.initial_block_size * (2 ** (round_index - 1))

    def _budget_left(self) -> bool:
        return (
            self._consumed < self.adaptive_fraction * self.ctx.total_units
            and self._uniform_round <= self.max_adaptive_rounds
        )

    def _fit_weights(self) -> None:
        """Least-squares log fit per device; weight = rate at large x."""
        x_ref = max(self.ctx.total_units / max(len(self._ids), 1), 2.0)
        for d in self._ids:
            pts = self._samples[d]
            if not pts:
                self._weights[d] = 1e-9
                continue
            x = np.array([p[0] for p in pts])
            r = np.array([p[1] for p in pts])
            if len(pts) >= 2 and np.ptp(np.log(x)) > 0:
                design = np.column_stack([np.ones_like(x), np.log(x)])
                (a, b), *_ = np.linalg.lstsq(design, r, rcond=None)
                w = a + b * np.log(x_ref)
            else:
                w = float(r.mean())
            self._weights[d] = max(float(w), float(r.max()) * 1e-3, 1e-9)

    def _enter_completion(self) -> None:
        self._fit_weights()
        self._phase = "completion"

    # ------------------------------------------------------------------
    # policy protocol
    # ------------------------------------------------------------------
    def next_block(self, worker_id: str, now: float) -> int:
        if self._phase == "adaptive":
            if self.per_device_growth:
                return self._size_for_round(self._round[worker_id] + 1)
            # uniform synchronised rounds: one block per device per round
            if worker_id in self._in_round or worker_id in self._done_round:
                return 0
            return self._size_for_round(self._uniform_round)
        share = self._weights[worker_id] / sum(self._weights.values())
        block = int(round(self._remaining_estimate * share * self.taper))
        return max(block, self._min_block)

    def on_block_dispatched(self, worker_id: str, granted: int, now: float) -> None:
        self._consumed += granted
        self._remaining_estimate = max(self._remaining_estimate - granted, 0)
        if self._phase == "adaptive" and not self.per_device_growth:
            self._in_round.add(worker_id)

    def on_task_finished(self, record: TaskRecord, remaining: int, now: float) -> None:
        self._remaining_estimate = remaining
        if self._phase != "adaptive":
            return
        d = record.worker_id
        if record.total_time > 0:
            self._samples[d].append(
                (float(record.units), record.units / record.total_time)
            )
        if self.per_device_growth:
            self._per_device_update(d)
            return
        # uniform synchronised rounds; the barrier requires every live
        # device to have completed (not merely every device dispatched so
        # far — on the thread backend workers poll asynchronously and a
        # dispatched-so-far barrier can close a round early)
        self._in_round.discard(d)
        self._done_round.add(d)
        if self._in_round or not set(self._ids) <= self._done_round:
            return  # barrier: the round is still running
        if remaining == 0:
            return
        self._uniform_round += 1
        self._done_round.clear()
        if not self._budget_left():
            self._enter_completion()

    def _per_device_update(self, d: str) -> None:
        samples = self._samples[d]
        if d not in self._stable and len(samples) >= 2:
            last, prev = samples[-1][1], samples[-2][1]
            if (last - prev) / max(prev, 1e-12) < self.plateau_tol:
                self._stable.add(d)
        self._round[d] += 1
        if self._round[d] >= self.max_adaptive_rounds:
            self._stable.add(d)
        budget_spent = self._consumed >= self.adaptive_fraction * self.ctx.total_units
        if len(self._stable) == len(self._ids) or budget_spent:
            self._enter_completion()

    def on_device_failed(self, device_id: str, now: float) -> None:
        """Drop the device; close the probe barrier if it was holding it."""
        self._ids = tuple(d for d in self._ids if d != device_id)
        self._samples.pop(device_id, None)
        self._round.pop(device_id, None)
        self._stable.discard(device_id)
        self._weights.pop(device_id, None)
        if self._phase == "adaptive" and not self.per_device_growth:
            self._in_round.discard(device_id)
            self._done_round.discard(device_id)
            if not self._in_round and self._done_round:
                self._uniform_round += 1
                self._done_round.clear()
                if not self._budget_left():
                    self._enter_completion()

    def phase_label(self, worker_id: str) -> str:
        return "probe" if self._phase == "adaptive" else "exec"

    def step_index(self, worker_id: str) -> int:
        if self._phase == "adaptive":
            if self.per_device_growth:
                return self._round.get(worker_id, 0)
            return self._uniform_round
        return self.max_adaptive_rounds + 1

    @property
    def weights(self) -> dict[str, float]:
        """The fitted per-device weights (empty before the fit)."""
        return dict(self._weights)
