"""Static profile-based distribution [de Camargo, WAMCA 2012].

The static baseline the paper's related work analyses: device profiles
come from *previous executions*; the distribution that equalises the
predicted execution times is computed once, before the run, and never
adjusted.  Its documented drawbacks — an initially unbalanced
distribution cannot be corrected, and profiles must exist beforehand —
are exactly what they are here: the policy requires pre-fitted
:class:`~repro.modeling.perf_profile.DeviceModel` objects and performs
no adaptation.
"""

from __future__ import annotations

from typing import Mapping

from repro.errors import ConfigurationError
from repro.modeling.perf_profile import DeviceModel
from repro.runtime.scheduler_api import SchedulingContext, SchedulingPolicy
from repro.sim.trace import TaskRecord
from repro.solver.partition import solve_block_partition

__all__ = ["StaticProfile"]


class StaticProfile(SchedulingPolicy):
    """One offline equal-time split, dispatched in ``num_steps`` waves.

    Parameters
    ----------
    profiles:
        Pre-fitted device models from a previous execution, keyed by
        device id; every device in the run must be covered.
    num_steps:
        The fixed split is dealt out in this many identical waves (the
        original system pipelines fixed-size stages).
    """

    name = "static"

    def __init__(
        self, profiles: Mapping[str, DeviceModel], *, num_steps: int = 1
    ) -> None:
        if not profiles:
            raise ConfigurationError("profiles must be non-empty")
        if num_steps < 1:
            raise ConfigurationError("num_steps must be >= 1")
        self.profiles = dict(profiles)
        self.num_steps = num_steps

    def setup(self, ctx: SchedulingContext) -> None:
        super().setup(ctx)
        missing = [d for d in ctx.device_ids if d not in self.profiles]
        if missing:
            raise ConfigurationError(
                f"no offline profile for device(s) {missing}; static "
                "distribution requires previous-execution profiles"
            )
        models = {d: self.profiles[d] for d in ctx.device_ids}
        self._remaining = ctx.total_units
        self._outstanding: dict[str, int] = {d: 0 for d in ctx.device_ids}
        self._replan(models, float(ctx.total_units))

    def _replan(self, models: Mapping[str, DeviceModel], units: float) -> None:
        """Solve the offline split for ``units`` over ``models``."""
        result = solve_block_partition(dict(models), units)
        self.partition = result
        self._per_step = {
            d: u / self.num_steps for d, u in result.units_by_device.items()
        }
        self._steps_given = {d: 0 for d in models}

    def next_block(self, worker_id: str, now: float) -> int:
        if self._steps_given.get(worker_id, self.num_steps) >= self.num_steps:
            # waves exhausted: mop up any shortfall from integer rounding
            # or lost blocks the wave plan cannot see
            if self._remaining > 0:
                return min(
                    self._remaining, max(self.ctx.initial_block_size, 1)
                )
            return 0
        self._steps_given[worker_id] += 1
        units = self._per_step.get(worker_id, 0.0)
        # accumulate fractional residue into the final wave
        if self._steps_given[worker_id] == self.num_steps:
            total = self.partition.units_by_device.get(worker_id, 0.0)
            given = units * (self.num_steps - 1)
            units = total - given
        return max(int(round(units)), 0)

    def on_block_dispatched(
        self, worker_id: str, granted_units: int, now: float
    ) -> None:
        self._remaining -= granted_units
        self._outstanding[worker_id] = (
            self._outstanding.get(worker_id, 0) + granted_units
        )

    def on_task_finished(
        self, record: TaskRecord, remaining: int, now: float
    ) -> None:
        d = record.worker_id
        self._outstanding[d] = max(
            self._outstanding.get(d, record.units) - record.units, 0
        )
        self._remaining = remaining

    def on_device_failed(self, device_id: str, now: float) -> None:
        """Re-run the offline split over the survivors.

        "Static" means no *runtime* adaptation — but a permanently dead
        device leaves its share unprocessed, so the undispatched work
        (plus the failed device's lost in-flight block) is re-split over
        the surviving profiles with one more offline solve; the original
        system would similarly be re-run with the surviving machine
        file.
        """
        lost = self._outstanding.pop(device_id, 0)
        self._remaining += lost
        self._per_step.pop(device_id, None)
        self._steps_given.pop(device_id, None)
        survivors = {
            d: self.profiles[d] for d in self._steps_given if d in self.profiles
        }
        if survivors and self._remaining > 0:
            self._replan(survivors, float(self._remaining))

    def on_device_recovered(self, device_id: str, now: float) -> None:
        """Fold a recovered device back in with a fresh survivor split."""
        if device_id in self._steps_given or device_id not in self.profiles:
            return
        self._steps_given[device_id] = 0
        self._outstanding.setdefault(device_id, 0)
        models = {d: self.profiles[d] for d in self._steps_given}
        if self._remaining > 0:
            self._replan(models, float(self._remaining))

    def step_index(self, worker_id: str) -> int:
        return self._steps_given.get(worker_id, 0)
