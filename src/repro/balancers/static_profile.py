"""Static profile-based distribution [de Camargo, WAMCA 2012].

The static baseline the paper's related work analyses: device profiles
come from *previous executions*; the distribution that equalises the
predicted execution times is computed once, before the run, and never
adjusted.  Its documented drawbacks — an initially unbalanced
distribution cannot be corrected, and profiles must exist beforehand —
are exactly what they are here: the policy requires pre-fitted
:class:`~repro.modeling.perf_profile.DeviceModel` objects and performs
no adaptation.
"""

from __future__ import annotations

from typing import Mapping

from repro.errors import ConfigurationError
from repro.modeling.perf_profile import DeviceModel
from repro.runtime.scheduler_api import SchedulingContext, SchedulingPolicy
from repro.solver.partition import solve_block_partition

__all__ = ["StaticProfile"]


class StaticProfile(SchedulingPolicy):
    """One offline equal-time split, dispatched in ``num_steps`` waves.

    Parameters
    ----------
    profiles:
        Pre-fitted device models from a previous execution, keyed by
        device id; every device in the run must be covered.
    num_steps:
        The fixed split is dealt out in this many identical waves (the
        original system pipelines fixed-size stages).
    """

    name = "static"

    def __init__(
        self, profiles: Mapping[str, DeviceModel], *, num_steps: int = 1
    ) -> None:
        if not profiles:
            raise ConfigurationError("profiles must be non-empty")
        if num_steps < 1:
            raise ConfigurationError("num_steps must be >= 1")
        self.profiles = dict(profiles)
        self.num_steps = num_steps

    def setup(self, ctx: SchedulingContext) -> None:
        super().setup(ctx)
        missing = [d for d in ctx.device_ids if d not in self.profiles]
        if missing:
            raise ConfigurationError(
                f"no offline profile for device(s) {missing}; static "
                "distribution requires previous-execution profiles"
            )
        models = {d: self.profiles[d] for d in ctx.device_ids}
        result = solve_block_partition(models, float(ctx.total_units))
        self.partition = result
        per_step = {
            d: u / self.num_steps for d, u in result.units_by_device.items()
        }
        self._per_step = per_step
        self._steps_given = {d: 0 for d in ctx.device_ids}

    def next_block(self, worker_id: str, now: float) -> int:
        if self._steps_given[worker_id] >= self.num_steps:
            return 0
        self._steps_given[worker_id] += 1
        units = self._per_step.get(worker_id, 0.0)
        # accumulate fractional residue into the final wave
        if self._steps_given[worker_id] == self.num_steps:
            total = self.partition.units_by_device.get(worker_id, 0.0)
            given = units * (self.num_steps - 1)
            units = total - given
        return max(int(round(units)), 0)

    def step_index(self, worker_id: str) -> int:
        return self._steps_given.get(worker_id, 0)
