"""Baseline load-balancing policies the paper compares against.

* :class:`Greedy` — StarPU's default: fixed-size pieces to any idle
  unit, no priorities (paper Sec. IV);
* :class:`Acosta` — relative-power iterative rebalancing with
  per-iteration synchronisation [Acosta et al., ISPA 2012];
* :class:`HDSS` — Heterogeneous Dynamic Self-Scheduling: adaptive phase
  with logarithmic-fit weights, then a completion phase with decreasing
  block sizes [Belviranli et al., TACO 2013];
* :class:`StaticProfile` — offline profile-based static split
  [de Camargo, WAMCA 2012] (the static baseline the paper's related
  work discusses);
* :class:`GuidedSelfScheduling` — classic heterogeneity-blind GSS
  [Polychronopoulos & Kuck 1987], isolating tapering from weighting;
* :class:`Oracle` — a deliberately cheating upper bound that reads the
  simulator's ground truth; used in ablations only.
"""

from repro.balancers.acosta import Acosta
from repro.balancers.greedy import Greedy
from repro.balancers.gss import GuidedSelfScheduling
from repro.balancers.hdss import HDSS
from repro.balancers.oracle import Oracle
from repro.balancers.static_profile import StaticProfile

__all__ = [
    "Greedy",
    "Acosta",
    "HDSS",
    "GuidedSelfScheduling",
    "Oracle",
    "StaticProfile",
]
