"""Acosta et al.'s relative-power dynamic load balancing.

Per the paper's Sec. II description of [18]: execution proceeds in
synchronised iterations.  Every processor records the time it spent on
its last load in a shared vector; if the spread exceeds a user
threshold, each processor computes its *relative power*
``RP_p = load_p / time_p``, the powers are summed (SRP) and the next
iteration's load is assigned proportionally — smoothed with a weighted
average of the previous distribution, which is why convergence is
asymptotic ("this may cause suboptimal load distribution during several
iterations").

Adaptation to a divisible workload: the domain is processed in
``num_steps`` equal quanta; each quantum is split according to the
current (smoothed) relative powers, with a synchronisation barrier
between quanta.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.runtime.scheduler_api import SchedulingContext, SchedulingPolicy
from repro.sim.trace import TaskRecord

__all__ = ["Acosta"]


class Acosta(SchedulingPolicy):
    """Iterative relative-power balancing with per-step barriers.

    Parameters
    ----------
    threshold:
        Relative finish-time spread above which the distribution is
        recomputed (the paper's user-defined threshold; 0.1 matches the
        evaluation setup).
    smoothing:
        Weight of the newly measured relative power in the running
        average (the "simple weighted average" of the paper).
    ramp / max_step_fraction:
        The iteration quanta grow geometrically (factor ``ramp``) from
        a probe-sized first step up to ``max_step_fraction`` of the
        domain, mirroring the original's iterative-application setting:
        early, badly-balanced iterations are bounded in cost, and the
        distribution converges asymptotically while the quanta grow.
    """

    name = "acosta"

    def __init__(
        self,
        *,
        threshold: float = 0.1,
        smoothing: float = 0.35,
        ramp: float = 2.0,
        max_step_fraction: float = 0.125,
    ) -> None:
        if not 0.0 < threshold:
            raise ConfigurationError(f"threshold must be > 0, got {threshold}")
        if not 0.0 < smoothing <= 1.0:
            raise ConfigurationError(f"smoothing must be in (0,1], got {smoothing}")
        if ramp < 1.0:
            raise ConfigurationError(f"ramp must be >= 1, got {ramp}")
        if not 0.0 < max_step_fraction <= 1.0:
            raise ConfigurationError(
                f"max_step_fraction must be in (0,1], got {max_step_fraction}"
            )
        self.threshold = threshold
        self.smoothing = smoothing
        self.ramp = ramp
        self.max_step_fraction = max_step_fraction

    # ------------------------------------------------------------------
    def setup(self, ctx: SchedulingContext) -> None:
        super().setup(ctx)
        ids = ctx.device_ids
        n = len(ids)
        self._ids = ids
        self._step = 0
        self._remaining = ctx.total_units
        # equal initial shares — the algorithm has no prior information
        self._shares = {d: 1.0 / n for d in ids}
        self._smoothed_rp: dict[str, float] = {d: 1.0 / n for d in ids}
        self._pending: dict[str, int] = {}  # step-assignments not yet dispatched
        self._step_times: dict[str, float] = {}
        self._dispatched: dict[str, int] = {}
        self._begin_step()

    def _begin_step(self) -> None:
        self._step += 1
        self._step_times.clear()
        self._pending.clear()
        self._dispatched.clear()
        self._requested: set[str] = set()
        if self._step == 1:
            # bootstrap iteration: every processor runs one small probe
            # block ("the execution of the previous task" seeds the RPs)
            for d in self._ids:
                self._pending[d] = self.ctx.initial_block_size
            return
        base = self.ctx.initial_block_size * len(self._ids)
        q_ramp = base * self.ramp ** (self._step - 1)
        q_cap = self.ctx.total_units * self.max_step_fraction
        q = max(int(round(min(q_ramp, q_cap))), len(self._ids))
        for d in self._ids:
            self._pending[d] = max(int(round(self._shares[d] * q)), 1)

    def next_block(self, worker_id: str, now: float) -> int:
        if worker_id in self._requested:
            return 0  # barrier: one block per device per step
        units = self._pending.get(worker_id, 0)
        if units <= 0:
            return 0
        self._requested.add(worker_id)
        return units

    def on_block_dispatched(self, worker_id: str, granted_units: int, now: float) -> None:
        self._dispatched[worker_id] = granted_units

    def on_task_finished(self, record: TaskRecord, remaining: int, now: float) -> None:
        self._step_times[record.worker_id] = record.total_time
        # the barrier requires every live device (not merely every device
        # dispatched so far — thread-backend workers poll asynchronously)
        if not set(self._ids) <= set(self._step_times):
            return  # barrier: wait for the whole step
        active = [d for d in self._ids if d in self._dispatched]
        times = np.array([self._step_times[d] for d in active])
        loads = np.array([self._dispatched[d] for d in active], dtype=float)
        t_max, t_min = float(times.max()), float(times.min())
        if t_max > 0 and (t_max - t_min) / t_max > self.threshold:
            rp = loads / np.maximum(times, 1e-12)
            # normalise measured powers before averaging so the running
            # mean mixes comparable quantities across steps
            rp = rp / rp.sum()
            for i, d in enumerate(active):
                self._smoothed_rp[d] = (
                    (1.0 - self.smoothing) * self._smoothed_rp[d]
                    + self.smoothing * float(rp[i])
                )
            srp = sum(self._smoothed_rp.values())
            self._shares = {d: self._smoothed_rp[d] / srp for d in self._ids}
        if remaining > 0:
            self._remaining = remaining
            self._begin_step()

    def on_device_failed(self, device_id: str, now: float) -> None:
        """Drop the device and renormalise the relative powers."""
        self._ids = tuple(d for d in self._ids if d != device_id)
        self._pending.pop(device_id, None)
        self._dispatched.pop(device_id, None)
        self._step_times.pop(device_id, None)
        self._requested.discard(device_id)
        self._smoothed_rp.pop(device_id, None)
        srp = sum(self._smoothed_rp.values())
        if srp > 0:
            self._shares = {d: self._smoothed_rp[d] / srp for d in self._ids}
        # the failure may have been holding the step barrier
        if self._step_times and set(self._ids) <= set(self._step_times):
            self._begin_step()

    def phase_label(self, worker_id: str) -> str:
        return "exec"

    def step_index(self, worker_id: str) -> int:
        return self._step
