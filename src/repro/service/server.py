"""The DES-hosted serving loop.

:class:`ClusterService` owns one :class:`~repro.sim.engine.Engine` and
plays a seeded open-loop arrival trace against a shared cluster:

* arrivals land in a bounded :class:`~repro.service.admission.AdmissionQueue`
  (backpressure + deterministic shedding);
* up to ``max_active`` jobs run concurrently, their blocks dispatched
  to free devices by a :class:`~repro.service.balancer.ContinuousBalancer`
  on a periodic collect→calculate→rebalance cycle
  (:meth:`Engine.schedule_periodic`);
* block times come from each template's ground-truth cost model (plus
  optional seeded lognormal noise), so the whole service is a pure
  function of ``(config, seed)`` — equal seeds give byte-identical
  scorecards;
* the robustness layer reacts to injected faults: per-device circuit
  breakers, per-tenant retry budgets, per-job deadlines that reclaim
  in-flight blocks by cancelling their completion events.

Shutdown is strict: when the last job reaches a terminal state the
service cancels its periodic tasks and pending fault events, and
:meth:`run` raises if anything is still left in the event queue — a
leaked event is a teardown bug, not a rounding error.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.cluster import GroundTruth, paper_cluster
from repro.cluster.topology import Cluster
from repro.errors import ConfigurationError, SimulationError
from repro.obs.metrics import get_registry
from repro.obs.timeseries import TimeSeriesStore, jain_fairness
from repro.runtime.sim_executor import (
    DeviceFailure,
    Perturbation,
    TransferFault,
    TransientFailure,
)
from repro.service.admission import SHED_POLICIES, AdmissionQueue
from repro.service.arrivals import ArrivalSpec, generate_arrivals
from repro.service.balancer import BALANCER_FLAVORS, ContinuousBalancer
from repro.service.breakers import CircuitBreaker
from repro.service.jobs import Job, JobStatus
from repro.sim.engine import Engine
from repro.sim.random import RandomStreams
from repro.util.logging import get_logger

__all__ = ["ServiceConfig", "ClusterService", "run_service"]

_log = get_logger("service.server")


@dataclass(frozen=True)
class ServiceConfig:
    """Everything that determines one service episode."""

    arrivals: ArrivalSpec = field(default_factory=ArrivalSpec)
    machines: int = 2
    policy: str = "plb-hec"
    queue_limit: int = 16
    shed_policy: str = "reject"
    max_active: int = 4
    deadline_factor: float = 0.0
    retry_budget: int = 2
    rebalance_interval: float = 0.5
    sample_interval: float = 0.0
    noise_sigma: float = 0.0
    seed: int = 0
    breaker_threshold: int = 3
    breaker_cooldown: float = 2.0
    breaker_jitter: float = 0.1
    faults: tuple = ()

    def __post_init__(self) -> None:
        if not 1 <= self.machines <= 4:
            raise ConfigurationError(
                f"machines must be in 1..4, got {self.machines}"
            )
        if self.policy not in BALANCER_FLAVORS:
            raise ConfigurationError(
                f"policy must be one of {BALANCER_FLAVORS}, got {self.policy!r}"
            )
        if self.shed_policy not in SHED_POLICIES:
            raise ConfigurationError(
                f"shed_policy must be one of {SHED_POLICIES}, "
                f"got {self.shed_policy!r}"
            )
        if self.max_active < 1:
            raise ConfigurationError(
                f"max_active must be >= 1, got {self.max_active}"
            )
        if self.deadline_factor < 0.0:
            raise ConfigurationError(
                f"deadline_factor must be >= 0, got {self.deadline_factor}"
            )
        if self.retry_budget < 0:
            raise ConfigurationError(
                f"retry_budget must be >= 0, got {self.retry_budget}"
            )
        if self.rebalance_interval <= 0.0:
            raise ConfigurationError(
                f"rebalance_interval must be > 0, got {self.rebalance_interval}"
            )

    def to_dict(self) -> dict:
        from repro.resilience.faults import fault_to_dict

        return {
            "arrivals": self.arrivals.to_dict(),
            "machines": int(self.machines),
            "policy": self.policy,
            "queue_limit": int(self.queue_limit),
            "shed_policy": self.shed_policy,
            "max_active": int(self.max_active),
            "deadline_factor": float(self.deadline_factor),
            "retry_budget": int(self.retry_budget),
            "rebalance_interval": float(self.rebalance_interval),
            "sample_interval": float(self.sample_interval),
            "noise_sigma": float(self.noise_sigma),
            "seed": int(self.seed),
            "breaker_threshold": int(self.breaker_threshold),
            "breaker_cooldown": float(self.breaker_cooldown),
            "breaker_jitter": float(self.breaker_jitter),
            "faults": [fault_to_dict(f) for f in self.faults],
        }

    def to_sweep_json(self) -> str:
        """Canonical JSON for ``RunSpec.service_json``.

        Drops the seed — the sweep supplies it per run (``run_seed``),
        so one service config string addresses every replication.
        """
        import json

        data = {k: v for k, v in self.to_dict().items() if k != "seed"}
        return json.dumps(data, sort_keys=True)

    @staticmethod
    def from_dict(data: dict, *, seed: int | None = None) -> "ServiceConfig":
        from repro.resilience.faults import fault_from_dict

        return ServiceConfig(
            arrivals=ArrivalSpec.from_dict(data.get("arrivals", {})),
            machines=int(data.get("machines", 2)),
            policy=str(data.get("policy", "plb-hec")),
            queue_limit=int(data.get("queue_limit", 16)),
            shed_policy=str(data.get("shed_policy", "reject")),
            max_active=int(data.get("max_active", 4)),
            deadline_factor=float(data.get("deadline_factor", 0.0)),
            retry_budget=int(data.get("retry_budget", 2)),
            rebalance_interval=float(data.get("rebalance_interval", 0.5)),
            sample_interval=float(data.get("sample_interval", 0.0)),
            noise_sigma=float(data.get("noise_sigma", 0.0)),
            seed=int(data["seed"] if seed is None else seed),
            breaker_threshold=int(data.get("breaker_threshold", 3)),
            breaker_cooldown=float(data.get("breaker_cooldown", 2.0)),
            breaker_jitter=float(data.get("breaker_jitter", 0.1)),
            faults=tuple(
                fault_from_dict(f) for f in data.get("faults", ())
            ),
        )


class ClusterService:
    """One service episode over one cluster (single-use, like a run)."""

    def __init__(
        self,
        config: ServiceConfig,
        *,
        cluster_factory: Callable[[int], Cluster] = paper_cluster,
        solver_hook=None,
    ) -> None:
        self.config = config
        self.cluster = cluster_factory(config.machines)
        self.order = [d.device_id for d in self.cluster.devices()]
        self.engine = Engine()
        self.streams = RandomStreams(config.seed)
        spec = config.arrivals

        from repro.experiments.runner import make_application

        # one cost model per app template; jobs index into these
        self.templates: list[dict] = []
        for name, size in spec.templates:
            app = make_application(name, size)
            gt = GroundTruth(self.cluster, app.kernel_characteristics())
            units = app.total_units
            probe = max(units // 64, 1)
            capacity = sum(
                probe / max(gt.total_time(d, probe), 1e-12) for d in self.order
            )
            self.templates.append(
                {
                    "name": name,
                    "units": units,
                    "gt": gt,
                    "probe": probe,
                    # fault-free all-devices seconds for one job: prices
                    # deadlines and sizes nothing else
                    "ideal_s": units / max(capacity, 1e-12),
                }
            )

        self.balancer = ContinuousBalancer(
            self.order,
            templates=len(self.templates),
            flavor=config.policy,
            solver_hook=solver_hook,
        )
        self.admission = AdmissionQueue(config.queue_limit, config.shed_policy)
        self.breakers = {
            d: CircuitBreaker(
                d,
                failure_threshold=config.breaker_threshold,
                cooldown=config.breaker_cooldown,
                jitter=config.breaker_jitter,
                streams=self.streams,
            )
            for d in self.order
        }
        self.store = TimeSeriesStore()
        self.quantum = config.rebalance_interval / 2.0

        # ---- mutable episode state -----------------------------------
        self.jobs: list[Job] = []
        self.active: list[Job] = []
        self.busy: dict[str, tuple[Job, int, float, float, float]] = {}
        self.failed: set[str] = set()
        self.perm_failed: set[str] = set()
        self._perturb: list[Perturbation] = []
        self._transfer_faults: list[TransferFault] = []
        self._deadline_events: dict[int, object] = {}
        self._fault_events: list = []
        self._pending_recoveries = 0
        self._arrivals_pending = 0
        self._finished = False
        self.end_time = 0.0
        self.samples_taken = 0
        self._window_completed = 0
        self.counts = {
            "submitted": 0,
            "completed": 0,
            "rejected": 0,
            "shed": 0,
            "timeout": 0,
            "failed": 0,
            "starved": 0,
        }
        self.retry_consumed: dict[int, int] = {}
        self.budget_exhausted = 0
        self.latencies: list[float] = []
        self.served_units = 0
        #: cross-cutting invariant violations (must stay empty)
        self.invariant_errors: list[str] = []
        self._ran = False

    # ---- lifecycle ---------------------------------------------------

    def run(self) -> dict:
        """Play the whole episode; returns the scorecard."""
        from repro.service.scorecard import build_scorecard

        if self._ran:
            raise SimulationError("a ClusterService is single-use")
        self._ran = True
        engine = self.engine
        arrivals = generate_arrivals(self.config.arrivals, self.streams)
        self._arrivals_pending = len(arrivals)
        for arr in arrivals:
            engine.schedule_at(
                arr.time, lambda a=arr: self._arrive(a), tag="arrive"
            )
        self._schedule_faults()
        interval = self.config.sample_interval or self.config.rebalance_interval
        self._rebalance_task = engine.schedule_periodic(
            self.config.rebalance_interval,
            self._rebalance_tick,
            tag="serve:rebalance",
            continue_while=self._ticking,
        )
        self._sampler_task = engine.schedule_periodic(
            interval, self._sample, tag="serve:sample",
            continue_while=self._ticking,
        )
        engine.run()
        if not self._finished:
            # starvation (e.g. every device dead): account the stuck
            # jobs so conservation still holds, then tear down
            self._starve_remaining(engine.now)
            self._finish(engine.now)
        if len(engine.queue) != 0:
            raise SimulationError(
                f"service shutdown leaked {len(engine.queue)} event(s) "
                "in the queue"
            )
        registry = get_registry()
        registry.inc("serve.jobs_submitted", self.counts["submitted"])
        registry.inc("serve.jobs_completed", self.counts["completed"])
        registry.inc("serve.rebalances", self.balancer.rebalances)
        return build_scorecard(self)

    def _ticking(self) -> bool:
        if self._finished:
            return False
        alive = any(d not in self.failed for d in self.order)
        return alive or self._pending_recoveries > 0

    def _finish(self, now: float) -> None:
        # close the telemetry with the drained state, so last(...) SLO
        # aggregates see the final queue/backlog, not the last tick's
        self._sample(now)
        self._finished = True
        self.end_time = now
        self._rebalance_task.cancel()
        self._sampler_task.cancel()
        for ev in self._fault_events:
            self.engine.cancel(ev)
        self._fault_events.clear()
        for ev in self._deadline_events.values():
            self.engine.cancel(ev)
        self._deadline_events.clear()

    def _maybe_finish(self, now: float) -> None:
        if self._finished:
            return
        if self._arrivals_pending == 0 and not self.active and not self.admission:
            self._finish(now)

    def _starve_remaining(self, now: float) -> None:
        for job in list(self.active):
            job.status = JobStatus.FAILED
            job.finished_at = now
            self.counts["failed"] += 1
            self.counts["starved"] += 1
        self.active.clear()
        while self.admission:
            job = self.admission.pop()
            job.status = JobStatus.FAILED
            job.finished_at = now
            self.counts["failed"] += 1
            self.counts["starved"] += 1

    # ---- arrivals & admission ----------------------------------------

    def _arrive(self, arr) -> None:
        now = self.engine.now
        self._arrivals_pending -= 1
        template = self.templates[arr.template]
        job = Job(
            job_id=arr.job_id,
            tenant=arr.tenant,
            template=arr.template,
            priority=arr.priority,
            arrival=now,
            units=template["units"],
        )
        self.jobs.append(job)
        self.counts["submitted"] += 1
        for loser in self.admission.offer(job, now):
            if loser.status is JobStatus.REJECTED:
                self.counts["rejected"] += 1
            else:
                self.counts["shed"] += 1
        self._activate_next(now)
        self._dispatch(now)
        self._maybe_finish(now)

    def _activate_next(self, now: float) -> None:
        while len(self.active) < self.config.max_active and self.admission:
            job = self.admission.pop()
            job.status = JobStatus.RUNNING
            job.started_at = now
            self.active.append(job)
            if self.config.deadline_factor > 0.0:
                ideal = self.templates[job.template]["ideal_s"]
                job.deadline = now + self.config.deadline_factor * ideal
                self._deadline_events[job.job_id] = self.engine.schedule_at(
                    job.deadline,
                    lambda j=job: self._deadline_fired(j),
                    tag="serve:deadline",
                )

    # ---- dispatch & completion ---------------------------------------

    def _perturb_factor(self, device_id: str, now: float) -> float:
        factor = 1.0
        for p in self._perturb:
            if p.device_id == device_id and now >= p.start_time:
                factor *= p.factor
        return factor

    def _transfer_fault_at(self, device_id: str, now: float):
        for tf in self._transfer_faults:
            if tf.device_id == device_id and tf.time <= now < tf.time + tf.duration:
                return tf
        return None

    def _dispatch(self, now: float) -> None:
        if self._finished:
            return
        for device_id in self.order:
            if device_id in self.busy or device_id in self.failed:
                continue
            job = self.balancer.pick_job(self.active)
            if job is None:
                return
            if not self.breakers[device_id].allow(now):
                continue
            units = self.balancer.block_units(
                device_id,
                job.template,
                job.remaining,
                self.quantum,
                self.templates[job.template]["probe"],
            )
            gt = self.templates[job.template]["gt"]
            transfer = gt.transfer_time(device_id, units)
            exec_s = gt.exec_time(device_id, units) * self._perturb_factor(
                device_id, now
            )
            if self.config.noise_sigma > 0.0:
                exec_s *= self.streams.lognormal_factor(
                    f"serve/{device_id}/exec/{job.job_id}/{job.served_units}",
                    self.config.noise_sigma,
                )
            job.remaining -= units
            fault = self._transfer_fault_at(device_id, now)
            if fault is not None:
                # the window eats the dispatch: charge the timeout, then
                # count the block as lost on this device
                base = transfer if transfer > 0.0 else 0.1 * exec_s
                stall = fault.timeout_factor * base
                event = self.engine.schedule_after(
                    stall,
                    lambda d=device_id: self._block_failed(d),
                    tag="serve:transfer-fault",
                )
            else:
                event = self.engine.schedule_after(
                    transfer + exec_s,
                    lambda d=device_id: self._block_done(d),
                    tag="serve:block",
                )
            self.busy[device_id] = (job, units, now, transfer, exec_s)
            job.in_flight[device_id] = (event, units)

    def _block_done(self, device_id: str) -> None:
        now = self.engine.now
        if device_id in self.failed:
            self.invariant_errors.append(
                f"block completed on downed device {device_id} at {now:.4f}"
            )
        job, units, _t0, transfer, exec_s = self.busy.pop(device_id)
        job.in_flight.pop(device_id, None)
        job.served_units += units
        self.served_units += units
        self.balancer.record(
            device_id, job.template, job.tenant, units, exec_s, transfer
        )
        self.breakers[device_id].record_success(now)
        if (
            job.status is JobStatus.RUNNING
            and job.remaining == 0
            and not job.in_flight
        ):
            self._job_completed(job, now)
        self._dispatch(now)
        self._maybe_finish(now)

    def _job_completed(self, job: Job, now: float) -> None:
        job.status = JobStatus.COMPLETED
        job.finished_at = now
        self.counts["completed"] += 1
        self._window_completed += 1
        self.latencies.append(now - job.arrival)
        self.store.record("serve_job_latency_s", now, now - job.arrival)
        self.active.remove(job)
        event = self._deadline_events.pop(job.job_id, None)
        if event is not None:
            self.engine.cancel(event)
        self._activate_next(now)

    def _block_failed(self, device_id: str) -> None:
        """A transfer-fault window swallowed the in-flight block."""
        now = self.engine.now
        job, units, _t0, _transfer, _exec = self.busy.pop(device_id)
        job.in_flight.pop(device_id, None)
        self.breakers[device_id].record_failure(now)
        self._lose_block(job, units, now)
        self._dispatch(now)
        self._maybe_finish(now)

    def _lose_block(self, job: Job, units: int, now: float) -> None:
        """Requeue lost units against the tenant's retry budget."""
        if job.done:
            return
        consumed = self.retry_consumed.get(job.tenant, 0)
        if consumed < self.config.retry_budget:
            self.retry_consumed[job.tenant] = consumed + 1
            job.remaining += units
            job.retries += 1
            return
        # budget exhausted: the job fails instead of retry-storming
        job.lost_units += units
        self.budget_exhausted += 1
        self._terminate(job, JobStatus.FAILED, now)
        self.counts["failed"] += 1

    def _terminate(self, job: Job, status: JobStatus, now: float) -> None:
        """Move a running job to a terminal state, reclaiming its blocks."""
        for device_id, (event, units) in list(job.in_flight.items()):
            self.engine.cancel(event)
            self.busy.pop(device_id, None)
            job.lost_units += units
        job.in_flight.clear()
        job.status = status
        job.finished_at = now
        if job in self.active:
            self.active.remove(job)
        event = self._deadline_events.pop(job.job_id, None)
        if event is not None:
            self.engine.cancel(event)
        self._activate_next(now)

    def _deadline_fired(self, job: Job) -> None:
        now = self.engine.now
        self._deadline_events.pop(job.job_id, None)
        if job.done:
            return
        self._terminate(job, JobStatus.TIMEOUT, now)
        self.counts["timeout"] += 1
        self._dispatch(now)
        self._maybe_finish(now)

    # ---- faults ------------------------------------------------------

    def _schedule_faults(self) -> None:
        from repro.resilience.faults import split_faults

        perturbations, failures, transients, transfer_faults = split_faults(
            self.config.faults
        )
        for f in self.config.faults:
            if f.device_id not in self.order:
                raise ConfigurationError(
                    f"fault targets unknown device {f.device_id!r}"
                )
        self._perturb = list(perturbations)
        self._transfer_faults = list(transfer_faults)
        for f in failures:
            self._fault_events.append(
                self.engine.schedule_at(
                    f.time,
                    lambda d=f.device_id: self._device_down(d, permanent=True),
                    tag="serve:failure",
                )
            )
        for f in transients:
            self._fault_events.append(
                self.engine.schedule_at(
                    f.time,
                    lambda d=f.device_id: self._device_down(d, permanent=False),
                    tag="serve:transient",
                )
            )
            self._pending_recoveries += 1
            self._fault_events.append(
                self.engine.schedule_at(
                    f.time + f.downtime,
                    lambda d=f.device_id: self._device_up(d),
                    tag="serve:recovery",
                )
            )

    def _device_down(self, device_id: str, *, permanent: bool) -> None:
        now = self.engine.now
        self.failed.add(device_id)
        if permanent:
            self.perm_failed.add(device_id)
        self.breakers[device_id].force_open(now)
        entry = self.busy.pop(device_id, None)
        if entry is not None:
            job, units = entry[0], entry[1]
            pair = job.in_flight.pop(device_id, None)
            if pair is not None:
                self.engine.cancel(pair[0])
            self.breakers[device_id].record_failure(now)
            self._lose_block(job, units, now)
        self._dispatch(now)
        self._maybe_finish(now)

    def _device_up(self, device_id: str) -> None:
        now = self.engine.now
        self._pending_recoveries -= 1
        if device_id in self.perm_failed or self._finished:
            return
        self.failed.discard(device_id)
        self.breakers[device_id].on_device_recovered(now)
        self._dispatch(now)

    # ---- periodic tasks ----------------------------------------------

    def _rebalance_tick(self, now: float) -> None:
        if self._finished:
            return
        backlog: dict[int, int] = {}
        for job in self.active:
            if job.remaining > 0:
                backlog[job.template] = (
                    backlog.get(job.template, 0) + job.remaining
                )
        if backlog:
            self.balancer.rebalance(now, backlog)
        # the cycle doubles as the probe pulse: open breakers past
        # their cooldown re-admit traffic here, not only on completions
        self._dispatch(now)
        self._maybe_finish(now)

    def _sample(self, now: float) -> None:
        if self._finished:
            return
        self.samples_taken += 1
        store = self.store
        store.record("serve_queue_depth", now, float(self.admission.depth()))
        store.record("serve_active_jobs", now, float(len(self.active)))
        store.record(
            "serve_completed_total", now, float(self.counts["completed"])
        )
        store.record(
            "serve_shed_total",
            now,
            float(self.counts["shed"] + self.counts["rejected"]),
        )
        store.record("serve_timeout_total", now, float(self.counts["timeout"]))
        store.record("serve_failed_total", now, float(self.counts["failed"]))
        store.record(
            "serve_backlog_jobs",
            now,
            float(len(self.active) + self.admission.depth()),
        )
        interval = self.config.sample_interval or self.config.rebalance_interval
        store.record(
            "serve_goodput_jobs_per_s",
            now,
            self._window_completed / interval,
        )
        self._window_completed = 0
        served = [
            float(self.balancer.tenant_served.get(t, 0))
            for t in range(self.config.arrivals.tenants)
        ]
        if any(v > 0 for v in served):
            store.record("serve_tenant_fairness", now, jain_fairness(served))
        for device_id in self.order:
            busy = 1.0 if device_id in self.busy else 0.0
            if device_id in self.failed:
                busy = 0.0
            store.record("serve_device_busy", now, busy, device=device_id)


def run_service(
    config: ServiceConfig,
    *,
    cluster_factory: Callable[[int], Cluster] = paper_cluster,
    solver_hook=None,
) -> dict:
    """Run one service episode and return its scorecard."""
    service = ClusterService(
        config, cluster_factory=cluster_factory, solver_hook=solver_hook
    )
    return service.run()
