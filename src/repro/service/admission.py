"""Bounded admission queue with deterministic load shedding.

The queue is the service's backpressure point: when it is full, the
configured shed policy decides *which* job pays — the newcomer
(``reject``), the oldest waiter (``drop-oldest``), or the lowest-value
waiter (``priority-shed``).  All three are deterministic functions of
the queue state, so overload behaviour replays bit-identically.
"""

from __future__ import annotations

from collections import deque

from repro.errors import ConfigurationError
from repro.service.jobs import Job, JobStatus

__all__ = ["AdmissionQueue", "SHED_POLICIES"]

SHED_POLICIES = ("reject", "drop-oldest", "priority-shed")


class AdmissionQueue:
    """FIFO queue of admitted-but-not-yet-running jobs, bounded.

    ``offer`` returns the list of jobs that *lost* — newcomer or
    evictees — already stamped with their terminal status; the caller
    only has to count them.  An eviction can only happen when the queue
    is full, which the serve campaign checks as the shed-only-when-full
    invariant.
    """

    def __init__(self, limit: int, policy: str = "reject") -> None:
        if limit < 1:
            raise ConfigurationError(f"queue limit must be >= 1, got {limit}")
        if policy not in SHED_POLICIES:
            raise ConfigurationError(
                f"shed policy must be one of {SHED_POLICIES}, got {policy!r}"
            )
        self.limit = int(limit)
        self.policy = policy
        self._queue: deque[Job] = deque()
        self.admitted = 0
        self.rejected = 0
        self.shed = 0
        self.max_depth = 0
        #: shed-only-when-full violations (must stay empty)
        self.violations: list[str] = []

    def __len__(self) -> int:
        return len(self._queue)

    def __bool__(self) -> bool:
        return bool(self._queue)

    @property
    def full(self) -> bool:
        return len(self._queue) >= self.limit

    def offer(self, job: Job, now: float) -> list[Job]:
        """Try to enqueue ``job``; return the jobs turned away."""
        losers: list[Job] = []
        if self.full:
            victim = self._pick_victim(job)
            if victim is None:
                job.status = JobStatus.REJECTED
                job.finished_at = now
                self.rejected += 1
                return [job]
            if not self.full:
                # _pick_victim only inspects; reaching here with space
                # free would mean shedding without pressure
                self.violations.append(
                    f"shed job {victim.job_id} while queue not full"
                )
            self._queue.remove(victim)
            victim.status = JobStatus.SHED
            victim.finished_at = now
            self.shed += 1
            losers.append(victim)
        self._queue.append(job)
        self.admitted += 1
        self.max_depth = max(self.max_depth, len(self._queue))
        return losers

    def _pick_victim(self, newcomer: Job) -> Job | None:
        """Which queued job to evict for ``newcomer`` (None: reject it)."""
        if self.policy == "reject":
            return None
        if self.policy == "drop-oldest":
            return self._queue[0]
        # priority-shed: evict the lowest-priority waiter, oldest first,
        # but only when the newcomer genuinely outranks it
        victim = min(self._queue, key=lambda j: (j.priority, j.arrival))
        if victim.priority < newcomer.priority:
            return victim
        return None

    def pop(self) -> Job:
        """Dequeue the job that has waited longest."""
        return self._queue.popleft()

    def depth(self) -> int:
        return len(self._queue)
