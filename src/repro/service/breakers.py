"""Per-device circuit breakers for the serving loop.

Classic three-state breaker adapted to virtual time: ``closed`` devices
take traffic; ``failure_threshold`` consecutive failures *open* the
breaker for a cooldown; after the cooldown the breaker goes
``half-open`` and admits exactly one probe block — success re-closes
it, failure re-opens it with a doubled (capped) cooldown.  The cooldown
carries seeded jitter so breakers that opened together do not re-probe
in lock-step, mirroring the transfer-backoff jitter satellite.

A :class:`~repro.runtime.sim_executor.TransientFailure` recovery hooks
in through :meth:`on_device_recovered`: an open breaker moves straight
to half-open (probe now) instead of waiting out its cooldown, because
the platform just told us the device is worth probing.
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.sim.random import RandomStreams

__all__ = ["CircuitBreaker", "CLOSED", "OPEN", "HALF_OPEN"]

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"

#: cooldown growth on repeated probe failures, and its cap
_COOLDOWN_GROWTH = 2.0
_COOLDOWN_CAP_FACTOR = 8.0


class CircuitBreaker:
    """One device's breaker; all transitions are explicit and counted."""

    def __init__(
        self,
        device_id: str,
        *,
        failure_threshold: int = 3,
        cooldown: float = 2.0,
        jitter: float = 0.1,
        streams: RandomStreams | None = None,
    ) -> None:
        if failure_threshold < 1:
            raise ConfigurationError(
                f"failure_threshold must be >= 1, got {failure_threshold}"
            )
        if cooldown <= 0.0:
            raise ConfigurationError(f"cooldown must be > 0, got {cooldown}")
        if not 0.0 <= jitter < 1.0:
            raise ConfigurationError(f"jitter must be in [0, 1), got {jitter}")
        self.device_id = device_id
        self.failure_threshold = int(failure_threshold)
        self.base_cooldown = float(cooldown)
        self.jitter = float(jitter)
        self._streams = streams
        self.state = CLOSED
        self.consecutive_failures = 0
        self._cooldown = float(cooldown)
        self._reopen_at = 0.0
        self._probe_in_flight = False
        self._probe_count = 0
        # transition counters for the scorecard
        self.opens = 0
        self.probes = 0
        self.closes = 0

    def _jittered(self, cooldown: float) -> float:
        if self.jitter <= 0.0 or self._streams is None:
            return cooldown
        spread = self._streams.stream(
            f"breaker/{self.device_id}/{self._probe_count}"
        ).uniform(-1.0, 1.0)
        return cooldown * (1.0 + self.jitter * float(spread))

    def _open(self, now: float) -> None:
        self.state = OPEN
        self.opens += 1
        self._probe_in_flight = False
        self._reopen_at = now + self._jittered(self._cooldown)
        self._probe_count += 1
        self._cooldown = min(
            self._cooldown * _COOLDOWN_GROWTH,
            self.base_cooldown * _COOLDOWN_CAP_FACTOR,
        )

    def allow(self, now: float) -> bool:
        """May a block be dispatched to this device right now?"""
        if self.state == CLOSED:
            return True
        if self.state == OPEN:
            if now >= self._reopen_at:
                self.state = HALF_OPEN
            else:
                return False
        # half-open: exactly one probe at a time
        if self._probe_in_flight:
            return False
        self._probe_in_flight = True
        self.probes += 1
        return True

    def record_success(self, now: float) -> None:
        """A block completed on the device."""
        self.consecutive_failures = 0
        if self.state == HALF_OPEN:
            self.state = CLOSED
            self.closes += 1
            self._cooldown = self.base_cooldown
        self._probe_in_flight = False

    def record_failure(self, now: float) -> None:
        """A block was lost on the device."""
        self.consecutive_failures += 1
        if self.state == HALF_OPEN:
            # the probe failed: straight back to open, longer cooldown
            self._open(now)
            return
        if self.state == CLOSED and (
            self.consecutive_failures >= self.failure_threshold
        ):
            self._open(now)

    def on_device_recovered(self, now: float) -> None:
        """Platform-level recovery signal: probe immediately."""
        if self.state == OPEN:
            self.state = HALF_OPEN
            self._probe_in_flight = False

    def force_open(self, now: float) -> None:
        """Open regardless of counts (device declared down)."""
        if self.state != OPEN:
            self._open(now)

    @property
    def reopen_at(self) -> float:
        """When an open breaker will next admit a probe."""
        return self._reopen_at

    def to_dict(self) -> dict:
        return {
            "state": self.state,
            "opens": int(self.opens),
            "probes": int(self.probes),
            "closes": int(self.closes),
        }
