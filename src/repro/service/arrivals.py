"""Seeded open-loop job arrival streams.

The generator draws a non-homogeneous Poisson process by exponential
inter-arrival gaps at the instantaneous rate ``lambda(t)``: a constant
base rate, optionally modulated by a diurnal sinusoid (one "day" per
horizon) or a bursty square wave (short on-phases at several times the
base rate).  Every draw comes from a single named stream in arrival
order, so one seed fixes the whole trace — timestamps, tenants, app
templates and priorities alike.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.sim.random import RandomStreams

__all__ = ["ArrivalSpec", "Arrival", "generate_arrivals", "PATTERNS"]

PATTERNS = ("constant", "diurnal", "bursty")

#: diurnal modulation depth: lambda swings rate * (1 +/- this)
_DIURNAL_DEPTH = 0.6
#: bursty square wave: on-phase multiplier / off-phase multiplier,
#: with ``_BURST_FRACTION`` of each period spent on
_BURST_ON = 3.0
_BURST_OFF = 0.5
_BURST_FRACTION = 0.25
_BURST_PERIODS = 8


@dataclass(frozen=True)
class Arrival:
    """One job submission instant drawn from the stream."""

    job_id: int
    time: float
    tenant: int
    template: int
    priority: int


@dataclass(frozen=True)
class ArrivalSpec:
    """What the open-loop stream looks like.

    Attributes
    ----------
    rate:
        Base arrival rate in jobs per virtual second.
    duration:
        Arrival horizon; jobs arrive in ``[0, duration)`` (the service
        keeps running after it to drain).
    pattern:
        ``constant``, ``diurnal`` or ``bursty`` rate modulation.
    tenants:
        Number of tenants; each arrival picks one uniformly.
    templates:
        ``(app_name, size)`` pairs; each arrival picks one uniformly.
        Template index is the job's cost-model identity.
    priority_levels:
        Priorities ``0 .. levels-1`` (higher is more important), drawn
        uniformly; the ``priority-shed`` policy consults them.
    """

    rate: float = 2.0
    duration: float = 30.0
    pattern: str = "constant"
    tenants: int = 2
    #: ideal service times ~0.16 s and ~0.45 s on the two-machine
    #: cluster: at the default rate the service sits near 60 %
    #: utilisation — busy enough to rebalance, healthy enough to drain
    templates: tuple[tuple[str, int], ...] = (
        ("matmul", 4096),
        ("stencil", 2048),
    )
    priority_levels: int = 3

    def __post_init__(self) -> None:
        if self.rate <= 0.0:
            raise ConfigurationError(f"rate must be > 0, got {self.rate}")
        if self.duration <= 0.0:
            raise ConfigurationError(
                f"duration must be > 0, got {self.duration}"
            )
        if self.pattern not in PATTERNS:
            raise ConfigurationError(
                f"pattern must be one of {PATTERNS}, got {self.pattern!r}"
            )
        if self.tenants < 1:
            raise ConfigurationError(f"tenants must be >= 1, got {self.tenants}")
        if not self.templates:
            raise ConfigurationError("templates must be non-empty")
        if self.priority_levels < 1:
            raise ConfigurationError(
                f"priority_levels must be >= 1, got {self.priority_levels}"
            )

    def to_dict(self) -> dict:
        return {
            "rate": float(self.rate),
            "duration": float(self.duration),
            "pattern": self.pattern,
            "tenants": int(self.tenants),
            "templates": [[name, int(size)] for name, size in self.templates],
            "priority_levels": int(self.priority_levels),
        }

    @staticmethod
    def from_dict(data: dict) -> "ArrivalSpec":
        return ArrivalSpec(
            rate=float(data.get("rate", 2.0)),
            duration=float(data.get("duration", 30.0)),
            pattern=str(data.get("pattern", "constant")),
            tenants=int(data.get("tenants", 2)),
            templates=tuple(
                (str(name), int(size))
                for name, size in data.get("templates", [["matmul", 1024]])
            ),
            priority_levels=int(data.get("priority_levels", 3)),
        )

    def rate_at(self, t: float) -> float:
        """Instantaneous arrival rate ``lambda(t)``."""
        if self.pattern == "diurnal":
            phase = 2.0 * math.pi * t / self.duration
            return self.rate * (1.0 + _DIURNAL_DEPTH * math.sin(phase))
        if self.pattern == "bursty":
            period = self.duration / _BURST_PERIODS
            within = (t % period) / period
            mult = _BURST_ON if within < _BURST_FRACTION else _BURST_OFF
            return self.rate * mult
        return self.rate


def generate_arrivals(spec: ArrivalSpec, streams: RandomStreams) -> list[Arrival]:
    """Draw the full arrival trace for one service run.

    All randomness comes from the single ``arrivals`` stream in
    submission order, so the trace is a pure function of
    ``(streams.seed, spec)``.
    """
    rng = streams.stream("arrivals")
    arrivals: list[Arrival] = []
    t = 0.0
    job_id = 0
    while True:
        lam = max(spec.rate_at(t), 1e-9)
        t += float(rng.exponential(1.0 / lam))
        if t >= spec.duration:
            break
        arrivals.append(
            Arrival(
                job_id=job_id,
                time=t,
                tenant=int(rng.integers(spec.tenants)),
                template=int(rng.integers(len(spec.templates))),
                priority=int(rng.integers(spec.priority_levels)),
            )
        )
        job_id += 1
    return arrivals
