"""Chaos against the living cluster: fault campaigns over service episodes.

The batch chaos campaign (:mod:`repro.resilience.campaign`) injects
faults into single application runs; this one injects them into a
*serving loop* that must keep admitting, shedding and completing jobs
while devices die under it.  Two phases, both through the parallel
sweep engine (service payloads cache like batch payloads):

1. **Baselines** — every (policy, seed) slot runs its arrival trace
   fault-free; the baseline goodput anchors each run's degradation.
2. **Chaos** — the same episodes re-run under seeded randomized fault
   schedules scaled to the arrival horizon, with ``tolerate_errors``
   on: a crashed episode is a lost run, not a campaign abort.

Each surviving run must hold the service invariants — every submitted
job in exactly one terminal state, shedding only under pressure, no
block completing on a downed device — which the scorecard carries in
``invariant_errors``.  The campaign is a pure function of its config.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.experiments.parallel import PointSpec, SweepStats, run_sweep
from repro.obs.metrics import get_registry
from repro.resilience.faults import fault_to_dict, generate_schedule
from repro.service.arrivals import ArrivalSpec
from repro.service.balancer import BALANCER_FLAVORS
from repro.service.scorecard import validate_scorecard
from repro.service.server import ServiceConfig
from repro.sim.random import RandomStreams
from repro.util.logging import get_logger

__all__ = ["ServeChaosConfig", "run_serve_campaign"]

_log = get_logger("service.campaign")


@dataclass(frozen=True)
class ServeChaosConfig:
    """One serve chaos campaign: a seeded grid of faulted episodes.

    ``runs`` episodes are dealt round-robin over ``policies`` with
    per-run derived seeds, exactly like the batch campaign, so two
    campaigns with equal configs are identical.
    """

    policies: tuple[str, ...] = ("plb-hec", "greedy", "fair")
    runs: int = 6
    seed: int = 0
    rate: float = 3.0
    duration: float = 12.0
    machines: int = 2
    queue_limit: int = 8
    shed_policy: str = "drop-oldest"
    max_active: int = 4
    deadline_factor: float = 30.0
    retry_budget: int = 4
    max_faults: int = 2

    def __post_init__(self) -> None:
        if not self.policies:
            raise ConfigurationError("serve campaign needs policies")
        for policy in self.policies:
            if policy not in BALANCER_FLAVORS:
                raise ConfigurationError(
                    f"unknown balancer flavor {policy!r}; "
                    f"choose from {BALANCER_FLAVORS}"
                )
        if self.runs < 1:
            raise ConfigurationError(f"runs must be >= 1, got {self.runs}")

    def to_dict(self) -> dict:
        return {
            "policies": list(self.policies),
            "runs": int(self.runs),
            "seed": int(self.seed),
            "rate": float(self.rate),
            "duration": float(self.duration),
            "machines": int(self.machines),
            "queue_limit": int(self.queue_limit),
            "shed_policy": self.shed_policy,
            "max_active": int(self.max_active),
            "deadline_factor": float(self.deadline_factor),
            "retry_budget": int(self.retry_budget),
            "max_faults": int(self.max_faults),
        }

    def service_config(self, policy: str, faults: tuple = ()) -> ServiceConfig:
        """The episode config one campaign slot runs."""
        return ServiceConfig(
            arrivals=ArrivalSpec(rate=self.rate, duration=self.duration),
            machines=self.machines,
            policy=policy,
            queue_limit=self.queue_limit,
            shed_policy=self.shed_policy,
            max_active=self.max_active,
            deadline_factor=self.deadline_factor,
            retry_budget=self.retry_budget,
            faults=faults,
        )


def _point(config: ServeChaosConfig, policy: str, seed: int, faults: tuple) -> PointSpec:
    service = config.service_config(policy, faults)
    return PointSpec(
        app_name="serve",
        size=0,
        num_machines=config.machines,
        policies=(policy,),
        replications=1,
        seed=seed,
        noise_sigma=0.0,
        tolerate_errors=bool(faults),
        service_json=service.to_sweep_json(),
    )


def run_serve_campaign(
    config: ServeChaosConfig, *, jobs: int | None = None
) -> dict:
    """Execute one serve chaos campaign and return its scorecard."""
    from repro.cluster import paper_cluster

    plans = [
        {
            "index": i,
            "policy": config.policies[i % len(config.policies)],
            "seed": config.seed * 1000 + i,
        }
        for i in range(config.runs)
    ]

    # ---- phase 1: fault-free baselines -------------------------------
    baseline_stats = SweepStats()
    run_sweep(
        [_point(config, p["policy"], p["seed"], ()) for p in plans],
        jobs=jobs,
        stats=baseline_stats,
    )

    # ---- seeded fault schedules over the arrival horizon -------------
    device_ids = tuple(
        d.device_id for d in paper_cluster(config.machines).devices()
    )
    streams = RandomStreams(config.seed)
    for plan in plans:
        rng = streams.stream(f"serve-chaos/run{plan['index']}")
        plan["faults"] = generate_schedule(
            rng, device_ids, config.duration, max_faults=config.max_faults
        )

    # ---- phase 2: chaos ----------------------------------------------
    chaos_stats = SweepStats()
    run_sweep(
        [
            _point(config, p["policy"], p["seed"], p["faults"])
            for p in plans
        ],
        jobs=jobs,
        stats=chaos_stats,
    )

    # ---- score -------------------------------------------------------
    run_records = []
    for plan, base_payload, chaos_payload in zip(
        plans, baseline_stats.payloads, chaos_stats.payloads
    ):
        error = chaos_payload.get("error")
        card = chaos_payload.get("serve")
        base_card = base_payload.get("serve") or {}
        survived = error is None and card is not None
        violations: list[str] = []
        if survived:
            violations += validate_scorecard(card)
            violations += list(card.get("invariant_errors", ()))
        base_goodput = (base_card.get("goodput") or {}).get("jobs_per_s")
        chaos_goodput = (
            (card.get("goodput") or {}).get("jobs_per_s") if card else None
        )
        goodput_ratio = None
        if base_goodput and chaos_goodput is not None:
            goodput_ratio = chaos_goodput / base_goodput
        jobs_row = (card or {}).get("jobs", {})
        run_records.append(
            {
                "run": plan["index"],
                "policy": plan["policy"],
                "seed": plan["seed"],
                "faults": [fault_to_dict(f) for f in plan["faults"]],
                "survived": survived,
                "error": error,
                "violations": violations,
                "baseline_goodput": base_goodput,
                "goodput": chaos_goodput,
                "goodput_ratio": goodput_ratio,
                "completed": jobs_row.get("completed"),
                "shed": jobs_row.get("shed"),
                "timeout": jobs_row.get("timeout"),
                "failed": jobs_row.get("failed"),
                "breaker_opens": sum(
                    b["opens"] for b in (card or {}).get("breakers", {}).values()
                ),
                "fallback_counts": (
                    ((card or {}).get("balancer") or {}).get("fallback_counts")
                ),
            }
        )

    policies = {}
    for policy in config.policies:
        rows = [r for r in run_records if r["policy"] == policy]
        if not rows:
            continue
        survived_rows = [r for r in rows if r["survived"]]
        ratios = [
            r["goodput_ratio"]
            for r in survived_rows
            if r["goodput_ratio"] is not None
        ]
        policies[policy] = {
            "runs": len(rows),
            "survived": len(survived_rows),
            "survival_rate": len(survived_rows) / len(rows),
            "mean_goodput_ratio": (
                sum(ratios) / len(ratios) if ratios else None
            ),
            "violations": sum(len(r["violations"]) for r in rows),
            "shed": sum(r["shed"] or 0 for r in survived_rows),
            "timeout": sum(r["timeout"] or 0 for r in survived_rows),
            "failed": sum(r["failed"] or 0 for r in survived_rows),
            "breaker_opens": sum(r["breaker_opens"] for r in survived_rows),
        }

    total_violations = sum(len(r["violations"]) for r in run_records)
    survivors = sum(1 for r in run_records if r["survived"])
    scorecard = {
        "config": config.to_dict(),
        "runs": run_records,
        "policies": policies,
        "total_runs": len(run_records),
        "survived_runs": survivors,
        "total_violations": total_violations,
        "all_invariants_ok": total_violations == 0,
    }
    registry = get_registry()
    registry.inc("serve.chaos_campaigns")
    registry.inc("serve.chaos_runs", len(run_records))
    registry.inc("serve.chaos_violations", total_violations)
    _log.info(
        "serve chaos campaign complete: %d/%d survived, %d violation(s)",
        survivors,
        len(run_records),
        total_violations,
    )
    return scorecard
