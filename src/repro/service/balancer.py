"""Continuous balancers: PLB-HeC's cycle re-hosted on a serving loop.

Batch PLB-HeC probes, fits, solves and rebalances *within* one
application run.  The service version runs the same
collect→calculate→rebalance cycle forever: completed blocks feed
per-(device, template) performance profiles, every cycle re-fits the
dominant template's models and re-solves the block partition, and the
resulting device fractions shape block sizes until the next cycle.

The solve step keeps the batch fallback chain, re-entered as often as
the service needs it: solver failure falls back to the last good
fractions, then to an analytic split proportional to measured rates,
then to a uniform fair share.  ``solver_hook`` lets tests force
failures to exercise the chain without touching solver internals.
"""

from __future__ import annotations

from typing import Callable, Mapping, Sequence

from repro.errors import ConfigurationError, ReproError
from repro.modeling.perf_profile import PerfProfile
from repro.service.jobs import Job
from repro.solver.partition import solve_block_partition

__all__ = ["ContinuousBalancer", "BALANCER_FLAVORS", "FALLBACK_STAGES"]

BALANCER_FLAVORS = ("plb-hec", "fair", "greedy")

#: fallback-chain stage names, in escalation order ("solve" = no fallback)
FALLBACK_STAGES = ("solve", "last-good", "analytic", "fair-share")

#: EWMA weight of the newest per-device rate observation
_RATE_ALPHA = 0.3


class ContinuousBalancer:
    """Allocates the cluster across active jobs, one cycle at a time.

    Parameters
    ----------
    device_ids:
        The cluster's devices, in dispatch order.
    templates:
        Number of app templates in the arrival spec.
    flavor:
        ``plb-hec`` (profile + solver + fallback chain), ``greedy``
        (analytic rate-proportional fractions, no solver) or ``fair``
        (uniform fractions, no measurement).
    solver_hook:
        Test seam: replaces the fit+solve step.  Called with
        ``(models, backlog_units)``; must return device fractions or
        raise :class:`~repro.errors.ReproError` to trigger the chain.
    """

    def __init__(
        self,
        device_ids: Sequence[str],
        *,
        templates: int = 1,
        flavor: str = "plb-hec",
        solver_hook: Callable[[dict, float], Mapping[str, float]] | None = None,
    ) -> None:
        if not device_ids:
            raise ConfigurationError("balancer needs at least one device")
        if flavor not in BALANCER_FLAVORS:
            raise ConfigurationError(
                f"flavor must be one of {BALANCER_FLAVORS}, got {flavor!r}"
            )
        self.device_ids = tuple(device_ids)
        self.flavor = flavor
        self.solver_hook = solver_hook
        n = len(self.device_ids)
        self.fractions: dict[str, float] = {d: 1.0 / n for d in self.device_ids}
        self._last_good: dict[str, float] | None = None
        #: EWMA units/sec per (device, template); None until measured
        self._rate: dict[tuple[str, int], float] = {}
        self._profiles: dict[tuple[str, int], PerfProfile] = {
            (d, t): PerfProfile(d)
            for d in self.device_ids
            for t in range(max(templates, 1))
        }
        self._template_backlog: dict[int, float] = {}
        self.rebalances = 0
        self.fallback_counts: dict[str, int] = {s: 0 for s in FALLBACK_STAGES}
        #: per-tenant cumulative served units (drives weighted fairness)
        self.tenant_served: dict[int, int] = {}

    # ---- collect ------------------------------------------------------

    def record(
        self,
        device_id: str,
        template: int,
        tenant: int,
        units: int,
        exec_s: float,
        transfer_s: float,
    ) -> None:
        """Feed one completed block into the profiles and rate EWMAs."""
        total = exec_s + transfer_s
        if total > 0.0 and units > 0:
            rate = units / total
            key = (device_id, template)
            prev = self._rate.get(key)
            self._rate[key] = (
                rate
                if prev is None
                else _RATE_ALPHA * rate + (1.0 - _RATE_ALPHA) * prev
            )
            profile = self._profiles.get(key)
            if profile is not None:
                profile.add(float(units), exec_s, transfer_s)
        self.tenant_served[tenant] = self.tenant_served.get(tenant, 0) + units

    # ---- calculate + rebalance ---------------------------------------

    def rebalance(self, now: float, backlog: Mapping[int, int]) -> str:
        """Run one cycle; returns the stage that produced the fractions.

        ``backlog`` maps template -> outstanding units of active jobs.
        """
        self.rebalances += 1
        self._template_backlog = dict(backlog)
        total_backlog = float(sum(backlog.values()))
        if self.flavor == "fair" or total_backlog <= 0.0:
            self._set_uniform()
            stage = "fair-share"
        elif self.flavor == "greedy":
            stage = self._analytic(backlog) or "fair-share"
        else:
            stage = self._plb_hec_cycle(backlog, total_backlog)
        self.fallback_counts[stage] += 1
        return stage

    def _plb_hec_cycle(self, backlog: Mapping[int, int], total: float) -> str:
        dominant = max(backlog, key=lambda t: (backlog[t], -t))
        try:
            fractions = self._solve(dominant, total)
        except ReproError:
            fractions = None
        if fractions is not None:
            self.fractions = dict(fractions)
            # copy, so later fallback entries can never alias into it
            self._last_good = dict(fractions)
            return "solve"
        if self._last_good is not None:
            self.fractions = dict(self._last_good)
            return "last-good"
        analytic = self._analytic(backlog)
        if analytic is not None:
            return analytic
        self._set_uniform()
        return "fair-share"

    def _solve(self, template: int, total: float) -> dict[str, float]:
        """Fit every device's model and solve the partition."""
        models = {}
        for d in self.device_ids:
            profile = self._profiles[(d, template)]
            models[d] = profile.fit()  # FitError (< 2 points) escalates
        if self.solver_hook is not None:
            raw = self.solver_hook(models, total)
            return {d: float(raw[d]) for d in self.device_ids}
        result = solve_block_partition(models, total)
        return dict(result.fractions)

    def _analytic(self, backlog: Mapping[int, int]) -> str | None:
        """Rate-proportional fractions from the EWMAs; None if unmeasured."""
        weights = {}
        for d in self.device_ids:
            rate = 0.0
            for t, units in backlog.items():
                r = self._rate.get((d, t))
                if r is not None and units > 0:
                    rate += r * units
            weights[d] = rate
        total = sum(weights.values())
        if total <= 0.0:
            return None
        self.fractions = {d: weights[d] / total for d in self.device_ids}
        return "analytic"

    def _set_uniform(self) -> None:
        n = len(self.device_ids)
        self.fractions = {d: 1.0 / n for d in self.device_ids}

    # ---- dispatch-side queries ---------------------------------------

    def pick_job(self, active: Sequence[Job]) -> Job | None:
        """Which active job the next free device should serve.

        Weighted fair: the tenant with the least cumulative served units
        goes first; within a tenant, higher priority, then earlier
        arrival.  Pure function of recorded state — deterministic.
        """
        runnable = [j for j in active if j.remaining > 0]
        if not runnable:
            return None
        return min(
            runnable,
            key=lambda j: (
                self.tenant_served.get(j.tenant, 0),
                -j.priority,
                j.arrival,
                j.job_id,
            ),
        )

    def block_units(
        self,
        device_id: str,
        template: int,
        remaining: int,
        quantum: float,
        default_units: int,
    ) -> int:
        """Block size for one dispatch, shaped by the current fractions.

        ``quantum`` is the target per-block service time; the measured
        rate converts it to units, scaled by the device's solver
        fraction relative to fair share (favoured devices take bigger
        bites).  Unmeasured devices fall back to ``default_units`` —
        the probe-sized first block that seeds their profile.
        """
        rate = self._rate.get((device_id, template))
        if rate is None:
            units = default_units
        else:
            share = self.fractions.get(device_id, 0.0) * len(self.device_ids)
            units = int(round(rate * quantum * max(share, 0.1)))
        return max(1, min(units, remaining))

    def to_dict(self) -> dict:
        return {
            "flavor": self.flavor,
            "rebalances": int(self.rebalances),
            "fallback_counts": {
                s: int(self.fallback_counts[s]) for s in FALLBACK_STAGES
            },
            "fractions": {
                d: float(self.fractions[d]) for d in self.device_ids
            },
        }
