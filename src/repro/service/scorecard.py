"""The ``serve_scorecard.json`` document: schema, build, validate.

The scorecard is the service episode's single source of truth: job
accounting, latency percentiles, goodput, tenant fairness and every
robustness counter.  It contains only virtual-time quantities, so two
runs with equal configs (and equal seeds) serialize byte-identically —
the property the sweep cache and the serve chaos campaign rely on.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Mapping

from repro.obs.timeseries import jain_fairness

__all__ = [
    "SERVE_SCHEMA",
    "build_scorecard",
    "percentile",
    "validate_scorecard",
    "write_scorecard",
]

SERVE_SCHEMA = 1


def percentile(values: list[float], pct: float) -> float:
    """Deterministic nearest-rank percentile (values need not be sorted)."""
    if not values:
        raise ValueError("percentile of an empty list")
    ordered = sorted(values)
    rank = max(1, -(-len(ordered) * pct // 100))  # ceil without floats
    return ordered[int(rank) - 1]


def build_scorecard(service) -> dict:
    """Assemble the scorecard from a finished :class:`ClusterService`."""
    counts = service.counts
    duration = service.end_time
    latencies = service.latencies
    latency: dict[str, float | None]
    if latencies:
        latency = {
            "p50": percentile(latencies, 50),
            "p95": percentile(latencies, 95),
            "p99": percentile(latencies, 99),
            "mean": sum(latencies) / len(latencies),
            "max": max(latencies),
        }
    else:
        latency = {"p50": None, "p95": None, "p99": None, "mean": None, "max": None}
    tenants = service.config.arrivals.tenants
    tenant_units = {
        str(t): int(service.balancer.tenant_served.get(t, 0))
        for t in range(tenants)
    }
    served = [float(v) for v in tenant_units.values()]
    goodput_jobs = counts["completed"] / duration if duration > 0 else 0.0
    goodput_units = service.served_units / duration if duration > 0 else 0.0
    terminal = (
        counts["completed"]
        + counts["rejected"]
        + counts["shed"]
        + counts["timeout"]
        + counts["failed"]
    )
    invariants = list(service.invariant_errors)
    invariants += list(service.admission.violations)
    if terminal != counts["submitted"]:
        invariants.append(
            f"job conservation broken: {counts['submitted']} submitted, "
            f"{terminal} in terminal states"
        )
    return {
        "schema": SERVE_SCHEMA,
        "config": service.config.to_dict(),
        "duration_s": float(duration),
        "jobs": {k: int(v) for k, v in counts.items()},
        "latency_s": latency,
        "goodput": {
            "jobs_per_s": float(goodput_jobs),
            "units_per_s": float(goodput_units),
        },
        "fairness": {
            "jain_tenants": (
                jain_fairness(served) if any(v > 0 for v in served) else None
            ),
            "tenant_units": tenant_units,
        },
        "retries": {
            "budget_per_tenant": int(service.config.retry_budget),
            "consumed": {
                str(t): int(service.retry_consumed.get(t, 0))
                for t in sorted(service.retry_consumed)
            },
            "budget_exhausted_jobs": int(service.budget_exhausted),
        },
        "breakers": {
            d: service.breakers[d].to_dict() for d in service.order
        },
        "balancer": service.balancer.to_dict(),
        "admission": {
            "limit": int(service.admission.limit),
            "policy": service.admission.policy,
            "max_depth": int(service.admission.max_depth),
        },
        "samples": int(service.samples_taken),
        "invariant_errors": invariants,
    }


def validate_scorecard(card: Mapping[str, Any]) -> list[str]:
    """Structural checks; returns problems (empty = valid)."""
    problems: list[str] = []
    if not isinstance(card, Mapping):
        return ["scorecard must be a JSON object"]
    if card.get("schema") != SERVE_SCHEMA:
        problems.append(
            f"schema must be {SERVE_SCHEMA}, got {card.get('schema')!r}"
        )
    for key in (
        "config",
        "duration_s",
        "jobs",
        "latency_s",
        "goodput",
        "fairness",
        "retries",
        "breakers",
        "balancer",
        "admission",
        "invariant_errors",
    ):
        if key not in card:
            problems.append(f"missing key {key!r}")
    jobs = card.get("jobs")
    if isinstance(jobs, Mapping):
        for key in ("submitted", "completed", "rejected", "shed", "timeout", "failed"):
            if not isinstance(jobs.get(key), int):
                problems.append(f"jobs.{key} must be an integer")
        if not problems:
            terminal = sum(
                jobs[k]
                for k in ("completed", "rejected", "shed", "timeout", "failed")
            )
            if terminal != jobs["submitted"]:
                problems.append(
                    f"jobs do not conserve: submitted={jobs['submitted']} "
                    f"terminal={terminal}"
                )
    else:
        problems.append("jobs must be an object")
    latency = card.get("latency_s")
    if isinstance(latency, Mapping):
        for key in ("p50", "p95", "p99", "mean", "max"):
            value = latency.get(key, "absent")
            if value is not None and not isinstance(value, (int, float)):
                problems.append(f"latency_s.{key} must be a number or null")
    else:
        problems.append("latency_s must be an object")
    goodput = card.get("goodput")
    if isinstance(goodput, Mapping):
        for key in ("jobs_per_s", "units_per_s"):
            if not isinstance(goodput.get(key), (int, float)):
                problems.append(f"goodput.{key} must be a number")
    else:
        problems.append("goodput must be an object")
    errors = card.get("invariant_errors")
    if not isinstance(errors, list):
        problems.append("invariant_errors must be a list")
    return problems


def write_scorecard(path: str | Path, card: Mapping[str, Any]) -> Path:
    """Write the scorecard canonically (sorted keys, trailing newline)."""
    target = Path(path)
    target.write_text(
        json.dumps(card, sort_keys=True, indent=2) + "\n", encoding="utf-8"
    )
    return target
