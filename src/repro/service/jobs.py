"""Job lifecycle state for the serving loop.

A job is one application instance submitted by a tenant; the service
tracks it from arrival to one of the terminal states below.  Every
submitted job ends in exactly one terminal state — the conservation
invariant the serve chaos campaign checks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

__all__ = ["Job", "JobStatus", "TERMINAL_STATES"]


class JobStatus(str, Enum):
    """Where a job is in its lifecycle."""

    QUEUED = "queued"          # admitted, waiting for an active slot
    RUNNING = "running"        # blocks being dispatched
    COMPLETED = "completed"    # all units served before the deadline
    REJECTED = "rejected"      # bounced at admission (queue full)
    SHED = "shed"              # evicted from the queue by load shedding
    TIMEOUT = "timeout"        # deadline fired; in-flight blocks reclaimed
    FAILED = "failed"          # lost work exceeded the tenant retry budget


#: states a job can never leave
TERMINAL_STATES = frozenset(
    {
        JobStatus.COMPLETED,
        JobStatus.REJECTED,
        JobStatus.SHED,
        JobStatus.TIMEOUT,
        JobStatus.FAILED,
    }
)


@dataclass
class Job:
    """One submitted application instance.

    ``template`` indexes the arrival spec's app templates — jobs of the
    same template share a ground-truth cost model, which is how the
    service prices blocks without instantiating an application per job.
    """

    job_id: int
    tenant: int
    template: int
    priority: int
    arrival: float
    units: int
    status: JobStatus = JobStatus.QUEUED
    remaining: int = 0
    served_units: int = 0
    lost_units: int = 0
    retries: int = 0
    started_at: float | None = None
    finished_at: float | None = None
    deadline: float | None = None
    #: in-flight blocks: device_id -> (completion Event, units)
    in_flight: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.remaining == 0:
            self.remaining = self.units

    @property
    def done(self) -> bool:
        return self.status in TERMINAL_STATES

    @property
    def latency(self) -> float | None:
        """Arrival-to-completion seconds (completed jobs only)."""
        if self.status is not JobStatus.COMPLETED or self.finished_at is None:
            return None
        return self.finished_at - self.arrival
