"""Online service mode: a virtual-time serving loop over the cluster.

Batch experiments answer "how fast does one application finish?"; the
service answers "does the cluster stay healthy when applications keep
arriving?".  :class:`~repro.service.server.ClusterService` hosts a
seeded open-loop arrival stream on one DES engine, runs PLB-HeC as a
*continuous* balancer on a periodic collect→calculate→rebalance cycle,
and wraps the loop in the overload-robustness layer this package is
really about: bounded admission with deterministic load shedding,
per-job deadlines with in-flight reclamation, per-tenant retry budgets
and per-device circuit breakers.

Everything is a pure function of the config seed: equal seeds produce
byte-identical scorecards, so service runs cache like any other sweep
payload.
"""

from repro.service.admission import AdmissionQueue
from repro.service.arrivals import ArrivalSpec, generate_arrivals
from repro.service.breakers import CircuitBreaker
from repro.service.balancer import ContinuousBalancer
from repro.service.jobs import Job, JobStatus
from repro.service.scorecard import (
    SERVE_SCHEMA,
    validate_scorecard,
    write_scorecard,
)
from repro.service.server import ClusterService, ServiceConfig, run_service

__all__ = [
    "AdmissionQueue",
    "ArrivalSpec",
    "CircuitBreaker",
    "ClusterService",
    "ContinuousBalancer",
    "Job",
    "JobStatus",
    "SERVE_SCHEMA",
    "ServiceConfig",
    "generate_arrivals",
    "run_service",
    "validate_scorecard",
    "write_scorecard",
]
