"""PLB-HeC reproduction: profile-based load balancing for heterogeneous
CPU-GPU clusters.

A from-scratch Python implementation of Sant'Ana, Cordeiro & de
Camargo's PLB-HeC algorithm (IEEE CLUSTER 2015) together with every
substrate its evaluation needs: a StarPU-like runtime, a discrete-event
heterogeneous-cluster simulator parameterised by the paper's Table I
machines, an interior-point line-search filter solver, the Greedy /
Acosta / HDSS baselines, and the three evaluation applications.

Quick start::

    from repro import Runtime, paper_cluster, PLBHeC, Greedy
    from repro.apps import MatMul

    app = MatMul(n=16384)
    rt = Runtime(paper_cluster(4), app.codelet(), seed=7)
    for policy in (PLBHeC(), Greedy()):
        result = rt.run(policy, app.total_units,
                        app.default_initial_block_size())
        print(policy.name, f"{result.makespan:.2f}s")
"""

from repro.balancers import (
    HDSS,
    Acosta,
    Greedy,
    GuidedSelfScheduling,
    Oracle,
    StaticProfile,
)
from repro.cluster import Cluster, paper_cluster, paper_machines
from repro.core import PLBHeC
from repro.errors import ReproError
from repro.obs import MetricsRegistry, RunReport, get_registry, write_chrome_trace
from repro.runtime import Runtime, RunResult, SchedulingPolicy

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "ReproError",
    "MetricsRegistry",
    "RunReport",
    "get_registry",
    "write_chrome_trace",
    "Cluster",
    "paper_cluster",
    "paper_machines",
    "Runtime",
    "RunResult",
    "SchedulingPolicy",
    "PLBHeC",
    "Greedy",
    "Acosta",
    "HDSS",
    "GuidedSelfScheduling",
    "Oracle",
    "StaticProfile",
]
