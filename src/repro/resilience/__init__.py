"""Resilience layer: fault schedules, invariants, chaos campaigns.

The paper's Sec. VI outlook claims the algorithm "re-adapts" when
machines become unavailable or degraded.  This package turns that claim
into something falsifiable:

* :mod:`repro.resilience.faults` — serialisable fault descriptions and
  seeded randomized fault-schedule generation;
* :mod:`repro.resilience.invariants` — work-conservation and
  fault-isolation checks every faulted run must satisfy;
* :mod:`repro.resilience.campaign` — the chaos campaign runner: a
  scenario × policy grid of randomized fault schedules through the
  parallel sweep engine, scored against fault-free baselines.
"""

from repro.resilience.campaign import ChaosConfig, run_campaign
from repro.resilience.faults import (
    fault_from_dict,
    fault_to_dict,
    generate_schedule,
)
from repro.resilience.invariants import (
    Violation,
    check_conservation,
    check_fault_isolation,
    check_makespan,
    check_run,
    recovery_lags,
)

__all__ = [
    "ChaosConfig",
    "run_campaign",
    "fault_from_dict",
    "fault_to_dict",
    "generate_schedule",
    "Violation",
    "check_conservation",
    "check_fault_isolation",
    "check_makespan",
    "check_run",
    "recovery_lags",
]
