"""Work-conservation and fault-isolation invariants for faulted runs.

A chaos campaign is only convincing if every run is *checked*, not just
survived.  These predicates operate on a completed
:class:`~repro.sim.trace.ExecutionTrace`:

* **conservation** — the completed task records tile the data domain
  exactly: every unit processed at least once (lost blocks are
  reprocessed), completed exactly once;
* **fault isolation** — no block is dispatched to a device while it is
  down, and every lost block corresponds to a recorded down event;
* **busy exclusivity** — a worker processes one block at a time: its
  recorded busy intervals never overlap (the critical-path analysis in
  :mod:`repro.obs.critpath` walks per-worker busy chains and silently
  mis-attributes on overlap, so ``repro why`` runs this check too);
* **makespan sanity** — a faulted run should not beat its fault-free
  baseline by more than a scheduling-anomaly tolerance (losing a slow
  device *can* legitimately help — Graham's timing anomalies — so the
  check is a tolerance band, not a strict inequality).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.trace import ExecutionTrace

__all__ = [
    "Violation",
    "check_busy_overlap",
    "check_conservation",
    "check_fault_isolation",
    "check_makespan",
    "check_run",
    "recovery_lags",
]


@dataclass(frozen=True)
class Violation:
    """One invariant breach: which rule, and what happened."""

    name: str
    message: str


def check_conservation(
    trace: ExecutionTrace, total_units: int
) -> list[Violation]:
    """Completed records must tile ``[0, total_units)`` exactly once.

    Requires the per-record ``start_unit`` provenance (runs recorded
    before it existed fall back to a totals-only check).
    """
    violations: list[Violation] = []
    records = trace.records
    if not records:
        violations.append(
            Violation("conservation", "no task records in the trace")
        )
        return violations
    if any(r.start_unit < 0 for r in records):
        completed = sum(r.units for r in records)
        if completed != total_units:
            violations.append(
                Violation(
                    "conservation",
                    f"completed {completed} units, domain has {total_units}",
                )
            )
        return violations
    ranges = sorted((r.start_unit, r.units) for r in records)
    cursor = 0
    for start, units in ranges:
        if start < cursor:
            violations.append(
                Violation(
                    "conservation",
                    f"range [{start}, {start + units}) overlaps a prior "
                    f"completion ending at {cursor}",
                )
            )
            break
        if start > cursor:
            violations.append(
                Violation(
                    "conservation",
                    f"units [{cursor}, {start}) were never completed",
                )
            )
            break
        cursor = start + units
    else:
        if cursor != total_units:
            violations.append(
                Violation(
                    "conservation",
                    f"domain ends at {total_units} but completions "
                    f"cover [0, {cursor})",
                )
            )
    return violations


def check_fault_isolation(trace: ExecutionTrace) -> list[Violation]:
    """No dispatch may land on a device while it is down.

    Each recorded failure is paired with the first recovery of the same
    device after it; a failure with no such recovery is permanent.  Also
    checks lost-block accounting: every lost block needs a down event at
    the same instant on the same device.
    """
    violations: list[Violation] = []
    recoveries = sorted(trace.recoveries)
    for t_down, device in trace.failures:
        t_up = None
        for t_rec, rec_device in recoveries:
            if rec_device == device and t_rec >= t_down:
                t_up = t_rec
                break
        for r in trace.records:
            if r.worker_id != device:
                continue
            down = (
                r.dispatch_time > t_down
                if t_up is None
                else t_down < r.dispatch_time < t_up
            )
            if down:
                window = (
                    f"after its failure at t={t_down:.4f}"
                    if t_up is None
                    else f"inside its downtime ({t_down:.4f}, {t_up:.4f})"
                )
                violations.append(
                    Violation(
                        "fault-isolation",
                        f"block dispatched to {device} at "
                        f"t={r.dispatch_time:.4f}, {window}",
                    )
                )
    down_events = {(t, d) for t, d in trace.failures}
    for t, device, units, _start_unit in trace.lost_blocks:
        if (t, device) not in down_events:
            violations.append(
                Violation(
                    "fault-isolation",
                    f"{units} units lost on {device} at t={t:.4f} with no "
                    "down event recorded there",
                )
            )
    return violations


def check_busy_overlap(trace: ExecutionTrace) -> list[Violation]:
    """Per-worker busy intervals must never overlap.

    A worker is one processing unit: two blocks cannot be in flight on
    it at once, so the half-open intervals ``[start_time, end_time)`` of
    its records must be disjoint.  Back-to-back intervals (one ending
    exactly where the next starts) are fine.  Reports at most one
    violation per worker — the first overlap in start order — so a
    systematically broken trace yields a readable list.
    """
    violations: list[Violation] = []
    for worker in trace.worker_ids:
        intervals = trace.busy_intervals(worker)
        for prev, cur in zip(intervals, intervals[1:]):
            if cur.start < prev.end:
                violations.append(
                    Violation(
                        "busy-overlap",
                        f"{worker} busy [{cur.start:.4f}, {cur.end:.4f}) "
                        f"overlaps prior busy "
                        f"[{prev.start:.4f}, {prev.end:.4f})",
                    )
                )
                break
    return violations


def check_makespan(
    makespan: float,
    baseline: float,
    *,
    anomaly_tolerance: float = 0.25,
) -> list[Violation]:
    """A faulted run must not beat the fault-free baseline implausibly.

    ``anomaly_tolerance`` is the fraction by which the faulted makespan
    may undercut the baseline before it is flagged — scheduling
    anomalies (Graham 1969) make small speedups legitimate, a 2× one is
    a lost-work accounting bug.
    """
    if makespan < baseline * (1.0 - anomaly_tolerance):
        return [
            Violation(
                "makespan",
                f"faulted makespan {makespan:.4f}s implausibly beats the "
                f"fault-free baseline {baseline:.4f}s by more than "
                f"{anomaly_tolerance:.0%}",
            )
        ]
    return []


def recovery_lags(trace: ExecutionTrace) -> list[float]:
    """Seconds from each recovery to the device's next dispatch.

    Recoveries after which the device never ran again contribute no lag
    (the run may simply have finished; fault isolation already polices
    wrongful dispatches).
    """
    lags: list[float] = []
    for t_rec, device in trace.recoveries:
        dispatches = [
            r.dispatch_time
            for r in trace.records
            if r.worker_id == device and r.dispatch_time >= t_rec
        ]
        if dispatches:
            lags.append(min(dispatches) - t_rec)
    return lags


def check_run(
    trace: ExecutionTrace,
    total_units: int,
    makespan: float,
    baseline: float,
    *,
    anomaly_tolerance: float = 0.25,
) -> list[Violation]:
    """All invariants of one faulted run, concatenated."""
    violations = check_conservation(trace, total_units)
    violations += check_fault_isolation(trace)
    violations += check_busy_overlap(trace)
    violations += check_makespan(
        makespan, baseline, anomaly_tolerance=anomaly_tolerance
    )
    return violations
