"""The chaos campaign runner.

One campaign = a seeded grid of randomized fault schedules over
scenario × policy combinations, executed through the parallel sweep
engine in two phases:

1. **Baselines** — every (scenario, policy, seed) combination runs
   fault-free.  The baseline makespans both anchor the degradation
   scores and set each run's fault-schedule horizon (fault times are
   fractions of the fault-free makespan, so schedules stay meaningful
   across applications and sizes).
2. **Chaos** — the same runs re-execute under their generated fault
   schedules with ``tolerate_errors`` on: a crash is scored as a lost
   run, not a campaign abort.

Every surviving run is checked against the work-conservation and
fault-isolation invariants of :mod:`repro.resilience.invariants`; the
result is a JSON-serialisable *scorecard* with per-run records and
per-policy aggregates (survival rate, makespan degradation, recovery
lag).  The whole campaign is a pure function of its config — rerunning
with the same seed reproduces it bit-identically, and the sweep cache
applies to baseline and chaos runs alike.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.errors import ConfigurationError
from repro.experiments.parallel import PointSpec, SweepStats, run_sweep
from repro.obs.events import EventLog
from repro.obs.metrics import get_registry
from repro.resilience.faults import fault_to_dict, generate_schedule
from repro.resilience.invariants import check_makespan
from repro.sim.random import RandomStreams
from repro.util.logging import get_logger

__all__ = ["ChaosConfig", "run_campaign"]

_log = get_logger("resilience.campaign")
_events = EventLog("resilience.campaign")

#: chaos runs pin the scheduler-overhead charge so campaigns are
#: bit-reproducible (measured host time would jitter the makespans)
_FIXED_OVERHEAD_S = 0.002


@dataclass(frozen=True)
class ChaosConfig:
    """What one chaos campaign runs.

    ``runs`` fault schedules are dealt round-robin over the
    scenario × policy grid: run ``i`` uses application
    ``apps[i % len(apps)]``, policy ``policies[i % len(policies)]`` and
    a per-run seed derived from ``seed``, so any two campaigns with the
    same config are identical.
    """

    apps: tuple[str, ...] = ("matmul",)
    sizes: tuple[int, ...] = (2048,)
    machines: int = 2
    policies: tuple[str, ...] = ("plb-hec", "greedy", "hdss", "gss")
    runs: int = 16
    seed: int = 0
    noise_sigma: float = 0.005
    max_faults: int = 2
    anomaly_tolerance: float = 0.25

    def __post_init__(self) -> None:
        if not self.apps or not self.sizes or not self.policies:
            raise ConfigurationError(
                "chaos campaign needs apps, sizes and policies"
            )
        if len(self.apps) != len(self.sizes):
            raise ConfigurationError(
                f"apps ({len(self.apps)}) and sizes ({len(self.sizes)}) "
                "must pair up"
            )
        if self.runs < 1:
            raise ConfigurationError(f"runs must be >= 1, got {self.runs}")
        if self.machines < 1:
            raise ConfigurationError(
                f"machines must be >= 1, got {self.machines}"
            )

    def to_dict(self) -> dict:
        return {
            "apps": list(self.apps),
            "sizes": list(self.sizes),
            "machines": self.machines,
            "policies": list(self.policies),
            "runs": self.runs,
            "seed": self.seed,
            "noise_sigma": self.noise_sigma,
            "max_faults": self.max_faults,
            "anomaly_tolerance": self.anomaly_tolerance,
        }


@dataclass
class _RunPlan:
    """One campaign slot: its scenario, policy, and derived seed."""

    index: int
    app: str
    size: int
    policy: str
    seed: int
    faults: tuple = ()


def _plan_runs(config: ChaosConfig) -> list[_RunPlan]:
    return [
        _RunPlan(
            index=i,
            app=config.apps[i % len(config.apps)],
            size=config.sizes[i % len(config.sizes)],
            policy=config.policies[i % len(config.policies)],
            seed=config.seed * 1000 + i,
        )
        for i in range(config.runs)
    ]


def _point(plan: _RunPlan, config: ChaosConfig, faults: tuple) -> PointSpec:
    return PointSpec(
        app_name=plan.app,
        size=plan.size,
        num_machines=config.machines,
        policies=(plan.policy,),
        replications=1,
        # PointSpec.expand derives run_seed = seed * 1000; distinct
        # per-plan seeds keep every campaign slot on its own noise stream
        seed=plan.seed,
        noise_sigma=config.noise_sigma,
        fixed_overhead_s=_FIXED_OVERHEAD_S,
        faults=faults,
        tolerate_errors=bool(faults),
        # auto-interval telemetry: deterministic (ground-truth derived),
        # so the scorecard's SLO column stays bit-identical per config
        sample_interval=0.0,
    )


def run_campaign(
    config: ChaosConfig,
    *,
    jobs: int | None = None,
    device_ids: Sequence[str] | None = None,
) -> dict:
    """Execute one chaos campaign and return its scorecard.

    ``device_ids`` overrides the fault-target pool (default: the
    devices of the first scenario's cluster at ``config.machines``).
    """
    from repro.cluster import paper_cluster

    plans = _plan_runs(config)
    registry = get_registry()

    # ---- phase 1: fault-free baselines -------------------------------
    # A barrier is required: every fault schedule is scaled by its
    # run's baseline makespan, so generation cannot start earlier.
    baseline_stats = SweepStats()
    run_sweep(
        [_point(p, config, ()) for p in plans],
        jobs=jobs,
        stats=baseline_stats,
    )
    baselines = [p["makespan"] for p in baseline_stats.payloads]

    # ---- generate the fault schedules --------------------------------
    if device_ids is None:
        device_ids = tuple(
            d.device_id for d in paper_cluster(config.machines).devices()
        )
    streams = RandomStreams(config.seed)
    for plan, baseline in zip(plans, baselines):
        rng = streams.stream(f"chaos/run{plan.index}")
        plan.faults = generate_schedule(
            rng,
            device_ids,
            baseline,
            max_faults=config.max_faults,
        )

    # ---- phase 2: the chaos runs -------------------------------------
    chaos_stats = SweepStats()
    run_sweep(
        [_point(p, config, p.faults) for p in plans],
        jobs=jobs,
        stats=chaos_stats,
    )

    # ---- score -------------------------------------------------------
    run_records: list[dict] = []
    for plan, baseline, payload in zip(
        plans, baselines, chaos_stats.payloads
    ):
        error = payload.get("error")
        makespan = payload.get("makespan")
        survived = error is None and makespan is not None
        resilience = payload.get("resilience") or {}
        violations = list(resilience.get("violations", []))
        if survived:
            violations += [
                {"name": v.name, "message": v.message}
                for v in check_makespan(
                    makespan,
                    baseline,
                    anomaly_tolerance=config.anomaly_tolerance,
                )
            ]
        ledger = payload.get("ledger") or {}
        # the ledger lists fired fallback stages in decision order;
        # the scorecard stores per-stage counts so policies aggregate
        stage_counts: dict[str, int] = {}
        for stage in ledger.get("fallback_stages", ()):
            stage_counts[stage] = stage_counts.get(stage, 0) + 1
        # SLO health of the (sampled) chaos run: deterministic series →
        # deterministic verdicts, so this column is reproducible too
        slo_violations = 0
        series = payload.get("series")
        if series:
            from repro.obs.slo import DEFAULT_SLO_SPEC, evaluate_slo
            from repro.obs.timeseries import store_from_payload

            slo_report = evaluate_slo(
                DEFAULT_SLO_SPEC, store_from_payload(series["store"])
            )
            slo_violations = int(slo_report["violations"])
        # makespan attribution of the chaos run: where the degradation
        # actually went (fault recovery? rework? idle?), per category
        critpath = payload.get("critpath") or {}
        attribution = {}
        if critpath:
            from repro.obs.critpath import category_shares

            attribution = category_shares(critpath)
        record = {
            "run": plan.index,
            "app": plan.app,
            "size": plan.size,
            "policy": plan.policy,
            "seed": plan.seed,
            "faults": [fault_to_dict(f) for f in plan.faults],
            "baseline_makespan": baseline,
            "makespan": makespan,
            "degradation": (
                makespan / baseline if survived and baseline > 0 else None
            ),
            "survived": survived,
            "error": error,
            "violations": violations,
            "recovery_lags": list(resilience.get("recovery_lags", [])),
            "lost_units": resilience.get("lost_units", 0),
            "retries": resilience.get("retries", 0),
            "decisions": len(ledger.get("decisions", ())),
            "fallback_stages": stage_counts,
            "slo_violations": slo_violations,
            "attribution": attribution,
        }
        run_records.append(record)

    policies: dict[str, dict] = {}
    for policy in config.policies:
        rows = [r for r in run_records if r["policy"] == policy]
        if not rows:
            continue
        survived_rows = [r for r in rows if r["survived"]]
        degradations = [
            r["degradation"]
            for r in survived_rows
            if r["degradation"] is not None
        ]
        lags = [lag for r in rows for lag in r["recovery_lags"]]
        fallback_stages: dict[str, int] = {}
        for r in rows:
            for stage, count in r.get("fallback_stages", {}).items():
                fallback_stages[stage] = fallback_stages.get(stage, 0) + count
        # mean makespan-attribution shares over the surviving runs, so
        # the scorecard says *where* each policy's time went under chaos
        attributed = [r["attribution"] for r in survived_rows if r["attribution"]]
        mean_attribution = {}
        if attributed:
            for category in sorted(attributed[0]):
                mean_attribution[category] = sum(
                    a.get(category, 0.0) for a in attributed
                ) / len(attributed)
        policies[policy] = {
            "runs": len(rows),
            "survived": len(survived_rows),
            "survival_rate": len(survived_rows) / len(rows),
            "mean_degradation": (
                sum(degradations) / len(degradations) if degradations else None
            ),
            "max_degradation": max(degradations) if degradations else None,
            "mean_recovery_lag": sum(lags) / len(lags) if lags else None,
            "violations": sum(len(r["violations"]) for r in rows),
            "decisions_explained": sum(r.get("decisions", 0) for r in rows),
            "fallback_stages_used": dict(sorted(fallback_stages.items())),
            "slo_violations": sum(r.get("slo_violations", 0) for r in rows),
            "mean_attribution": mean_attribution,
        }

    total_violations = sum(len(r["violations"]) for r in run_records)
    survivors = sum(1 for r in run_records if r["survived"])
    scorecard = {
        "config": config.to_dict(),
        "runs": run_records,
        "policies": policies,
        "total_runs": len(run_records),
        "survived_runs": survivors,
        "total_violations": total_violations,
        "all_invariants_ok": total_violations == 0,
    }
    # cache-hit counts vary between cold and warm reruns, so they are
    # telemetry, not scorecard content — the scorecard must be
    # bit-identical for a given config
    _log.info(
        "chaos cache hits: baseline=%d chaos=%d",
        baseline_stats.cache_hits,
        chaos_stats.cache_hits,
    )
    registry.inc("chaos.campaigns")
    registry.inc("chaos.runs", len(run_records))
    registry.inc("chaos.violations", total_violations)
    registry.inc("chaos.survived", survivors)
    _events.instant(
        "chaos.complete",
        runs=len(run_records),
        survived=survivors,
        violations=total_violations,
    )
    _log.info(
        "chaos campaign complete: %d/%d runs survived, %d violation(s)",
        survivors,
        len(run_records),
        total_violations,
    )
    return scorecard
