"""Fault serialisation and seeded randomized fault-schedule generation.

Faults are the frozen dataclasses of :mod:`repro.runtime.sim_executor`;
this module adds a canonical dict form (for sweep cache keys, scorecard
JSON and the campaign history) and a deterministic generator that turns
a seeded random stream into a mixed fault schedule scaled to a run's
fault-free horizon.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.runtime.sim_executor import (
    DeviceFailure,
    Perturbation,
    TransferFault,
    TransientFailure,
)

__all__ = ["fault_to_dict", "fault_from_dict", "generate_schedule"]

Fault = DeviceFailure | Perturbation | TransientFailure | TransferFault


def fault_to_dict(fault: Fault) -> dict:
    """Canonical JSON-safe form of any fault object."""
    if isinstance(fault, DeviceFailure):
        return {
            "type": "failure",
            "device_id": fault.device_id,
            "time": float(fault.time),
        }
    if isinstance(fault, Perturbation):
        return {
            "type": "perturbation",
            "device_id": fault.device_id,
            "start_time": float(fault.start_time),
            "factor": float(fault.factor),
        }
    if isinstance(fault, TransientFailure):
        return {
            "type": "transient",
            "device_id": fault.device_id,
            "time": float(fault.time),
            "downtime": float(fault.downtime),
        }
    if isinstance(fault, TransferFault):
        return {
            "type": "transfer",
            "device_id": fault.device_id,
            "time": float(fault.time),
            "duration": float(fault.duration),
            "max_retries": int(fault.max_retries),
            "timeout_factor": float(fault.timeout_factor),
            "backoff_factor": float(fault.backoff_factor),
            "backoff_cap_factor": float(fault.backoff_cap_factor),
            "jitter": float(fault.jitter),
        }
    raise ConfigurationError(f"unknown fault object {fault!r}")


def fault_from_dict(data: dict) -> Fault:
    """Inverse of :func:`fault_to_dict`."""
    kind = data.get("type")
    if kind == "failure":
        return DeviceFailure(data["device_id"], float(data["time"]))
    if kind == "perturbation":
        return Perturbation(
            data["device_id"],
            float(data["start_time"]),
            float(data["factor"]),
        )
    if kind == "transient":
        return TransientFailure(
            data["device_id"], float(data["time"]), float(data["downtime"])
        )
    if kind == "transfer":
        return TransferFault(
            data["device_id"],
            float(data["time"]),
            float(data["duration"]),
            max_retries=int(data.get("max_retries", 4)),
            timeout_factor=float(data.get("timeout_factor", 2.0)),
            backoff_factor=float(data.get("backoff_factor", 1.0)),
            backoff_cap_factor=float(data.get("backoff_cap_factor", 8.0)),
            # absent in schedules serialized before the knob existed
            jitter=float(data.get("jitter", 0.0)),
        )
    raise ConfigurationError(f"unknown fault type {kind!r}")


def split_faults(
    faults: Iterable[Fault],
) -> tuple[
    tuple[Perturbation, ...],
    tuple[DeviceFailure, ...],
    tuple[TransientFailure, ...],
    tuple[TransferFault, ...],
]:
    """Partition a mixed fault list into the four Runtime kwargs."""
    perturbations: list[Perturbation] = []
    failures: list[DeviceFailure] = []
    transients: list[TransientFailure] = []
    transfer_faults: list[TransferFault] = []
    for f in faults:
        if isinstance(f, Perturbation):
            perturbations.append(f)
        elif isinstance(f, DeviceFailure):
            failures.append(f)
        elif isinstance(f, TransientFailure):
            transients.append(f)
        elif isinstance(f, TransferFault):
            transfer_faults.append(f)
        else:
            raise ConfigurationError(f"unknown fault object {f!r}")
    return (
        tuple(perturbations),
        tuple(failures),
        tuple(transients),
        tuple(transfer_faults),
    )


def generate_schedule(
    rng: np.random.Generator,
    device_ids: Sequence[str],
    horizon: float,
    *,
    max_faults: int = 2,
) -> tuple[Fault, ...]:
    """Draw one randomized fault schedule for a run.

    Parameters
    ----------
    rng:
        Seeded generator; the schedule is a pure function of its state.
    device_ids:
        The cluster's devices.  Kill-capable faults (permanent failures
        and transfer faults, which escalate to permanent on give-up)
        are drawn from a pool that always leaves one device alive, so a
        generated schedule can never be statically infeasible.
    horizon:
        The run's fault-free makespan; fault times land in the
        ``[15 %, 80 %]`` window of it, transient downtimes span
        5-30 % of it.
    max_faults:
        Upper bound on the number of faults drawn (at least 1).
    """
    if not device_ids:
        raise ConfigurationError("generate_schedule needs at least one device")
    if horizon <= 0.0:
        raise ConfigurationError(f"horizon must be > 0, got {horizon}")
    if max_faults < 1:
        raise ConfigurationError(f"max_faults must be >= 1, got {max_faults}")
    ids = list(device_ids)
    # shuffled kill pool minus one survivor; non-lethal faults may
    # target any device
    pool = list(ids)
    rng.shuffle(pool)
    killable = pool[:-1]
    transient_used: set[str] = set()
    n_faults = int(rng.integers(1, max_faults + 1))
    schedule: list[Fault] = []
    for _ in range(n_faults):
        kind = rng.choice(
            ["failure", "transient", "perturbation", "transfer"],
            p=[0.2, 0.35, 0.3, 0.15],
        )
        t = float(rng.uniform(0.15, 0.8)) * horizon
        if kind in ("failure", "transfer") and not killable:
            kind = "transient"
        if kind == "transient" and set(ids) <= transient_used:
            kind = "perturbation"
        if kind == "failure":
            device = killable.pop()
            schedule.append(DeviceFailure(device, t))
        elif kind == "transient":
            candidates = [d for d in ids if d not in transient_used]
            device = candidates[int(rng.integers(len(candidates)))]
            transient_used.add(device)
            downtime = float(rng.uniform(0.05, 0.3)) * horizon
            schedule.append(TransientFailure(device, t, downtime))
        elif kind == "perturbation":
            device = ids[int(rng.integers(len(ids)))]
            factor = float(rng.uniform(1.3, 3.0))
            schedule.append(Perturbation(device, t, factor))
        else:
            device = killable.pop()
            duration = float(rng.uniform(0.05, 0.2)) * horizon
            schedule.append(TransferFault(device, t, duration))
    return tuple(schedule)
