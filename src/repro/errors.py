"""Exception hierarchy for the :mod:`repro` package.

Every error raised by this library derives from :class:`ReproError`, so
callers can catch one base class.  Subsystems raise the most specific
subclass available; the message always names the offending value.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ConfigurationError",
    "SimulationError",
    "SchedulingError",
    "ModelingError",
    "FitError",
    "SolverError",
    "InfeasibleError",
    "ConvergenceError",
    "DataError",
    "WorkloadError",
]


class ReproError(Exception):
    """Base class of every exception raised by :mod:`repro`."""


class ConfigurationError(ReproError, ValueError):
    """An invalid parameter, device spec or experiment configuration."""


class SimulationError(ReproError, RuntimeError):
    """The discrete-event engine reached an inconsistent state."""


class SchedulingError(ReproError, RuntimeError):
    """A scheduling policy violated the runtime protocol.

    Examples: assigning work after the domain is exhausted, returning a
    negative block size, or touching a worker it does not own.
    """


class ModelingError(ReproError, RuntimeError):
    """Performance-profile construction failed."""


class FitError(ModelingError):
    """A least-squares fit could not be computed (e.g. too few points)."""


class SolverError(ReproError, RuntimeError):
    """The interior-point solver failed."""


class InfeasibleError(SolverError):
    """The block-partition problem has no feasible point."""


class ConvergenceError(SolverError):
    """The solver exhausted its iteration budget before converging."""


class DataError(ReproError, ValueError):
    """Application data is malformed (wrong shape, dtype or range)."""


class WorkloadError(ReproError, ValueError):
    """An application workload was parameterised inconsistently."""
