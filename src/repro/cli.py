"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``run``
    Run one workload under one policy and print the result summary.
    ``--trace-out trace.json`` additionally exports a Chrome
    trace-event/Perfetto timeline (with decision instant markers when
    the policy keeps a ledger); ``--metrics-out metrics.json`` writes
    the run's telemetry manifest (:class:`repro.obs.RunReport`), or the
    metrics registry in Prometheus text exposition format with
    ``--metrics-format prom``; ``--explain-out explain.jsonl`` writes
    the scheduler decision ledger.  Repeatable fault-injection flags:
    ``--fail DEV@T`` (permanent failure), ``--perturb DEV@T:FACTOR``
    (speed change), ``--transient DEV@T+D`` (down at T, back after D).
    ``--sample-interval S`` attaches the virtual-time cluster sampler
    (``0`` picks ~makespan/128 automatically); ``--series-out
    series.jsonl`` records the sampled telemetry; ``--slo FILE``
    evaluates a declarative SLO spec (``default`` for the built-in one)
    against the series, stamps ``alert.slo.*`` instants into the trace,
    writes ``--slo-report-out`` and exits 2 when an objective fails.
``top``
    Render a recorded ``series.jsonl`` as a terminal cluster view
    (per-device utilization sparklines, backlog/goodput strips,
    fairness, optional SLO verdicts from ``--slo-report``).  ``--once``
    prints a single frame for CI; without it the view follows the file,
    refreshing every ``--interval`` seconds.
``explain``
    Run one workload and explain every scheduler decision: trigger
    (probe round / selection / rebalance / fault / recovery), solver
    outcome (iterations, KKT error, fallback stage), allocation, and
    how the per-device block-time predictions calibrated against what
    actually executed (MAPE, signed bias, EWMA drift).  Accepts the
    same fault-injection flags as ``run``; ``--out explain.jsonl``
    writes the run-id-correlated ledger artifact.
``trace``
    Run one workload and write the Perfetto/Chrome timeline to
    ``--out`` (default ``trace.json``) — shorthand for
    ``run --trace-out``.
``why``
    Run one workload and explain its *makespan*: extract the critical
    path from the execution trace and attribute 100 % of the end-to-end
    time into compute / transfer / idle / solver / retries /
    fault-recovery / rework, with what-if lower bounds (zero-transfer,
    zero-scheduler, perfect-balance, per-device k×-faster sensitivity)
    and a decision-blame join against the scheduler ledger.  Accepts
    the same fault-injection flags as ``run``; writes the
    schema-validated ``critpath.json`` artifact (``--out``, ``-`` to
    skip).  ``--assert-bound`` turns the attribution guarantees into a
    gate: exit 2 unless the categories sum to the makespan, every
    bound is ≤ the observed makespan, the path is non-empty, and the
    busy-interval invariant holds.
``compare``
    Run all four paper policies on one workload and print the
    comparison table.  ``--trace-out`` re-runs each policy once at the
    first replication's seed and exports all of them side by side, one
    process group per policy.
``table1`` / ``fig1`` / ``fig4`` / ``fig5`` / ``fig6`` / ``fig7``
    Regenerate the corresponding paper artefact.
``overhead``
    Time the block-size solver (the Sec. V.a statistic).
``ablations``
    Run the three DESIGN.md ablation studies.
``bench``
    Benchmark the sweep engine (serial vs parallel vs cached) and write
    ``BENCH_wallclock.json``.  Every run is also appended to the
    benchmark history store (``.repro_history/``, see ``REPRO_HISTORY``);
    ``--check`` compares the fresh laps against the recorded baseline
    with the statistical gate in :mod:`repro.obs.regress` and exits
    non-zero on a regression.
``dashboard``
    Write the self-contained HTML observability dashboard (policy
    comparison, benchmark trend, solver convergence, Gantt timeline,
    CPU profile, resilience scorecard, anomaly findings) — no external
    requests, open it anywhere.  ``--scorecard chaos_scorecard.json``
    feeds the resilience section from a previous ``chaos`` run.
``chaos``
    Run a seeded chaos campaign (randomized fault schedules over a
    scenario × policy grid through the sweep engine), check the
    work-conservation and fault-isolation invariants on every run, and
    write the resilience scorecard JSON.  Exits non-zero when any
    invariant is violated.  Same seed → bit-identical scorecard; see
    docs/TUTORIAL.md §9.  ``--serve`` runs the campaign against
    *service episodes* instead of batch runs: the same seeded fault
    schedules are injected while the cluster keeps admitting, shedding
    and completing jobs; see docs/TUTORIAL.md §13.
``serve``
    Host the cluster as an online service: seeded open-loop Poisson
    arrivals (``--pattern constant|diurnal|bursty``) flow through a
    bounded admission queue (``--queue-limit``, ``--shed-policy``)
    into a continuous PLB-HeC balancing loop, guarded by per-job
    deadlines (``--deadline-factor``), per-tenant retry budgets and
    per-device circuit breakers.  Accepts the same fault-injection
    flags as ``run``; writes the serving scorecard
    (``--scorecard-out``) and the sampled ``serve_*`` telemetry
    (``--series-out``), and gates on an SLO spec (``--slo``, exit 2
    on violation).  Equal seeds produce byte-identical scorecards.
``profile``
    Run one workload under the deterministic phase-attributed CPU
    profiler and write a flamegraph SVG (``--flame``), a collapsed-stack
    file for flamegraph.pl / speedscope (``--collapsed``), the raw
    snapshot (``--json``) and/or profile slices merged into a Perfetto
    timeline (``--trace-out``).  ``run``/``compare``/``bench`` accept a
    ``--profile`` flag for the same capture in passing; profiled bench
    laps are tagged in history and never drive the regression gate.

Sweep-driving commands accept ``--jobs N`` (default: the ``REPRO_JOBS``
environment variable, else the CPU count) and honour ``REPRO_CACHE``
for on-disk result caching; see docs/TUTORIAL.md §5.  ``REPRO_PROFILE=1``
profiles every sweep the way ``--profile`` does (and, like it,
disables the result cache while active); see docs/TUTORIAL.md §8.

Global options (before the subcommand): ``--log-level
{debug,info,warning,error,critical}`` and ``--log-format {text,json}``
configure console logging; the ``REPRO_LOG`` environment variable
(``REPRO_LOG=debug``, ``REPRO_LOG=json``, ``REPRO_LOG=info:json``)
supplies defaults that the flags override.  See docs/TUTORIAL.md §6.

Examples
--------
::

    python -m repro run --app matmul --size 16384 --policy plb-hec
    python -m repro run --app matmul --size 4096 --trace-out trace.json
    python -m repro why --app matmul --size 4096 --out critpath.json
    python -m repro trace --app grn --size 2048 --out grn.json
    python -m repro --log-format json compare --app blackscholes --size 500000
    python -m repro fig4 --app matmul --fast
    python -m repro fig7
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Sequence

from repro.experiments.ablations import (
    render_ablation,
    run_probe_ablation,
    run_rebalance_ablation,
    run_selection_ablation,
)
from repro.experiments.fig1_models import render_fig1, run_fig1
from repro.experiments.fig4_exectime import (
    GRN_SIZES,
    MM_SIZES,
    render_sweep,
    run_fig4,
)
from repro.experiments.fig5_blackscholes import BS_SIZES, run_fig5
from repro.experiments.fig6_distribution import render_fig6, run_fig6
from repro.experiments.fig7_idleness import render_fig7, run_fig7
from repro.experiments.runner import (
    PAPER_POLICIES,
    make_application,
    make_policy,
    run_policies,
)
from repro.experiments.solver_overhead import run_solver_overhead
from repro.experiments.table1 import render_table1
from repro.cluster import GroundTruth, paper_cluster
from repro.errors import ConfigurationError
from repro.obs.events import new_run_id, push_run_id
from repro.obs.metrics import get_registry
from repro.obs.report import RunReport
from repro.obs.trace_export import trace_to_chrome, write_chrome_trace
from repro.runtime import Runtime
from repro.util.logging import configure_from_env
from repro.util.tables import format_table

__all__ = ["main", "build_parser", "EXIT_CODE_TABLE"]

#: The one authoritative exit-code contract, rendered into ``repro
#: --help`` (epilog) and mirrored by the README table (a test asserts
#: the two agree).  Codes follow the regression gate's convention:
#: 2 is :data:`repro.obs.regress.EXIT_CODES`'s ``"regressed"``.
EXIT_CODE_TABLE: tuple[tuple[int, str, str], ...] = (
    (0, "ok", "command completed and every gate it ran passed"),
    (1, "error", "usage or data error: bad configuration, missing "
     "artifact (top without a series), policy without a ledger (explain)"),
    (2, "regressed", "a gate failed: bench --check regression, "
     "run/serve --slo objective violation, or why --assert-bound breach "
     "(attribution != makespan, bound > makespan, empty path, "
     "busy-overlap)"),
    (3, "chaos", "chaos campaign (batch or --serve) finished with "
     "invariant violations, or a serve episode produced scorecard "
     "invariant errors"),
)


def _exit_code_epilog() -> str:
    """The ``repro --help`` epilog rendered from :data:`EXIT_CODE_TABLE`."""
    lines = ["exit codes:"]
    for code, name, meaning in EXIT_CODE_TABLE:
        lines.append(f"  {code}  {name:<10} {meaning}")
    return "\n".join(lines)


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="PLB-HeC reproduction: run workloads and regenerate "
        "the paper's tables and figures.",
        epilog=_exit_code_epilog(),
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument(
        "--log-level",
        choices=["debug", "info", "warning", "error", "critical"],
        default=None,
        help="console log level (default: REPRO_LOG, else no console logs)",
    )
    parser.add_argument(
        "--log-format",
        choices=["text", "json"],
        default=None,
        help="console log format: text or JSON-lines (default: REPRO_LOG)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_workload_args(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--app",
            choices=["matmul", "grn", "blackscholes"],
            default="matmul",
        )
        p.add_argument("--size", type=int, default=16384)
        p.add_argument("--machines", type=int, default=4, choices=[1, 2, 3, 4])
        p.add_argument("--seed", type=int, default=0)
        p.add_argument("--noise", type=float, default=0.005)

    def add_policy_arg(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--policy",
            default="plb-hec",
            choices=[*PAPER_POLICIES, "hdss-async", "gss", "static", "oracle"],
        )

    def add_fault_args(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--fail",
            metavar="DEV@T",
            action="append",
            default=[],
            help="permanently fail a device at virtual time T "
            "(repeatable, e.g. --fail A.gpu0@0.05)",
        )
        p.add_argument(
            "--perturb",
            metavar="DEV@T:FACTOR",
            action="append",
            default=[],
            help="multiply a device's execution times by FACTOR from time T "
            "on (repeatable, e.g. --perturb A.cpu@0.1:2.5)",
        )
        p.add_argument(
            "--transient",
            metavar="DEV@T+D",
            action="append",
            default=[],
            help="take a device down at time T and bring it back after D "
            "seconds (repeatable, e.g. --transient B.gpu0@0.05+0.02)",
        )

    p_run = sub.add_parser("run", help="run one workload under one policy")
    add_workload_args(p_run)
    add_policy_arg(p_run)
    add_fault_args(p_run)
    p_run.add_argument(
        "--gantt", action="store_true", help="render an ASCII Gantt chart"
    )
    p_run.add_argument(
        "--trace-out",
        metavar="PATH",
        default=None,
        help="also export a Chrome trace-event/Perfetto timeline "
        "(with one instant marker per scheduler decision when the "
        "policy keeps a ledger)",
    )
    p_run.add_argument(
        "--metrics-out",
        metavar="PATH",
        default=None,
        help="also write the run's telemetry (RunReport JSON, or "
        "Prometheus text exposition with --metrics-format prom)",
    )
    p_run.add_argument(
        "--metrics-format",
        choices=["json", "prom"],
        default="json",
        help="format of --metrics-out: RunReport JSON (default) or "
        "Prometheus text exposition of the metrics registry",
    )
    p_run.add_argument(
        "--explain-out",
        metavar="PATH",
        default=None,
        help="also write the scheduler decision ledger as explain.jsonl "
        "(policies without a ledger skip this with a note)",
    )
    p_run.add_argument(
        "--profile",
        action="store_true",
        help="capture a phase-attributed CPU profile and print the "
        "per-phase breakdown and hot functions",
    )
    p_run.add_argument(
        "--sample-interval",
        type=float,
        metavar="S",
        default=None,
        help="attach the virtual-time telemetry sampler, one sample "
        "every S virtual seconds (0: auto, ~makespan/128; sampling "
        "never changes the schedule)",
    )
    p_run.add_argument(
        "--series-out",
        metavar="PATH",
        default=None,
        help="write the sampled telemetry as series.jsonl "
        "(implies --sample-interval 0 when not given)",
    )
    p_run.add_argument(
        "--slo",
        metavar="FILE",
        default=None,
        help="evaluate an SLO spec (JSON; the literal 'default' uses "
        "the built-in objectives) against the sampled series; failing "
        "objectives print, alert, and exit 2",
    )
    p_run.add_argument(
        "--slo-report-out",
        metavar="PATH",
        default=None,
        help="write the SLO evaluation as slo_report.json "
        "(requires --slo)",
    )

    p_top = sub.add_parser(
        "top",
        help="terminal cluster view of a recorded telemetry series",
    )
    p_top.add_argument(
        "--series",
        metavar="PATH",
        default="series.jsonl",
        help="series.jsonl to render (default: series.jsonl)",
    )
    p_top.add_argument(
        "--slo-report",
        metavar="PATH",
        default=None,
        help="slo_report.json whose verdicts to show under the series",
    )
    p_top.add_argument(
        "--once",
        action="store_true",
        help="render one frame and exit (CI-friendly)",
    )
    p_top.add_argument(
        "--interval",
        type=float,
        default=2.0,
        help="refresh period in seconds in follow mode (default 2)",
    )
    p_top.add_argument(
        "--frames",
        type=int,
        default=None,
        help="stop after this many refreshes (default: until Ctrl-C)",
    )
    p_top.add_argument(
        "--width",
        type=int,
        default=40,
        help="sparkline width in characters (default 40)",
    )

    p_explain = sub.add_parser(
        "explain",
        help="run one workload and explain every scheduler decision "
        "(trigger, solver outcome, allocation, prediction calibration)",
    )
    add_workload_args(p_explain)
    add_policy_arg(p_explain)
    add_fault_args(p_explain)
    p_explain.add_argument(
        "--out",
        metavar="PATH",
        default=None,
        help="also write the ledger as a run-id-correlated explain.jsonl",
    )

    p_trace = sub.add_parser(
        "trace", help="run one workload and export its Perfetto timeline"
    )
    add_workload_args(p_trace)
    add_policy_arg(p_trace)
    p_trace.add_argument(
        "--out",
        metavar="PATH",
        default="trace.json",
        help="trace output path (default: trace.json)",
    )

    p_why = sub.add_parser(
        "why",
        help="explain a run's makespan: critical path, 100%% attribution, "
        "what-if headroom bounds",
    )
    add_workload_args(p_why)
    add_policy_arg(p_why)
    add_fault_args(p_why)
    p_why.add_argument(
        "--out",
        metavar="PATH",
        default="critpath.json",
        help="schema-validated analysis artifact "
        "(default: critpath.json, '-' to skip)",
    )
    p_why.add_argument(
        "--speedup-factor",
        type=float,
        default=2.0,
        metavar="K",
        help="k for the per-device 'if X were k× faster' sensitivity "
        "bounds (default 2)",
    )
    p_why.add_argument(
        "--assert-bound",
        action="store_true",
        help="exit 2 unless the attribution is exact (categories sum to "
        "the makespan), every bound is <= the observed makespan, the "
        "critical path is non-empty, and per-worker busy intervals "
        "never overlap",
    )
    p_why.add_argument(
        "--trace-out",
        metavar="PATH",
        default=None,
        help="also export the Perfetto timeline with critical-path "
        "slices recolored and chained by flow arrows",
    )

    def add_jobs_arg(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--jobs",
            type=int,
            default=None,
            help="parallel worker processes (default: REPRO_JOBS or cpu count)",
        )

    p_cmp = sub.add_parser("compare", help="compare the four paper policies")
    add_workload_args(p_cmp)
    p_cmp.add_argument("--replications", type=int, default=3)
    add_jobs_arg(p_cmp)
    p_cmp.add_argument(
        "--trace-out",
        metavar="PATH",
        default=None,
        help="export one timeline with a process group per policy",
    )
    p_cmp.add_argument(
        "--profile",
        action="store_true",
        help="profile every run and print the merged hot-function table "
        "(disables the result cache for this comparison)",
    )

    p_prof = sub.add_parser(
        "profile",
        help="run one workload under the phase-attributed CPU profiler",
    )
    add_workload_args(p_prof)
    add_policy_arg(p_prof)
    p_prof.add_argument(
        "--flame",
        metavar="PATH",
        default="profile.svg",
        help="flamegraph SVG output (self-contained, dark-mode aware; "
        "default: profile.svg, '-' to skip)",
    )
    p_prof.add_argument(
        "--collapsed",
        metavar="PATH",
        default=None,
        help="collapsed-stack output for flamegraph.pl / speedscope.app",
    )
    p_prof.add_argument(
        "--json",
        metavar="PATH",
        default=None,
        dest="json_out",
        help="raw profile snapshot (phases, functions, caller edges)",
    )
    p_prof.add_argument(
        "--trace-out",
        metavar="PATH",
        default=None,
        help="Perfetto timeline with the profile as its own process group",
    )
    p_prof.add_argument(
        "--top",
        type=int,
        default=10,
        help="hot functions to print (default 10)",
    )

    sub.add_parser("table1", help="render Table I")

    p_fig1 = sub.add_parser("fig1", help="Fig. 1 measured vs fitted curves")
    p_fig1.add_argument("--points", type=int, default=12)

    for fig, sizes in (("fig4", None), ("fig5", BS_SIZES)):
        p_fig = sub.add_parser(fig, help=f"{fig} execution time / speedup")
        if fig == "fig4":
            p_fig.add_argument(
                "--app", choices=["matmul", "grn"], default="matmul"
            )
        p_fig.add_argument("--replications", type=int, default=3)
        p_fig.add_argument(
            "--fast", action="store_true", help="reduced size/machine grid"
        )
        add_jobs_arg(p_fig)

    for fig in ("fig6", "fig7"):
        p_fig = sub.add_parser(fig, help=f"{fig} distribution / idleness")
        p_fig.add_argument("--replications", type=int, default=3)
        add_jobs_arg(p_fig)

    p_oh = sub.add_parser("overhead", help="Sec. V.a solver overhead")
    p_oh.add_argument("--repetitions", type=int, default=20)

    sub.add_parser("ablations", help="DESIGN.md A1-A3 ablation studies")
    sub.add_parser("heterogeneity", help="H1 speedup-vs-heterogeneity sweep")
    sub.add_parser("sensitivity", help="S2 initial-block-size sensitivity")

    p_report = sub.add_parser(
        "report", help="full reproduction report with shape checks"
    )
    p_report.add_argument("--replications", type=int, default=3)
    p_report.add_argument("--fast", action="store_true")

    p_bench = sub.add_parser(
        "bench",
        help="benchmark the sweep engine and write BENCH_wallclock.json",
    )
    p_bench.add_argument("--replications", type=int, default=2)
    p_bench.add_argument(
        "--output",
        default="BENCH_wallclock.json",
        help="report path ('-' to skip writing)",
    )
    p_bench.add_argument(
        "--history",
        metavar="PATH",
        default=None,
        help="history store to append to ('-' disables; default: "
        "REPRO_HISTORY, else .repro_history/)",
    )
    p_bench.add_argument(
        "--check",
        action="store_true",
        help="gate this run against the recorded baseline laps; "
        "exits 2 on a statistically significant regression",
    )
    p_bench.add_argument(
        "--baseline",
        metavar="PATH",
        default=None,
        help="history file/dir to compare against (default: the "
        "history store itself)",
    )
    p_bench.add_argument(
        "--rel-threshold",
        type=float,
        default=0.50,
        help="relative slowdown that counts as a regression (default 0.50)",
    )
    p_bench.add_argument(
        "--profile",
        action="store_true",
        help="profile the serial/parallel laps and record the hot-function "
        "table into history; profiled laps are tagged and never gate",
    )
    add_jobs_arg(p_bench)

    p_dash = sub.add_parser(
        "dashboard",
        help="write the self-contained HTML observability dashboard",
    )
    add_workload_args(p_dash)
    p_dash.add_argument("--replications", type=int, default=2)
    p_dash.add_argument(
        "--out",
        metavar="PATH",
        default="dashboard.html",
        help="output path (default: dashboard.html)",
    )
    p_dash.add_argument(
        "--history",
        metavar="PATH",
        default=None,
        help="history store for the trend section (default: REPRO_HISTORY, "
        "else .repro_history/)",
    )
    p_dash.add_argument(
        "--scorecard",
        metavar="PATH",
        default=None,
        help="chaos scorecard JSON (from 'repro chaos --out') to render "
        "in the resilience section",
    )
    add_jobs_arg(p_dash)

    p_chaos = sub.add_parser(
        "chaos",
        help="run a seeded chaos campaign and write the resilience scorecard",
    )
    p_chaos.add_argument(
        "--app",
        choices=["matmul", "grn", "blackscholes", "stencil"],
        default="matmul",
    )
    p_chaos.add_argument("--size", type=int, default=2048)
    p_chaos.add_argument("--machines", type=int, default=2, choices=[1, 2, 3, 4])
    p_chaos.add_argument("--seed", type=int, default=0)
    p_chaos.add_argument(
        "--runs", type=int, default=16, help="campaign slots (default 16)"
    )
    p_chaos.add_argument(
        "--policies",
        default=None,
        help="comma-separated policy list "
        "(default plb-hec,greedy,hdss,gss; --quick: plb-hec,greedy)",
    )
    p_chaos.add_argument(
        "--max-faults",
        type=int,
        default=None,
        help="max faults per schedule (default 2; --quick: 1)",
    )
    p_chaos.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke grid: two policies, one fault per run",
    )
    p_chaos.add_argument(
        "--serve",
        action="store_true",
        help="chaos against the living cluster: inject the fault "
        "schedules into service episodes (repro serve) instead of "
        "batch runs; --app/--size are ignored, --policies takes "
        "balancer flavors (plb-hec,fair,greedy)",
    )
    p_chaos.add_argument(
        "--rate",
        type=float,
        default=3.0,
        help="--serve only: arrival rate in jobs per virtual second "
        "(default 3.0)",
    )
    p_chaos.add_argument(
        "--duration",
        type=float,
        default=12.0,
        help="--serve only: arrival horizon in virtual seconds "
        "(default 12.0)",
    )
    p_chaos.add_argument(
        "--out",
        metavar="PATH",
        default="chaos_scorecard.json",
        help="scorecard JSON path ('-' to skip writing)",
    )
    p_chaos.add_argument(
        "--dashboard",
        metavar="PATH",
        default=None,
        help="also render an HTML dashboard with the resilience section",
    )
    p_chaos.add_argument(
        "--history",
        metavar="PATH",
        default=None,
        help="history store to append the campaign summary to "
        "('-' disables; default: REPRO_HISTORY, else .repro_history/)",
    )
    add_jobs_arg(p_chaos)

    p_serve = sub.add_parser(
        "serve",
        help="host the cluster as an online service under seeded "
        "open-loop arrivals and write the serving scorecard",
    )
    p_serve.add_argument(
        "--rate",
        type=float,
        default=2.0,
        help="base arrival rate in jobs per virtual second (default 2.0)",
    )
    p_serve.add_argument(
        "--duration",
        type=float,
        default=30.0,
        help="arrival horizon in virtual seconds; the service keeps "
        "running until admitted jobs drain (default 30.0)",
    )
    p_serve.add_argument(
        "--pattern",
        choices=["constant", "diurnal", "bursty"],
        default="constant",
        help="arrival-rate modulation (default constant)",
    )
    p_serve.add_argument(
        "--tenants",
        type=int,
        default=2,
        help="number of tenants sharing the service (default 2)",
    )
    p_serve.add_argument(
        "--machines", type=int, default=2, choices=[1, 2, 3, 4]
    )
    p_serve.add_argument(
        "--policy",
        choices=["plb-hec", "fair", "greedy"],
        default="plb-hec",
        help="continuous balancer flavor (default plb-hec)",
    )
    p_serve.add_argument(
        "--queue-limit",
        type=int,
        default=16,
        help="admission queue bound; arrivals beyond it are shed "
        "(default 16)",
    )
    p_serve.add_argument(
        "--shed-policy",
        choices=["reject", "drop-oldest", "priority-shed"],
        default="reject",
        help="what to shed when the admission queue is full "
        "(default reject)",
    )
    p_serve.add_argument(
        "--max-active",
        type=int,
        default=4,
        help="jobs served concurrently (default 4)",
    )
    p_serve.add_argument(
        "--deadline-factor",
        type=float,
        default=0.0,
        help="per-job deadline as a multiple of the template's ideal "
        "service time; 0 disables deadlines (default 0)",
    )
    p_serve.add_argument(
        "--retry-budget",
        type=int,
        default=2,
        help="lost-block retries each tenant may consume before its "
        "jobs fail hard (default 2)",
    )
    p_serve.add_argument(
        "--rebalance-interval",
        type=float,
        default=0.5,
        help="collect-calculate-rebalance cycle period in virtual "
        "seconds (default 0.5)",
    )
    p_serve.add_argument(
        "--sample-interval",
        type=float,
        default=0.0,
        metavar="S",
        help="telemetry sample period in virtual seconds "
        "(0: one sample per rebalance cycle)",
    )
    p_serve.add_argument(
        "--noise",
        type=float,
        default=0.0,
        help="lognormal sigma on block execution times (default 0)",
    )
    p_serve.add_argument("--seed", type=int, default=0)
    add_fault_args(p_serve)
    p_serve.add_argument(
        "--slo",
        metavar="FILE",
        default=None,
        help="evaluate an SLO spec (JSON) against the serve_* series; "
        "failing objectives print, alert, and exit 2",
    )
    p_serve.add_argument(
        "--slo-report-out",
        metavar="PATH",
        default=None,
        help="write the SLO evaluation as slo_report.json "
        "(requires --slo)",
    )
    p_serve.add_argument(
        "--scorecard-out",
        metavar="PATH",
        default="serve_scorecard.json",
        help="serving scorecard JSON path ('-' to skip writing)",
    )
    p_serve.add_argument(
        "--series-out",
        metavar="PATH",
        default=None,
        help="write the sampled serve_* telemetry as series.jsonl",
    )
    return parser


def _split_fault_spec(spec: str, flag: str, syntax: str) -> tuple[str, str]:
    """``DEV@REST`` → ``(DEV, REST)``; anything else is a usage error."""
    device, sep, rest = spec.partition("@")
    if not sep or not device or not rest:
        raise ConfigurationError(f"--{flag} wants {syntax}, got {spec!r}")
    return device, rest


def _parse_fault_flags(args: argparse.Namespace):
    """Fault objects from the repeatable ``run`` injection flags.

    Malformed specs (and malformed numbers inside them) surface as
    :class:`ConfigurationError` naming the flag; unknown device ids are
    validated later by the runtime against the actual cluster.
    """
    from repro.runtime import DeviceFailure, Perturbation, TransientFailure

    perturbations, failures, transients = [], [], []
    try:
        for spec in getattr(args, "fail", None) or []:
            device, when = _split_fault_spec(spec, "fail", "DEV@T")
            failures.append(DeviceFailure(device, float(when)))
        for spec in getattr(args, "perturb", None) or []:
            device, rest = _split_fault_spec(spec, "perturb", "DEV@T:FACTOR")
            when, sep, factor = rest.partition(":")
            if not sep or not when or not factor:
                raise ConfigurationError(
                    f"--perturb wants DEV@T:FACTOR, got {spec!r}"
                )
            perturbations.append(
                Perturbation(device, float(when), float(factor))
            )
        for spec in getattr(args, "transient", None) or []:
            device, rest = _split_fault_spec(spec, "transient", "DEV@T+D")
            when, sep, downtime = rest.partition("+")
            if not sep or not when or not downtime:
                raise ConfigurationError(
                    f"--transient wants DEV@T+D, got {spec!r}"
                )
            transients.append(
                TransientFailure(device, float(when), float(downtime))
            )
    except ValueError as exc:
        raise ConfigurationError(f"bad fault spec: {exc}") from exc
    return tuple(perturbations), tuple(failures), tuple(transients)


def _simulate(
    args: argparse.Namespace,
    policy_name: str,
    *,
    seed: int | None = None,
    sampler=None,
):
    """Run one workload/policy pair; returns ``(policy, result)``."""
    app = make_application(args.app, args.size)
    cluster = paper_cluster(args.machines)
    ground_truth = GroundTruth(cluster, app.kernel_characteristics())
    policy = make_policy(policy_name, ground_truth=ground_truth)
    perturbations, failures, transients = _parse_fault_flags(args)
    runtime = Runtime(
        cluster,
        app.codelet(),
        seed=args.seed if seed is None else seed,
        noise_sigma=args.noise,
        perturbations=perturbations,
        failures=failures,
        transients=transients,
    )
    result = runtime.run(
        policy, app.total_units, app.default_initial_block_size(),
        sampler=sampler,
    )
    return policy, result


def _run_config(args: argparse.Namespace, policy_name: str) -> dict:
    return {
        "app": args.app,
        "size": args.size,
        "machines": args.machines,
        "policy": policy_name,
        "seed": args.seed,
        "noise": args.noise,
    }


def _print_profile_summary(snapshot: dict, *, top: int = 10) -> None:
    """Print the per-phase breakdown and hot-function tables."""
    from repro.obs.profiler import hot_functions, phase_breakdown

    breakdown = phase_breakdown(snapshot)
    print()
    print(
        format_table(
            ["phase", "self_ms", "wall_ms", "share"],
            [
                [
                    phase,
                    d["self_s"] * 1e3,
                    d["wall_s"] * 1e3,
                    f"{d['share'] * 100:.1f}%",
                ]
                for phase, d in breakdown.items()
            ],
            title="CPU time by phase",
        )
    )
    rows = hot_functions(snapshot, top=top)
    if rows:
        print()
        print(
            format_table(
                ["function", "phase", "calls", "self_ms", "cum_ms", "share"],
                [
                    [
                        h["function"],
                        h["phase"],
                        h["calls"],
                        h["self_s"] * 1e3,
                        h["cum_s"] * 1e3,
                        f"{h['share'] * 100:.1f}%",
                    ]
                    for h in rows
                ],
                title=f"Top {len(rows)} hot functions",
            )
        )


def _cmd_run(args: argparse.Namespace) -> int:
    from repro.obs.profiler import profiling

    if args.slo_report_out and not args.slo:
        raise ConfigurationError("--slo-report-out requires --slo")
    sampler = None
    if (
        args.sample_interval is not None
        or args.series_out
        or args.slo
    ):
        from repro.obs.timeseries import ClusterSampler

        sampler = ClusterSampler(args.sample_interval)
    run_id = new_run_id(repr(sorted(_run_config(args, args.policy).items())))
    prof_snapshot = None
    with push_run_id(run_id):
        if args.profile:
            with profiling() as prof:
                policy, result = _simulate(args, args.policy, sampler=sampler)
            prof_snapshot = prof.snapshot()
        else:
            policy, result = _simulate(args, args.policy, sampler=sampler)
    idle = result.idle_fractions
    print(
        format_table(
            ["app", "size", "machines", "policy", "time_s", "mean_idle",
             "rebalances", "overhead_ms"],
            [[
                args.app, args.size, args.machines, policy.name,
                result.makespan, sum(idle.values()) / len(idle),
                result.num_rebalances, result.solver_overhead_s * 1e3,
            ]],
        )
    )
    trace = result.trace
    if trace.failures or trace.recoveries or trace.lost_blocks:
        lost = sum(units for _, _, units, _ in trace.lost_blocks)
        print(
            f"faults: {len(trace.failures)} down event(s), "
            f"{len(trace.recoveries)} recovery(ies), "
            f"{lost} lost unit(s) reprocessed"
        )
    if prof_snapshot is not None:
        _print_profile_summary(prof_snapshot)
    ledger_dict = result.ledger.to_dict() if result.ledger is not None else None
    exit_code = 0
    alerts = None
    if sampler is not None:
        exit_code, alerts = _run_telemetry(args, sampler, run_id, policy.name)
    if args.trace_out:
        doc = trace_to_chrome(
            result.trace,
            run_id=run_id,
            metadata=_run_config(args, policy.name),
            profile=prof_snapshot,
            decisions=ledger_dict.get("decisions") if ledger_dict else None,
            alerts=alerts,
        )
        path = write_chrome_trace(doc, args.trace_out)
        print(f"trace written to {path}")
    if args.metrics_out:
        if args.metrics_format == "prom":
            Path(args.metrics_out).write_text(
                get_registry().to_prometheus(), encoding="utf-8"
            )
        else:
            report = RunReport.build(
                config=_run_config(args, policy.name),
                makespan=result.makespan,
                rebalances=result.num_rebalances,
                solver_overhead_s=result.solver_overhead_s,
                phase_summary=result.trace.phase_summary(),
                metrics=get_registry().snapshot(),
                run_id=run_id,
            )
            Path(args.metrics_out).write_text(
                json.dumps(report.to_dict(), indent=2, sort_keys=True),
                encoding="utf-8",
            )
        print(f"metrics written to {args.metrics_out} ({args.metrics_format})")
    if args.explain_out:
        if result.ledger is None:
            print(
                f"no decision ledger: policy {policy.name!r} keeps none "
                "(--explain-out skipped)"
            )
        else:
            from repro.obs.ledger import write_explain

            write_explain(ledger_dict, args.explain_out)
            print(
                f"explain ledger written to {args.explain_out} "
                f"({len(ledger_dict['decisions'])} decision(s))"
            )
    if args.gantt:
        from repro.util.gantt import render_gantt

        print()
        print(render_gantt(result.trace))
    return exit_code


def _run_telemetry(
    args: argparse.Namespace, sampler, run_id: str, policy_name: str
) -> tuple[int, list[dict] | None]:
    """``run``'s post-run telemetry: series artifact, SLO gate, alerts.

    Returns ``(exit_code, alerts)`` where ``exit_code`` is 2 when an
    SLO objective failed (the regression gate's code) and ``alerts``
    are the instant markers to stamp into a ``--trace-out`` timeline.
    """
    from repro.obs.timeseries import publish_windowed_gauges, write_series

    if args.series_out:
        path = write_series(
            args.series_out,
            sampler.store,
            run_id=run_id,
            interval=sampler.interval or 0.0,
            meta=_run_config(args, policy_name),
        )
        print(
            f"series written to {path} ({sampler.samples_taken} samples, "
            f"interval {sampler.interval or 0.0:.3g}s virtual)"
        )
    # Windowed ts.* gauges land in the registry before --metrics-out
    # renders it, so the Prometheus exposition carries the aggregates.
    publish_windowed_gauges(sampler.store)
    if not args.slo:
        return 0, None
    return _slo_gate(args.slo, sampler.store, run_id, args.slo_report_out)


def _slo_gate(
    slo: str, store, run_id: str, report_out: str | None
) -> tuple[int, list[dict] | None]:
    """Evaluate an SLO spec against a recorded series store and gate.

    Shared by ``run`` (batch telemetry) and ``serve`` (service
    telemetry): prints the verdict table, emits alerts, optionally
    writes the report, and returns exit 2 when an objective failed.
    """
    from repro.obs.regress import EXIT_CODES, detect_slo_anomalies
    from repro.obs.slo import (
        DEFAULT_SLO_SPEC,
        emit_slo_alerts,
        evaluate_slo,
        load_slo_spec,
        slo_alerts,
        write_slo_report,
    )

    spec = DEFAULT_SLO_SPEC if slo == "default" else load_slo_spec(slo)
    report = evaluate_slo(spec, store, run_id=run_id)
    emit_slo_alerts(report)
    detect_slo_anomalies(report)

    def fmt_opt(value, pattern: str) -> str:
        return pattern.format(value) if value is not None else "-"

    print(
        format_table(
            ["objective", "expr", "verdict", "measured", "burn", "severity"],
            [
                [
                    row["name"],
                    row["expr"],
                    row["verdict"],
                    fmt_opt(row["measured"], "{:.4g}"),
                    fmt_opt(row["burn_rate"], "{:.2f}x"),
                    row["severity"],
                ]
                for row in report["objectives"]
            ],
            title=f"SLO evaluation: {spec.name}",
        )
    )
    print(
        f"slo: {'OK' if report['ok'] else 'FAIL'} "
        f"({report['violations']} violated, {report['no_data']} no-data "
        f"of {report['evaluated']} objective(s))"
    )
    if report_out:
        path = write_slo_report(report_out, report)
        print(f"slo report written to {path}")
    return (
        0 if report["ok"] else EXIT_CODES["regressed"],
        slo_alerts(report) or None,
    )


def _cmd_top(args: argparse.Namespace) -> int:
    import time

    from repro.obs.timeseries import read_series, render_top

    def frame() -> str:
        header, store = read_series(args.series)
        slo_report = None
        if args.slo_report:
            slo_report = json.loads(
                Path(args.slo_report).read_text(encoding="utf-8")
            )
        return render_top(
            header, store, width=args.width, slo_report=slo_report
        )

    if not Path(args.series).exists():
        print(
            f"top: no series at {args.series} — record one with "
            "'repro run --series-out'",
            file=sys.stderr,
        )
        return 1
    if args.once:
        print(frame())
        return 0
    shown = 0
    try:
        while args.frames is None or shown < args.frames:
            # \x1b[H\x1b[2J: cursor home + clear, the classic top refresh.
            print("\x1b[H\x1b[2J" + frame(), flush=True)
            shown += 1
            if args.frames is not None and shown >= args.frames:
                break
            time.sleep(args.interval)
    except KeyboardInterrupt:
        pass
    return 0


def _cmd_explain(args: argparse.Namespace) -> int:
    from repro.obs.ledger import decision_rows, write_explain

    run_id = new_run_id(repr(sorted(_run_config(args, args.policy).items())))
    with push_run_id(run_id):
        policy, result = _simulate(args, args.policy)
    if result.ledger is None:
        print(
            f"policy {policy.name!r} keeps no decision ledger; "
            "nothing to explain (try --policy plb-hec)"
        )
        return 1
    data = result.ledger.to_dict()

    def fmt_opt(value, pattern: str) -> str:
        return pattern.format(value) if value is not None else "-"

    rows = []
    for row in decision_rows(data):
        method = row["method"]
        if row["fallback_stage"]:
            method = f"{method} [!]"
        rows.append(
            [
                row["id"],
                f"{row['t']:.4f}",
                row["trigger"],
                method,
                row["iterations"],
                fmt_opt(row["kkt_error"], "{:.1e}"),
                fmt_opt(row["predicted_time"], "{:.4f}"),
                row["devices"],
                row["blocks"],
                fmt_opt(row["mape"], "{:.1%}"),
            ]
        )
    print(
        format_table(
            ["id", "t_s", "trigger", "method", "iters", "kkt", "pred_s",
             "devices", "blocks", "mape"],
            rows,
            title=f"Scheduler decisions: {args.app} size={args.size} "
            f"machines={args.machines} policy={policy.name} seed={args.seed}",
        )
    )
    calibration = data.get("calibration", {})
    if calibration:
        print()
        print(
            format_table(
                ["device", "scored", "skipped", "mape", "bias", "drift"],
                [
                    [
                        device,
                        c.get("blocks", 0),
                        c.get("skipped", 0),
                        fmt_opt(c.get("mape"), "{:.1%}"),
                        fmt_opt(c.get("bias"), "{:+.1%}"),
                        fmt_opt(c.get("drift"), "{:+.1%}"),
                    ]
                    for device, c in sorted(calibration.items())
                ],
                title="Prediction calibration (relative error vs observed)",
            )
        )
    attribution = data.get("attribution", {})
    attributed = int(attribution.get("attributed", 0) or 0)
    total = attributed + int(attribution.get("unattributed", 0) or 0)
    coverage = attributed / total if total else 0.0
    # the ledger lists fired fallback stages in decision order
    stage_counts: dict[str, int] = {}
    for stage in data.get("fallback_stages", ()):
        stage_counts[stage] = stage_counts.get(stage, 0) + 1
    print(
        f"\n{len(data.get('decisions', []))} decision(s), "
        f"{attributed}/{total} executed block(s) attributed "
        f"({coverage:.0%} coverage)"
        + (
            "; fallback stages used: "
            + ", ".join(f"{k}={v}" for k, v in sorted(stage_counts.items()))
            if stage_counts
            else ""
        )
    )
    if args.out:
        write_explain(data, args.out)
        print(
            f"explain ledger written to {args.out} "
            f"({len(data.get('decisions', []))} decision(s))"
        )
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    run_id = new_run_id(repr(sorted(_run_config(args, args.policy).items())))
    with push_run_id(run_id):
        policy, result = _simulate(args, args.policy)
    path = write_chrome_trace(
        result.trace,
        args.out,
        run_id=run_id,
        metadata=_run_config(args, policy.name),
    )
    print(
        f"trace written to {path} "
        f"(makespan {result.makespan:.4f}s, "
        f"{result.num_rebalances} rebalances); "
        "load it at https://ui.perfetto.dev or chrome://tracing"
    )
    return 0


def _cmd_why(args: argparse.Namespace) -> int:
    import math

    from repro.obs.critpath import (
        CATEGORIES,
        analyze_trace,
        category_shares,
        validate_critpath,
        write_critpath,
    )
    from repro.resilience.invariants import check_busy_overlap

    run_id = new_run_id(repr(sorted(_run_config(args, args.policy).items())))
    with push_run_id(run_id):
        policy, result = _simulate(args, args.policy)
    analysis = analyze_trace(
        result.trace, speedup_factor=args.speedup_factor
    )
    overlaps = check_busy_overlap(result.trace)
    makespan = analysis["makespan"]
    shares = category_shares(analysis)
    print(
        format_table(
            ["category", "seconds", "share"],
            [
                [cat, analysis["categories"][cat], f"{shares[cat]:.1%}"]
                for cat in CATEGORIES
            ],
            title=f"Makespan attribution: {args.app} size={args.size} "
            f"machines={args.machines} policy={policy.name} seed={args.seed}",
        )
    )
    residual = abs(
        math.fsum(analysis["categories"].values()) - makespan
    )
    print(
        f"makespan {makespan:.4f}s fully attributed "
        f"(residual {residual:.1e}); critical path: "
        f"{analysis['path_tasks']} task(s) over "
        f"{len(analysis['devices_on_path'])} device(s)"
    )
    bottleneck = analysis["bottleneck"]
    if bottleneck:
        print(
            f"bottleneck: {bottleneck['device']} carries "
            f"{bottleneck['busy_s']:.4f}s of the path "
            f"({bottleneck['share']:.0%} of the makespan, "
            f"{bottleneck['tasks']} task(s), {bottleneck['units']} unit(s))"
        )
    bounds = analysis["bounds"]
    rows = [
        ["zero-transfer", bounds["zero_transfer"]],
        ["zero-scheduler", bounds["zero_scheduler"]],
        ["perfect-balance", bounds["perfect_balance"]],
    ] + [
        [f"{device} {args.speedup_factor:g}x faster", bound]
        for device, bound in sorted(bounds["device_speedup"].items())
    ]
    print()
    print(
        format_table(
            ["what-if", "bound_s", "headroom"],
            [
                [
                    name,
                    bound,
                    f"{(makespan - bound) / makespan:.1%}"
                    if makespan > 0
                    else "-",
                ]
                for name, bound in rows
            ],
            title="What-if lower bounds (headroom vs observed makespan)",
        )
    )
    if analysis["decisions"]:
        top = analysis["decisions"][:5]
        blamed = ", ".join(
            f"{d['id']} ({d['busy_s']:.4f}s over {d['tasks']} task(s))"
            for d in top
        )
        print(f"decisions on the critical path: {blamed}")
    problems = validate_critpath(analysis)
    problems += [f"busy-overlap: {v.message}" for v in overlaps]
    for problem in problems:
        print(f"why: {problem}", file=sys.stderr)
    if args.out and args.out != "-":
        if validate_critpath(analysis):
            print(
                f"why: not writing {args.out} (analysis failed validation)",
                file=sys.stderr,
            )
        else:
            path = write_critpath(args.out, analysis)
            print(f"critpath written to {path}")
    if args.trace_out:
        doc = trace_to_chrome(
            result.trace,
            run_id=run_id,
            metadata=_run_config(args, policy.name),
            critpath=analysis,
        )
        path = write_chrome_trace(doc, args.trace_out)
        print(f"trace written to {path}")
    if args.assert_bound and problems:
        from repro.obs.regress import EXIT_CODES

        return EXIT_CODES["regressed"]
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    from repro.experiments.parallel import SweepStats

    stats = SweepStats()
    point = run_policies(
        args.app,
        args.size,
        args.machines,
        replications=args.replications,
        seed=args.seed,
        noise_sigma=args.noise,
        jobs=args.jobs,
        profile=args.profile or None,
        stats=stats,
    )
    # per-policy makespan attribution, averaged over the replications'
    # critpath payloads (ridden along in the sweep payloads)
    attribution: dict[str, list[dict]] = {}
    for payload in stats.payloads:
        critpath = (payload or {}).get("critpath")
        config = ((payload or {}).get("report") or {}).get("config") or {}
        if critpath and config.get("policy"):
            attribution.setdefault(config["policy"], []).append(critpath)

    def mean_share(name: str, category: str) -> str:
        from repro.obs.critpath import category_shares

        samples = [
            category_shares(c)[category] for c in attribution.get(name, [])
        ]
        if not samples:
            return "-"
        return f"{sum(samples) / len(samples):.1%}"

    rows = []
    for name, outcome in point.outcomes.items():
        rows.append(
            [
                name,
                outcome.mean_makespan,
                outcome.std_makespan,
                point.speedup_vs("greedy", name),
                mean_share(name, "compute"),
                mean_share(name, "transfer"),
                mean_share(name, "idle"),
                mean_share(name, "solver"),
            ]
        )
    print(
        format_table(
            ["policy", "time_s", "std_s", "speedup_vs_greedy",
             "compute", "transfer", "idle", "solver"],
            rows,
            title=f"{args.app} size={args.size} machines={args.machines}",
        )
    )
    # --profile or REPRO_PROFILE=1: either way a captured profile is shown.
    if stats.profile:
        _print_profile_summary(stats.profile)
    if args.trace_out:
        # One extra run per policy at the first replication's seed
        # (run_policies seeds rep r with seed*1000+r), each exported as
        # its own process group on a shared timeline.
        run_id = new_run_id(f"compare:{args.app}:{args.size}:{args.seed}")
        labelled = []
        with push_run_id(run_id):
            for name in point.outcomes:
                _, result = _simulate(args, name, seed=args.seed * 1000)
                labelled.append((name, result.trace))
        doc = trace_to_chrome(
            labelled,
            run_id=run_id,
            metadata=_run_config(args, "compare"),
        )
        path = write_chrome_trace(doc, args.trace_out)
        print(f"trace written to {path}")
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    from repro.obs.profiler import (
        collapsed_stacks,
        phase_breakdown,
        profiling,
        write_collapsed,
        write_flamegraph,
    )

    run_id = new_run_id(repr(sorted(_run_config(args, args.policy).items())))
    with push_run_id(run_id):
        with profiling() as prof:
            policy, result = _simulate(args, args.policy)
    snapshot = prof.snapshot()

    named = sum(d["share"] for d in phase_breakdown(snapshot).values())
    print(
        f"profiled {args.app} size={args.size} machines={args.machines} "
        f"policy={policy.name}: makespan {result.makespan:.4f}s, "
        f"{snapshot['total_self_s'] * 1e3:.1f}ms profiled host CPU, "
        f"{named:.1%} attributed to a named phase"
    )
    _print_profile_summary(snapshot, top=args.top)
    print()
    if args.flame and args.flame != "-":
        path = write_flamegraph(
            args.flame,
            snapshot,
            title=f"{args.app} size={args.size} {policy.name} — "
            "phase-attributed CPU profile",
        )
        print(f"flamegraph written to {path}")
    if args.collapsed:
        lines = collapsed_stacks(snapshot)
        path = write_collapsed(args.collapsed, lines)
        print(
            f"collapsed stacks written to {path} ({len(lines)} stacks); "
            "load at https://speedscope.app or pipe through flamegraph.pl"
        )
    if args.json_out:
        Path(args.json_out).write_text(
            json.dumps(snapshot, indent=2, sort_keys=True), encoding="utf-8"
        )
        print(f"profile snapshot written to {args.json_out}")
    if args.trace_out:
        doc = trace_to_chrome(
            result.trace,
            run_id=run_id,
            metadata=_run_config(args, policy.name),
            profile=snapshot,
        )
        path = write_chrome_trace(doc, args.trace_out)
        print(f"trace written to {path}")
    return 0


def _resolve_history(flag: str | None):
    """The history store a command should use, or None when disabled.

    Precedence: an explicit ``--history`` flag (``-`` disables), then
    the ``REPRO_HISTORY`` environment variable (including its off
    values), then the default ``.repro_history/`` directory.
    """
    import os

    from repro.obs.history import DEFAULT_HISTORY_DIR, HistoryStore

    if flag == "-":
        return None
    if flag:
        return HistoryStore(flag)
    if os.environ.get("REPRO_HISTORY", "").strip():
        return HistoryStore.from_env()
    return HistoryStore(DEFAULT_HISTORY_DIR)


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.experiments.wallclock import run_wallclock_bench
    from repro.obs.history import HistoryStore, bench_entry

    output = None if args.output == "-" else args.output
    report = run_wallclock_bench(
        replications=args.replications,
        jobs=args.jobs,
        output=output,
        profile=args.profile,
    )
    timings = report["timings_s"]
    meta = report["meta"]
    print(
        format_table(
            ["phase", "wall_s"],
            [[phase, seconds] for phase, seconds in timings.items()],
            title="Sweep-engine wall clock (Fig. 4 MM fast grid)",
        )
    )
    speedup = meta.get("parallel_speedup")
    speedup_text = (
        f"{speedup:.2f}x"
        if speedup is not None
        else f"n/a ({meta.get('parallel_speedup_reason', 'not measured')})"
    )
    print(
        f"jobs={meta['jobs']} effective_jobs={meta.get('effective_jobs')} "
        f"parallel_speedup={speedup_text} "
        f"warm/cold={meta['warm_over_cold_fraction']:.1%} "
        f"identical={meta['parallel_matches_serial']}"
    )
    if output is not None:
        print(f"report written to {output}")
    if args.profile:
        hot = meta.get("hot_functions", [])
        print(
            format_table(
                ["function", "phase", "self_ms", "share"],
                [
                    [
                        h["function"],
                        h.get("phase", ""),
                        h["self_s"] * 1e3,
                        f"{h['share'] * 100:.1f}%",
                    ]
                    for h in hot
                ],
                title="Hot functions (merged serial+parallel profile)",
            )
        )

    history = _resolve_history(args.history)
    exit_code = 0
    if args.check:
        from repro.obs.regress import check_bench_report

        baseline = HistoryStore(args.baseline) if args.baseline else history
        if baseline is None:
            print("check: no baseline available (history disabled) -> "
                  "insufficient-data")
        else:
            # Check BEFORE appending, so a run never gates against itself.
            check = check_bench_report(
                report, baseline, rel_threshold=args.rel_threshold
            )
            rows = [
                [c.metric, c.verdict,
                 "-" if c.rel_change is None else f"{c.rel_change:+.1%}",
                 "-" if c.p_value is None else f"{c.p_value:.3f}",
                 c.baseline_n, c.reason]
                for c in check.comparisons
            ]
            print(
                format_table(
                    ["lap", "verdict", "change", "p", "n", "reason"],
                    rows,
                    title=f"Regression gate vs {baseline.path}",
                )
            )
            print(f"check: {check.verdict} ({check.reason})")
            exit_code = check.exit_code
            if args.profile and meta.get("hot_functions"):
                # Advisory hot-path drift vs matched profiled history —
                # same config-hash + host-fingerprint rules as the gate,
                # but never contributes to the exit code.
                from repro.obs.history import fingerprint_hash
                from repro.obs.report import config_hash as _config_hash
                from repro.obs.regress import detect_hot_path_drift

                cfg_hash = _config_hash(
                    {"grid": meta.get("grid", {}), "jobs": meta.get("jobs")}
                )
                shares = baseline.hot_function_shares(
                    config_hash=cfg_hash,
                    host_hash=fingerprint_hash(report.get("host")),
                    last=20,
                )
                drift = detect_hot_path_drift(meta["hot_functions"], shares)
                if drift:
                    for finding in drift:
                        print(f"hot-path drift: {finding.message}")
                else:
                    print(
                        f"hot-path drift: none over {len(shares)} matched "
                        "profiled entr"
                        + ("y" if len(shares) == 1 else "ies")
                    )
    if history is not None:
        stored = history.append(bench_entry(report))
        print(f"history: appended to {history.path} "
              f"(config {stored['config_hash'][:12]})")
    return exit_code


def _cmd_dashboard(args: argparse.Namespace) -> int:
    from repro.obs.dashboard import collect_dashboard_data, write_dashboard

    history = _resolve_history(args.history)
    scorecard = None
    if args.scorecard:
        scorecard = json.loads(
            Path(args.scorecard).read_text(encoding="utf-8")
        )
    data = collect_dashboard_data(
        app=args.app,
        size=args.size,
        machines=args.machines,
        seed=args.seed,
        noise=args.noise,
        replications=args.replications,
        jobs=args.jobs,
        history=history,
        scorecard=scorecard,
    )
    path = write_dashboard(args.out, data)
    print(
        f"dashboard written to {path} "
        f"({len(data.bench_trend)} trend entries, "
        f"{len(data.anomalies)} anomalies); open it in any browser"
    )
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.service import (
        ArrivalSpec,
        ClusterService,
        ServiceConfig,
        validate_scorecard,
        write_scorecard,
    )

    perturbations, failures, transients = _parse_fault_flags(args)
    config = ServiceConfig(
        arrivals=ArrivalSpec(
            rate=args.rate,
            duration=args.duration,
            pattern=args.pattern,
            tenants=args.tenants,
        ),
        machines=args.machines,
        policy=args.policy,
        queue_limit=args.queue_limit,
        shed_policy=args.shed_policy,
        max_active=args.max_active,
        deadline_factor=args.deadline_factor,
        retry_budget=args.retry_budget,
        rebalance_interval=args.rebalance_interval,
        sample_interval=args.sample_interval,
        noise_sigma=args.noise,
        seed=args.seed,
        faults=(*failures, *transients, *perturbations),
    )
    service = ClusterService(config)
    card = service.run()
    run_id = f"serve-{config.policy}-seed{config.seed}"

    def fmt(value, digits=3, suffix=""):
        if value is None:
            return "-"
        return f"{value:.{digits}f}{suffix}"

    jobs = card["jobs"]
    lat = card["latency_s"]
    print(
        format_table(
            ["submitted", "completed", "rejected", "shed", "timeout",
             "failed", "p50", "p95", "p99", "goodput"],
            [[
                jobs["submitted"],
                jobs["completed"],
                jobs["rejected"],
                jobs["shed"],
                jobs["timeout"],
                jobs["failed"],
                fmt(lat["p50"], suffix="s"),
                fmt(lat["p95"], suffix="s"),
                fmt(lat["p99"], suffix="s"),
                fmt(card["goodput"]["jobs_per_s"], suffix=" jobs/s"),
            ]],
            title=f"Service episode: policy={config.policy} "
            f"rate={config.arrivals.rate:g}/s "
            f"pattern={config.arrivals.pattern} "
            f"duration={config.arrivals.duration:g}s "
            f"machines={config.machines} seed={config.seed}",
        )
    )
    fallbacks = card["balancer"]["fallback_counts"]
    opens = sum(b["opens"] for b in card["breakers"].values())
    print(
        f"drained at t={card['duration_s']:.3f}s virtual, "
        f"{card['balancer']['rebalances']} rebalance cycle(s) "
        f"({', '.join(f'{k}={v}' for k, v in fallbacks.items() if v)}), "
        f"{opens} breaker open(s), "
        f"fairness {fmt(card['fairness']['jain_tenants'])}"
    )
    problems = validate_scorecard(card) + list(card["invariant_errors"])
    for problem in problems:
        print(f"invariant: {problem}")
    if args.scorecard_out != "-":
        path = write_scorecard(args.scorecard_out, card)
        print(f"scorecard written to {path}")
    if args.series_out:
        from repro.obs.timeseries import write_series

        path = write_series(
            args.series_out,
            service.store,
            run_id=run_id,
            interval=config.sample_interval or config.rebalance_interval,
            meta=config.to_dict(),
        )
        print(
            f"series written to {path} ({service.samples_taken} samples)"
        )
    exit_code = 0
    if args.slo:
        exit_code, _ = _slo_gate(
            args.slo, service.store, run_id, args.slo_report_out
        )
    if problems:
        print(f"{len(problems)} invariant violation(s) -> FAIL")
        return 3
    return exit_code


def _cmd_serve_chaos(args: argparse.Namespace) -> int:
    from repro.service.campaign import ServeChaosConfig, run_serve_campaign

    if args.policies:
        policies = tuple(
            p.strip() for p in args.policies.split(",") if p.strip()
        )
    elif args.quick:
        policies = ("plb-hec", "greedy")
    else:
        policies = ("plb-hec", "greedy", "fair")
    max_faults = args.max_faults
    if max_faults is None:
        max_faults = 1 if args.quick else 2
    runs = min(args.runs, 4) if args.quick else args.runs
    config = ServeChaosConfig(
        policies=policies,
        runs=runs,
        seed=args.seed,
        rate=args.rate,
        duration=args.duration,
        machines=args.machines,
        max_faults=max_faults,
    )
    scorecard = run_serve_campaign(config, jobs=args.jobs)

    def fmt(value, digits=2, suffix=""):
        if value is None:
            return "-"
        return f"{value:.{digits}f}{suffix}"

    rows = [
        [
            name,
            f"{agg['survived']}/{agg['runs']}",
            f"{agg['survival_rate'] * 100:.0f}%",
            fmt(agg["mean_goodput_ratio"], suffix="x"),
            agg["violations"],
            agg["shed"],
            agg["timeout"],
            agg["failed"],
            agg["breaker_opens"],
        ]
        for name, agg in scorecard["policies"].items()
    ]
    print(
        format_table(
            ["policy", "survived", "rate", "goodput_ratio", "violations",
             "shed", "timeout", "failed", "breaker_opens"],
            rows,
            title=f"Serve chaos campaign: rate={config.rate:g}/s "
            f"duration={config.duration:g}s machines={config.machines} "
            f"runs={config.runs} seed={config.seed}",
        )
    )
    ok = scorecard["all_invariants_ok"]
    print(
        f"{scorecard['survived_runs']}/{scorecard['total_runs']} runs "
        f"survived, {scorecard['total_violations']} invariant violation(s) "
        f"-> {'OK' if ok else 'FAIL'}"
    )
    if args.out != "-":
        Path(args.out).write_text(
            json.dumps(scorecard, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        print(f"scorecard written to {args.out}")
    return 0 if ok else 3


def _cmd_chaos(args: argparse.Namespace) -> int:
    from repro.obs.history import chaos_entry
    from repro.resilience import ChaosConfig, run_campaign

    if args.serve:
        return _cmd_serve_chaos(args)
    if args.policies:
        policies = tuple(
            p.strip() for p in args.policies.split(",") if p.strip()
        )
    elif args.quick:
        policies = ("plb-hec", "greedy")
    else:
        policies = ("plb-hec", "greedy", "hdss", "gss")
    max_faults = args.max_faults
    if max_faults is None:
        max_faults = 1 if args.quick else 2
    config = ChaosConfig(
        apps=(args.app,),
        sizes=(args.size,),
        machines=args.machines,
        policies=policies,
        runs=args.runs,
        seed=args.seed,
        max_faults=max_faults,
    )
    scorecard = run_campaign(config, jobs=args.jobs)

    def fmt(value, scale=1.0, suffix="", digits=3):
        if value is None:
            return "-"
        return f"{value * scale:.{digits}f}{suffix}"

    def share(agg, category):
        attribution = agg.get("mean_attribution") or {}
        if category not in attribution:
            return "-"
        return f"{attribution[category] * 100:.1f}%"

    rows = [
        [
            name,
            f"{agg['survived']}/{agg['runs']}",
            f"{agg['survival_rate'] * 100:.0f}%",
            fmt(agg["mean_degradation"], suffix="x"),
            fmt(agg["max_degradation"], suffix="x"),
            fmt(agg["mean_recovery_lag"], scale=1e3, suffix="ms", digits=1),
            agg["violations"],
            agg.get("slo_violations", 0),
            agg.get("decisions_explained", 0),
            share(agg, "fault_recovery"),
            share(agg, "rework"),
            share(agg, "idle"),
            ",".join(
                f"{k}={v}"
                for k, v in agg.get("fallback_stages_used", {}).items()
            )
            or "-",
        ]
        for name, agg in scorecard["policies"].items()
    ]
    print(
        format_table(
            ["policy", "survived", "rate", "mean_deg", "max_deg",
             "recovery_lag", "violations", "slo_viol", "decisions",
             "fault_rec", "rework", "idle",
             "fallbacks"],
            rows,
            title=f"Chaos campaign: {args.app} size={args.size} "
            f"machines={args.machines} runs={args.runs} seed={args.seed}",
        )
    )
    ok = scorecard["all_invariants_ok"]
    print(
        f"{scorecard['survived_runs']}/{scorecard['total_runs']} runs "
        f"survived, {scorecard['total_violations']} invariant violation(s) "
        f"-> {'OK' if ok else 'FAIL'}"
    )
    if args.out != "-":
        Path(args.out).write_text(
            json.dumps(scorecard, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        print(f"scorecard written to {args.out}")
    if args.dashboard:
        from repro.obs.dashboard import chaos_dashboard_data, write_dashboard

        path = write_dashboard(args.dashboard, chaos_dashboard_data(scorecard))
        print(f"dashboard written to {path}")
    history = _resolve_history(args.history)
    if history is not None:
        stored = history.append(chaos_entry(scorecard))
        print(f"history: appended to {history.path} "
              f"(config {stored['config_hash'][:12]})")
    return 0 if ok else 3


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    configure_from_env(level=args.log_level, fmt=args.log_format)
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "top":
        return _cmd_top(args)
    if args.command == "explain":
        return _cmd_explain(args)
    if args.command == "trace":
        return _cmd_trace(args)
    if args.command == "why":
        return _cmd_why(args)
    if args.command == "compare":
        return _cmd_compare(args)
    if args.command == "profile":
        return _cmd_profile(args)
    if args.command == "table1":
        print(render_table1())
        return 0
    if args.command == "fig1":
        print(render_fig1(run_fig1(points=args.points)))
        return 0
    if args.command == "fig4":
        sizes = (MM_SIZES if args.app == "matmul" else GRN_SIZES)
        machines = [4] if args.fast else [1, 2, 3, 4]
        if args.fast:
            sizes = (sizes[0], sizes[-1])
        print(
            render_sweep(
                run_fig4(
                    args.app,
                    sizes=sizes,
                    machine_counts=machines,
                    replications=args.replications,
                    jobs=args.jobs,
                )
            )
        )
        return 0
    if args.command == "fig5":
        sizes = (BS_SIZES[0], BS_SIZES[-1]) if args.fast else BS_SIZES
        machines = [4] if args.fast else [1, 2, 3, 4]
        print(
            render_sweep(
                run_fig5(
                    sizes=sizes,
                    machine_counts=machines,
                    replications=args.replications,
                    jobs=args.jobs,
                )
            )
        )
        return 0
    if args.command == "fig6":
        print(
            render_fig6(run_fig6(replications=args.replications, jobs=args.jobs))
        )
        return 0
    if args.command == "fig7":
        print(
            render_fig7(run_fig7(replications=args.replications, jobs=args.jobs))
        )
        return 0
    if args.command == "bench":
        return _cmd_bench(args)
    if args.command == "dashboard":
        return _cmd_dashboard(args)
    if args.command == "chaos":
        return _cmd_chaos(args)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "overhead":
        stats = run_solver_overhead(repetitions=args.repetitions)
        print(
            f"solver overhead: {stats.mean_ms:.1f} +- {stats.std_ms:.1f} ms "
            f"({stats.samples} solves, method={stats.method}, "
            f"iterations={stats.iterations}); paper: 170 +- 32.3 ms"
        )
        return 0
    if args.command == "heterogeneity":
        from repro.experiments.heterogeneity import (
            render_heterogeneity,
            run_heterogeneity,
        )

        print(render_heterogeneity(run_heterogeneity()))
        return 0
    if args.command == "sensitivity":
        from repro.experiments.sensitivity import (
            render_sensitivity,
            run_sensitivity,
        )

        sizes, rows = run_sensitivity()
        print(render_sensitivity(sizes, rows))
        return 0
    if args.command == "report":
        from repro.experiments.report import generate_report

        print(generate_report(replications=args.replications, fast=args.fast))
        return 0
    if args.command == "ablations":
        print(render_ablation(run_selection_ablation(), title="A1 selection"))
        print()
        print(render_ablation(run_rebalance_ablation(), title="A2 rebalancing"))
        print()
        print(render_ablation(run_probe_ablation(), title="A3 probing"))
        return 0
    return 1  # pragma: no cover - argparse enforces the choices


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
