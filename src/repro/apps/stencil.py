"""2-D Jacobi stencil ensemble (extension application).

The paper's basis family is motivated by covering "the vast majority of
applications"; this fourth application exercises a regime none of the
paper's three do: a *memory-bandwidth-bound* kernel.  The workload is an
ensemble of independent tiles (e.g. a parameter sweep of small heat
diffusion problems), each relaxed with ``sweeps`` Jacobi iterations of
the 4-neighbour stencil under fixed boundaries.  One unit = one tile,
so the domain decomposes exactly like the paper's applications.

The real kernel is vectorised NumPy over whole tile batches;
:meth:`verify` recomputes sample tiles with an independent
``np.roll``-based implementation.
"""

from __future__ import annotations

import numpy as np

from repro.apps.base import Application
from repro.cluster.perfmodel import KernelCharacteristics
from repro.errors import WorkloadError
from repro.util.validation import check_positive_int

__all__ = ["Stencil2D"]

#: FLOPs per grid point per sweep (4 adds + 1 multiply).
_FLOPS_PER_POINT = 5.0


class Stencil2D(Application):
    """Ensemble of independent Jacobi-relaxed tiles.

    Parameters
    ----------
    num_tiles:
        Domain size (tiles to relax).
    tile:
        Tile edge length (grid is ``tile x tile``).
    sweeps:
        Jacobi iterations per tile.
    seed:
        Seed for the synthetic initial conditions.
    """

    name = "stencil"

    def __init__(
        self, num_tiles: int, *, tile: int = 64, sweeps: int = 100, seed: int = 0
    ) -> None:
        check_positive_int("num_tiles", num_tiles)
        check_positive_int("tile", tile, minimum=4)
        check_positive_int("sweeps", sweeps)
        self.num_tiles = int(num_tiles)
        self.tile = int(tile)
        self.sweeps = int(sweeps)
        self.seed = int(seed)

    # ------------------------------------------------------------------
    @property
    def total_units(self) -> int:
        """One unit per tile."""
        return self.num_tiles

    def kernel_characteristics(self) -> KernelCharacteristics:
        points = float(self.tile * self.tile)
        return KernelCharacteristics(
            name=self.name,
            flops_per_unit=_FLOPS_PER_POINT * points * self.sweeps,
            bytes_in_per_unit=4.0 * points,
            bytes_out_per_unit=4.0 * points,
            # bandwidth-bound: the achieved FLOP rate is a small fraction
            # of peak on both device classes, smaller on GPUs whose
            # compute/bandwidth ratio is higher
            cpu_efficiency=0.30,
            gpu_efficiency=0.15,
            gpu_half_units=48.0,  # a tile is already 4096 parallel points
            cpu_half_units=4.0,
            cpu_cache_gamma=0.4,  # tiles beyond LLC thrash
        )

    def default_initial_block_size(self) -> int:
        """~1/256 of the ensemble."""
        return max(self.num_tiles // 256, 1)

    # ------------------------------------------------------------------
    # real kernels
    # ------------------------------------------------------------------
    def _initial_tiles(self, start: int, count: int) -> np.ndarray:
        """Deterministic per-tile initial conditions, (count, tile, tile)."""
        out = np.empty((count, self.tile, self.tile), dtype=np.float64)
        for i in range(count):
            rng = np.random.default_rng((self.seed, start + i))
            out[i] = rng.uniform(0.0, 100.0, (self.tile, self.tile))
        return out

    def cpu_kernel(self, start: int, count: int) -> np.ndarray:
        """Relax tiles ``[start, start+count)``; returns the final grids."""
        if not (0 <= start and start + count <= self.num_tiles):
            raise WorkloadError(f"block [{start}, {start + count}) out of range")
        grids = self._initial_tiles(start, count)
        for _ in range(self.sweeps):
            interior = 0.25 * (
                grids[:, :-2, 1:-1]
                + grids[:, 2:, 1:-1]
                + grids[:, 1:-1, :-2]
                + grids[:, 1:-1, 2:]
            )
            grids[:, 1:-1, 1:-1] = interior
        return grids

    def _reference_tile(self, index: int) -> np.ndarray:
        """Independent roll-based relaxation of one tile."""
        grid = self._initial_tiles(index, 1)[0]
        for _ in range(self.sweeps):
            up = np.roll(grid, 1, axis=0)
            down = np.roll(grid, -1, axis=0)
            left = np.roll(grid, 1, axis=1)
            right = np.roll(grid, -1, axis=1)
            new_interior = 0.25 * (up + down + left + right)
            inner = grid.copy()
            inner[1:-1, 1:-1] = new_interior[1:-1, 1:-1]
            grid = inner
        return grid

    def verify(self, results: list[tuple[int, int, object]]) -> bool:
        """Recompute sample tiles with the independent implementation."""
        if not self.coverage_ok(results, self.num_tiles):
            return False
        assembled = np.empty((self.num_tiles, self.tile, self.tile))
        for start, count, value in results:
            arr = np.asarray(value, dtype=float)
            if arr.shape != (count, self.tile, self.tile):
                return False
            assembled[start : start + count] = arr
        check = np.linspace(0, self.num_tiles - 1, min(self.num_tiles, 5)).astype(int)
        for t in check:
            if not np.allclose(assembled[t], self._reference_tile(int(t)), atol=1e-9):
                return False
        return True
