"""The paper's three evaluation applications (Sec. IV.A).

* :class:`MatMul` — dense matrix multiplication; matrix A broadcast,
  matrix B divided in rows, one *line* per unit (O(n^3));
* :class:`GRNInference` — gene regulatory network inference by
  exhaustive feature-subset search, one target *gene* per unit;
* :class:`BlackScholes` — Monte-Carlo option pricing (the paper's
  stochastic-differential-equation "random walk" formulation), one
  *option* per unit (O(n)).

Every application carries both a real NumPy implementation (runnable on
the thread backend, verifiable against a reference) and a
:class:`~repro.cluster.perfmodel.KernelCharacteristics` describing how
the kernel loads CPUs and GPUs in simulation.
"""

from repro.apps.base import Application
from repro.apps.blackscholes import BlackScholes
from repro.apps.grn import GRNInference
from repro.apps.matmul import MatMul
from repro.apps.stencil import Stencil2D

__all__ = ["Application", "MatMul", "BlackScholes", "GRNInference", "Stencil2D"]
