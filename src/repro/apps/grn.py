"""Gene regulatory network inference (paper Sec. IV.A, ref [26]).

"An exhaustive search of the gene subset with a given cardinality that
best predicts a target gene.  The division of work consisted in
distributing the gene sets that are evaluated by each processor."  One
unit = one target gene; evaluating a target scans every predictor pair
drawn from a candidate pool and scores it with a conditional-entropy
criterion over discretised expression data — the structure of Borelli
et al.'s multi-GPU search.

The real kernel is a vectorised NumPy implementation over a synthetic
discretised expression matrix (values {0, 1, 2}, the ternary
discretisation GRN feature-selection studies use).  ``verify`` re-runs
an independent brute-force scorer on a sample of targets.  Paper-scale
gene counts (60k-140k) with large candidate pools are simulation-only.
"""

from __future__ import annotations

import numpy as np

from repro.apps.base import Application
from repro.cluster.perfmodel import KernelCharacteristics
from repro.errors import WorkloadError
from repro.util.validation import check_positive_int

__all__ = ["GRNInference"]

_LEVELS = 3  # ternary discretisation


class GRNInference(Application):
    """Exhaustive pair-predictor search per target gene.

    Parameters
    ----------
    num_genes:
        Domain size (targets); the paper sweeps 60,000..140,000.
    candidate_pool:
        Predictor genes scanned per target (pairs: pool*(pool-1)/2).
    samples:
        Expression-profile samples per gene.
    seed:
        Synthetic-data seed.
    real_limit:
        Cap on ``candidate_pool**2 * num_genes`` for real execution.
    """

    name = "grn"

    def __init__(
        self,
        num_genes: int,
        *,
        candidate_pool: int = 24,
        samples: int = 48,
        seed: int = 0,
        real_limit: float = 5e9,
    ) -> None:
        check_positive_int("num_genes", num_genes)
        check_positive_int("candidate_pool", candidate_pool, minimum=2)
        check_positive_int("samples", samples, minimum=4)
        self.num_genes = int(num_genes)
        self.candidate_pool = int(candidate_pool)
        self.samples = int(samples)
        self.seed = int(seed)
        self.real_limit = float(real_limit)
        self._expr: np.ndarray | None = None
        self._pool_idx: np.ndarray | None = None

    # ------------------------------------------------------------------
    @property
    def total_units(self) -> int:
        """One unit per target gene."""
        return self.num_genes

    def kernel_characteristics(self) -> KernelCharacteristics:
        pairs = self.candidate_pool * (self.candidate_pool - 1) / 2.0
        # per pair: joint-state histogram over samples + criterion (~6 ops)
        flops = pairs * self.samples * 6.0
        return KernelCharacteristics(
            name=self.name,
            flops_per_unit=max(flops, 1.0),
            bytes_in_per_unit=float(self.samples),  # the target's profile
            bytes_out_per_unit=12.0,  # best pair + score
            cpu_efficiency=0.7,  # integer/branchy criterion code
            gpu_efficiency=0.6,
            gpu_half_units=768.0,
            cpu_half_units=16.0,
            cpu_cache_gamma=0.25,
            gpu_half_scaling="cores",
        )

    def default_initial_block_size(self) -> int:
        """~1/512 of the targets (initial phase ~10% of runtime)."""
        return max(self.num_genes // 512, 1)

    # ------------------------------------------------------------------
    # real kernels
    # ------------------------------------------------------------------
    def _ensure_data(self) -> None:
        if self._expr is not None:
            return
        cost = float(self.candidate_pool) ** 2 * self.num_genes
        if cost > self.real_limit:
            raise WorkloadError(
                f"GRN config (pool={self.candidate_pool}, genes="
                f"{self.num_genes}) exceeds the real-backend budget; "
                "paper-scale configurations are simulation-only"
            )
        rng = np.random.default_rng(self.seed)
        total = self.num_genes + self.candidate_pool
        expr = rng.integers(0, _LEVELS, size=(total, self.samples)).astype(np.int64)
        # predictors are a fixed pool of extra genes beyond the targets;
        # _expr is the initialisation guard checked by concurrent
        # real-backend workers, so it must be assigned last
        self._pool_idx = np.arange(self.num_genes, total)
        self._expr = expr

    def _pair_scores(self, target_profile: np.ndarray) -> np.ndarray:
        """Score every predictor pair for one target (lower is better).

        Criterion: number of samples whose (pred1, pred2) joint state
        does not determine the target's majority class — a vectorised
        conditional-entropy-style impurity.
        """
        assert self._expr is not None and self._pool_idx is not None
        pool = self._expr[self._pool_idx]  # (P, S)
        p = pool.shape[0]
        # joint state id per (pair, sample): s1 * LEVELS + s2
        i_idx, j_idx = np.triu_indices(p, k=1)
        joint = pool[i_idx] * _LEVELS + pool[j_idx]  # (pairs, S)
        scores = np.zeros(joint.shape[0])
        # impurity: samples - sum_over_states(max target-class count)
        for state in range(_LEVELS * _LEVELS):
            mask = joint == state  # (pairs, S)
            counts = np.zeros((joint.shape[0], _LEVELS), dtype=np.int64)
            for level in range(_LEVELS):
                counts[:, level] = (mask & (target_profile == level)).sum(axis=1)
            scores += counts.sum(axis=1) - counts.max(axis=1)
        return scores

    def cpu_kernel(self, start: int, count: int) -> np.ndarray:
        """Best (pair index, score) for targets ``[start, start+count)``.

        Returns an ``(count, 2)`` array of ``[best_pair_index, score]``.
        """
        self._ensure_data()
        assert self._expr is not None
        if not (0 <= start and start + count <= self.num_genes):
            raise WorkloadError(f"block [{start}, {start + count}) out of range")
        out = np.empty((count, 2))
        for i in range(count):
            scores = self._pair_scores(self._expr[start + i])
            best = int(np.argmin(scores))
            out[i, 0] = best
            out[i, 1] = float(scores[best])
        return out

    def brute_force_best(self, target: int) -> tuple[int, float]:
        """Independent per-pair reference scorer for one target."""
        self._ensure_data()
        assert self._expr is not None and self._pool_idx is not None
        profile = self._expr[target]
        pool = self._expr[self._pool_idx]
        p = pool.shape[0]
        best_score = np.inf
        best_pair = -1
        pair = 0
        for i in range(p):
            for j in range(i + 1, p):
                impurity = 0
                joint = pool[i] * _LEVELS + pool[j]
                for state in np.unique(joint):
                    sel = profile[joint == state]
                    counts = np.bincount(sel, minlength=_LEVELS)
                    impurity += counts.sum() - counts.max()
                if impurity < best_score:
                    best_score = impurity
                    best_pair = pair
                pair += 1
        return best_pair, float(best_score)

    def verify(self, results: list[tuple[int, int, object]]) -> bool:
        """Spot-check assembled results against the brute-force scorer."""
        if not self.coverage_ok(results, self.num_genes):
            return False
        assembled = np.empty((self.num_genes, 2))
        for start, count, value in results:
            arr = np.asarray(value, dtype=float)
            if arr.shape != (count, 2):
                return False
            assembled[start : start + count] = arr
        # checking every gene would repeat the whole run; sample targets
        check = np.linspace(0, self.num_genes - 1, min(self.num_genes, 8)).astype(int)
        for t in check:
            _, ref_score = self.brute_force_best(int(t))
            if assembled[t, 1] != ref_score:
                return False
        return True
