"""Black-Scholes option pricing (paper Sec. IV.A).

"Black-Scholes ... is based on a stochastic differential equation that
describes how ... the value of an option changes as the price of the
underlying asset changes.  It includes a random walk term ...  The
input is a vector of data, from which options should be calculated.
The division of the task consists in giving a range of the input vector
to each thread."  One unit = one option; complexity O(n) in the option
count.

The real kernel discretises the random walk as a Cox-Ross-Rubinstein
binomial lattice (``lattice_steps`` time steps, ~2*steps^2 FLOPs per
option) and prices European calls by backward induction;
:meth:`verify` checks the lattice prices against the closed-form
Black-Scholes solution, to which CRR converges at O(1/steps).  The
per-option work is constant, so the cost model is linear in the option
count — the regime where the paper observes the smallest (but still
positive) PLB-HeC gains.
"""

from __future__ import annotations

import numpy as np
from scipy.special import ndtr

from repro.apps.base import Application
from repro.cluster.perfmodel import KernelCharacteristics
from repro.errors import WorkloadError
from repro.util.validation import check_positive_int

__all__ = ["BlackScholes"]

#: FLOPs per lattice node visited during backward induction.
_FLOPS_PER_NODE = 4.0


class BlackScholes(Application):
    """Binomial-lattice European call pricing over a vector of options.

    Parameters
    ----------
    num_options:
        Domain size (the paper sweeps 10,000..500,000).
    lattice_steps:
        Time steps of the binomial discretisation (work per option is
        quadratic in this; 4000 matches the paper's seconds-scale
        runtimes, examples use fewer for fast real execution).
    seed:
        Seed for the synthetic option parameters.
    """

    name = "blackscholes"

    def __init__(
        self, num_options: int, *, lattice_steps: int = 4000, seed: int = 0
    ) -> None:
        check_positive_int("num_options", num_options)
        check_positive_int("lattice_steps", lattice_steps, minimum=2)
        self.num_options = int(num_options)
        self.lattice_steps = int(lattice_steps)
        self.seed = int(seed)
        self._params: dict[str, np.ndarray] | None = None

    # ------------------------------------------------------------------
    @property
    def total_units(self) -> int:
        """One unit per option."""
        return self.num_options

    def kernel_characteristics(self) -> KernelCharacteristics:
        nodes = self.lattice_steps * (self.lattice_steps + 1) / 2.0
        return KernelCharacteristics(
            name=self.name,
            flops_per_unit=_FLOPS_PER_NODE * nodes,
            bytes_in_per_unit=5 * 4.0,  # S, K, T, r, sigma (float32)
            bytes_out_per_unit=4.0,
            cpu_efficiency=0.9,
            gpu_efficiency=0.8,  # exp-heavy, SFU bound
            gpu_half_units=6000.0,  # long independent threads fill cores
            cpu_half_units=200.0,
            cpu_cache_gamma=0.0,  # streaming kernel
            gpu_half_scaling="cores",
        )

    def default_initial_block_size(self) -> int:
        """~1/512 of the option vector.

        Options are cheap units: a probe must be small enough that the
        slowest CPU finishes the unscaled first round in a fraction of
        the expected runtime.
        """
        return max(self.num_options // 512, 1)

    # ------------------------------------------------------------------
    # real kernels
    # ------------------------------------------------------------------
    def _ensure_params(self) -> None:
        if self._params is not None:
            return
        rng = np.random.default_rng(self.seed)
        n = self.num_options
        self._params = {
            "spot": rng.uniform(20.0, 120.0, n),
            "strike": rng.uniform(20.0, 120.0, n),
            "maturity": rng.uniform(0.25, 2.0, n),
            "rate": np.full(n, 0.03),
            "vol": rng.uniform(0.1, 0.5, n),
        }

    def cpu_kernel(self, start: int, count: int) -> np.ndarray:
        """CRR lattice price for options ``[start, start+count)``."""
        self._ensure_params()
        assert self._params is not None
        if not (0 <= start and start + count <= self.num_options):
            raise WorkloadError(f"block [{start}, {start + count}) out of range")
        p = {k: v[start : start + count] for k, v in self._params.items()}
        m = self.lattice_steps
        dt = p["maturity"] / m
        up = np.exp(p["vol"] * np.sqrt(dt))  # (count,)
        down = 1.0 / up
        growth = np.exp(p["rate"] * dt)
        q = (growth - down) / (up - down)  # risk-neutral up-probability
        discount = 1.0 / growth

        # terminal layer: S * up^j * down^(m-j) for j = 0..m
        j = np.arange(m + 1)[None, :]  # (1, m+1)
        terminal = (
            p["spot"][:, None]
            * up[:, None] ** j
            * down[:, None] ** (m - j)
        )
        values = np.maximum(terminal - p["strike"][:, None], 0.0)
        # backward induction
        qc = q[:, None]
        dc = discount[:, None]
        for _ in range(m):
            values = dc * (qc * values[:, 1:] + (1.0 - qc) * values[:, :-1])
        return values[:, 0]

    def closed_form(self, start: int, count: int) -> np.ndarray:
        """Reference: analytic Black-Scholes European call price."""
        self._ensure_params()
        assert self._params is not None
        p = {k: v[start : start + count] for k, v in self._params.items()}
        sqrt_t = np.sqrt(p["maturity"])
        d1 = (
            np.log(p["spot"] / p["strike"])
            + (p["rate"] + 0.5 * p["vol"] ** 2) * p["maturity"]
        ) / (p["vol"] * sqrt_t)
        d2 = d1 - p["vol"] * sqrt_t
        discount = np.exp(-p["rate"] * p["maturity"])
        return p["spot"] * ndtr(d1) - p["strike"] * discount * ndtr(d2)

    def verify(self, results: list[tuple[int, int, object]]) -> bool:
        """Lattice prices must converge to the closed form, O(1/steps)."""
        if not self.coverage_ok(results, self.num_options):
            return False
        lattice = np.empty(self.num_options)
        for start, count, value in results:
            arr = np.asarray(value, dtype=float)
            if arr.shape != (count,):
                return False
            lattice[start : start + count] = arr
        exact = self.closed_form(0, self.num_options)
        # CRR oscillates around the true price within ~spot/steps
        tolerance = np.maximum(120.0 / self.lattice_steps, 0.01 * exact + 0.01)
        return bool(np.all(np.abs(lattice - exact) < tolerance))
