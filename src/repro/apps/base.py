"""Application abstraction: a divisible domain with kernels and a cost model.

Concrete applications provide

* ``total_units`` — the domain size in application units (rows, genes,
  options), the quantity every load balancer divides;
* ``kernel_characteristics()`` — the simulation cost model;
* ``cpu_kernel(start, count)`` — a real, verifiable NumPy implementation
  (``gpu_kernel`` defaults to the same code: this library has no CUDA);
* ``verify(results)`` — check assembled real results against a
  reference computation;
* ``default_initial_block_size()`` — the per-application probe size the
  paper chose "empirically, so that the initial phase of the algorithm
  would take about 10% of the application execution time".
"""

from __future__ import annotations

import abc

from repro.cluster.perfmodel import KernelCharacteristics
from repro.runtime.codelet import Codelet

__all__ = ["Application"]


class Application(abc.ABC):
    """Base class of the evaluation applications."""

    #: short name used in experiment tables ("matmul", "grn", "blackscholes")
    name: str = "app"

    @property
    @abc.abstractmethod
    def total_units(self) -> int:
        """Domain size in application units."""

    @abc.abstractmethod
    def kernel_characteristics(self) -> KernelCharacteristics:
        """Simulation cost model of the codelet."""

    @abc.abstractmethod
    def cpu_kernel(self, start: int, count: int) -> object:
        """Process units ``[start, start+count)`` for real; returns the block result."""

    def gpu_kernel(self, start: int, count: int) -> object:
        """GPU implementation; defaults to the CPU code (no CUDA here)."""
        return self.cpu_kernel(start, count)

    @abc.abstractmethod
    def verify(self, results: list[tuple[int, int, object]]) -> bool:
        """Validate assembled real-backend results against a reference.

        ``results`` is the :class:`~repro.runtime.runtime.RunResult`
        ``results`` list: ``(start_unit, units, value)`` per block.
        """

    def default_initial_block_size(self) -> int:
        """Probe size heuristic: ~1/128 of the domain, at least one unit."""
        return max(self.total_units // 128, 1)

    def codelet(self) -> Codelet:
        """Bundle this application as a runtime codelet."""
        return Codelet(
            name=self.name,
            kernel=self.kernel_characteristics(),
            cpu_func=self.cpu_kernel,
            gpu_func=self.gpu_kernel,
        )

    @staticmethod
    def coverage_ok(results: list[tuple[int, int, object]], total: int) -> bool:
        """True when the blocks tile [0, total) exactly once."""
        spans = sorted((start, start + count) for start, count, _ in results)
        cursor = 0
        for lo, hi in spans:
            if lo != cursor:
                return False
            cursor = hi
        return cursor == total
