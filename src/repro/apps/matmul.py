"""Matrix multiplication (paper Sec. IV.A).

"The matrix multiplication application distributes a copy of the matrix
A to all processing units and divides matrix B among the processing
units according to the load-balancing scheme."  One unit = one line of
the result; block sizes are rounded "to the closest valid block size:
one line".

The real kernel computes ``C[start:start+count] = A[start:start+count] @ B``
in float32.  The simulation cost model charges ``2 n^2`` FLOPs and one
``n``-float row transfer per line, with the CUBLAS-style behaviours the
paper's Fig. 1 shows: GPUs need a few hundred lines in flight before
reaching sustained rate, CPUs slow once the working set overflows the
last-level cache.
"""

from __future__ import annotations

import numpy as np

from repro.apps.base import Application
from repro.cluster.perfmodel import KernelCharacteristics
from repro.errors import WorkloadError
from repro.util.validation import check_positive_int

__all__ = ["MatMul"]


class MatMul(Application):
    """C = A @ B with B's rows as the divisible domain.

    Parameters
    ----------
    n:
        Matrix order (the paper sweeps 4096..65536).
    seed:
        Seed for the synthetic input matrices (real backend only).
    materialize_limit:
        Refuse to materialise real input matrices above this order —
        large paper-scale orders are simulation-only (a 65536^2 float32
        matrix alone is 17 GB).
    """

    name = "matmul"

    def __init__(
        self, n: int, *, seed: int = 0, materialize_limit: int = 4096
    ) -> None:
        check_positive_int("n", n)
        self.n = int(n)
        self.seed = int(seed)
        self.materialize_limit = int(materialize_limit)
        self._a: np.ndarray | None = None
        self._b: np.ndarray | None = None

    # ------------------------------------------------------------------
    @property
    def total_units(self) -> int:
        """One unit per line of the result."""
        return self.n

    def kernel_characteristics(self) -> KernelCharacteristics:
        n = float(self.n)
        return KernelCharacteristics(
            name=self.name,
            flops_per_unit=2.0 * n * n,
            bytes_in_per_unit=4.0 * n,  # one float32 row of B
            bytes_out_per_unit=4.0 * n,  # one float32 row of C
            cpu_efficiency=1.0,
            gpu_efficiency=1.0,
            gpu_half_units=128.0,  # GEMM tile saturation (reference GPU)
            cpu_half_units=8.0,
            cpu_cache_gamma=0.3,  # blocked GEMM is cache-friendly; mild knee
        )

    def default_initial_block_size(self) -> int:
        """~n/2048 lines.

        The paper sizes the initial block "empirically, so that the
        initial phase of the algorithm would take about 10% of the
        application execution time"; for the Table I cluster that lands
        near one line per 2048 of matrix order (the slowest CPU must be
        able to finish the unscaled first-round probe without stalling
        the whole round), floored at 32 lines — probes below a GEMM tile
        measure launch overhead, not compute.
        """
        return max(self.n // 2048, 32)

    # ------------------------------------------------------------------
    # real kernels
    # ------------------------------------------------------------------
    def _ensure_data(self) -> None:
        if self._a is not None:
            return
        if self.n > self.materialize_limit:
            raise WorkloadError(
                f"matmul order {self.n} exceeds the real-backend limit "
                f"({self.materialize_limit}); paper-scale orders are "
                "simulation-only"
            )
        rng = np.random.default_rng(self.seed)
        a = rng.standard_normal((self.n, self.n), dtype=np.float32)
        b = rng.standard_normal((self.n, self.n), dtype=np.float32)
        # _a is the initialisation guard checked by concurrent real-backend
        # workers, so it must be assigned last
        self._b = b
        self._a = a

    def cpu_kernel(self, start: int, count: int) -> np.ndarray:
        """Multiply ``count`` rows of A against B."""
        self._ensure_data()
        assert self._a is not None and self._b is not None
        if not (0 <= start and start + count <= self.n):
            raise WorkloadError(f"block [{start}, {start + count}) out of range")
        return self._a[start : start + count] @ self._b

    def verify(self, results: list[tuple[int, int, object]]) -> bool:
        """Assemble the blocks and compare against a one-shot reference."""
        if not self.coverage_ok(results, self.n):
            return False
        self._ensure_data()
        assert self._a is not None and self._b is not None
        c = np.empty((self.n, self.n), dtype=np.float32)
        for start, count, value in results:
            block = np.asarray(value)
            if block.shape != (count, self.n):
                return False
            c[start : start + count] = block
        reference = self._a @ self._b
        return bool(np.allclose(c, reference, rtol=1e-4, atol=1e-3))
