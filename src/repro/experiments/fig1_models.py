"""Fig. 1 — execution times and fitted performance models.

The paper plots measured processing times for a GPU and a CPU against
block size, for the Black-Scholes and matrix-multiplication kernels,
with the fitted model curves overlaid — the visual argument that one
basis family covers qualitatively different device behaviours.

This experiment reproduces the data behind the figure: it samples the
simulated devices at a grid of block sizes (with measurement noise),
fits the paper's model family through :mod:`repro.modeling`, and
reports measured vs fitted times plus the selected basis and R² per
device.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cluster import GroundTruth, paper_cluster
from repro.experiments.runner import make_application
from repro.modeling import DeviceModel, PerfProfile
from repro.sim.random import RandomStreams
from repro.util.tables import format_series, format_table

__all__ = ["Fig1Curve", "run_fig1", "render_fig1"]


@dataclass(frozen=True)
class Fig1Curve:
    """Measured and fitted execution-time curve of one device."""

    app_name: str
    device_id: str
    block_sizes: np.ndarray
    measured_s: np.ndarray
    fitted_s: np.ndarray
    model: DeviceModel

    @property
    def max_relative_error(self) -> float:
        """Largest |fitted - measured| / measured over the grid."""
        rel = np.abs(self.fitted_s - self.measured_s) / np.maximum(
            self.measured_s, 1e-300
        )
        return float(rel.max())


def run_fig1(
    *,
    apps: tuple[str, ...] = ("blackscholes", "matmul"),
    sizes: dict[str, int] | None = None,
    devices: tuple[str, ...] = ("A.cpu", "A.gpu0"),
    points: int = 12,
    noise_sigma: float = 0.005,
    seed: int = 0,
) -> list[Fig1Curve]:
    """Sample, fit and evaluate the Fig. 1 curves.

    Parameters
    ----------
    apps:
        Which applications to profile (the paper shows Black-Scholes
        and matrix multiplication).
    sizes:
        Application problem sizes (defaults: a mid-size paper setting).
    devices:
        Devices to profile (the paper shows machine A's CPU and GPU).
    points:
        Number of geometrically spaced block sizes to measure.
    """
    sizes = sizes or {"matmul": 16384, "blackscholes": 100_000}
    cluster = paper_cluster(4)
    streams = RandomStreams(seed)
    curves: list[Fig1Curve] = []
    for app_name in apps:
        app = make_application(app_name, sizes[app_name])
        ground_truth = GroundTruth(cluster, app.kernel_characteristics())
        s0 = app.default_initial_block_size()
        grid = np.unique(
            np.round(
                np.geomspace(max(s0 // 2, 1), app.total_units // 8, points)
            ).astype(int)
        )
        for device_id in devices:
            profile = PerfProfile(device_id)
            measured = []
            for u in grid:
                t_exec = ground_truth.exec_time(device_id, int(u))
                t_exec *= streams.lognormal_factor(
                    f"{app_name}/{device_id}/{u}", noise_sigma
                )
                t_xfer = ground_truth.transfer_time(device_id, int(u))
                profile.add(int(u), t_exec, t_xfer)
                measured.append(t_exec + t_xfer)
            model = profile.fit()
            fitted = np.asarray(model.E(grid.astype(float)))
            curves.append(
                Fig1Curve(
                    app_name=app_name,
                    device_id=device_id,
                    block_sizes=grid,
                    measured_s=np.asarray(measured),
                    fitted_s=fitted,
                    model=model,
                )
            )
    return curves


def render_fig1(curves: list[Fig1Curve]) -> str:
    """ASCII rendering: one series panel per curve plus a summary table."""
    blocks = []
    summary_rows = []
    for c in curves:
        blocks.append(
            format_series(
                "block",
                list(c.block_sizes),
                {"measured_s": list(c.measured_s), "fitted_s": list(c.fitted_s)},
                title=f"Fig.1 {c.app_name} on {c.device_id}",
                precision=4,
            )
        )
        summary_rows.append(
            [
                c.app_name,
                c.device_id,
                " + ".join(c.model.exec_fit.names),
                c.model.r2,
                c.max_relative_error,
            ]
        )
    blocks.append(
        format_table(
            ["app", "device", "selected basis", "R2", "max rel err"],
            summary_rows,
            title="Fig.1 fitted models",
        )
    )
    return "\n\n".join(blocks)
