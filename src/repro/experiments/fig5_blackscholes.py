"""Fig. 5 — execution time and speedup for Black-Scholes.

Same structure as Fig. 4, over the paper's option counts
(10,000..500,000) and machine counts (1..4).
"""

from __future__ import annotations

from typing import Sequence

from repro.experiments.fig4_exectime import render_sweep
from repro.experiments.parallel import PointSpec, run_sweep
from repro.experiments.runner import PAPER_POLICIES, SweepPoint

__all__ = ["BS_SIZES", "run_fig5", "render_sweep"]

#: The paper's option counts.
BS_SIZES: tuple[int, ...] = (10_000, 50_000, 100_000, 250_000, 500_000)


def run_fig5(
    *,
    sizes: Sequence[int] = BS_SIZES,
    machine_counts: Sequence[int] = (1, 2, 3, 4),
    policies: Sequence[str] = PAPER_POLICIES,
    replications: int = 3,
    seed: int = 0,
    jobs: int | None = None,
) -> list[SweepPoint]:
    """Run the Fig. 5 grid (one parallel batch, see Fig. 4)."""
    specs = [
        PointSpec(
            app_name="blackscholes",
            size=size,
            num_machines=machines,
            policies=tuple(policies),
            replications=replications,
            seed=seed,
        )
        for machines in machine_counts
        for size in sizes
    ]
    return run_sweep(specs, jobs=jobs)
