"""Sec. V.a — interior-point solve overhead.

"The mean time spent on this calculation was 170 ms, for the scenario
with 4 machines and matrices of order 65536, with standard deviation of
32.3 ms."  This experiment times :func:`solve_block_partition` on
models fitted for exactly that scenario, on the host running the
reproduction (absolute numbers are hardware-dependent; the claim that
survives is *milliseconds-scale, amortised by the better distribution*).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cluster import GroundTruth, paper_cluster
from repro.experiments.runner import make_application
from repro.modeling import DeviceModel, PerfProfile
from repro.sim.random import RandomStreams
from repro.solver import solve_block_partition
from repro.util.stats import mean_std

__all__ = ["OverheadStats", "fitted_models_for_scenario", "run_solver_overhead"]


@dataclass(frozen=True)
class OverheadStats:
    """Solve-time statistics over repeated solves."""

    mean_ms: float
    std_ms: float
    samples: int
    method: str
    iterations: int


def fitted_models_for_scenario(
    *,
    app_name: str = "matmul",
    size: int = 65536,
    num_machines: int = 4,
    probe_points: int = 8,
    noise_sigma: float = 0.005,
    seed: int = 0,
) -> dict[str, DeviceModel]:
    """Build per-device models the way the modeling phase would."""
    cluster = paper_cluster(num_machines)
    app = make_application(app_name, size)
    ground_truth = GroundTruth(cluster, app.kernel_characteristics())
    streams = RandomStreams(seed)
    s0 = app.default_initial_block_size()
    models: dict[str, DeviceModel] = {}
    for device in cluster.devices():
        did = device.device_id
        profile = PerfProfile(did)
        # equal-time-ish probe ladder, like the modeling phase produces
        rate = 1.0 / max(ground_truth.total_time(did, s0), 1e-12)
        base_rate = max(
            1.0 / max(ground_truth.total_time(d.device_id, s0), 1e-12)
            for d in cluster.devices()
        )
        ratio = rate / base_rate
        for k in range(probe_points):
            units = max(int(round(s0 * 2**k * ratio)), 1)
            t_exec = ground_truth.exec_time(did, units)
            t_exec *= streams.lognormal_factor(f"{did}/{k}", noise_sigma)
            profile.add(units, t_exec, ground_truth.transfer_time(did, units))
        models[did] = profile.fit()
    return models


def run_solver_overhead(
    *,
    repetitions: int = 20,
    quantum: float | None = None,
    **scenario_kwargs,
) -> OverheadStats:
    """Time repeated partition solves for the paper's scenario."""
    models = fitted_models_for_scenario(**scenario_kwargs)
    size = scenario_kwargs.get("size", 65536)
    q = quantum if quantum is not None else size * 0.9 / 5
    times = []
    last = None
    for _ in range(repetitions):
        last = solve_block_partition(models, q)
        times.append(last.solve_time_s * 1e3)
    mean, std = mean_std(times)
    assert last is not None
    return OverheadStats(
        mean_ms=float(mean),
        std_ms=float(std),
        samples=repetitions,
        method=last.method,
        iterations=last.iterations,
    )
