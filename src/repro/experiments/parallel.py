"""Parallel sweep engine with content-addressed result caching.

Every paper artefact (Figs. 4-7, the ablations, the scaling studies) is
a grid of fully independent simulated runs: one (application, size,
machine count, policy, replication) tuple never shares state with
another, and each run is deterministically seeded (``seed * 1000 +
rep``).  That independence is the whole performance opportunity of the
harness, and this module exploits it twice:

* **process fan-out** — :func:`run_sweep` expands the requested grid
  points into a flat list of :class:`RunSpec` runs and executes them on
  a ``ProcessPoolExecutor``.  The worker count comes from the ``jobs``
  argument, else the ``REPRO_JOBS`` environment variable, else
  ``os.cpu_count()``.  ``jobs == 1`` (or an unpicklable cluster
  factory, or a broken pool) degrades to the plain serial loop.
  Results are aggregated in submission order, so the
  :class:`~repro.experiments.runner.SweepPoint` aggregates are
  *bit-identical* between serial and parallel execution;

* **result caching** — each run's outputs (makespan, idle fractions,
  distribution, solver overhead, rebalance count) are small JSON
  payloads addressed by a SHA-256 key over everything that determines
  them: application name/size, machine count, policy, per-replication
  seed, noise sigma, the overhead-accounting mode, the cluster-factory
  tag, and the repo algorithm version.  With ``REPRO_CACHE=1`` (cache
  under ``.repro_cache/``) or ``REPRO_CACHE=<dir>``, re-running a
  figure after touching only report code is near-instant.

Each sweep logs a one-line summary (``jobs=N cache_hits=H wall=Ts``)
through :mod:`repro.util.logging`.

Caveat on bit-identity: the default ``plb-hec`` policy charges
*measured* host solve time into the virtual makespan ("overhead
honesty", see :mod:`repro.core.plb_hec`), which jitters between any two
runs — serial or parallel.  Pass ``fixed_overhead_s`` to pin the
charge when exact reproducibility across executions matters; within a
single sweep the parallel/serial aggregation order is identical either
way.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Sequence

from repro.cluster import paper_cluster
from repro.cluster.topology import Cluster
from repro.errors import ConfigurationError
from repro.experiments.runner import PolicyOutcome, SweepPoint
from repro.obs.events import EventLog, push_run_id
from repro.obs.metrics import diff_snapshots, get_registry, merge_snapshots
from repro.obs.profiler import merge_profiles, profiling
from repro.obs.report import RunReport, config_hash
from repro.util.logging import configure_logging, current_config, get_logger

__all__ = [
    "ALGORITHM_VERSION",
    "PointSpec",
    "RunSpec",
    "ResultCache",
    "SweepStats",
    "resolve_jobs",
    "resolve_profile",
    "run_sweep",
    "run_point",
]

#: Bump whenever simulator/balancer/solver numerics change — or the
#: cached payload schema changes: it is part of every cache key, so
#: stale cached results can never leak across algorithm versions.
#: ("2": payload gained the per-run RunReport manifest and wall clock.
#: "3": the partition solver retries non-converged IPM attempts from a
#: perturbed start, and faulted runs carry a resilience section.
#: "4": payloads of ledger-keeping policies carry the scheduler
#: decision ledger, and the fallback partition propagates an analytic
#: predicted time instead of NaN.
#: "5": sampled runs carry a ``"series"`` time-series payload; the
#: sample interval joins the cache key when sampling is enabled.
#: "6": every successful payload carries a ``"critpath"`` makespan
#: attribution, lost-block entries gained the range ``start_unit``, and
#: chaos runs check the busy-overlap invariant.
#: "7": service-mode runs (``service_json`` specs) flow through the
#: sweep with ``"serve"`` scorecard payloads, and ``TransferFault``
#: grew the seeded backoff-jitter knob.)
ALGORITHM_VERSION = "7"

_log = get_logger("experiments.parallel")
_events = EventLog("experiments.parallel")


@dataclass(frozen=True)
class RunSpec:
    """One independent simulated run (the unit of fan-out and caching).

    ``faults`` is a tuple of the fault objects from
    :mod:`repro.runtime.sim_executor` (mixed kinds allowed); when
    non-empty the payload gains a ``"resilience"`` section with the
    run's invariant-check results.  ``tolerate_errors`` turns a
    mid-run :class:`~repro.errors.ReproError` into an error payload
    instead of poisoning the whole sweep — chaos campaigns score
    survival, so a crash is a data point, not an abort.

    ``sample_interval`` attaches a virtual-time
    :class:`~repro.obs.timeseries.ClusterSampler` to the run (``0.0``:
    auto interval, ~makespan/128; ``None``: no sampling) and the
    payload gains a ``"series"`` section.  Samples are deterministic
    functions of the seeded simulation, so sampled payloads are
    cache-compatible like everything else.

    ``service_json`` switches the run to service mode: instead of one
    batch application, the worker plays a whole
    :class:`~repro.service.server.ClusterService` episode from the
    canonical-JSON config (seeded by ``run_seed``) and the payload
    carries the ``"serve"`` scorecard plus the service time series.
    The episode is a pure function of (config, seed), so service runs
    cache exactly like batch runs.
    """

    app_name: str
    size: int
    num_machines: int
    policy_name: str
    run_seed: int
    noise_sigma: float
    fixed_overhead_s: float | None = None
    faults: tuple = ()
    tolerate_errors: bool = False
    sample_interval: float | None = None
    service_json: str | None = None


@dataclass(frozen=True)
class PointSpec:
    """One requested grid point: every policy at one configuration.

    The parallel analogue of a :func:`repro.experiments.runner.run_policies`
    call; :func:`run_sweep` takes a sequence of these so a whole figure's
    grid fans out as one flat batch of runs.
    """

    app_name: str
    size: int
    num_machines: int
    policies: tuple[str, ...]
    replications: int = 3
    seed: int = 0
    noise_sigma: float = 0.005
    fixed_overhead_s: float | None = None
    cluster_factory: Callable[[int], Cluster] = paper_cluster
    faults: tuple = ()
    tolerate_errors: bool = False
    sample_interval: float | None = None
    service_json: str | None = None

    def __post_init__(self) -> None:
        if self.replications < 1:
            raise ConfigurationError("replications must be >= 1")
        if not self.policies:
            raise ConfigurationError("policies must be non-empty")

    def expand(self) -> list[RunSpec]:
        """The point's runs in deterministic aggregation order."""
        return [
            RunSpec(
                app_name=self.app_name,
                size=self.size,
                num_machines=self.num_machines,
                policy_name=policy,
                run_seed=self.seed * 1000 + rep,
                noise_sigma=self.noise_sigma,
                fixed_overhead_s=self.fixed_overhead_s,
                faults=self.faults,
                tolerate_errors=self.tolerate_errors,
                sample_interval=self.sample_interval,
                service_json=self.service_json,
            )
            for policy in self.policies
            for rep in range(self.replications)
        ]


def _factory_tag(factory: Callable[[int], Cluster]) -> str | None:
    """A stable identity for a cluster factory, or None if it has none.

    Lambdas, closures and bound locals have no stable import path, so
    results built from them are never cached (and never silently
    collide).
    """
    module = getattr(factory, "__module__", None)
    qualname = getattr(factory, "__qualname__", None)
    if not module or not qualname:
        return None
    if "<lambda>" in qualname or "<locals>" in qualname:
        return None
    return f"{module}.{qualname}"


def _execute_service_run(
    spec: RunSpec,
    cluster_factory: Callable[[int], Cluster],
) -> dict:
    """Worker body for a service-mode run (``spec.service_json`` set).

    The payload keeps the batch-run column shape (``makespan`` is the
    episode's virtual end time, ``rebalances`` the balancer cycles) so
    SweepPoint aggregation and campaign plumbing work unchanged, and
    adds the ``"serve"`` scorecard plus the service time series.
    """
    from repro.errors import ReproError
    from repro.service.server import ClusterService, ServiceConfig

    wall0 = time.perf_counter()
    metrics_before = get_registry().snapshot()
    service_dict = json.loads(spec.service_json)
    config = {
        "kind": "serve",
        "machines": spec.num_machines,
        "policy": spec.policy_name,
        "seed": spec.run_seed,
        "service": service_dict,
    }
    run_id = f"run-{config_hash(config)[:12]}"
    service_config = ServiceConfig.from_dict(service_dict, seed=spec.run_seed)
    try:
        with push_run_id(run_id):
            service = ClusterService(
                service_config, cluster_factory=cluster_factory
            )
            card = service.run()
    except ReproError as exc:
        if not spec.tolerate_errors:
            raise
        return {
            "makespan": None,
            "idle_fractions": {},
            "distribution": {},
            "overhead": 0.0,
            "rebalances": 0,
            "wall_s": time.perf_counter() - wall0,
            "report": None,
            "error": {"type": type(exc).__name__, "message": str(exc)},
        }
    report = RunReport.build(
        config=config,
        makespan=card["duration_s"],
        rebalances=card["balancer"]["rebalances"],
        solver_overhead_s=0.0,
        phase_summary={},
        metrics=diff_snapshots(metrics_before, get_registry().snapshot()),
        run_id=run_id,
    )
    interval = (
        service_config.sample_interval or service_config.rebalance_interval
    )
    return {
        "makespan": card["duration_s"],
        "idle_fractions": {},
        "distribution": {},
        "overhead": 0.0,
        "rebalances": card["balancer"]["rebalances"],
        "wall_s": time.perf_counter() - wall0,
        "report": report.to_dict(),
        "serve": card,
        "series": {
            "interval": interval,
            "samples": card["samples"],
            "store": service.store.to_payload(),
        },
    }


def _execute_run(
    spec: RunSpec,
    cluster_factory: Callable[[int], Cluster],
    profile: bool = False,
) -> dict:
    """Worker body: run one spec and return a JSON-serialisable payload.

    Must stay a module-level function — it is pickled into pool workers.

    Besides the aggregate outcomes, the payload carries the run's full
    telemetry manifest (:class:`~repro.obs.report.RunReport`: config
    hash, phase summary, per-run metrics delta) and host wall clock.
    Because the manifest is computed *here* and cached with the payload,
    a warm-cache replay serves byte-identical telemetry to the original
    execution.

    With ``profile=True`` the run executes under a
    :func:`repro.obs.profiler.profiling` scope and the payload gains a
    ``"profile"`` snapshot — plain data, so it crosses the process
    boundary unchanged and the parent can merge every worker's profile
    into one stats object.
    """
    from repro.cluster import GroundTruth
    from repro.errors import ReproError
    from repro.experiments.runner import (
        _extract_distribution,
        make_application,
        make_policy,
    )
    from repro.runtime import Runtime

    if spec.service_json is not None:
        return _execute_service_run(spec, cluster_factory)
    wall0 = time.perf_counter()
    metrics_before = get_registry().snapshot()
    config = {
        "app": spec.app_name,
        "size": spec.size,
        "machines": spec.num_machines,
        "policy": spec.policy_name,
        "seed": spec.run_seed,
        "noise": spec.noise_sigma,
        "overhead": spec.fixed_overhead_s,
    }
    if spec.faults:
        # lazy import: repro.resilience imports this module
        from repro.resilience.faults import fault_to_dict

        config["faults"] = [fault_to_dict(f) for f in spec.faults]
    # The deterministic id RunReport.build would derive anyway; pushing
    # it around the execution tags worker-side events and log records
    # with the run they belong to, without perturbing cached payloads.
    run_id = f"run-{config_hash(config)[:12]}"
    cluster = cluster_factory(spec.num_machines)
    app = make_application(spec.app_name, spec.size)
    ground_truth = GroundTruth(cluster, app.kernel_characteristics())
    policy = make_policy(
        spec.policy_name,
        ground_truth=ground_truth,
        fixed_overhead_s=spec.fixed_overhead_s,
    )
    fault_kwargs = {}
    if spec.faults:
        from repro.resilience.faults import split_faults

        perturbations, failures, transients, transfer_faults = split_faults(
            spec.faults
        )
        fault_kwargs = {
            "perturbations": perturbations,
            "failures": failures,
            "transients": transients,
            "transfer_faults": transfer_faults,
        }
    runtime = Runtime(
        cluster,
        app.codelet(),
        seed=spec.run_seed,
        noise_sigma=spec.noise_sigma,
        **fault_kwargs,
    )
    sampler = None
    if spec.sample_interval is not None:
        from repro.obs.timeseries import ClusterSampler

        sampler = ClusterSampler(spec.sample_interval)
    prof_snapshot = None
    try:
        with push_run_id(run_id):
            if profile:
                with profiling() as prof:
                    result = runtime.run(
                        policy,
                        app.total_units,
                        app.default_initial_block_size(),
                        sampler=sampler,
                    )
                prof_snapshot = prof.snapshot()
            else:
                result = runtime.run(
                    policy, app.total_units, app.default_initial_block_size(),
                    sampler=sampler,
                )
    except ReproError as exc:
        if not spec.tolerate_errors:
            raise
        return {
            "makespan": None,
            "idle_fractions": {},
            "distribution": {},
            "overhead": 0.0,
            "rebalances": 0,
            "wall_s": time.perf_counter() - wall0,
            "report": None,
            "error": {"type": type(exc).__name__, "message": str(exc)},
        }
    report = RunReport.build(
        config=config,
        makespan=result.makespan,
        rebalances=result.num_rebalances,
        solver_overhead_s=result.solver_overhead_s,
        phase_summary=result.trace.phase_summary(),
        # pool workers execute several runs per process; the delta
        # isolates this run's contribution to the worker's registry
        metrics=diff_snapshots(metrics_before, get_registry().snapshot()),
        run_id=run_id,
    )
    payload = {
        "makespan": result.makespan,
        "idle_fractions": result.idle_fractions,
        "distribution": _extract_distribution(policy, result),
        "overhead": result.solver_overhead_s,
        "rebalances": result.num_rebalances,
        "wall_s": time.perf_counter() - wall0,
        "report": report.to_dict(),
    }
    if result.ledger is not None:
        # deterministic content only (virtual times + solver numerics),
        # so cached payloads replay byte-identical ledgers
        payload["ledger"] = result.ledger.to_dict()
    from repro.obs.critpath import analyze_trace, payload_from_analysis

    # the attribution is a pure function of the (deterministic) trace,
    # so warm-cache and parallel replays stay byte-identical
    payload["critpath"] = payload_from_analysis(analyze_trace(result.trace))
    if sampler is not None:
        # samples are pure functions of the seeded simulation, so the
        # series replays byte-identical from a warm cache too
        payload["series"] = {
            "interval": sampler.interval or 0.0,
            "samples": sampler.samples_taken,
            "store": sampler.store.to_payload(),
        }
    if prof_snapshot is not None:
        payload["profile"] = prof_snapshot
    if spec.faults:
        from repro.resilience.invariants import (
            check_busy_overlap,
            check_conservation,
            check_fault_isolation,
            recovery_lags,
        )

        trace = result.trace
        violations = check_conservation(trace, app.total_units)
        violations += check_fault_isolation(trace)
        violations += check_busy_overlap(trace)
        payload["resilience"] = {
            "violations": [
                {"name": v.name, "message": v.message} for v in violations
            ],
            "failures": [[t, d] for t, d in trace.failures],
            "recoveries": [[t, d] for t, d in trace.recoveries],
            "lost_blocks": [[t, d, u, s] for t, d, u, s in trace.lost_blocks],
            "lost_units": sum(u for _, _, u, _ in trace.lost_blocks),
            "completed_units": sum(r.units for r in trace.records),
            "retries": sum(r.retries for r in trace.records),
            "recovery_lags": recovery_lags(trace),
        }
    return payload


class ResultCache:
    """Content-addressed on-disk store of run payloads.

    Layout: ``<root>/<key[:2]>/<key>.json`` where ``key`` is the SHA-256
    of the canonical JSON of every run-determining input.  Writes are
    atomic (temp file + rename), so concurrent sweeps sharing one cache
    directory can never observe torn entries.
    """

    def __init__(self, root: str | os.PathLike[str]) -> None:
        self.root = Path(root)

    @staticmethod
    def from_env() -> "ResultCache | None":
        """Honour ``REPRO_CACHE``: off / ``1`` = ``.repro_cache`` / a dir."""
        value = os.environ.get("REPRO_CACHE", "").strip()
        if value in ("", "0", "off", "false", "no"):
            return None
        if value in ("1", "on", "true", "yes"):
            return ResultCache(".repro_cache")
        return ResultCache(value)

    @staticmethod
    def key(spec: RunSpec, cluster_tag: str) -> str:
        """The content address of one run under one cluster factory.

        Fault schedules and error tolerance join the key only when set,
        so fault-free runs keep their historical addresses.
        """
        entry = {
            "version": ALGORITHM_VERSION,
            "app": spec.app_name,
            "size": spec.size,
            "machines": spec.num_machines,
            "policy": spec.policy_name,
            "seed": spec.run_seed,
            "noise": spec.noise_sigma,
            "overhead": spec.fixed_overhead_s,
            "cluster": cluster_tag,
        }
        if spec.faults:
            # lazy import: repro.resilience imports this module
            from repro.resilience.faults import fault_to_dict

            entry["faults"] = [fault_to_dict(f) for f in spec.faults]
        if spec.tolerate_errors:
            entry["tolerate_errors"] = True
        if spec.sample_interval is not None:
            entry["sample_interval"] = spec.sample_interval
        if spec.service_json is not None:
            # the canonical JSON string is the service config's identity
            entry["service"] = spec.service_json
        blob = json.dumps(entry, sort_keys=True)
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / (key + ".json")

    def load(self, key: str) -> dict | None:
        """Return the stored payload, or None on miss/corruption."""
        path = self._path(key)
        try:
            with path.open("r", encoding="utf-8") as fh:
                return json.load(fh)
        except FileNotFoundError:
            return None
        except (OSError, json.JSONDecodeError):
            _log.warning("dropping unreadable cache entry %s", path)
            return None

    def store(self, key: str, payload: dict) -> None:
        """Atomically persist one payload.

        The cache is an optimisation: an unwritable cache directory
        (read-only volume, ``REPRO_CACHE`` pointing at a file) degrades
        to a warning instead of discarding the sweep's computed results.
        """
        path = self._path(key)
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            tmp = path.with_suffix(".json.tmp%d" % os.getpid())
            tmp.write_text(json.dumps(payload, sort_keys=True), encoding="utf-8")
            tmp.replace(path)
        except OSError as exc:
            _log.warning("cannot write cache entry %s: %s", path, exc)


@dataclass
class SweepStats:
    """What one :func:`run_sweep` call did, for logs and benchmarks."""

    jobs: int = 1
    total_runs: int = 0
    cache_hits: int = 0
    executed: int = 0
    wall_s: float = 0.0
    fell_back_serial: bool = False
    #: raw run payloads in aggregation order (cached and fresh alike);
    #: chaos campaigns read per-run resilience sections from here
    payloads: list = field(default_factory=list)
    #: run manifests in aggregation order (cached and fresh alike)
    reports: list = field(default_factory=list)
    #: sweep-wide metrics snapshot merged over every run's delta
    metrics: dict = field(default_factory=dict)
    #: merged phase-attributed CPU profile (profiled sweeps only)
    profile: dict = field(default_factory=dict)

    def summary(self) -> str:
        """The one-line log form: ``jobs=N cache_hits=H wall=Ts``."""
        return (
            f"jobs={self.jobs} cache_hits={self.cache_hits} "
            f"wall={self.wall_s:.2f}s"
        )


def resolve_jobs(jobs: int | None = None) -> int:
    """The effective worker count: argument, ``REPRO_JOBS``, cpu count."""
    if jobs is None:
        env = os.environ.get("REPRO_JOBS", "").strip()
        if env:
            try:
                jobs = int(env)
            except ValueError:
                raise ConfigurationError(
                    f"REPRO_JOBS must be an integer, got {env!r}"
                ) from None
        else:
            jobs = os.cpu_count() or 1
    if jobs < 1:
        raise ConfigurationError(f"jobs must be >= 1, got {jobs}")
    return jobs


def resolve_profile(profile: bool | None = None) -> bool:
    """The effective profiling switch: argument else ``REPRO_PROFILE``."""
    if profile is not None:
        return bool(profile)
    return os.environ.get("REPRO_PROFILE", "").strip().lower() in (
        "1",
        "on",
        "true",
        "yes",
    )


_UNSET = object()


def _pool_worker_init(log_config: tuple[str, str] | None) -> None:
    """Re-apply the parent's console logging config in a pool worker.

    Pool workers are fresh interpreters: without this they fall back to
    the library's NullHandler and every worker-side record (cache
    warnings, structured events) silently disappears.  Must stay a
    module-level function — it is pickled into the pool.
    """
    if log_config is not None:
        configure_logging(log_config[0], log_config[1])


def _execute_batch(
    tasks: Sequence[tuple[RunSpec, Callable[[int], Cluster]]],
    jobs: int,
    stats: SweepStats,
    profile: bool = False,
) -> list[dict]:
    """Run the cache misses, parallel when possible, serial otherwise."""
    if not tasks:
        return []
    if jobs > 1:
        try:
            # A factory that cannot cross a process boundary forces the
            # serial path; probe before paying for worker start-up.
            pickle.dumps(tasks[0])
        except Exception:
            _log.info("cluster factory is not picklable; running serially")
            stats.fell_back_serial = True
            jobs = 1
    if jobs > 1:
        try:
            with ProcessPoolExecutor(
                max_workers=min(jobs, len(tasks)),
                initializer=_pool_worker_init,
                initargs=(current_config(),),
            ) as pool:
                futures = [
                    pool.submit(_execute_run, spec, factory, profile)
                    for spec, factory in tasks
                ]
                return [f.result() for f in futures]
        except BrokenProcessPool:
            _log.warning("process pool broke; re-running the batch serially")
            stats.fell_back_serial = True
    return [_execute_run(spec, factory, profile) for spec, factory in tasks]


def run_sweep(
    points: Sequence[PointSpec],
    *,
    jobs: int | None = None,
    cache: ResultCache | None | object = _UNSET,
    stats: SweepStats | None = None,
    profile: bool | None = None,
) -> list[SweepPoint]:
    """Run a batch of grid points and aggregate each into a SweepPoint.

    Parameters
    ----------
    points:
        The grid, in output order.  All of their runs are flattened into
        one batch, so small points piggyback on big ones' parallelism.
    jobs:
        Worker processes (default: ``REPRO_JOBS`` env, else cpu count).
    cache:
        A :class:`ResultCache`, ``None`` to disable, or unset to honour
        the ``REPRO_CACHE`` environment variable.
    stats:
        Optional out-parameter; filled with what the sweep did.
    profile:
        Capture a phase-attributed CPU profile of every run (default:
        the ``REPRO_PROFILE`` environment variable).  Worker profiles
        are merged into ``stats.profile``.  Profiling disables the
        result cache for the sweep: the default policy charges
        *measured* host time into the virtual makespan, so payloads
        computed under profiler overhead must never be replayed into
        unprofiled sweeps (and cache hits carry no profile to merge).
    """
    t0 = time.perf_counter()
    jobs = resolve_jobs(jobs)
    profile = resolve_profile(profile)
    if profile:
        cache = None
    elif cache is _UNSET:
        cache = ResultCache.from_env()
    if stats is None:
        stats = SweepStats()
    stats.jobs = jobs

    flat: list[tuple[int, RunSpec]] = []
    for index, point in enumerate(points):
        for spec in point.expand():
            flat.append((index, spec))
    stats.total_runs = len(flat)

    tags = [_factory_tag(p.cluster_factory) for p in points]
    payloads: list[dict | None] = [None] * len(flat)
    miss_slots: list[int] = []
    keys: list[str | None] = [None] * len(flat)
    for slot, (index, spec) in enumerate(flat):
        if cache is not None and tags[index] is not None:
            key = ResultCache.key(spec, tags[index])
            keys[slot] = key
            hit = cache.load(key)
            if hit is not None:
                payloads[slot] = hit
                stats.cache_hits += 1
                continue
        miss_slots.append(slot)

    tasks = [
        (flat[slot][1], points[flat[slot][0]].cluster_factory)
        for slot in miss_slots
    ]
    fresh = _execute_batch(tasks, jobs, stats, profile)
    stats.executed = len(fresh)
    for slot, payload in zip(miss_slots, fresh):
        payloads[slot] = payload
        snapshot = payload.get("profile")
        if snapshot is not None:
            merge_profiles(stats.profile, snapshot)
        if cache is not None and keys[slot] is not None:
            # belt and braces: profiled payloads are never cached (the
            # profile-implies-no-cache rule above), and the snapshot
            # itself must never leak into an entry either way
            stored = {k: v for k, v in payload.items() if k != "profile"}
            cache.store(keys[slot], stored)

    results: list[SweepPoint] = []
    cursor = 0
    for index, point in enumerate(points):
        outcomes: dict[str, PolicyOutcome] = {}
        for policy in point.policies:
            outcome = PolicyOutcome(policy=policy)
            for _rep in range(point.replications):
                payload = payloads[cursor]
                cursor += 1
                outcome.makespans.append(payload["makespan"])
                outcome.idle_fractions.append(payload["idle_fractions"])
                outcome.distributions.append(payload["distribution"])
                outcome.overheads.append(payload["overhead"])
                outcome.rebalances.append(payload["rebalances"])
            outcomes[policy] = outcome
        results.append(
            SweepPoint(
                app_name=point.app_name,
                size=point.size,
                num_machines=point.num_machines,
                outcomes=outcomes,
            )
        )

    stats.payloads.extend(payloads)
    for payload in payloads:
        report = payload.get("report")
        if report is not None:
            stats.reports.append(report)
            merge_snapshots(stats.metrics, report.get("metrics", {}))

    # Record freshly executed runs (never cache hits — replays would
    # double-count samples) when REPRO_HISTORY enables the store.  The
    # history is telemetry: failure to write it must not fail the sweep.
    if fresh:
        try:
            from repro.obs.history import (
                HistoryStore,
                calibration_entry,
                run_entry,
            )

            history = HistoryStore.from_env()
            if history is not None:
                for payload in fresh:
                    report = payload.get("report")
                    if report is not None:
                        history.append(
                            run_entry(report, wall_s=payload.get("wall_s"))
                        )
                        ledger = payload.get("ledger")
                        if ledger and ledger.get("calibration"):
                            history.append(calibration_entry(report, ledger))
        except Exception:
            _log.warning("failed to record sweep history", exc_info=True)

    stats.wall_s = time.perf_counter() - t0
    registry = get_registry()
    registry.inc("sweep.jobs", stats.total_runs)
    registry.inc("sweep.cache_hits", stats.cache_hits)
    registry.inc("sweep.cache_misses", stats.executed)
    for payload in fresh:
        if "wall_s" in payload:
            registry.observe("sweep.job_wall_s", payload["wall_s"])
    _events.instant(
        "sweep.complete",
        runs=stats.total_runs,
        cache_hits=stats.cache_hits,
        executed=stats.executed,
        wall_s=round(stats.wall_s, 4),
    )
    _log.info("sweep complete: %s", stats.summary())
    return results


def run_point(
    point: PointSpec,
    *,
    jobs: int | None = None,
    cache: ResultCache | None | object = _UNSET,
    stats: SweepStats | None = None,
    profile: bool | None = None,
) -> SweepPoint:
    """Run one grid point through the sweep engine."""
    return run_sweep(
        [point], jobs=jobs, cache=cache, stats=stats, profile=profile
    )[0]
