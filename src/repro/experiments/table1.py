"""Table I — machine configurations.

Renders the testbed exactly as the paper tabulates it, from the presets
in :mod:`repro.cluster.presets` (which is what every experiment runs
on), so the table doubles as a check that the encoded specs match the
paper.
"""

from __future__ import annotations

from repro.cluster import paper_machines
from repro.util.tables import format_table

__all__ = ["table1_rows", "render_table1"]


def table1_rows() -> list[list[str]]:
    """One CPU row and one GPU row per machine, as in Table I."""
    rows: list[list[str]] = []
    for machine in paper_machines():
        cpu = machine.cpu
        rows.append(
            [
                machine.name,
                "CPU",
                cpu.model,
                f"{cpu.cores} cores @ {cpu.clock_ghz} GHz",
                f"{cpu.cache_mb:g} MB cache",
                f"{cpu.ram_gb:g} GB RAM",
            ]
        )
        for gpu in machine.gpus:
            rows.append(
                [
                    machine.name,
                    "GPU",
                    gpu.model,
                    f"{gpu.cores} cores / {gpu.sms} SMs",
                    f"{gpu.mem_bandwidth_gbs:g} GB/s",
                    f"{gpu.mem_gb:g} GB",
                ]
            )
    return rows


def render_table1() -> str:
    """ASCII Table I."""
    return format_table(
        ["Machine", "Kind", "Model", "Compute", "Memory BW/Cache", "Memory"],
        table1_rows(),
        title="Table I: machine configurations",
    )
