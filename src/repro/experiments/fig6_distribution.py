"""Fig. 6 — block-size distribution among the processing units.

"The values represent the ratio of total data allocated on a single
step to each CPU/GPU processor ... We considered the block sizes
generated at the end of the performance modeling phase for PLB-HeC, of
phase 1 for the HDSS algorithm, and of the application execution for
the Acosta algorithm."  Four machines, one GPU per machine, two input
sizes per application.

The expected shape: all three estimators give GPUs far larger shares
than CPUs; PLB-HeC's distribution is qualitatively different, with
proportionally smaller CPU and larger GPU blocks than the
weighted-mean-based Acosta/HDSS.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.experiments.parallel import PointSpec, run_sweep
from repro.util.tables import format_table

__all__ = ["DEFAULT_CASES", "run_fig6", "render_fig6", "gpu_share"]

#: (application, [two input sizes]) as in the figure.
DEFAULT_CASES: tuple[tuple[str, tuple[int, int]], ...] = (
    ("matmul", (16384, 65536)),
    ("grn", (60_000, 140_000)),
    ("blackscholes", (100_000, 500_000)),
)

#: The distribution-estimating policies the figure compares.
FIG6_POLICIES: tuple[str, ...] = ("acosta", "hdss", "plb-hec")


@dataclass(frozen=True)
class Fig6Case:
    """Distributions of one (app, size) cell."""

    app_name: str
    size: int
    distributions: Mapping[str, Mapping[str, float]]  # policy -> device -> share


def gpu_share(distribution: Mapping[str, float]) -> float:
    """Total share assigned to GPU processing units."""
    return sum(v for d, v in distribution.items() if "gpu" in d)


def run_fig6(
    *,
    cases: Sequence[tuple[str, Sequence[int]]] = DEFAULT_CASES,
    policies: Sequence[str] = FIG6_POLICIES,
    replications: int = 3,
    seed: int = 0,
    jobs: int | None = None,
) -> list[Fig6Case]:
    """Run the Fig. 6 grid (always 4 machines, one GPU each)."""
    specs = [
        PointSpec(
            app_name=app_name,
            size=size,
            num_machines=4,
            policies=tuple(policies),
            replications=replications,
            seed=seed,
        )
        for app_name, sizes in cases
        for size in sizes
    ]
    return [
        Fig6Case(
            app_name=point.app_name,
            size=point.size,
            distributions={
                name: outcome.mean_distribution()
                for name, outcome in point.outcomes.items()
            },
        )
        for point in run_sweep(specs, jobs=jobs)
    ]


def render_fig6(cases: list[Fig6Case]) -> str:
    """ASCII table: one row per (app, size, policy), device columns."""
    if not cases:
        return "(no cases)"
    devices = sorted(next(iter(cases[0].distributions.values())).keys())
    rows = []
    for case in cases:
        for policy, dist in case.distributions.items():
            rows.append(
                [case.app_name, case.size, policy]
                + [dist.get(d, 0.0) for d in devices]
                + [gpu_share(dist)]
            )
    return format_table(
        ["app", "size", "policy", *devices, "gpu_total"],
        rows,
        title="Fig.6 block-size distribution (share of one step)",
    )
