"""Experiment harness: regenerates every table and figure of the paper.

Each ``figN_*`` module produces the rows/series the corresponding paper
artefact reports, as plain data structures plus an ASCII rendering:

* :mod:`repro.experiments.table1` — the machine-configuration table;
* :mod:`repro.experiments.fig1_models` — measured execution times and
  fitted performance models per device (Fig. 1);
* :mod:`repro.experiments.fig4_exectime` — execution time and speedup
  vs Greedy for MatMul and GRN across input sizes and machine counts
  (Fig. 4);
* :mod:`repro.experiments.fig5_blackscholes` — the same for
  Black-Scholes (Fig. 5);
* :mod:`repro.experiments.fig6_distribution` — block-size distribution
  across processing units per algorithm (Fig. 6);
* :mod:`repro.experiments.fig7_idleness` — processing-unit idle time
  (Fig. 7);
* :mod:`repro.experiments.solver_overhead` — the interior-point solve
  cost statistic (Sec. V.a, ~170 ms);
* :mod:`repro.experiments.ablations` — beyond-paper studies: selection
  method (IPM / waterfill / proportional), rebalancing under
  perturbation (the Sec. VI cloud scenario), probing strategy.

Shared machinery lives in :mod:`repro.experiments.runner`; the parallel
sweep engine (process fan-out + content-addressed result cache, the
``REPRO_JOBS`` / ``REPRO_CACHE`` knobs) in
:mod:`repro.experiments.parallel`; wall-clock benchmarking of the
engine itself in :mod:`repro.experiments.wallclock`.
"""

from repro.experiments.parallel import (
    PointSpec,
    ResultCache,
    SweepStats,
    run_point,
    run_sweep,
)
from repro.experiments.runner import (
    PolicyOutcome,
    SweepPoint,
    make_application,
    make_policy,
    run_policies,
)

__all__ = [
    "PolicyOutcome",
    "SweepPoint",
    "PointSpec",
    "ResultCache",
    "SweepStats",
    "make_application",
    "make_policy",
    "run_policies",
    "run_point",
    "run_sweep",
]
