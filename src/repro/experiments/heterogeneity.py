"""Heterogeneity study (DESIGN.md H1, beyond the paper's grid).

The paper's central qualitative claim — "PLB-HeC obtained the highest
performance gains with more heterogeneous clusters" — is only sampled at
four machine-count points in the paper.  This experiment quantifies it:
clusters are built with a *controllable heterogeneity index* (the ratio
between the fastest and slowest GPU's sustained rate) and the speedup
over Greedy is measured as a function of that index.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.apps import MatMul
from repro.balancers import Greedy, HDSS
from repro.cluster.device import CPUSpec, GPUArch, GPUSpec
from repro.cluster.machine import Machine
from repro.cluster.topology import Cluster
from repro.core import PLBHeC
from repro.errors import ConfigurationError
from repro.runtime import Runtime
from repro.util.tables import format_table

__all__ = ["HeterogeneityPoint", "build_spread_cluster", "run_heterogeneity"]


@dataclass(frozen=True)
class HeterogeneityPoint:
    """Speedups measured at one heterogeneity index."""

    spread: float
    greedy_s: float
    hdss_s: float
    plb_s: float

    @property
    def plb_speedup(self) -> float:
        return self.greedy_s / self.plb_s

    @property
    def hdss_speedup(self) -> float:
        return self.greedy_s / self.hdss_s


def build_spread_cluster(spread: float, *, num_machines: int = 4) -> Cluster:
    """Machines whose overall speeds span a factor of ``spread``.

    Heterogeneity is applied at the *machine* level — both the CPU and
    the GPU of machine i are clocked by the same factor, as when mixing
    hardware generations (the paper's setting).  Machine speeds are
    geometrically spaced and normalised so the summed clock factors
    (hence the aggregate sustained rate) are the same at every spread:
    the measured effect is heterogeneity alone, not total capacity.
    """
    if spread < 1.0:
        raise ConfigurationError(f"spread must be >= 1, got {spread}")
    if num_machines < 2:
        raise ConfigurationError("need at least 2 machines")
    exponents = [i / (num_machines - 1) - 0.5 for i in range(num_machines)]
    raw = [spread**e for e in exponents]
    scale = num_machines / sum(raw)
    machines = []
    for i in range(num_machines):
        factor = raw[i] * scale
        machines.append(
            Machine(
                name=f"m{i}",
                cpu=CPUSpec(
                    model=f"study-cpu-{i}",
                    cores=6,
                    clock_ghz=round(3.0 * factor, 4),
                    cache_mb=12.0,
                    ram_gb=32.0,
                ),
                gpus=(
                    GPUSpec(
                        model=f"study-gpu-{i}",
                        cores=2048,
                        sms=13,
                        clock_ghz=round(0.9 * factor, 4),
                        mem_bandwidth_gbs=200.0,
                        mem_gb=4.0,
                        arch=GPUArch.KEPLER,
                    ),
                ),
            )
        )
    return Cluster(machines=tuple(machines))


def run_heterogeneity(
    *,
    spreads: Sequence[float] = (1.0, 2.0, 4.0, 8.0, 16.0),
    n: int = 32768,
    seed: int = 1,
) -> list[HeterogeneityPoint]:
    """Measure speedup vs Greedy as a function of GPU-speed spread."""
    points = []
    for spread in spreads:
        cluster = build_spread_cluster(spread)
        app = MatMul(n=n)
        times = {}
        for policy in (Greedy(), HDSS(), PLBHeC()):
            runtime = Runtime(cluster, app.codelet(), seed=seed)
            result = runtime.run(
                policy, app.total_units, app.default_initial_block_size()
            )
            times[policy.name] = result.makespan
        points.append(
            HeterogeneityPoint(
                spread=float(spread),
                greedy_s=times["greedy"],
                hdss_s=times["hdss"],
                plb_s=times["plb-hec"],
            )
        )
    return points


def render_heterogeneity(points: list[HeterogeneityPoint]) -> str:
    """ASCII table of the heterogeneity sweep."""
    return format_table(
        ["gpu_spread", "greedy_s", "hdss_s", "plb_hec_s",
         "plb_speedup", "hdss_speedup"],
        [
            [p.spread, p.greedy_s, p.hdss_s, p.plb_s,
             p.plb_speedup, p.hdss_speedup]
            for p in points
        ],
        title="H1: speedup vs machine heterogeneity (MM, 4 machines, "
        "constant aggregate capacity)",
    )
