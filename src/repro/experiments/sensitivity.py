"""Initial-block-size sensitivity study (DESIGN.md S2, beyond the paper).

The paper sets ``initialBlockSize`` "empirically, so that the initial
phase of the algorithm would take about 10% of the application
execution time" — a tuning burden this study quantifies: every policy
is run across a geometric sweep of initial block sizes and the spread
between its best and worst makespan is its *sensitivity*.  The paper's
implicit claim — that the adaptive algorithms tolerate a poorly chosen
s0 better than Greedy tolerates a poorly chosen piece size — is
checkable here.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.apps import MatMul
from repro.balancers import HDSS, Greedy
from repro.cluster import paper_cluster
from repro.core import PLBHeC
from repro.runtime import Runtime
from repro.util.tables import format_table

__all__ = ["SensitivityRow", "run_sensitivity", "render_sensitivity"]


@dataclass(frozen=True)
class SensitivityRow:
    """Makespans of one policy across the s0 sweep."""

    policy: str
    makespans: tuple[float, ...]

    @property
    def best(self) -> float:
        return min(self.makespans)

    @property
    def worst(self) -> float:
        return max(self.makespans)

    @property
    def sensitivity(self) -> float:
        """worst / best — 1.0 means the knob does not matter."""
        return self.worst / self.best


def run_sensitivity(
    *,
    n: int = 16384,
    s0_factors: Sequence[float] = (0.25, 0.5, 1.0, 2.0, 4.0),
    num_machines: int = 4,
    seed: int = 6,
) -> tuple[tuple[int, ...], list[SensitivityRow]]:
    """Sweep the initial block size around the application default.

    Greedy's piece size is swept proportionally (its knob is the piece
    count, scanned over the matching range).
    """
    app = MatMul(n=n)
    cluster = paper_cluster(num_machines)
    s0_default = app.default_initial_block_size()
    sizes = tuple(max(int(round(s0_default * f)), 1) for f in s0_factors)

    rows = []
    for name, factory in (
        ("greedy", lambda s0: Greedy(piece_size=max(s0 * 16, 1))),
        ("hdss", lambda s0: HDSS()),
        ("plb-hec", lambda s0: PLBHeC()),
    ):
        spans = []
        for s0 in sizes:
            runtime = Runtime(cluster, app.codelet(), seed=seed)
            result = runtime.run(factory(s0), app.total_units, s0)
            spans.append(result.makespan)
        rows.append(SensitivityRow(policy=name, makespans=tuple(spans)))
    return sizes, rows


def render_sensitivity(
    sizes: Sequence[int], rows: Sequence[SensitivityRow]
) -> str:
    """ASCII table of the sweep plus per-policy sensitivity factors."""
    table_rows = []
    for row in rows:
        table_rows.append(
            [row.policy, *row.makespans, row.sensitivity]
        )
    return format_table(
        ["policy", *[f"s0={s}" for s in sizes], "worst/best"],
        table_rows,
        title="S2: initial-block-size sensitivity (makespans, MM, 4 machines)",
    )
