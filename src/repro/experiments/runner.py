"""Shared experiment machinery.

Experiments describe *what* to run (application, sizes, machine counts,
policies, replications); this module runs the grid with deterministic
per-replication seeds and aggregates makespans, idleness, distributions
and scheduler overheads.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping, Sequence

from repro.apps import Application, BlackScholes, GRNInference, MatMul, Stencil2D
from repro.balancers import (
    HDSS,
    Acosta,
    Greedy,
    GuidedSelfScheduling,
    Oracle,
    StaticProfile,
)
from repro.cluster import GroundTruth, paper_cluster
from repro.cluster.topology import Cluster
from repro.core import PLBHeC
from repro.errors import ConfigurationError
from repro.runtime import RunResult, SchedulingPolicy
from repro.util.stats import mean_std

__all__ = [
    "PolicyOutcome",
    "SweepPoint",
    "make_application",
    "make_policy",
    "run_policies",
    "PAPER_POLICIES",
]

#: Policy names in the paper's presentation order.
PAPER_POLICIES: tuple[str, ...] = ("greedy", "acosta", "hdss", "plb-hec")

#: GRN simulation-scale parameters (paper-scale pools are sim-only).
GRN_SIM_KWARGS = {"candidate_pool": 4096, "samples": 24}


def make_application(name: str, size: int) -> Application:
    """Instantiate one of the paper's applications at a given size."""
    if name == "matmul":
        return MatMul(n=size)
    if name == "grn":
        return GRNInference(num_genes=size, **GRN_SIM_KWARGS)
    if name == "blackscholes":
        return BlackScholes(num_options=size)
    if name == "stencil":
        return Stencil2D(num_tiles=size, sweeps=2000)
    raise ConfigurationError(f"unknown application {name!r}")


def make_policy(
    name: str,
    *,
    ground_truth: GroundTruth | None = None,
    fixed_overhead_s: float | None = None,
) -> SchedulingPolicy:
    """Instantiate a policy by its report name.

    ``fixed_overhead_s`` pins PLB-HeC's scheduler-overhead charge to a
    constant instead of the measured host solve time, making runs
    bit-reproducible (the deterministic mode the parallel sweep engine's
    equality guarantees rely on).  Policies that charge no overhead
    ignore it.
    """
    if name == "greedy":
        return Greedy()
    if name == "acosta":
        return Acosta()
    if name == "hdss":
        return HDSS()
    if name == "hdss-async":
        return HDSS(per_device_growth=True)
    if name == "plb-hec":
        return PLBHeC(fixed_overhead_s=fixed_overhead_s)
    if name == "plb-hec-free":
        return PLBHeC(overhead_scale=0.0)
    if name == "gss":
        return GuidedSelfScheduling()
    if name == "static":
        if ground_truth is None:
            raise ConfigurationError(
                "the static policy needs the ground truth to derive its "
                "previous-execution profiles"
            )
        return StaticProfile(_offline_models(ground_truth))
    if name == "oracle":
        if ground_truth is None:
            raise ConfigurationError("the oracle policy needs the ground truth")
        return Oracle(ground_truth)
    raise ConfigurationError(f"unknown policy {name!r}")


def _offline_models(ground_truth: GroundTruth, sizes=(8, 16, 64, 256, 1024)):
    """Previous-execution device models for the static baseline.

    The static policy's contract is profiles measured on an *earlier*
    run of the same kernel; a noiseless probe ladder over the ground
    truth is exactly what such a run would have produced.
    """
    from repro.modeling.perf_profile import PerfProfile

    models = {}
    for device in ground_truth.cluster.devices():
        did = device.device_id
        profile = PerfProfile(did)
        for u in sizes:
            profile.add(
                u,
                ground_truth.exec_time(did, u),
                ground_truth.transfer_time(did, u),
            )
        models[did] = profile.fit()
    return models


@dataclass
class PolicyOutcome:
    """Aggregated results of one policy at one sweep point."""

    policy: str
    makespans: list[float] = field(default_factory=list)
    idle_fractions: list[dict[str, float]] = field(default_factory=list)
    distributions: list[dict[str, float]] = field(default_factory=list)
    overheads: list[float] = field(default_factory=list)
    rebalances: list[int] = field(default_factory=list)

    @property
    def mean_makespan(self) -> float:
        return mean_std(self.makespans)[0]

    @property
    def std_makespan(self) -> float:
        return mean_std(self.makespans)[1]

    def mean_idle(self) -> dict[str, float]:
        """Per-device idle fraction averaged over replications."""
        if not self.idle_fractions:
            return {}
        keys = self.idle_fractions[0].keys()
        return {
            k: sum(d[k] for d in self.idle_fractions) / len(self.idle_fractions)
            for k in keys
        }

    def mean_distribution(self) -> dict[str, float]:
        """Per-device work share averaged over replications."""
        if not self.distributions:
            return {}
        keys = self.distributions[0].keys()
        return {
            k: sum(d[k] for d in self.distributions) / len(self.distributions)
            for k in keys
        }


@dataclass(frozen=True)
class SweepPoint:
    """One (application, size, machines) grid point with all policies."""

    app_name: str
    size: int
    num_machines: int
    outcomes: Mapping[str, PolicyOutcome]

    def speedup_vs(self, baseline: str, policy: str) -> float:
        """Mean-makespan ratio baseline/policy (the paper's speedup)."""
        base = self.outcomes[baseline].mean_makespan
        mine = self.outcomes[policy].mean_makespan
        return base / mine if mine > 0 else float("nan")


def _extract_distribution(policy: SchedulingPolicy, result: RunResult) -> dict[str, float]:
    """The Fig. 6 quantity for each algorithm.

    PLB-HeC: the block distribution at the end of the modeling phase;
    HDSS: normalised phase-1 weights; others: their realised share of
    the execution-phase data.
    """
    if isinstance(policy, PLBHeC) and policy.first_partition is not None:
        return policy.first_partition.fractions
    if isinstance(policy, HDSS) and policy.weights:
        total = sum(policy.weights.values())
        return {d: w / total for d, w in policy.weights.items()}
    return result.trace.distribution(phase="exec")


def run_policies(
    app_name: str,
    size: int,
    num_machines: int,
    *,
    policies: Sequence[str] = PAPER_POLICIES,
    replications: int = 3,
    seed: int = 0,
    noise_sigma: float = 0.005,
    cluster_factory: Callable[[int], Cluster] = paper_cluster,
    fixed_overhead_s: float | None = None,
    jobs: int | None = None,
    profile: bool | None = None,
    stats: "object | None" = None,
) -> SweepPoint:
    """Run every policy at one grid point and aggregate replications.

    Delegates to the parallel sweep engine
    (:mod:`repro.experiments.parallel`): the (policy, replication)
    product fans out over ``jobs`` worker processes (``REPRO_JOBS``
    environment variable by default) with optional on-disk result
    caching (``REPRO_CACHE``), while keeping the historical
    per-replication seeding ``seed * 1000 + rep`` so aggregates match
    the old serial loop bit for bit.  ``profile``/``stats`` pass
    through to :func:`repro.experiments.parallel.run_sweep` — a
    profiled comparison collects its merged CPU profile in
    ``stats.profile``.
    """
    # Imported lazily: parallel.py imports this module's factories.
    from repro.experiments.parallel import PointSpec, run_point

    return run_point(
        PointSpec(
            app_name=app_name,
            size=size,
            num_machines=num_machines,
            policies=tuple(policies),
            replications=replications,
            seed=seed,
            noise_sigma=noise_sigma,
            fixed_overhead_s=fixed_overhead_s,
            cluster_factory=cluster_factory,
        ),
        jobs=jobs,
        profile=profile,
        stats=stats,
    )
