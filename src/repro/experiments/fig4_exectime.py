"""Fig. 4 — execution time and speedup for MatMul and GRN.

The paper sweeps input sizes (matrices 4096..65536, genes 60k..140k)
and machine counts (1..4), reporting execution times of the four
algorithms and speedups relative to Greedy.  ``run_fig4`` reproduces
the grid; sizes are parameterisable so tests and quick benchmarks can
run reduced versions.
"""

from __future__ import annotations

from typing import Sequence

from repro.experiments.parallel import PointSpec, run_sweep
from repro.experiments.runner import PAPER_POLICIES, SweepPoint
from repro.util.tables import format_table

__all__ = [
    "MM_SIZES",
    "GRN_SIZES",
    "run_fig4",
    "render_sweep",
]

#: The paper's matrix orders (Fig. 4 top).
MM_SIZES: tuple[int, ...] = (4096, 8192, 16384, 32768, 65536)
#: The paper's gene counts (Fig. 4 bottom).
GRN_SIZES: tuple[int, ...] = (60_000, 80_000, 100_000, 120_000, 140_000)


def run_fig4(
    app_name: str,
    *,
    sizes: Sequence[int] | None = None,
    machine_counts: Sequence[int] = (1, 2, 3, 4),
    policies: Sequence[str] = PAPER_POLICIES,
    replications: int = 3,
    seed: int = 0,
    jobs: int | None = None,
) -> list[SweepPoint]:
    """Run the Fig. 4 grid for ``"matmul"`` or ``"grn"``.

    The whole grid is submitted to the parallel sweep engine as one
    batch, so every (point, policy, replication) run fans out together.
    """
    if sizes is None:
        sizes = MM_SIZES if app_name == "matmul" else GRN_SIZES
    specs = [
        PointSpec(
            app_name=app_name,
            size=size,
            num_machines=machines,
            policies=tuple(policies),
            replications=replications,
            seed=seed,
        )
        for machines in machine_counts
        for size in sizes
    ]
    return run_sweep(specs, jobs=jobs)


def render_sweep(points: list[SweepPoint], *, baseline: str = "greedy") -> str:
    """ASCII table: one row per (machines, size, policy)."""
    rows = []
    for pt in points:
        for name, outcome in pt.outcomes.items():
            rows.append(
                [
                    pt.app_name,
                    pt.num_machines,
                    pt.size,
                    name,
                    outcome.mean_makespan,
                    outcome.std_makespan,
                    pt.speedup_vs(baseline, name),
                ]
            )
    return format_table(
        ["app", "machines", "size", "policy", "time_s", "std_s", "speedup"],
        rows,
        title=f"Execution time and speedup vs {baseline}",
    )
