"""Wall-clock benchmark of the sweep engine itself.

Times the Fig. 4 MatMul fast grid four ways — serial, parallel, cold
cache, warm cache — plus one pinned service-mode episode (the
``serve`` lap, with its jobs/sec in the meta), and writes the numbers
to ``BENCH_wallclock.json``
(via :func:`repro.util.timing.perf_report`), so the repo's performance
trajectory is recorded in-tree instead of anecdotally.  Runs use a
pinned scheduler-overhead charge (``fixed_overhead_s``), which makes
the serial and parallel aggregates comparable bit for bit; the
benchmark asserts that equality and reports it in the output.

Entry points: ``python -m repro bench`` and
``benchmarks/test_bench_wallclock.py``.
"""

from __future__ import annotations

import os
import tempfile
from typing import Any, Sequence

from repro.experiments.parallel import (
    PointSpec,
    ResultCache,
    SweepStats,
    resolve_jobs,
    run_sweep,
)
from repro.experiments.runner import PAPER_POLICIES, SweepPoint
from repro.obs.profiler import hot_functions, merge_profiles
from repro.util.timing import Stopwatch, perf_report

__all__ = [
    "BENCH_PATH",
    "parallel_speedup_meta",
    "points_equal",
    "run_wallclock_bench",
]

#: Default output file, at the repository root.
BENCH_PATH = "BENCH_wallclock.json"

#: The Fig. 4 MatMul fast grid (sizes x one machine count).
FAST_SIZES: tuple[int, ...] = (4096, 65536)
FAST_MACHINES: tuple[int, ...] = (4,)

#: Pinned per-solve overhead charge (about the measured median on a
#: modern host) so benchmark runs are bit-reproducible.
FIXED_OVERHEAD_S = 0.018


def points_equal(a: Sequence[SweepPoint], b: Sequence[SweepPoint]) -> bool:
    """Exact (bitwise) equality of two sweeps' aggregates."""
    if len(a) != len(b):
        return False
    for pa, pb in zip(a, b):
        if (pa.app_name, pa.size, pa.num_machines) != (
            pb.app_name,
            pb.size,
            pb.num_machines,
        ):
            return False
        if set(pa.outcomes) != set(pb.outcomes):
            return False
        for name, oa in pa.outcomes.items():
            ob = pb.outcomes[name]
            if (
                oa.makespans != ob.makespans
                or oa.idle_fractions != ob.idle_fractions
                or oa.distributions != ob.distributions
                or oa.overheads != ob.overheads
                or oa.rebalances != ob.rebalances
            ):
                return False
    return True


def parallel_speedup_meta(
    laps: dict[str, float],
    jobs: int,
    *,
    cpu_count: int | None = None,
) -> dict[str, Any]:
    """Speedup bookkeeping that stays honest on core-starved hosts.

    A "parallel" sweep on a 1-cpu machine (or with ``jobs=1``) runs the
    exact same serial path plus pool overhead, so ``serial/parallel``
    is pure noise there — historically it printed a misleading 0.9x.
    In that case ``parallel_speedup`` is ``None`` and
    ``parallel_speedup_reason`` says why; ``effective_jobs`` records how
    much parallelism the measurement actually had either way.
    """
    if cpu_count is None:
        cpu_count = os.cpu_count() or 1
    effective = max(min(jobs, cpu_count), 1)
    meta: dict[str, Any] = {"effective_jobs": effective}
    if effective <= 1:
        meta["parallel_speedup"] = None
        meta["parallel_speedup_reason"] = (
            f"no parallelism available (jobs={jobs}, cpu_count={cpu_count}): "
            "serial and parallel laps measure the same execution path"
        )
    elif laps.get("parallel", 0.0) > 0.0:
        meta["parallel_speedup"] = laps["serial"] / laps["parallel"]
    else:
        meta["parallel_speedup"] = None
        meta["parallel_speedup_reason"] = "parallel lap recorded no wall time"
    return meta


def _serve_config():
    """The pinned service episode the ``serve`` lap times.

    Mildly overloaded (rate 6/s on two machines) so the admission and
    shedding paths are exercised, seeded so every benchmark run plays
    the identical episode.
    """
    from repro.service import ArrivalSpec, ServiceConfig

    return ServiceConfig(
        arrivals=ArrivalSpec(rate=6.0, duration=10.0),
        machines=2,
        queue_limit=8,
        shed_policy="drop-oldest",
        deadline_factor=30.0,
        seed=0,
    )


def _grid(replications: int) -> list[PointSpec]:
    return [
        PointSpec(
            app_name="matmul",
            size=size,
            num_machines=machines,
            policies=PAPER_POLICIES,
            replications=replications,
            seed=0,
            fixed_overhead_s=FIXED_OVERHEAD_S,
        )
        for machines in FAST_MACHINES
        for size in FAST_SIZES
    ]


def run_wallclock_bench(
    *,
    replications: int = 2,
    jobs: int | None = None,
    cache_dir: str | os.PathLike[str] | None = None,
    output: str | os.PathLike[str] | None = BENCH_PATH,
    profile: bool = False,
    profile_top: int = 10,
) -> dict[str, Any]:
    """Benchmark the sweep engine and return the perf report dict.

    Parameters
    ----------
    replications:
        Replications per grid point (the acceptance setting is 2).
    jobs:
        Parallel worker count for the non-serial phases; defaults to
        ``REPRO_JOBS`` / cpu count.
    cache_dir:
        Directory for the cold/warm cache phases; a throwaway temp
        directory when omitted, so benchmarking never pollutes (or is
        flattered by) a pre-existing ``.repro_cache``.
    output:
        Where to write the JSON report; ``None`` skips writing.
    profile:
        Capture phase-attributed CPU profiles of the serial and
        parallel laps (the cache laps stay unprofiled so the warm/cold
        cache comparison keeps measuring cache behaviour, not tracer
        overhead).  The report meta gains ``profiled: true`` and the
        merged ``hot_functions`` top-``profile_top`` table; history
        entries built from it are excluded from the regression gate.
    """
    jobs = resolve_jobs(jobs)
    grid = _grid(replications)
    sw = Stopwatch()

    ser_stats = SweepStats()
    with sw.lap("serial"):
        serial_points = run_sweep(
            grid, jobs=1, cache=None, stats=ser_stats, profile=profile
        )
    par_stats = SweepStats()
    with sw.lap("parallel"):
        parallel_points = run_sweep(
            grid, jobs=jobs, cache=None, stats=par_stats, profile=profile
        )
    identical = points_equal(serial_points, parallel_points)

    own_tmp = None
    if cache_dir is None:
        own_tmp = tempfile.TemporaryDirectory(prefix="repro-bench-cache-")
        cache_dir = own_tmp.name
    try:
        cache = ResultCache(cache_dir)
        # The cache laps are explicitly unprofiled even under --profile
        # (or REPRO_PROFILE): profiling disables the result cache, which
        # would turn the warm lap into a third execution lap.
        cold_stats = SweepStats()
        with sw.lap("cache_cold"):
            cold_points = run_sweep(
                grid, jobs=jobs, cache=cache, stats=cold_stats, profile=False
            )
        warm_stats = SweepStats()
        with sw.lap("cache_warm"):
            warm_points = run_sweep(
                grid, jobs=jobs, cache=cache, stats=warm_stats, profile=False
            )
    finally:
        if own_tmp is not None:
            own_tmp.cleanup()

    # one fixed seeded service episode: the serving loop's wall cost
    # (and its jobs/sec throughput) ride the same report and history
    # series as the sweep laps, so they are gate-eligible like any lap
    from repro.service import ClusterService

    with sw.lap("serve"):
        serve_card = ClusterService(_serve_config()).run()
    serve_wall = sw.laps["serve"]
    serve_jobs = serve_card["jobs"]["completed"]

    laps = sw.laps
    warm_fraction = (
        laps["cache_warm"] / laps["cache_cold"] if laps["cache_cold"] > 0 else 0.0
    )
    meta = {
        "grid": {
            "app": "matmul",
            "sizes": list(FAST_SIZES),
            "machine_counts": list(FAST_MACHINES),
            "policies": list(PAPER_POLICIES),
            "replications": replications,
            "fixed_overhead_s": FIXED_OVERHEAD_S,
        },
        "jobs": jobs,
        "runs_per_sweep": par_stats.total_runs,
        "parallel_matches_serial": identical,
        "warm_matches_cold": points_equal(cold_points, warm_points),
        "warm_cache_hits": warm_stats.cache_hits,
        "warm_over_cold_fraction": warm_fraction,
        "parallel_fell_back_serial": par_stats.fell_back_serial,
        "serve_jobs_completed": serve_jobs,
        "serve_jobs_per_wall_s": (
            serve_jobs / serve_wall if serve_wall > 0 else None
        ),
        "serve_invariants_ok": not serve_card["invariant_errors"],
        **parallel_speedup_meta(laps, jobs),
    }
    if profile:
        merged: dict[str, Any] = {}
        merge_profiles(merged, ser_stats.profile)
        merge_profiles(merged, par_stats.profile)
        meta["profiled"] = True
        meta["hot_functions"] = hot_functions(merged, top=profile_top)
    return perf_report(laps, path=output, meta=meta)
