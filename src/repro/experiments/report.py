"""One-shot reproduction report: run everything, check every claim.

:func:`generate_report` reruns the full experiment grid and emits a
markdown report with the measured tables *and* a programmatic checklist
of the paper's qualitative claims (the "shape checks").  The CLI exposes
it as ``python -m repro report``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.experiments.fig4_exectime import run_fig4
from repro.experiments.fig5_blackscholes import run_fig5
from repro.experiments.fig6_distribution import gpu_share, run_fig6
from repro.experiments.fig7_idleness import run_fig7
from repro.experiments.runner import SweepPoint
from repro.experiments.solver_overhead import run_solver_overhead
from repro.experiments.table1 import render_table1
from repro.util.tables import format_table

__all__ = ["ShapeCheck", "generate_report"]


@dataclass(frozen=True)
class ShapeCheck:
    """One of the paper's qualitative claims, evaluated on measured data."""

    claim: str
    passed: bool
    detail: str


def _find(points: Sequence[SweepPoint], size: int, machines: int) -> SweepPoint:
    for p in points:
        if p.size == size and p.num_machines == machines:
            return p
    raise KeyError((size, machines))


def _speedup_rows(points: Sequence[SweepPoint]) -> list[list]:
    rows = []
    for p in points:
        for name, outcome in p.outcomes.items():
            rows.append(
                [
                    p.num_machines,
                    p.size,
                    name,
                    outcome.mean_makespan,
                    p.speedup_vs("greedy", name),
                ]
            )
    return rows


def generate_report(*, replications: int = 3, fast: bool = False) -> str:
    """Run the reproduction grid and return the markdown report."""
    mm_sizes = (4096, 65536) if fast else (4096, 16384, 65536)
    machines = (4,) if fast else (1, 2, 4)
    bs_sizes = (10_000, 500_000)
    grn_sizes = (60_000, 140_000)

    mm = run_fig4(
        "matmul", sizes=mm_sizes, machine_counts=machines,
        replications=replications,
    )
    grn = run_fig4(
        "grn", sizes=grn_sizes, machine_counts=(4,), replications=replications
    )
    bs = run_fig5(
        sizes=bs_sizes, machine_counts=(4,), replications=replications
    )
    fig6 = run_fig6(
        cases=(("matmul", (mm_sizes[-1],)),), replications=replications
    )
    # idleness comparisons are only meaningful above the tiny-input
    # regime (where every algorithm is overhead-dominated)
    fig7_sizes = mm_sizes[-1:] if fast else mm_sizes[-2:]
    fig7 = run_fig7(
        cases=(("matmul", fig7_sizes),), replications=replications
    )
    overhead = run_solver_overhead(repetitions=10)

    checks: list[ShapeCheck] = []

    def check(claim: str, passed: bool, detail: str) -> None:
        checks.append(ShapeCheck(claim=claim, passed=bool(passed), detail=detail))

    big = _find(mm, mm_sizes[-1], 4)
    small = _find(mm, mm_sizes[0], 4)
    s_plb = big.speedup_vs("greedy", "plb-hec")
    s_hdss = big.speedup_vs("greedy", "hdss")
    s_acosta = big.speedup_vs("greedy", "acosta")
    check(
        "MM largest/4 machines: PLB-HeC > HDSS > Acosta (paper 2.2/1.2/1.04)",
        s_plb > s_hdss > s_acosta,
        f"measured {s_plb:.2f}/{s_hdss:.2f}/{s_acosta:.2f}",
    )
    check(
        "MM smallest input: Greedy wins (paper Fig. 4)",
        small.speedup_vs("greedy", "plb-hec") < 1.0,
        f"PLB-HeC speedup {small.speedup_vs('greedy', 'plb-hec'):.2f}",
    )
    if len(machines) > 1:
        s_few = _find(mm, mm_sizes[-1], machines[0]).speedup_vs(
            "greedy", "plb-hec"
        )
        check(
            "MM speedup grows with machine count (paper Sec. V.a)",
            s_plb > s_few,
            f"{machines[0]} machines {s_few:.2f} -> 4 machines {s_plb:.2f}",
        )
    grn_big = _find(grn, grn_sizes[-1], 4)
    check(
        "GRN largest: PLB-HeC wins (paper Fig. 4)",
        grn_big.speedup_vs("greedy", "plb-hec") > 1.0,
        f"speedup {grn_big.speedup_vs('greedy', 'plb-hec'):.2f}",
    )
    bs_big = _find(bs, bs_sizes[-1], 4)
    bs_small = _find(bs, bs_sizes[0], 4)
    check(
        "Black-Scholes crossover: Greedy wins small, PLB-HeC wins large "
        "(paper Fig. 5)",
        bs_small.speedup_vs("greedy", "plb-hec") < 1.0
        and bs_big.speedup_vs("greedy", "plb-hec") > 1.0,
        f"10k {bs_small.speedup_vs('greedy', 'plb-hec'):.2f}, "
        f"500k {bs_big.speedup_vs('greedy', 'plb-hec'):.2f}",
    )
    for case in fig6:
        for policy, dist in case.distributions.items():
            check(
                f"Fig.6 {policy}: GPUs receive the dominant share",
                gpu_share(dist) > 0.5,
                f"GPU total {gpu_share(dist):.2f}",
            )
    for case in fig7:
        check(
            f"Fig.7 MM {case.size}: PLB-HeC idles less than HDSS",
            case.mean_idle("plb-hec") < case.mean_idle("hdss"),
            f"PLB {case.mean_idle('plb-hec'):.2f} vs "
            f"HDSS {case.mean_idle('hdss'):.2f}",
        )
    check(
        "Solve overhead milliseconds-scale (paper 170 ms)",
        overhead.mean_ms < 1000.0,
        f"{overhead.mean_ms:.1f} +- {overhead.std_ms:.1f} ms "
        f"({overhead.method})",
    )

    # ------------------------------------------------------------------
    # assemble markdown
    # ------------------------------------------------------------------
    parts = ["# PLB-HeC reproduction report", ""]
    passed = sum(1 for c in checks if c.passed)
    parts.append(f"**Shape checks: {passed}/{len(checks)} passed.**")
    parts.append("")
    parts.append("| status | claim | measured |")
    parts.append("|---|---|---|")
    for c in checks:
        icon = "PASS" if c.passed else "FAIL"
        parts.append(f"| {icon} | {c.claim} | {c.detail} |")
    parts.append("")
    parts.append("## Table I\n")
    parts.append("```\n" + render_table1() + "\n```")
    parts.append("## Execution times (MM)\n")
    parts.append(
        "```\n"
        + format_table(
            ["machines", "size", "policy", "time_s", "speedup"],
            _speedup_rows(mm),
        )
        + "\n```"
    )
    parts.append("## Execution times (GRN, Black-Scholes; 4 machines)\n")
    parts.append(
        "```\n"
        + format_table(
            ["machines", "size", "policy", "time_s", "speedup"],
            _speedup_rows(list(grn) + list(bs)),
        )
        + "\n```"
    )
    parts.append(
        f"\nSolver overhead: {overhead.mean_ms:.1f} ± {overhead.std_ms:.1f} ms "
        f"per solve ({overhead.samples} solves, method={overhead.method}).\n"
    )
    return "\n".join(parts)
