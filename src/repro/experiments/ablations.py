"""Beyond-paper ablation studies (DESIGN.md experiments A1, A2).

* :func:`run_selection_ablation` — what the interior-point selection is
  worth: PLB-HeC with its full solve chain vs the waterfilling-only and
  proportional-only selection variants, plus the omniscient Oracle
  bound.
* :func:`run_rebalance_ablation` — the Sec. VI "cloud" scenario: a
  device slows down mid-run; compare PLB-HeC with rebalancing enabled
  vs disabled (threshold effectively infinite).
* :func:`run_probe_ablation` — HDSS's uniform synchronous probing vs
  the per-device asynchronous variant, isolating how much of PLB-HeC's
  phase-1 advantage comes from speed-scaled probing.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.apps import MatMul
from repro.balancers import HDSS, Oracle
from repro.cluster import GroundTruth, paper_cluster
from repro.core import PLBHeC
from repro.errors import ConfigurationError
from repro.modeling.perf_profile import DeviceModel
from repro.runtime import Runtime
from repro.runtime.sim_executor import Perturbation
from repro.solver.ipm import IPMOptions
from repro.solver.partition import PartitionResult, solve_block_partition
from repro.util.tables import format_table

__all__ = [
    "AblationRow",
    "run_selection_ablation",
    "run_rebalance_ablation",
    "run_probe_ablation",
    "render_ablation",
]


@dataclass(frozen=True)
class AblationRow:
    """One variant's outcome."""

    variant: str
    makespan: float
    mean_idle: float
    rebalances: int


class _ForcedSelectionPLB(PLBHeC):
    """PLB-HeC whose selection is forced onto one solve path."""

    def __init__(self, forced_method: str, **kwargs) -> None:
        super().__init__(**kwargs)
        if forced_method not in ("waterfill", "proportional"):
            raise ConfigurationError(f"unknown forced method {forced_method!r}")
        self.forced_method = forced_method

    def _solve(
        self,
        remaining: int,
        *,
        trigger: str = "selection",
        detail: dict | None = None,
    ) -> None:  # noqa: D102 - see base
        quantum = min(self._quantum, float(remaining))
        import time as _time

        from repro.solver.reduction import waterfill_partition
        import numpy as np

        t0 = _time.perf_counter()
        models = self._models
        ids = tuple(models.keys())
        model_list = [models[d] for d in ids]
        if self.forced_method == "waterfill":
            units, predicted = waterfill_partition(model_list, quantum)
        else:
            probe = max(quantum / len(model_list), 1e-9)
            rates = np.array([max(m.rate(probe), 1e-12) for m in model_list])
            units = quantum * rates / rates.sum()
            predicted = float(max(m.E(u) for m, u in zip(model_list, units)))
        result = PartitionResult(
            device_ids=ids,
            units=np.asarray(units, dtype=float),
            predicted_time=predicted,
            method=self.forced_method,
            converged=True,
            iterations=0,
            kkt_error=float("nan"),
            solve_time_s=_time.perf_counter() - t0,
        )
        self._charge(result.solve_time_s)
        self._partition = result
        self.selection_history.append(result)
        sizes = {d: int(round(u)) for d, u in result.units_by_device.items()}
        if all(v <= 0 for v in sizes.values()):
            best = max(result.units_by_device, key=result.units_by_device.get)
            sizes[best] = 1
        self._block_sizes = sizes
        self._open_partition_decision(
            trigger=trigger,
            sizes=sizes,
            predicted_time=result.predicted_time,
            solver={
                "method": result.method,
                "converged": True,
                "iterations": 0,
                "kkt_error": result.kkt_error,
                "solve_time_s": float(
                    self.fixed_overhead_s
                    if self.fixed_overhead_s is not None
                    else result.solve_time_s
                ),
            },
            detail=detail,
        )
        self._monitor.reset()


def _run(policy, app, cluster, *, seed=3, perturbations=()) -> AblationRow:
    runtime = Runtime(
        cluster, app.codelet(), seed=seed, perturbations=tuple(perturbations)
    )
    result = runtime.run(policy, app.total_units, app.default_initial_block_size())
    idle = result.idle_fractions
    return AblationRow(
        variant=getattr(policy, "variant_name", policy.name),
        makespan=result.makespan,
        mean_idle=sum(idle.values()) / len(idle),
        rebalances=result.num_rebalances,
    )


def run_selection_ablation(
    *, n: int = 65536, num_machines: int = 4, seed: int = 3
) -> list[AblationRow]:
    """IPM-chain vs waterfill-only vs proportional-only vs Oracle."""
    app = MatMul(n=n)
    cluster = paper_cluster(num_machines)
    ground_truth = GroundTruth(cluster, app.kernel_characteristics())
    rows = []
    for variant, policy in [
        ("plb-hec (ipm chain)", PLBHeC()),
        ("plb-hec (waterfill only)", _ForcedSelectionPLB("waterfill")),
        ("plb-hec (proportional only)", _ForcedSelectionPLB("proportional")),
        ("oracle", Oracle(ground_truth)),
    ]:
        policy.variant_name = variant  # type: ignore[attr-defined]
        rows.append(_run(policy, app, cluster, seed=seed))
    return rows


def run_rebalance_ablation(
    *,
    n: int = 32768,
    num_machines: int = 4,
    slow_device: str = "D.gpu0",
    slow_factor: float = 3.0,
    at_fraction_of_run: float = 0.4,
    seed: int = 3,
) -> list[AblationRow]:
    """Mid-run slowdown with and without threshold rebalancing."""
    app = MatMul(n=n)
    cluster = paper_cluster(num_machines)
    # estimate when to inject: fraction of the undisturbed PLB makespan
    base = _run(PLBHeC(), app, cluster, seed=seed)
    t_inject = base.makespan * at_fraction_of_run
    perturbations = (
        Perturbation(device_id=slow_device, start_time=t_inject, factor=slow_factor),
    )
    rows = [
        AblationRow("undisturbed", base.makespan, base.mean_idle, base.rebalances)
    ]
    # Rebalancing reacts at task-completion granularity, so its value
    # depends on the execution-step size: with the default coarse steps
    # detection lags a full (degraded) block; finer steps detect and
    # correct sooner at slightly higher dispatch overhead.
    for label, policy in [
        ("perturbed, rebalancing on", PLBHeC()),
        ("perturbed, rebalancing off", PLBHeC(rebalance_threshold=1e9)),
        ("perturbed, rebalancing on, fine steps", PLBHeC(num_steps=12)),
        (
            "perturbed, rebalancing off, fine steps",
            PLBHeC(rebalance_threshold=1e9, num_steps=12),
        ),
    ]:
        policy.variant_name = label  # type: ignore[attr-defined]
        rows.append(
            _run(policy, app, cluster, seed=seed, perturbations=perturbations)
        )
    return rows


def run_probe_ablation(
    *, n: int = 65536, num_machines: int = 4, seed: int = 3
) -> list[AblationRow]:
    """HDSS uniform-synchronous vs per-device-asynchronous probing."""
    app = MatMul(n=n)
    cluster = paper_cluster(num_machines)
    rows = []
    for variant, policy in [
        ("hdss (uniform probing, paper)", HDSS()),
        ("hdss (per-device probing)", HDSS(per_device_growth=True)),
        ("plb-hec (speed-scaled probing)", PLBHeC()),
    ]:
        policy.variant_name = variant  # type: ignore[attr-defined]
        rows.append(_run(policy, app, cluster, seed=seed))
    return rows


def render_ablation(rows: list[AblationRow], *, title: str) -> str:
    """ASCII rendering of an ablation result set."""
    return format_table(
        ["variant", "makespan_s", "mean_idle", "rebalances"],
        [[r.variant, r.makespan, r.mean_idle, r.rebalances] for r in rows],
        title=title,
    )
