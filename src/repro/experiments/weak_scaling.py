"""Weak-scaling study (beyond the paper's strong-scaling grid).

The paper's Fig. 4 fixes the problem and grows the cluster (strong
scaling).  This study fixes the *work per unit of cluster capacity* and
grows the cluster, measuring parallel efficiency — the makespan at k
machines over the 1-machine makespan (ideal weak scaling keeps it at
1.0; scheduler overheads and load imbalance push it up).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.apps import MatMul
from repro.balancers import Greedy
from repro.cluster import paper_cluster
from repro.core import PLBHeC
from repro.runtime import Runtime
from repro.util.tables import format_table

__all__ = ["WeakScalingPoint", "run_weak_scaling", "render_weak_scaling"]


@dataclass(frozen=True)
class WeakScalingPoint:
    """Makespans at one machine count under capacity-matched work."""

    machines: int
    capacity_gflops: float
    matrix_order: int
    greedy_s: float
    plb_s: float


def run_weak_scaling(
    *,
    machine_counts: Sequence[int] = (1, 2, 3, 4),
    base_order: int = 16384,
    seed: int = 12,
) -> list[WeakScalingPoint]:
    """Grow the cluster and the problem together.

    MM work scales as n³; each scenario's matrix order is chosen so
    total FLOPs grow proportionally to the scenario's aggregate
    sustained capacity: ``n_k = n_1 * (C_k / C_1)^(1/3)``.
    """
    base_capacity = paper_cluster(1).total_peak_gflops
    points = []
    for machines in machine_counts:
        cluster = paper_cluster(machines)
        ratio = cluster.total_peak_gflops / base_capacity
        order = int(round(base_order * ratio ** (1.0 / 3.0) / 64) * 64)
        app = MatMul(n=order)
        times = {}
        for policy in (Greedy(), PLBHeC()):
            runtime = Runtime(cluster, app.codelet(), seed=seed)
            result = runtime.run(
                policy, app.total_units, app.default_initial_block_size()
            )
            times[policy.name] = result.makespan
        points.append(
            WeakScalingPoint(
                machines=machines,
                capacity_gflops=cluster.total_peak_gflops,
                matrix_order=order,
                greedy_s=times["greedy"],
                plb_s=times["plb-hec"],
            )
        )
    return points


def render_weak_scaling(points: list[WeakScalingPoint]) -> str:
    """ASCII table with normalised weak-scaling efficiencies."""
    base_plb = points[0].plb_s
    base_greedy = points[0].greedy_s
    rows = [
        [
            p.machines,
            p.matrix_order,
            p.capacity_gflops,
            p.greedy_s,
            base_greedy / p.greedy_s,
            p.plb_s,
            base_plb / p.plb_s,
        ]
        for p in points
    ]
    return format_table(
        ["machines", "order", "capacity_GF", "greedy_s", "greedy_eff",
         "plb_hec_s", "plb_eff"],
        rows,
        title="Weak scaling: work grows with aggregate capacity "
        "(efficiency 1.0 = ideal)",
    )
