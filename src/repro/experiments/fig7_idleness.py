"""Fig. 7 — processing-unit idle time relative to total execution time.

Same setup as Fig. 6 (four machines, one GPU each, two input sizes per
application), comparing PLB-HeC against HDSS.  The paper's findings,
which this experiment reproduces:

* HDSS idles more than PLB-HeC in every scenario (its phase-1 uniform
  probe sizes leave fast devices waiting);
* idleness shrinks with input size for both (the initial phase
  amortises);
* PLB-HeC's rebalancing never fires in steady conditions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.experiments.fig6_distribution import DEFAULT_CASES
from repro.experiments.parallel import PointSpec, run_sweep
from repro.util.tables import format_table

__all__ = ["Fig7Case", "run_fig7", "render_fig7"]

FIG7_POLICIES: tuple[str, ...] = ("hdss", "plb-hec")


@dataclass(frozen=True)
class Fig7Case:
    """Idle fractions of one (app, size) cell."""

    app_name: str
    size: int
    idle: Mapping[str, Mapping[str, float]]  # policy -> device -> idle frac
    rebalances: Mapping[str, float]  # policy -> mean rebalance count

    def mean_idle(self, policy: str) -> float:
        """Idle fraction averaged over the processing units."""
        values = self.idle[policy].values()
        return sum(values) / len(values) if values else 0.0


def run_fig7(
    *,
    cases: Sequence[tuple[str, Sequence[int]]] = DEFAULT_CASES,
    policies: Sequence[str] = FIG7_POLICIES,
    replications: int = 3,
    seed: int = 0,
    jobs: int | None = None,
) -> list[Fig7Case]:
    """Run the Fig. 7 grid (always 4 machines, one GPU each)."""
    specs = [
        PointSpec(
            app_name=app_name,
            size=size,
            num_machines=4,
            policies=tuple(policies),
            replications=replications,
            seed=seed,
        )
        for app_name, sizes in cases
        for size in sizes
    ]
    return [
        Fig7Case(
            app_name=point.app_name,
            size=point.size,
            idle={
                name: outcome.mean_idle()
                for name, outcome in point.outcomes.items()
            },
            rebalances={
                name: sum(outcome.rebalances) / len(outcome.rebalances)
                for name, outcome in point.outcomes.items()
            },
        )
        for point in run_sweep(specs, jobs=jobs)
    ]


def render_fig7(cases: list[Fig7Case]) -> str:
    """ASCII table: idle fraction per device per policy."""
    if not cases:
        return "(no cases)"
    devices = sorted(next(iter(cases[0].idle.values())).keys())
    rows = []
    for case in cases:
        for policy, idle in case.idle.items():
            rows.append(
                [case.app_name, case.size, policy]
                + [idle.get(d, 0.0) for d in devices]
                + [case.mean_idle(policy), case.rebalances[policy]]
            )
    return format_table(
        ["app", "size", "policy", *devices, "mean", "rebalances"],
        rows,
        title="Fig.7 idle fraction of total execution time",
    )
