"""Probe-size schedule of the performance-modeling phase (Sec. III.B).

The first probe block has the user-chosen ``initialBlockSize`` on every
device.  From the second round on, the multiplier doubles each round
(2, 4, 8, then 16, 32, ... if the R² loop demands more points) and each
device's size is scaled by its observed speed ratio ``t_f / t_k`` —
the fastest device's last finish time over this device's — so that all
probes of a round finish together.  This is the mechanism the paper
credits for PLB-HeC's low modeling-phase idleness: "a performance
preview of the processing units is already obtained using a small
block size".
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.errors import SchedulingError

__all__ = ["ProbePlan"]


class ProbePlan:
    """Computes per-device probe sizes round by round.

    Parameters
    ----------
    device_ids:
        Processing units being profiled.
    initial_block_size:
        The round-1 size for every device.
    max_multiplier:
        Cap on the round multiplier (growth stops doubling there; keeps
        late R²-loop rounds from swallowing the whole domain).
    """

    def __init__(
        self,
        device_ids: Sequence[str],
        initial_block_size: int,
        *,
        max_multiplier: int = 4096,
    ) -> None:
        if initial_block_size < 1:
            raise SchedulingError("initial_block_size must be >= 1")
        if max_multiplier < 1:
            raise SchedulingError("max_multiplier must be >= 1")
        self.device_ids = tuple(device_ids)
        if not self.device_ids:
            raise SchedulingError("probe plan needs at least one device")
        self.initial_block_size = int(initial_block_size)
        self.max_multiplier = int(max_multiplier)

    def multiplier(self, round_index: int) -> int:
        """The round's base multiplier.

        Rounds 1-4 follow the paper exactly (1, 2, 4, 8); if the R² /
        probe-depth loop demands more rounds, growth accelerates to 4x
        per round (32, 128, 512, ...) so the extra rounds reach
        execution-scale block sizes with few additional barriers.
        """
        if round_index < 1:
            raise SchedulingError(f"rounds are 1-based, got {round_index}")
        if round_index <= 4:
            mult = 2 ** (round_index - 1)
        else:
            mult = 8 * 4 ** (round_index - 4)
        return min(mult, self.max_multiplier)

    def sizes(
        self,
        round_index: int,
        measured_rates: Mapping[str, float] | None,
    ) -> dict[str, int]:
        """Probe sizes for ``round_index``.

        Parameters
        ----------
        measured_rates:
            Each device's most recent measured rate (units per second);
            required for rounds >= 2.  The fastest device receives the
            full ``multiplier * initialBlockSize`` and the others are
            scaled down by their rate relative to it, so all probes of a
            round finish together.

            This is the stable formulation of the paper's
            ``t_f / t_k`` scaling: expressing the ratio through rates
            rather than through the previous round's (already equalised)
            finish times keeps the scaling anchored — otherwise a
            balanced round reports equal times, the ratios collapse to
            one, and the next round hands the slowest CPU the same block
            as the fastest GPU.
        """
        mult = self.multiplier(round_index)
        base = mult * self.initial_block_size
        if round_index == 1:
            return {d: self.initial_block_size for d in self.device_ids}
        if not measured_rates:
            raise SchedulingError(
                f"round {round_index} needs the previous round's rates"
            )
        positive = [r for r in measured_rates.values() if r > 0.0]
        if not positive:
            return {d: base for d in self.device_ids}
        r_fastest = max(positive)
        sizes = {}
        for d in self.device_ids:
            rate = measured_rates.get(d, r_fastest)
            ratio = rate / r_fastest if rate > 0 else 1.0
            sizes[d] = max(int(round(base * ratio)), 1)
        return sizes
