"""The PLB-HeC scheduling policy (paper Sec. III, Algorithms 1 and 2).

Three phases:

1. **Performance modeling** (Algorithm 1).  Synchronised probe rounds
   with exponentially growing, speed-ratio-scaled block sizes
   (:class:`~repro.core.probe_plan.ProbePlan`).  After the fourth round
   the per-device curves ``F_p`` / ``G_p`` are least-squares fitted; if
   any device's R² is below the 0.7 threshold, further rounds are probed
   until the fit is acceptable or 20 % of the application data has been
   consumed.
2. **Block-size selection** (Sec. III.C).  The fitted models form the
   equal-finish-time system (eq. 5), solved by the interior-point
   line-search filter method; each device g is assigned a block size
   ``x_g`` — its share of one execution-step quantum.
3. **Execution and rebalancing** (Sec. III.D, Algorithm 2).  Devices
   asynchronously pull blocks of their assigned size.  A
   :class:`~repro.core.rebalance.SkewMonitor` watches per-step finish
   times; when the spread exceeds the threshold (10 % of a block time),
   the policy synchronises, re-fits the models with the accumulated
   execution measurements, re-solves and resumes with new sizes.

Master "thinking time" — the wall-clock cost of the fits and the
interior-point solve *measured on the host* — is charged into the run
through :meth:`SchedulingContext.charge_overhead`, so the makespans the
experiments report include scheduler overhead exactly as the paper's
measurements did (they report ~170 ms per solve on four machines).
"""

from __future__ import annotations

import logging
import math
import time

import numpy as np

from repro.errors import ConfigurationError, FitError, SolverError
from repro.modeling.perf_profile import DeviceModel, PerfProfile
from repro.obs.events import EventLog, current_run_id
from repro.obs.ledger import DecisionLedger
from repro.obs.metrics import get_registry
from repro.obs.profiler import profile_phase
from repro.runtime.scheduler_api import SchedulingContext, SchedulingPolicy
from repro.sim.trace import TaskRecord
from repro.solver.ipm import IPMOptions
from repro.solver.partition import PartitionResult, solve_block_partition
from repro.core.probe_plan import ProbePlan
from repro.core.rebalance import SkewMonitor
from repro.util.logging import get_logger

__all__ = ["PLBHeC"]

_log = get_logger("core.plb_hec")
_events = EventLog("core.plb_hec", level=logging.DEBUG)


class PLBHeC(SchedulingPolicy):
    """Profile-based load balancing with interior-point block selection.

    Parameters
    ----------
    r2_threshold:
        Fit-quality acceptance bound of Algorithm 1 (paper: 0.7).
    min_profile_fraction:
        Optional early-out: once this fraction of the data has been
        consumed, profiling is considered deep enough regardless of the
        probe-depth rule below.  ``None`` (default) disables it.
    max_profile_fraction:
        Modeling phase hard stop: proceed to selection once this
        fraction of the data has been consumed (paper: 20 %).
    rebalance_threshold:
        Relative finish-time skew that arms the rebalance flag
        (paper: 10 % of a block's execution time).
    num_steps:
        Execution-phase step count: the selection quantum is
        ``remaining / num_steps``, so each device processes its ``x_g``
        roughly ``num_steps`` times (enables mid-run rebalancing).
    min_probe_rounds:
        Probe rounds before the first fit attempt (paper: 4).
    overhead_scale:
        Multiplier on the measured fit/solve wall time charged to the
        run (1.0 = charge it as measured; 0.0 = free scheduler, for
        ablations).
    fixed_overhead_s:
        When set, charge this constant per fit/solve call instead of the
        measured wall time.  Measured charging reflects reality but
        makes virtual time depend on host speed; fixed charging gives
        bit-reproducible simulations (used by the determinism tests and
        available for experiments that need it).
    warm_start:
        Retain the fitted device profiles across runs of the *same*
        policy object.  Data-parallel applications typically execute
        many phases over the same kernels ("after finishing, the threads
        merge the processed results and the application proceeds to its
        next phase" — Sec. III); with warm start, phases after the first
        skip the probing rounds entirely and go straight to the
        block-size selection, eliminating the initial-phase cost the
        paper measures at ~10 % of a run.  The device set must match
        between runs.
    ipm_options:
        Interior-point tuning passed through to the partition solver.
    recency_decay:
        Observation weighting for ordinary fits (< 1 favours fresh
        measurements; see
        :meth:`~repro.modeling.perf_profile.PerfProfile.fit`).
    rebalance_recency_decay:
        Much stronger recency weighting used by the *rebalance* refit:
        a rebalance fires precisely because device behaviour changed,
        so measurements from before the change must be discounted
        steeply or the refit reproduces the stale model.
    """

    name = "plb-hec"

    def __init__(
        self,
        *,
        r2_threshold: float = 0.7,
        min_profile_fraction: float | None = None,
        max_profile_fraction: float = 0.2,
        rebalance_threshold: float = 0.1,
        num_steps: int = 5,
        min_probe_rounds: int = 4,
        overhead_scale: float = 1.0,
        ipm_options: IPMOptions | None = None,
        recency_decay: float = 0.97,
        rebalance_recency_decay: float = 0.6,
        max_probe_rounds: int = 12,
        rel_rmse_accept: float = 0.05,
        probe_depth_factor: float = 0.4,
        fixed_overhead_s: float | None = None,
        warm_start: bool = False,
    ) -> None:
        if not 0.0 < r2_threshold <= 1.0:
            raise ConfigurationError(f"r2_threshold in (0,1], got {r2_threshold}")
        if not 0.0 < max_profile_fraction <= 1.0:
            raise ConfigurationError(
                f"max_profile_fraction in (0,1], got {max_profile_fraction}"
            )
        if min_profile_fraction is not None and not (
            0.0 <= min_profile_fraction <= max_profile_fraction
        ):
            raise ConfigurationError(
                "min_profile_fraction must lie in [0, max_profile_fraction]"
            )
        self.min_profile_fraction = min_profile_fraction
        if rebalance_threshold <= 0.0:
            raise ConfigurationError("rebalance_threshold must be > 0")
        if num_steps < 1:
            raise ConfigurationError("num_steps must be >= 1")
        if min_probe_rounds < 2:
            raise ConfigurationError("min_probe_rounds must be >= 2")
        if overhead_scale < 0.0:
            raise ConfigurationError("overhead_scale must be >= 0")
        self.r2_threshold = r2_threshold
        self.max_profile_fraction = max_profile_fraction
        self.rebalance_threshold = rebalance_threshold
        self.num_steps = num_steps
        self.min_probe_rounds = min_probe_rounds
        if max_probe_rounds < min_probe_rounds:
            raise ConfigurationError(
                "max_probe_rounds must be >= min_probe_rounds"
            )
        if rel_rmse_accept <= 0.0:
            raise ConfigurationError("rel_rmse_accept must be > 0")
        self.overhead_scale = overhead_scale
        self.ipm_options = ipm_options
        if not 0.0 < recency_decay <= 1.0:
            raise ConfigurationError("recency_decay must be in (0, 1]")
        self.recency_decay = recency_decay
        if not 0.0 < rebalance_recency_decay <= 1.0:
            raise ConfigurationError("rebalance_recency_decay must be in (0, 1]")
        self.rebalance_recency_decay = rebalance_recency_decay
        if probe_depth_factor < 0.0:
            raise ConfigurationError("probe_depth_factor must be >= 0")
        self.max_probe_rounds = max_probe_rounds
        self.rel_rmse_accept = rel_rmse_accept
        self.probe_depth_factor = probe_depth_factor
        if fixed_overhead_s is not None and fixed_overhead_s < 0.0:
            raise ConfigurationError("fixed_overhead_s must be >= 0")
        self.fixed_overhead_s = fixed_overhead_s
        self.warm_start = warm_start
        self._retained_profiles: dict[str, PerfProfile] | None = None

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def setup(self, ctx: SchedulingContext) -> None:
        super().setup(ctx)
        ids = ctx.device_ids
        self._ids = ids
        self._phase = "modeling"
        self._profiles = {d: PerfProfile(d) for d in ids}
        self._plan = ProbePlan(ids, ctx.initial_block_size)
        self._round = 1
        self._round_sizes = self._plan.sizes(1, None)
        self._round_requested: set[str] = set()
        self._round_dispatched: set[str] = set()
        self._round_times: dict[str, float] = {}
        self._round_rates: dict[str, float] = {}
        self._consumed = 0
        self._in_flight = 0
        self._outstanding: dict[str, int] = {d: 0 for d in ids}

        self._models: dict[str, DeviceModel] = {}
        self._partition: PartitionResult | None = None
        self._block_sizes: dict[str, int] = {}
        self._pull_count: dict[str, int] = {d: 0 for d in ids}
        self._monitor = SkewMonitor(self.rebalance_threshold)
        self._rebalance_flag = False
        self._syncing = False
        self.selection_history: list[PartitionResult] = []
        self.rebalance_count = 0
        # state benched by transient failures, restored on recovery
        self._benched_profiles: dict[str, PerfProfile] = {}
        self._benched_models: dict[str, DeviceModel] = {}
        # Decision ledger: one record per allocation change, with the
        # live model objects snapshot per decision so completions of
        # in-flight blocks score against the model that sized them even
        # after a rebalance refit replaced `self._models`.
        self.ledger = DecisionLedger(current_run_id() or "")
        self._decision_models: dict[str, dict[str, DeviceModel]] = {}
        self._vnow = 0.0

        # Warm start: a later phase over the same devices reuses the
        # previous phase's profiles and skips the probing rounds.
        if (
            self.warm_start
            and self._retained_profiles is not None
            and set(self._retained_profiles) == set(ids)
        ):
            self._profiles = self._retained_profiles
            fits_ok, models = self._try_fit()
            if len(models) == len(ids):
                self._models = models
                self._enter_execution(ctx.total_units, trigger="warm-start")
        self._retained_profiles = self._profiles
        if self._phase == "modeling":
            self._open_probe_decision()

    # ------------------------------------------------------------------
    # policy protocol
    # ------------------------------------------------------------------
    def next_block(self, worker_id: str, now: float) -> int:
        if self._phase == "modeling":
            if worker_id in self._round_requested:
                return 0  # one probe per device per round (barrier)
            self._round_requested.add(worker_id)
            return self._round_sizes.get(worker_id, 0)
        size = self._block_sizes.get(worker_id, 0)
        if size <= 0:
            return 0
        # Tail insurance: once less than one quantum remains, shrink all
        # blocks proportionally so the final wave keeps the solved
        # distribution instead of letting whoever polls first grab a
        # full-size (possibly very slow) block.
        remaining = self.ctx.total_units - self._consumed
        if 0 < remaining < self._quantum:
            size = max(int(round(size * remaining / self._quantum)), 1)
        return size

    def on_block_dispatched(self, worker_id: str, granted: int, now: float) -> None:
        self._vnow = now
        self._in_flight += 1
        self._outstanding[worker_id] = self._outstanding.get(worker_id, 0) + 1
        self._consumed += granted
        if self._phase == "modeling":
            self._round_dispatched.add(worker_id)
        else:
            self._pull_count[worker_id] += 1

    def decision_tag(self, worker_id: str) -> str | None:
        # Every dispatch is governed by the most recent decision: probe
        # rounds, the selection and each rebalance all open one at the
        # instant the sizes change.
        return self.ledger.current_id

    def on_task_finished(self, record: TaskRecord, remaining: int, now: float) -> None:
        self._vnow = now
        self._in_flight -= 1
        d = record.worker_id
        self._outstanding[d] = max(self._outstanding.get(d, 1) - 1, 0)
        self._attribute(record)
        self._profiles[d].add(
            record.units,
            record.exec_time,
            record.transfer_time,
            round_index=record.step,
        )
        if self._phase == "modeling":
            self._finish_probe(record, remaining)
            return
        # ---------------- execution phase (Algorithm 2) ----------------
        if self._rebalance_flag:
            # Rebalance without draining: parking every worker until the
            # slowest in-flight block completes would idle the cluster
            # for up to one (possibly degraded) block time — the very
            # idleness the paper's "detecting unit also receives a new
            # task" provision exists to avoid.  The refit uses all
            # completed measurements; new sizes apply from the next pull.
            if remaining > 0:
                self._rebalance(
                    remaining,
                    detail={
                        "skew": float(self._monitor.last_skew),
                        "threshold": self.rebalance_threshold,
                        "step": self._monitor.last_skew_step,
                    },
                )
            self._rebalance_flag = False
            return
        # Only monitor full-size steps: the tail step's blocks are
        # clamped by the domain and their durations differ by design.
        in_tail = remaining < self._quantum
        if remaining > 0 and not self._rebalance_flag and not in_tail:
            step = record.step
            self._monitor.expect(step, self._active_devices())
            tripped = self._monitor.record(step, d, record.end_time, record.total_time)
            if tripped:
                _log.debug("skew threshold tripped at step %d (t=%.4f)", step, now)
                self._rebalance_flag = True

    def on_device_failed(self, device_id: str, now: float) -> None:
        """Sec. VI fault tolerance: redistribute over the survivors.

        The failed device is dropped from the probe plan / models /
        assignments, and — when the execution phase is already running —
        the block sizes are re-solved over the remaining devices.
        """
        self._vnow = now
        self._ids = tuple(d for d in self._ids if d != device_id)
        # bench (don't discard) the learned state: if the outage turns
        # out to be transient, on_device_recovered restores it so the
        # device re-enters without a fresh profiling phase
        profile = self._profiles.pop(device_id, None)
        if profile is not None:
            self._benched_profiles[device_id] = profile
        model = self._models.pop(device_id, None)
        if model is not None:
            self._benched_models[device_id] = model
        self._block_sizes.pop(device_id, None)
        # the device's cancelled in-flight block produces no completion;
        # release it from the barrier accounting
        self._in_flight -= self._outstanding.pop(device_id, 0)
        if self._phase == "modeling":
            # forget the device's round state so the barrier can close
            self._round_sizes.pop(device_id, None)
            self._round_dispatched.discard(device_id)
            self._round_times.pop(device_id, None)
            self._round_rates.pop(device_id, None)
            self._plan = ProbePlan(self._ids, self.ctx.initial_block_size)
            if (
                self._round_times
                and set(self._ids) <= set(self._round_times)
                and not self._in_flight
            ):
                # the failure closed the current round; a fake completion
                # is not available, so advance the round directly
                self._round += 1
                self._round_sizes = self._plan.sizes(self._round, self._round_rates)
                self._round_requested = set()
                self._round_dispatched = set()
                self._round_times = {}
                self._open_probe_decision(
                    trigger="fault", detail={"device": device_id}
                )
        else:
            remaining = self.ctx.total_units - self._consumed
            if remaining > 0 and self._models:
                self._rebalance(
                    remaining, trigger="fault", detail={"device": device_id}
                )
        self._monitor.reset()

    def on_device_recovered(self, device_id: str, now: float) -> None:
        """Fold a transiently-failed device back into the run.

        The benched profile (and fitted model, if one existed) is
        restored, so the device rejoins with everything it learned
        before the outage.  In the execution phase the partition is
        re-solved over the enlarged device set; in the modeling phase
        the device simply rejoins the probe barrier from the current
        round.
        """
        if device_id in self._ids:
            return
        self._vnow = now
        get_registry().inc("plbhec.recoveries")
        _events.instant("plbhec.recover", device=device_id)
        self._ids = self._ids + (device_id,)
        self._profiles[device_id] = self._benched_profiles.pop(
            device_id, PerfProfile(device_id)
        )
        self._outstanding.setdefault(device_id, 0)
        self._pull_count.setdefault(device_id, 0)
        if self._phase == "modeling":
            self._plan = ProbePlan(self._ids, self.ctx.initial_block_size)
            self._round_sizes = self._plan.sizes(self._round, self._round_rates)
            # let the device request a probe in the current round
            self._round_requested.discard(device_id)
            self._open_probe_decision(
                trigger="recovery", detail={"device": device_id}
            )
        else:
            model = self._benched_models.pop(device_id, None)
            if model is not None:
                self._models[device_id] = model
            remaining = self.ctx.total_units - self._consumed
            if remaining > 0 and self._models:
                self._rebalance(
                    remaining, trigger="recovery", detail={"device": device_id}
                )
        self._monitor.reset()

    def phase_label(self, worker_id: str) -> str:
        return "probe" if self._phase == "modeling" else "exec"

    def step_index(self, worker_id: str) -> int:
        if self._phase == "modeling":
            return self._round
        # on_block_dispatched has already counted the pull being labelled
        return self._pull_count[worker_id]

    # ------------------------------------------------------------------
    # modeling phase (Algorithm 1)
    # ------------------------------------------------------------------
    def _finish_probe(self, record: TaskRecord, remaining: int) -> None:
        self._round_times[record.worker_id] = record.total_time
        if record.total_time > 0:
            self._round_rates[record.worker_id] = (
                record.units / record.total_time
            )
        # Barrier: every live device must have completed its probe.  The
        # check is against the device list, not against dispatched-so-far
        # — on the real (thread) backend workers poll asynchronously, and
        # a dispatched-so-far barrier can close a round before slower
        # workers were ever dispatched.
        if not set(self._ids) <= set(self._round_times) or self._in_flight:
            return  # barrier: the round is still running
        get_registry().inc("plbhec.probe_rounds")
        if remaining == 0:
            return  # tiny input: the whole domain fit inside profiling
        if self._round >= self.min_probe_rounds:
            fits_ok, models = self._try_fit()
            consumed_frac = self._consumed / self.ctx.total_units
            if (
                (fits_ok and self._deep_enough(remaining, consumed_frac))
                or consumed_frac >= self.max_profile_fraction
                or self._round >= self.max_probe_rounds
            ):
                self._models = models
                self._enter_execution(remaining)
                return
        self._round += 1
        self._round_sizes = self._plan.sizes(self._round, self._round_rates)
        self._round_requested = set()
        self._round_dispatched = set()
        self._round_times = {}
        self._open_probe_decision()

    def _deep_enough(self, remaining: int, consumed_frac: float) -> bool:
        """Has profiling explored block sizes near the execution scale?

        Fitted curves extrapolate poorly; the selection phase will
        assign each device roughly ``step_time * rate`` units, so
        probing continues until the just-finished round's blocks took a
        meaningful fraction of the *expected execution-step duration*
        (estimated from the measured rates).  A consumed-data floor
        provides a second sufficient condition.
        """
        if (
            self.min_profile_fraction is not None
            and consumed_frac >= self.min_profile_fraction
        ):
            return True
        total_rate = sum(self._round_rates.values())
        if total_rate <= 0.0 or not self._round_times:
            return False
        expected_step = (remaining / self.num_steps) / total_rate
        round_time = max(self._round_times.values())
        return round_time >= self.probe_depth_factor * expected_step

    def _try_fit(self) -> tuple[bool, dict[str, DeviceModel]]:
        """Fit every profile; charge the measured wall time as overhead."""
        registry = get_registry()
        registry.inc("plbhec.fit_attempts")
        t0 = time.perf_counter()
        models: dict[str, DeviceModel] = {}
        all_ok = True
        with profile_phase("fit"):
            for d in self._ids:
                try:
                    model = self._profiles[d].fit(
                        recency_decay=self.recency_decay
                    )
                except FitError:
                    all_ok = False
                    continue
                models[d] = model
                registry.set_gauge("plbhec.r2", model.r2, device=d)
                # The paper's acceptance is R2 >= 0.7; R2 is meaningless
                # for devices whose probe times are intercept-dominated
                # (nearly constant — the mean predictor is unbeatable
                # there), so a small relative RMS residual is accepted
                # as well.
                acceptable = (
                    model.r2 >= self.r2_threshold
                    or model.exec_fit.rel_rmse <= self.rel_rmse_accept
                )
                if not acceptable:
                    all_ok = False
        self._charge(time.perf_counter() - t0)
        if len(models) < len(self._ids):
            all_ok = False
        return all_ok, models

    # ------------------------------------------------------------------
    # selection phase (Sec. III.C)
    # ------------------------------------------------------------------
    def _enter_execution(self, remaining: int, *, trigger: str = "selection") -> None:
        _log.info(
            "modeling done after %d rounds (%d units consumed); "
            "entering execution with %d units remaining",
            self._round,
            self._consumed,
            remaining,
        )
        self._phase = "execution"
        # The step quantum is fixed at entry: every execution step
        # distributes this much, so rebalances do not shrink the steps
        # geometrically and the tail is the only partial step.
        self._quantum = max(remaining / self.num_steps, 1.0)
        self._solve(remaining, trigger=trigger)

    def _solve(
        self,
        remaining: int,
        *,
        trigger: str = "selection",
        detail: dict | None = None,
    ) -> None:
        quantum = min(self._quantum, float(remaining))
        registry = get_registry()
        restorations_before = registry.snapshot()["counters"].get(
            "ipm.restorations", 0
        )
        t0 = time.perf_counter()
        try:
            with _events.span("plbhec.solve", remaining=remaining):
                with profile_phase("solve"):
                    result = solve_block_partition(
                        self._models, quantum, ipm_options=self.ipm_options
                    )
        except (SolverError, FitError, ConfigurationError) as exc:
            self._charge(time.perf_counter() - t0)
            self._fallback(quantum, exc, trigger=trigger, detail=detail)
            return
        self._charge(time.perf_counter() - t0)
        registry.inc("plbhec.solves")
        registry.observe("plbhec.solve_ms", result.solve_time_s * 1e3)
        _log.info(
            "partition solved (%s, %d iterations, %.1f ms): T=%.4fs",
            result.method,
            result.iterations,
            result.solve_time_s * 1e3,
            result.predicted_time,
        )
        self._partition = result
        self.selection_history.append(result)
        sizes = {}
        for d, units in result.units_by_device.items():
            sizes[d] = int(round(units))
            registry.set_gauge("plbhec.block_size", sizes[d], device=d)
        if all(v <= 0 for v in sizes.values()):
            # pathological quantum: give the best-rate device one unit
            best = max(result.units_by_device, key=result.units_by_device.get)
            sizes[best] = 1
        self._block_sizes = sizes
        restorations = (
            registry.snapshot()["counters"].get("ipm.restorations", 0)
            - restorations_before
        )
        self._open_partition_decision(
            trigger=trigger,
            sizes=sizes,
            predicted_time=result.predicted_time,
            solver={
                "method": result.method,
                "converged": bool(result.converged),
                "iterations": int(result.iterations),
                "kkt_error": float(result.kkt_error),
                "restorations": int(restorations),
                "solve_time_s": float(
                    self.fixed_overhead_s
                    if self.fixed_overhead_s is not None
                    else result.solve_time_s
                ),
            },
            detail=detail,
        )
        self._monitor.reset()

    def _active_devices(self) -> int:
        return sum(1 for v in self._block_sizes.values() if v > 0)

    # ------------------------------------------------------------------
    # graceful degradation
    # ------------------------------------------------------------------
    def _fallback(
        self,
        quantum: float,
        exc: Exception,
        *,
        trigger: str = "selection",
        detail: dict | None = None,
    ) -> None:
        """Survive a failed fit/solve with a degraded-but-safe partition.

        The chain: reuse the last *good* (solver-produced) partition,
        rescaled to the live device set → analytic speed-ratio split
        from the latest profile measurements → GSS-style fair share.
        The run keeps making progress in all three cases; only the
        quality of the distribution degrades.
        """
        stage, sizes = self._fallback_sizes(quantum)
        registry = get_registry()
        registry.inc("plbhec.fallback")
        _events.instant(
            "plbhec.fallback",
            stage=stage,
            reason=f"{type(exc).__name__}: {exc}",
        )
        _log.warning(
            "solve failed (%s: %s); falling back to %s split",
            type(exc).__name__,
            exc,
            stage,
        )
        ids = tuple(sizes)
        int_sizes = {d: max(int(round(sizes[d])), 1) for d in ids}
        # The degraded split still has a prediction: the fitted models
        # (if any survive) or the latest measured rates the split itself
        # was derived from.  Propagating it keeps fallback decisions
        # calibratable instead of scoring as NaN.
        per_device_pred, predicted_time = self._fallback_prediction(int_sizes)
        result = PartitionResult(
            device_ids=ids,
            units=np.array([sizes[d] for d in ids], dtype=float),
            predicted_time=predicted_time,
            method=f"fallback-{stage}",
            converged=False,
            iterations=0,
            kkt_error=math.nan,
            solve_time_s=0.0,
        )
        self._partition = result
        self.selection_history.append(result)
        for d, v in int_sizes.items():
            registry.set_gauge("plbhec.block_size", v, device=d)
        self._block_sizes = int_sizes
        self._open_partition_decision(
            trigger=trigger,
            sizes=int_sizes,
            predicted_time=predicted_time,
            predicted=per_device_pred,
            solver={
                "method": f"fallback-{stage}",
                "fallback_stage": stage,
                "converged": False,
                "iterations": 0,
                "kkt_error": math.nan,
                "restorations": 0,
                "solve_time_s": 0.0,
                "error": f"{type(exc).__name__}: {exc}",
            },
            detail=detail,
        )
        self._monitor.reset()

    def _fallback_prediction(
        self, sizes: dict[str, int]
    ) -> tuple[dict[str, float], float]:
        """Predicted per-device seconds for a fallback allocation.

        Prefers the fitted models; devices without one fall back to
        their latest measured rate (the same measurement the
        speed-ratio split used).  Devices with neither stay
        unpredicted; with no prediction at all the common time is NaN.
        """
        per_device: dict[str, float] = {}
        for d, u in sizes.items():
            if u <= 0:
                continue
            model = self._models.get(d)
            if model is not None:
                t = float(model.E(u))
                if math.isfinite(t) and t > 0.0:
                    per_device[d] = t
                    continue
            profile = self._profiles.get(d)
            if profile is not None and profile.points:
                p = profile.points[-1]
                elapsed = p.exec_s + p.transfer_s
                if elapsed > 0.0 and p.units > 0:
                    per_device[d] = float(u) * elapsed / p.units
        if not per_device:
            return {}, math.nan
        return per_device, max(per_device.values())

    def _fallback_sizes(self, quantum: float) -> tuple[str, dict[str, float]]:
        live = list(self._ids)
        # 1. last good solution: the most recent solver-produced
        #    partition, restricted to live devices and rescaled to the
        #    quantum (fallback partitions are skipped — repeating a
        #    degraded split would compound the degradation)
        for prev in reversed(self.selection_history):
            if prev.method.startswith("fallback"):
                continue
            shares = {
                d: u
                for d, u in prev.units_by_device.items()
                if d in live and u > 0.0
            }
            total = sum(shares.values())
            if shares and total > 0.0:
                return "last-good", {
                    d: quantum * u / total for d, u in shares.items()
                }
        # 2. analytic speed-ratio split from the latest measurement of
        #    each live profile (units per second, transfer included)
        rates: dict[str, float] = {}
        for d in live:
            profile = self._profiles.get(d)
            if profile is None or not profile.points:
                continue
            p = profile.points[-1]
            elapsed = p.exec_s + p.transfer_s
            if elapsed > 0.0:
                rates[d] = p.units / elapsed
        total_rate = sum(rates.values())
        if rates and total_rate > 0.0:
            return "speed-ratio", {
                d: quantum * r / total_rate for d, r in rates.items()
            }
        # 3. fair share: equal split over the live devices
        return "fair-share", {d: quantum / len(live) for d in live}

    # ------------------------------------------------------------------
    # rebalancing (Sec. III.D)
    # ------------------------------------------------------------------
    def _rebalance(
        self,
        remaining: int,
        *,
        trigger: str = "rebalance",
        detail: dict | None = None,
    ) -> None:
        """Re-fit with accumulated execution times and re-solve."""
        self.rebalance_count += 1
        self.ctx.note_rebalance()
        get_registry().inc("plbhec.rebalances")
        _events.instant("plbhec.rebalance", remaining=remaining)
        t0 = time.perf_counter()
        models: dict[str, DeviceModel] = {}
        with profile_phase("fit"):
            for d in self._ids:
                try:
                    models[d] = self._profiles[d].fit(
                        recency_decay=self.rebalance_recency_decay
                    )
                except FitError:
                    if d in self._models:
                        models[d] = self._models[d]
        self._charge(time.perf_counter() - t0)
        if models:
            self._models = models
        self._solve(remaining, trigger=trigger, detail=detail)

    # ------------------------------------------------------------------
    def _charge(self, seconds: float) -> None:
        if self.fixed_overhead_s is not None:
            seconds = self.fixed_overhead_s
        if self.overhead_scale > 0.0 and seconds > 0.0:
            self.ctx.charge_overhead(seconds * self.overhead_scale, "plb-hec")

    # ------------------------------------------------------------------
    # decision ledger
    # ------------------------------------------------------------------
    def _open_probe_decision(
        self, *, trigger: str = "probe-round", detail: dict | None = None
    ) -> None:
        """Ledger a probe round: allocation known, predictions not yet."""
        did = self.ledger.open_decision(
            trigger=trigger,
            t=self._vnow,
            phase="modeling",
            allocation={d: int(s) for d, s in self._round_sizes.items()},
            solver={"method": "probe"},
            detail={"round": self._round, **(detail or {})},
        )
        self._decision_models[did] = {}
        get_registry().inc("plbhec.decisions")
        _events.instant("plbhec.decision", id=did, trigger=trigger, method="probe")

    def _open_partition_decision(
        self,
        *,
        trigger: str,
        sizes: dict[str, int],
        predicted_time: float,
        solver: dict,
        detail: dict | None = None,
        predicted: dict[str, float] | None = None,
    ) -> None:
        """Ledger a solve/fallback outcome with its model state."""
        if predicted is None:
            predicted = {}
            for d, s in sizes.items():
                model = self._models.get(d)
                if model is not None and s > 0:
                    t = float(model.E(s))
                    if math.isfinite(t):
                        predicted[d] = t
        did = self.ledger.open_decision(
            trigger=trigger,
            t=self._vnow,
            phase="execution",
            allocation=dict(sizes),
            predicted=predicted,
            predicted_time=float(predicted_time),
            solver=solver,
            models={d: m.state_summary() for d, m in self._models.items()},
            detail=detail,
        )
        # live model objects per decision: completions of blocks still in
        # flight across a refit score against the model that sized them
        self._decision_models[did] = dict(self._models)
        get_registry().inc("plbhec.decisions")
        _events.instant(
            "plbhec.decision",
            id=did,
            trigger=trigger,
            method=solver.get("method", ""),
        )

    def _attribute(self, record: TaskRecord) -> None:
        """Close the loop: score a completed block against its decision."""
        d = record.worker_id
        predicted = None
        models = self._decision_models.get(record.decision)
        if models:
            model = models.get(d)
            if model is not None:
                # evaluate at the *granted* size — tail blocks shrink
                # below the decision's allocation, and the model curve,
                # not a linear rescale, is the honest prediction there
                t = float(model.E(record.units))
                if math.isfinite(t) and t > 0.0:
                    predicted = t
        self.ledger.attribute(
            record.decision,
            d,
            units=record.units,
            predicted_s=predicted,
            observed_s=record.total_time,
        )
        cal = self.ledger.device_calibration(d)
        if cal is not None and cal.count:
            registry = get_registry()
            registry.set_gauge("plbhec.calibration.mape", cal.mape, device=d)
            registry.set_gauge("plbhec.calibration.bias", cal.bias, device=d)
            registry.set_gauge("plbhec.calibration.drift", cal.drift, device=d)

    # ------------------------------------------------------------------
    # introspection for experiments
    # ------------------------------------------------------------------
    @property
    def first_partition(self) -> PartitionResult | None:
        """The block distribution at the end of the modeling phase.

        This is the quantity Fig. 6 plots for PLB-HeC.
        """
        return self.selection_history[0] if self.selection_history else None

    @property
    def models(self) -> dict[str, DeviceModel]:
        """The current fitted device models (empty during modeling)."""
        return dict(self._models)
