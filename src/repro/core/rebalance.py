"""Finish-time skew monitoring (Sec. III.D).

"The scheduler also monitors the finish time of each task.  If the
difference in finishing times t_i and t_j between any two tasks of
processing units i and j goes above a threshold, the rebalancing
process is executed."  The threshold is relative — "about 10 % of the
execution time of a single block" — so the monitor compares, per
dispatch step, the spread of completion instants of the step's tasks
against the threshold times the step's mean block duration.
"""

from __future__ import annotations

from repro.errors import ConfigurationError

__all__ = ["SkewMonitor"]


class SkewMonitor:
    """Detects when per-step finish times drift beyond the threshold.

    Parameters
    ----------
    threshold:
        Relative threshold (0.1 = the paper's 10 % of a block's
        execution time).
    """

    def __init__(self, threshold: float = 0.1) -> None:
        if threshold <= 0.0:
            raise ConfigurationError(f"threshold must be > 0, got {threshold}")
        self.threshold = float(threshold)
        # step -> {device: (end_time, duration)}
        self._steps: dict[int, dict[str, tuple[float, float]]] = {}
        self._expected: dict[int, int] = {}
        #: relative duration spread of the last *completed* step —
        #: decision-ledger context for why a rebalance fired (NaN until
        #: a multi-device step completes)
        self.last_skew: float = float("nan")
        #: step index the last completed skew measurement belongs to
        self.last_skew_step: int = -1

    def expect(self, step: int, num_devices: int) -> None:
        """Declare how many tasks step ``step`` will comprise."""
        if num_devices < 1:
            raise ConfigurationError("a step needs at least one device")
        self._expected[step] = num_devices

    def record(
        self, step: int, device_id: str, end_time: float, duration: float
    ) -> bool:
        """Record one completion; returns True when the step's skew trips.

        The check fires only once the step is complete (every expected
        device reported), mirroring the paper's Gantt (Fig. 3) where the
        detection compares tasks of the same dispatch round.

        Skew is measured on the tasks' *durations*: blocks of one step
        were sized to take the same time, so a relative duration spread
        beyond the threshold means the balance has drifted.  (Comparing
        absolute completion instants instead would accumulate random
        drift over successive asynchronous pulls and trip spuriously —
        the paper's own runs "never executed" a rebalance in steady
        conditions, which pins down this reading of the threshold.)
        """
        bucket = self._steps.setdefault(step, {})
        bucket[device_id] = (end_time, duration)
        expected = self._expected.get(step)
        if expected is None or len(bucket) < expected:
            return False
        durations = [t for _, t in bucket.values()]
        mean_duration = sum(durations) / len(durations)
        # single-device steps can never skew
        if len(bucket) < 2 or mean_duration <= 0.0:
            self._cleanup(step)
            return False
        skew = max(durations) - min(durations)
        self.last_skew = skew / mean_duration
        self.last_skew_step = step
        tripped = skew > self.threshold * mean_duration
        self._cleanup(step)
        return tripped

    def _cleanup(self, step: int) -> None:
        self._steps.pop(step, None)
        self._expected.pop(step, None)

    def reset(self) -> None:
        """Forget all in-progress steps (after a rebalance)."""
        self._steps.clear()
        self._expected.clear()
