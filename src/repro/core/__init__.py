"""PLB-HeC: the paper's contribution (Sec. III).

* :mod:`repro.core.plb_hec` — the scheduling policy orchestrating the
  three phases: performance modeling (Algorithm 1), block-size
  selection (the interior-point solve), and execution with
  threshold-triggered rebalancing (Algorithm 2);
* :mod:`repro.core.probe_plan` — the probe-size schedule of the
  modeling phase (multipliers 1, 2, 4, 8 scaled by observed speed
  ratios);
* :mod:`repro.core.rebalance` — the finish-time skew monitor that arms
  the rebalance flag.
"""

from repro.core.plb_hec import PLBHeC
from repro.core.probe_plan import ProbePlan
from repro.core.rebalance import SkewMonitor

__all__ = ["PLBHeC", "ProbePlan", "SkewMonitor"]
