"""Lightweight wall-clock instrumentation.

The experiment harness needs honest wall-clock numbers (the ROADMAP's
"fast as the hardware allows" goal is unfalsifiable without them), but
nothing as heavy as a profiler.  :class:`Stopwatch` is a re-usable
perf-counter with named laps; :func:`perf_report` turns a mapping of
timings into a JSON document (host metadata included) that benchmark
runs append to ``BENCH_wallclock.json`` so the performance trajectory
of the repo is recorded next to the code.
"""

from __future__ import annotations

import json
import os
import platform
import time
from pathlib import Path
from typing import Any, Mapping

from repro.errors import ConfigurationError

__all__ = ["Stopwatch", "perf_report"]


class Stopwatch:
    """A perf-counter stopwatch usable as a context manager.

    Examples
    --------
    ::

        with Stopwatch() as sw:
            do_work()
        print(sw.elapsed)

        sw = Stopwatch()
        with sw.lap("serial"):
            run_serial()
        with sw.lap("parallel"):
            run_parallel()
        sw.laps  # {"serial": ..., "parallel": ...}
    """

    def __init__(self) -> None:
        self._start: float | None = None
        self._elapsed = 0.0
        self.laps: dict[str, float] = {}

    def start(self) -> "Stopwatch":
        """Start (or restart) the clock."""
        self._start = time.perf_counter()
        return self

    def stop(self) -> float:
        """Stop the clock and return the elapsed seconds."""
        if self._start is None:
            raise ConfigurationError("stopwatch stopped without being started")
        self._elapsed = time.perf_counter() - self._start
        self._start = None
        return self._elapsed

    @property
    def elapsed(self) -> float:
        """Seconds of the last completed interval (live if running)."""
        if self._start is not None:
            return time.perf_counter() - self._start
        return self._elapsed

    def __enter__(self) -> "Stopwatch":
        return self.start()

    def __exit__(self, *exc: object) -> None:
        self.stop()

    def lap(self, label: str) -> "_Lap":
        """Context manager recording one named lap into :attr:`laps`."""
        return _Lap(self, label)


class _Lap:
    def __init__(self, owner: Stopwatch, label: str) -> None:
        self._owner = owner
        self._label = label
        self._t0 = 0.0

    def __enter__(self) -> "_Lap":
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc: object) -> None:
        self._owner.laps[self._label] = time.perf_counter() - self._t0


def perf_report(
    timings: Mapping[str, float],
    *,
    path: str | os.PathLike[str] | None = None,
    meta: Mapping[str, Any] | None = None,
) -> dict[str, Any]:
    """Assemble (and optionally write) a wall-clock report.

    Parameters
    ----------
    timings:
        Label -> seconds.  Non-finite or negative values are rejected.
    path:
        When given, the report is written there as indented JSON via an
        atomic rename, so a crashed benchmark never leaves a torn file.
    meta:
        Extra JSON-serialisable context (grid sizes, job counts, ...).

    Returns
    -------
    dict
        ``{"schema", "timestamp", "host", "meta", "timings_s"}``.
    """
    clean: dict[str, float] = {}
    for label, seconds in timings.items():
        value = float(seconds)
        if value != value or value < 0.0:
            raise ConfigurationError(
                f"timing {label!r} must be a non-negative number, got {seconds!r}"
            )
        clean[label] = value
    report = {
        "schema": 1,
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "host": {
            "platform": platform.platform(),
            "python": platform.python_version(),
            "cpu_count": os.cpu_count(),
        },
        "meta": dict(meta or {}),
        "timings_s": clean,
    }
    if path is not None:
        target = Path(path)
        tmp = target.with_suffix(target.suffix + ".tmp")
        tmp.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
        tmp.replace(target)
    return report
