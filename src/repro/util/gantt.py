"""ASCII Gantt rendering of execution traces (the paper's Fig. 3).

Renders each processing unit as one row of a fixed-width timeline.
Busy intervals are drawn per phase (``#`` execution, ``:`` probing),
idle stretches as spaces, so modeling-phase barriers, rebalance drains
and tail stragglers are visible at a glance::

    A.cpu   |::##############  ####|
    A.gpu0  |: ####################|
    B.cpu   |:::::  ###############|

Used by examples and diagnostics; the quantitative idleness numbers
come from :meth:`~repro.sim.trace.ExecutionTrace.idle_fractions`.
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.sim.trace import ExecutionTrace

__all__ = ["render_gantt", "PHASE_GLYPHS"]

#: glyph used per phase label (anything else renders as ``#``)
PHASE_GLYPHS = {"probe": ":", "exec": "#"}
_DEFAULT_GLYPH = "#"
_MARKER_REBALANCE = "R"
_MARKER_FAILURE = "X"


def render_gantt(
    trace: ExecutionTrace,
    *,
    width: int = 80,
    show_markers: bool = True,
) -> str:
    """Render the trace as an ASCII Gantt chart.

    Parameters
    ----------
    trace:
        A finalized execution trace.
    width:
        Timeline width in characters (>= 10).
    show_markers:
        Overlay ``R`` at rebalance instants and ``X`` at device-failure
        instants (on the affected device's row).

    Returns
    -------
    str
        One row per worker plus a time-axis footer.
    """
    if width < 10:
        raise ConfigurationError(f"width must be >= 10, got {width}")
    makespan = trace.makespan
    if makespan <= 0.0:
        return "(empty trace)"

    def col(t: float) -> int:
        return min(int(t / makespan * width), width - 1)

    label_width = max((len(w) for w in trace.worker_ids), default=0) + 1
    lines = []
    for worker in trace.worker_ids:
        row = [" "] * width
        for start, end, phase in trace.gantt()[worker]:
            glyph = PHASE_GLYPHS.get(phase, _DEFAULT_GLYPH)
            for c in range(col(start), col(end) + 1):
                row[c] = glyph
        if show_markers:
            for t, device in trace.failures:
                if device == worker:
                    row[col(t)] = _MARKER_FAILURE
        lines.append(f"{worker.ljust(label_width)}|{''.join(row)}|")
    if show_markers and trace.rebalance_times:
        marker_row = [" "] * width
        for t in trace.rebalance_times:
            marker_row[col(t)] = _MARKER_REBALANCE
        lines.append(f"{''.ljust(label_width)}|{''.join(marker_row)}|")
    axis = f"{''.ljust(label_width)}|0{' ' * (width - 2)}>" + f"| {makespan:.3g}s"
    lines.append(axis)
    legend = (
        f"{''.ljust(label_width)} {PHASE_GLYPHS['probe']}=probe "
        f"{PHASE_GLYPHS['exec']}=exec"
    )
    if show_markers:
        legend += f" {_MARKER_REBALANCE}=rebalance {_MARKER_FAILURE}=failure"
    lines.append(legend)
    return "\n".join(lines)
