"""ASCII Gantt rendering of execution traces (the paper's Fig. 3).

Renders each processing unit as one row of a fixed-width timeline.
Busy intervals are drawn per phase (``#`` execution, ``:`` probing),
idle stretches as spaces, so modeling-phase barriers, rebalance drains
and tail stragglers are visible at a glance::

    A.cpu   |::##############  ####|
    A.gpu0  |: ####################|
    B.cpu   |:::::  ###############|

Used by examples and diagnostics; the quantitative idleness numbers
come from :meth:`~repro.sim.trace.ExecutionTrace.idle_fractions`.
"""

from __future__ import annotations

from xml.sax.saxutils import escape

from repro.errors import ConfigurationError
from repro.sim.trace import ExecutionTrace

__all__ = ["render_gantt", "render_gantt_svg", "PHASE_GLYPHS", "SVG_PHASE_COLORS"]

#: glyph used per phase label (anything else renders as ``#``)
PHASE_GLYPHS = {"probe": ":", "exec": "#"}
_DEFAULT_GLYPH = "#"
_MARKER_REBALANCE = "R"
_MARKER_FAILURE = "X"


def render_gantt(
    trace: ExecutionTrace,
    *,
    width: int = 80,
    show_markers: bool = True,
) -> str:
    """Render the trace as an ASCII Gantt chart.

    Parameters
    ----------
    trace:
        A finalized execution trace.
    width:
        Timeline width in characters (>= 10).
    show_markers:
        Overlay ``R`` at rebalance instants and ``X`` at device-failure
        instants (on the affected device's row).

    Returns
    -------
    str
        One row per worker plus a time-axis footer.
    """
    if width < 10:
        raise ConfigurationError(f"width must be >= 10, got {width}")
    makespan = trace.makespan
    if makespan <= 0.0:
        return "(empty trace)"

    def col(t: float) -> int:
        return min(int(t / makespan * width), width - 1)

    label_width = max((len(w) for w in trace.worker_ids), default=0) + 1
    lines = []
    for worker in trace.worker_ids:
        row = [" "] * width
        for start, end, phase in trace.gantt()[worker]:
            glyph = PHASE_GLYPHS.get(phase, _DEFAULT_GLYPH)
            for c in range(col(start), col(end) + 1):
                row[c] = glyph
        if show_markers:
            for t, device in trace.failures:
                if device == worker:
                    row[col(t)] = _MARKER_FAILURE
        lines.append(f"{worker.ljust(label_width)}|{''.join(row)}|")
    if show_markers and trace.rebalance_times:
        marker_row = [" "] * width
        for t in trace.rebalance_times:
            marker_row[col(t)] = _MARKER_REBALANCE
        lines.append(f"{''.ljust(label_width)}|{''.join(marker_row)}|")
    axis = f"{''.ljust(label_width)}|0{' ' * (width - 2)}>" + f"| {makespan:.3g}s"
    lines.append(axis)
    legend = (
        f"{''.ljust(label_width)} {PHASE_GLYPHS['probe']}=probe "
        f"{PHASE_GLYPHS['exec']}=exec"
    )
    if show_markers:
        legend += f" {_MARKER_REBALANCE}=rebalance {_MARKER_FAILURE}=failure"
    lines.append(legend)
    return "\n".join(lines)


#: Default mark colors per phase for the SVG renderer; the dashboard
#: overrides these with its CSS custom properties so light/dark theming
#: stays in one place.
SVG_PHASE_COLORS = {"exec": "#2a78d6", "probe": "#eb6834"}
_SVG_DEFAULT_COLOR = "#2a78d6"
_SVG_MARKER_COLOR = "#898781"
_SVG_FAILURE_COLOR = "#d03b3b"


def render_gantt_svg(
    trace: ExecutionTrace,
    *,
    width: int = 860,
    row_height: int = 22,
    show_markers: bool = True,
    phase_colors: dict[str, str] | None = None,
    label_width: int = 72,
) -> str:
    """Render the trace as an inline-SVG Gantt strip.

    The structural twin of :func:`render_gantt` for HTML reports
    (``repro dashboard``): one thin rounded bar per busy interval,
    colored by phase, with rebalance instants as hairline rules across
    all rows and failures as markers on the affected row.  Every mark
    carries a ``<title>`` so hovering reveals the exact interval.

    Returns an ``<svg>`` fragment (no external references), or a short
    placeholder paragraph for an empty trace.
    """
    if width < 100:
        raise ConfigurationError(f"width must be >= 100, got {width}")
    makespan = trace.makespan
    if makespan <= 0.0 or not trace.worker_ids:
        return "<p class='empty'>(empty trace)</p>"
    colors = dict(SVG_PHASE_COLORS)
    if phase_colors:
        colors.update(phase_colors)
    plot_w = width - label_width - 8
    axis_h = 24
    height = row_height * len(trace.worker_ids) + axis_h
    bar_h = max(row_height - 6, 6)

    def x(t: float) -> float:
        return label_width + t / makespan * plot_w

    parts = [
        f'<svg viewBox="0 0 {width} {height}" width="100%" '
        f'role="img" aria-label="Per-worker execution timeline" '
        f'xmlns="http://www.w3.org/2000/svg">'
    ]
    gantt = trace.gantt()
    for row, worker in enumerate(trace.worker_ids):
        y = row * row_height
        parts.append(
            f'<text x="{label_width - 8}" y="{y + row_height / 2 + 4:.1f}" '
            f'text-anchor="end" class="axis-label">{escape(worker)}</text>'
        )
        for start, end, phase in gantt[worker]:
            w = max(x(end) - x(start), 1.5)
            color = colors.get(phase, _SVG_DEFAULT_COLOR)
            parts.append(
                f'<rect x="{x(start):.2f}" y="{y + 3}" width="{w:.2f}" '
                f'height="{bar_h}" rx="2" fill="{color}">'
                f"<title>{escape(worker)} {escape(phase)}: "
                f"{start:.4f}s - {end:.4f}s ({end - start:.4f}s)</title></rect>"
            )
        if show_markers:
            for t, device in trace.failures:
                if device == worker:
                    cx = x(t)
                    parts.append(
                        f'<g stroke="{_SVG_FAILURE_COLOR}" stroke-width="2">'
                        f'<line x1="{cx - 4:.2f}" y1="{y + 4}" x2="{cx + 4:.2f}" '
                        f'y2="{y + row_height - 4}"/>'
                        f'<line x1="{cx - 4:.2f}" y1="{y + row_height - 4}" '
                        f'x2="{cx + 4:.2f}" y2="{y + 4}"/>'
                        f"<title>failure on {escape(device)} at {t:.4f}s</title></g>"
                    )
    rows_h = row_height * len(trace.worker_ids)
    if show_markers:
        for t in trace.rebalance_times:
            parts.append(
                f'<line x1="{x(t):.2f}" y1="0" x2="{x(t):.2f}" y2="{rows_h}" '
                f'stroke="{_SVG_MARKER_COLOR}" stroke-width="1" '
                f'stroke-dasharray="3,3"><title>rebalance at {t:.4f}s</title></line>'
            )
    # time axis
    parts.append(
        f'<line x1="{label_width}" y1="{rows_h + 2}" x2="{width - 8}" '
        f'y2="{rows_h + 2}" class="axis-line"/>'
    )
    for frac in (0.0, 0.25, 0.5, 0.75, 1.0):
        t = makespan * frac
        parts.append(
            f'<text x="{x(t):.1f}" y="{rows_h + 16}" text-anchor="middle" '
            f'class="axis-label">{t:.3g}s</text>'
        )
    parts.append("</svg>")
    return "".join(parts)
