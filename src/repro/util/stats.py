"""Streaming and batch statistics used by traces and experiment reports."""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

import numpy as np

__all__ = ["RunningStats", "mean_std", "relative_error", "summarize"]


@dataclass
class RunningStats:
    """Welford online mean/variance accumulator.

    Numerically stable for long streams; supports merging, which the trace
    recorder uses to combine per-round statistics.
    """

    count: int = 0
    _mean: float = 0.0
    _m2: float = 0.0
    _min: float = field(default=math.inf)
    _max: float = field(default=-math.inf)

    def add(self, value: float) -> None:
        """Fold one observation into the accumulator."""
        v = float(value)
        self.count += 1
        delta = v - self._mean
        self._mean += delta / self.count
        self._m2 += delta * (v - self._mean)
        self._min = min(self._min, v)
        self._max = max(self._max, v)

    def extend(self, values: Iterable[float]) -> None:
        """Fold a sequence of observations."""
        for v in values:
            self.add(v)

    def merge(self, other: "RunningStats") -> "RunningStats":
        """Return a new accumulator equal to observing both streams."""
        if other.count == 0:
            return RunningStats(self.count, self._mean, self._m2, self._min, self._max)
        if self.count == 0:
            return RunningStats(
                other.count, other._mean, other._m2, other._min, other._max
            )
        n = self.count + other.count
        delta = other._mean - self._mean
        mean = self._mean + delta * other.count / n
        m2 = self._m2 + other._m2 + delta * delta * self.count * other.count / n
        return RunningStats(
            n, mean, m2, min(self._min, other._min), max(self._max, other._max)
        )

    @property
    def mean(self) -> float:
        """Arithmetic mean of the observations (0.0 when empty)."""
        return self._mean if self.count else 0.0

    @property
    def variance(self) -> float:
        """Sample variance (ddof=1); 0.0 with fewer than two observations."""
        return self._m2 / (self.count - 1) if self.count > 1 else 0.0

    @property
    def std(self) -> float:
        """Sample standard deviation."""
        return math.sqrt(self.variance)

    @property
    def minimum(self) -> float:
        """Smallest observation (+inf when empty)."""
        return self._min

    @property
    def maximum(self) -> float:
        """Largest observation (-inf when empty)."""
        return self._max


def mean_std(values: Sequence[float]) -> tuple[float, float]:
    """Return ``(mean, sample std)`` of a sequence; ``(nan, nan)`` if empty."""
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        return (float("nan"), float("nan"))
    if arr.size == 1:
        return (float(arr[0]), 0.0)
    return (float(arr.mean()), float(arr.std(ddof=1)))


def relative_error(measured: float, reference: float) -> float:
    """Return ``|measured - reference| / |reference|``.

    Used by EXPERIMENTS.md comparisons; returns ``inf`` when the reference
    is zero but the measurement is not, and 0.0 when both are zero.
    """
    if reference == 0.0:
        return 0.0 if measured == 0.0 else math.inf
    return abs(measured - reference) / abs(reference)


def summarize(groups: Mapping[str, Sequence[float]]) -> dict[str, dict[str, float]]:
    """Summarise named samples into ``{name: {mean, std, min, max, n}}``."""
    out: dict[str, dict[str, float]] = {}
    for name, values in groups.items():
        arr = np.asarray(list(values), dtype=float)
        if arr.size == 0:
            out[name] = {
                "mean": float("nan"),
                "std": float("nan"),
                "min": float("nan"),
                "max": float("nan"),
                "n": 0,
            }
            continue
        out[name] = {
            "mean": float(arr.mean()),
            "std": float(arr.std(ddof=1)) if arr.size > 1 else 0.0,
            "min": float(arr.min()),
            "max": float(arr.max()),
            "n": int(arr.size),
        }
    return out
