"""Argument-validation helpers.

These raise :class:`~repro.errors.ConfigurationError` with messages that
name both the parameter and the offending value, so configuration mistakes
surface at construction time rather than deep inside the simulator.
"""

from __future__ import annotations

import math
from typing import Any, Sequence

import numpy as np

from repro.errors import ConfigurationError

__all__ = [
    "check_finite",
    "check_in_range",
    "check_positive",
    "check_positive_int",
    "check_probability_vector",
]


def check_positive(name: str, value: float, *, strict: bool = True) -> float:
    """Validate that ``value`` is a positive (or non-negative) finite number.

    Parameters
    ----------
    name:
        Parameter name used in the error message.
    value:
        The number to check.
    strict:
        When true (default) require ``value > 0``; otherwise ``value >= 0``.

    Returns
    -------
    float
        ``value`` unchanged, for call-site chaining.
    """
    if not isinstance(value, (int, float, np.integer, np.floating)) or isinstance(
        value, bool
    ):
        raise ConfigurationError(f"{name} must be a number, got {value!r}")
    v = float(value)
    if not math.isfinite(v):
        raise ConfigurationError(f"{name} must be finite, got {value!r}")
    if strict and v <= 0.0:
        raise ConfigurationError(f"{name} must be > 0, got {value!r}")
    if not strict and v < 0.0:
        raise ConfigurationError(f"{name} must be >= 0, got {value!r}")
    return v


def check_positive_int(name: str, value: int, *, minimum: int = 1) -> int:
    """Validate that ``value`` is an integer >= ``minimum`` and return it."""
    if isinstance(value, bool) or not isinstance(value, (int, np.integer)):
        raise ConfigurationError(f"{name} must be an integer, got {value!r}")
    v = int(value)
    if v < minimum:
        raise ConfigurationError(f"{name} must be >= {minimum}, got {value!r}")
    return v


def check_in_range(
    name: str,
    value: float,
    low: float,
    high: float,
    *,
    inclusive: bool = True,
) -> float:
    """Validate ``low <= value <= high`` (or strict inequalities)."""
    check_finite(name, value)
    v = float(value)
    if inclusive:
        if not (low <= v <= high):
            raise ConfigurationError(
                f"{name} must be in [{low}, {high}], got {value!r}"
            )
    else:
        if not (low < v < high):
            raise ConfigurationError(
                f"{name} must be in ({low}, {high}), got {value!r}"
            )
    return v


def check_finite(name: str, value: Any) -> Any:
    """Validate that a scalar or array is entirely finite and return it."""
    arr = np.asarray(value, dtype=float)
    if not np.all(np.isfinite(arr)):
        raise ConfigurationError(f"{name} must be finite, got {value!r}")
    return value


def check_probability_vector(
    name: str, values: Sequence[float], *, atol: float = 1e-6
) -> np.ndarray:
    """Validate a vector of non-negative fractions summing to one.

    Returns the vector as a float ndarray (re-normalised exactly to 1).
    """
    arr = np.asarray(values, dtype=float)
    if arr.ndim != 1 or arr.size == 0:
        raise ConfigurationError(f"{name} must be a non-empty 1-D vector")
    if not np.all(np.isfinite(arr)):
        raise ConfigurationError(f"{name} must be finite, got {values!r}")
    if np.any(arr < -atol):
        raise ConfigurationError(f"{name} must be non-negative, got {values!r}")
    total = float(arr.sum())
    if abs(total - 1.0) > atol:
        raise ConfigurationError(
            f"{name} must sum to 1 (got sum={total:.9f}): {values!r}"
        )
    arr = np.clip(arr, 0.0, None)
    return arr / arr.sum()
