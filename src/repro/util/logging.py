"""Library logging setup.

The library logs under the ``repro`` namespace and never configures the
root logger; applications opt in by attaching handlers.  ``get_logger``
adds a ``NullHandler`` to the package root once, following the standard
library-logging convention.

The CLI (and any embedding application) opts into console output via
:func:`configure_logging`, which supports two formats:

* ``"text"`` — conventional one-line records;
* ``"json"`` — one JSON object per line.  Structured events emitted by
  :class:`repro.obs.events.EventLog` attach their payload under
  ``extra={"repro_event": {...}}``; the JSON formatter merges that
  payload into the record, so span begin/end events come out as
  machine-readable JSON-lines.

:func:`configure_from_env` honours the ``REPRO_LOG`` environment
variable (``REPRO_LOG=debug``, ``REPRO_LOG=json``,
``REPRO_LOG=info:json``), documented next to ``REPRO_JOBS`` and
``REPRO_CACHE`` in the README.
"""

from __future__ import annotations

import json
import logging
import os
import sys
import time
from typing import IO

from repro.errors import ConfigurationError

__all__ = [
    "get_logger",
    "configure_logging",
    "configure_from_env",
    "current_config",
    "JsonFormatter",
]

_ROOT_NAME = "repro"
_initialized = False
_configured_handler: logging.Handler | None = None
_current_config: tuple[str, str] | None = None

_LEVELS = {
    "critical": logging.CRITICAL,
    "error": logging.ERROR,
    "warning": logging.WARNING,
    "info": logging.INFO,
    "debug": logging.DEBUG,
}


def get_logger(name: str) -> logging.Logger:
    """Return a logger under the ``repro`` hierarchy.

    Parameters
    ----------
    name:
        Either a dotted module name (``repro.sim.engine``) or a short
        suffix (``sim.engine``); both map to the same logger.
    """
    global _initialized
    if not _initialized:
        logging.getLogger(_ROOT_NAME).addHandler(logging.NullHandler())
        _initialized = True
    if not name.startswith(_ROOT_NAME):
        name = f"{_ROOT_NAME}.{name}"
    return logging.getLogger(name)


class JsonFormatter(logging.Formatter):
    """One JSON object per record (JSON-lines).

    Base fields: ``ts`` (epoch seconds), ``level``, ``logger``, ``msg``.
    A ``repro_event`` payload attached by
    :class:`~repro.obs.events.EventLog` is merged in (its keys win over
    nothing — base fields are never clobbered), giving structured span
    begin/end and instant events their machine-readable form.
    """

    def format(self, record: logging.LogRecord) -> str:
        doc = {
            "ts": round(record.created, 6),
            "level": record.levelname.lower(),
            "logger": record.name,
            "msg": record.getMessage(),
        }
        payload = getattr(record, "repro_event", None)
        if isinstance(payload, dict):
            for key, value in payload.items():
                if key not in doc:
                    doc[key] = value
        if record.exc_info and record.exc_info[0] is not None:
            doc["exc"] = self.formatException(record.exc_info)
        return json.dumps(doc, default=str)


class _TextFormatter(logging.Formatter):
    """Conventional text records; appends a compact run-id suffix."""

    def __init__(self) -> None:
        super().__init__("%(asctime)s %(levelname)-7s %(name)s: %(message)s")
        self.converter = time.localtime

    def format(self, record: logging.LogRecord) -> str:
        text = super().format(record)
        payload = getattr(record, "repro_event", None)
        if isinstance(payload, dict) and payload.get("run_id"):
            text += f" [{payload['run_id']}]"
        return text


def configure_logging(
    level: str = "info",
    fmt: str = "text",
    *,
    stream: IO[str] | None = None,
) -> logging.Handler:
    """Attach (or replace) the library's console handler.

    Parameters
    ----------
    level:
        ``critical``/``error``/``warning``/``info``/``debug``.
    fmt:
        ``"text"`` or ``"json"`` (JSON-lines).
    stream:
        Destination (default ``sys.stderr``).

    Idempotent: calling again replaces the previously configured
    handler instead of stacking duplicates, so ``--log-level`` on a CLI
    that already configured defaults just takes effect.
    """
    global _configured_handler, _current_config
    level_no = _LEVELS.get(level.strip().lower())
    if level_no is None:
        raise ConfigurationError(
            f"log level must be one of {sorted(_LEVELS)}, got {level!r}"
        )
    fmt = fmt.strip().lower()
    if fmt not in ("text", "json"):
        raise ConfigurationError(f"log format must be 'text' or 'json', got {fmt!r}")
    root = get_logger(_ROOT_NAME)
    if _configured_handler is not None:
        root.removeHandler(_configured_handler)
    handler = logging.StreamHandler(stream or sys.stderr)
    handler.setFormatter(JsonFormatter() if fmt == "json" else _TextFormatter())
    root.addHandler(handler)
    root.setLevel(level_no)
    _configured_handler = handler
    _current_config = (level.strip().lower(), fmt)
    return handler


def current_config() -> tuple[str, str] | None:
    """The active ``(level, fmt)`` console config, or None if unset.

    Process-pool workers start with the library's default NullHandler
    regardless of what the parent configured; the sweep engine passes
    this value into its worker initializer so worker-side records reach
    the console in the same format as the parent's (see
    ``repro.experiments.parallel._pool_worker_init``).
    """
    return _current_config


def configure_from_env(
    *,
    level: str | None = None,
    fmt: str | None = None,
) -> logging.Handler | None:
    """Configure from ``REPRO_LOG``, with explicit arguments winning.

    ``REPRO_LOG`` accepts ``<level>``, ``<format>`` or
    ``<level>:<format>`` (e.g. ``debug``, ``json``, ``info:json``).
    Returns the handler, or None when neither the environment nor the
    arguments request any logging setup.
    """
    env = os.environ.get("REPRO_LOG", "").strip().lower()
    env_level, env_fmt = None, None
    if env:
        for part in env.split(":"):
            part = part.strip()
            if not part:
                continue
            if part in _LEVELS:
                env_level = part
            elif part in ("text", "json"):
                env_fmt = part
            else:
                raise ConfigurationError(
                    f"REPRO_LOG part {part!r} is neither a level "
                    f"({sorted(_LEVELS)}) nor a format ('text', 'json')"
                )
    level = level or env_level
    fmt = fmt or env_fmt
    if level is None and fmt is None:
        return None
    return configure_logging(level or "info", fmt or "text")
