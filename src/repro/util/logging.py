"""Library logging setup.

The library logs under the ``repro`` namespace and never configures the
root logger; applications opt in by attaching handlers.  ``get_logger``
adds a ``NullHandler`` to the package root once, following the standard
library-logging convention.
"""

from __future__ import annotations

import logging

__all__ = ["get_logger"]

_ROOT_NAME = "repro"
_initialized = False


def get_logger(name: str) -> logging.Logger:
    """Return a logger under the ``repro`` hierarchy.

    Parameters
    ----------
    name:
        Either a dotted module name (``repro.sim.engine``) or a short
        suffix (``sim.engine``); both map to the same logger.
    """
    global _initialized
    if not _initialized:
        logging.getLogger(_ROOT_NAME).addHandler(logging.NullHandler())
        _initialized = True
    if not name.startswith(_ROOT_NAME):
        name = f"{_ROOT_NAME}.{name}"
    return logging.getLogger(name)
