"""Small shared utilities: validation, statistics, ASCII tables, logging,
wall-clock timing."""

from repro.util.validation import (
    check_finite,
    check_in_range,
    check_positive,
    check_positive_int,
    check_probability_vector,
)
from repro.util.stats import RunningStats, mean_std, relative_error, summarize
from repro.util.tables import format_table, format_series
from repro.util.gantt import render_gantt
from repro.util.logging import get_logger
from repro.util.timing import Stopwatch, perf_report

__all__ = [
    "check_finite",
    "check_in_range",
    "check_positive",
    "check_positive_int",
    "check_probability_vector",
    "RunningStats",
    "mean_std",
    "relative_error",
    "summarize",
    "format_table",
    "format_series",
    "render_gantt",
    "get_logger",
    "Stopwatch",
    "perf_report",
]
