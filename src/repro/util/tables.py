"""ASCII table / series rendering for experiment reports.

The benchmark harness prints the same rows and series that the paper's
tables and figures report; these helpers keep that output aligned and
stable so it can be diffed across runs.
"""

from __future__ import annotations

from typing import Any, Mapping, Sequence

__all__ = ["format_table", "format_series"]


def _cell(value: Any, precision: int) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value != value:  # NaN
            return "-"
        magnitude = abs(value)
        if magnitude != 0.0 and (magnitude >= 1e6 or magnitude < 10 ** (-precision)):
            return f"{value:.{precision}e}"
        return f"{value:.{precision}f}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    *,
    title: str | None = None,
    precision: int = 3,
) -> str:
    """Render rows as a fixed-width ASCII table.

    Parameters
    ----------
    headers:
        Column names.
    rows:
        Row cell values; floats are rounded to ``precision`` significant
        decimals, NaN renders as ``-``.
    title:
        Optional title line placed above the table.
    precision:
        Decimal places for float cells.
    """
    str_rows = [[_cell(v, precision) for v in row] for row in rows]
    for i, row in enumerate(str_rows):
        if len(row) != len(headers):
            raise ValueError(
                f"row {i} has {len(row)} cells but there are {len(headers)} headers"
            )
    widths = [len(h) for h in headers]
    for row in str_rows:
        for j, cell in enumerate(row):
            widths[j] = max(widths[j], len(cell))
    sep = "-+-".join("-" * w for w in widths)
    lines = []
    if title:
        lines.append(title)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in str_rows:
        lines.append(" | ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(
    x_label: str,
    x_values: Sequence[Any],
    series: Mapping[str, Sequence[float]],
    *,
    title: str | None = None,
    precision: int = 3,
) -> str:
    """Render one or more y-series against a shared x-axis as a table.

    This is the textual equivalent of one panel of a line plot: the first
    column is the x axis, each further column one named series.
    """
    for name, ys in series.items():
        if len(ys) != len(x_values):
            raise ValueError(
                f"series {name!r} has {len(ys)} points, expected {len(x_values)}"
            )
    headers = [x_label, *series.keys()]
    rows = []
    for i, x in enumerate(x_values):
        rows.append([x, *[ys[i] for ys in series.values()]])
    return format_table(headers, rows, title=title, precision=precision)
