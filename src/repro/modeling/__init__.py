"""Online performance-profile modeling (paper Sec. III.B).

Devices are profiled at runtime: observed ``(block size, time)`` pairs
are accumulated per processing unit, then least-squares fitted against
the paper's basis-function family to produce the execution-time model
``F_p[x]`` and the linear transfer model ``G_p[x]``.  The combined
``E_p[x] = F_p[x] + G_p[x]`` curves are what the block-size selection
solver (:mod:`repro.solver`) equalises.
"""

from repro.modeling.basis import (
    BasisFunction,
    CANDIDATE_MODELS,
    PAPER_BASIS,
    basis_by_name,
)
from repro.modeling.least_squares import FitResult, fit_basis_model
from repro.modeling.model_select import select_model
from repro.modeling.perf_profile import DeviceModel, PerfProfile, ProfilePoint
from repro.modeling.transfer import LinearTransferFit, fit_transfer_model

__all__ = [
    "BasisFunction",
    "PAPER_BASIS",
    "CANDIDATE_MODELS",
    "basis_by_name",
    "FitResult",
    "fit_basis_model",
    "select_model",
    "PerfProfile",
    "ProfilePoint",
    "DeviceModel",
    "LinearTransferFit",
    "fit_transfer_model",
]
