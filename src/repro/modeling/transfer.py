"""The paper's transfer-time model ``G_p[x] = a1*x + a2`` (eq. (2)).

``a1`` captures network + PCIe bandwidth (seconds per unit), ``a2`` the
accumulated latencies.  Both are adjusted from profiling data by least
squares; negative coefficients (possible with noisy small samples) are
clamped to zero since bandwidth and latency are physically non-negative.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.errors import FitError
from repro.modeling.least_squares import r_squared

__all__ = ["LinearTransferFit", "fit_transfer_model"]


@dataclass(frozen=True)
class LinearTransferFit:
    """A fitted ``G[x] = slope*x + intercept`` transfer model.

    ``slope`` is seconds per application unit, ``intercept`` seconds per
    dispatch.  Both are guaranteed non-negative.
    """

    slope: float
    intercept: float
    r2: float
    n_points: int

    def predict(self, x: np.ndarray | float) -> np.ndarray | float:
        """Transfer seconds for block size(s) ``x``."""
        out = self.slope * np.asarray(x, dtype=float) + self.intercept
        return float(out) if np.isscalar(x) else np.asarray(out)

    def derivative(self, x: np.ndarray | float) -> np.ndarray | float:
        """dG/dx — the constant slope, broadcast to the input shape."""
        if np.isscalar(x):
            return self.slope
        return np.full_like(np.asarray(x, dtype=float), self.slope)

    def describe(self) -> str:
        """Human-readable formula."""
        return (
            f"G[x] = {self.slope:.4g}*x + {self.intercept:.4g}"
            f"  (R2={self.r2:.3f})"
        )


def fit_transfer_model(
    x: Sequence[float], y: Sequence[float]
) -> LinearTransferFit:
    """Least-squares fit of the affine transfer model.

    With a single point the slope is taken as ``y/x`` and the intercept
    zero (the best assumption before a second observation arrives).

    Raises
    ------
    FitError
        On empty input, mismatched shapes or non-finite values.
    """
    xa = np.asarray(x, dtype=float)
    ya = np.asarray(y, dtype=float)
    if xa.ndim != 1 or xa.shape != ya.shape or xa.size == 0:
        raise FitError(
            f"transfer fit needs equal-length non-empty 1-D data, got "
            f"{xa.shape} and {ya.shape}"
        )
    if not (np.all(np.isfinite(xa)) and np.all(np.isfinite(ya))):
        raise FitError("transfer observations must be finite")
    if np.any(xa <= 0.0):
        raise FitError("block sizes must be positive")

    if xa.size == 1 or np.ptp(xa) == 0.0:
        slope = max(float(ya.mean() / xa.mean()), 0.0)
        pred = slope * xa
        return LinearTransferFit(
            slope=slope,
            intercept=0.0,
            r2=r_squared(ya, pred),
            n_points=int(xa.size),
        )

    design = np.column_stack([xa, np.ones_like(xa)])
    (slope, intercept), *_ = np.linalg.lstsq(design, ya, rcond=None)
    slope = max(float(slope), 0.0)
    intercept = max(float(intercept), 0.0)
    pred = slope * xa + intercept
    return LinearTransferFit(
        slope=slope,
        intercept=intercept,
        r2=r_squared(ya, pred),
        n_points=int(xa.size),
    )
