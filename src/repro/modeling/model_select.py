"""Model selection over the candidate basis subsets.

The paper fits "a curve that best represents the measured times" from
the eq. (1) family and accepts it once R² >= 0.7.  Fitting all eight
family members to the four initial probe points would interpolate
exactly (8 coefficients, 4 points) and report a meaningless R² = 1, so —
like any careful implementation — we fit a ladder of candidate subsets
(:data:`repro.modeling.basis.CANDIDATE_MODELS`), skip candidates with
more coefficients than points, and select by *adjusted* R², which
penalises extra terms and prevents overfitting (the stated purpose of
the paper's 0.7 threshold).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import FitError
from repro.modeling.basis import CANDIDATE_MODELS, BasisFunction
from repro.modeling.least_squares import FitResult, fit_basis_model

__all__ = ["select_model", "adjusted_r2"]

#: Adjusted-R² window within which a smaller model beats a bigger one.
PARSIMONY_TOL = 1e-3


def adjusted_r2(r2: float, n_points: int, n_params: int) -> float:
    """Adjusted coefficient of determination.

    ``1 - (1 - r2) * (n - 1) / (n - p - 1)``; falls back to plain R²
    when the correction is undefined (``n <= p + 1``).
    """
    if n_points <= n_params + 1:
        return r2
    return 1.0 - (1.0 - r2) * (n_points - 1) / (n_points - n_params - 1)


def _is_sane(fit: FitResult, *, extrapolation_slack: float = 4.0) -> bool:
    """Reject physically implausible execution-time curves.

    A real execution-time model is positive, non-decreasing in block
    size, and grows at most polynomially-gently: processing k times the
    data takes at most ~k² as long (cache falloff is bounded; nothing in
    a data-parallel kernel is exponential in the *block size*).
    Flexible candidates (cubics, exponentials) can match the training
    points perfectly yet swing negative, downward, or astronomically
    upward just beyond them, which would poison the block-size solver;
    those are filtered here.  The check spans the fitted range plus the
    extrapolation slack the selection phase is allowed to use.
    """
    grid = np.linspace(fit.x_max * 1e-3, fit.x_max * extrapolation_slack, 65)
    values = np.asarray(fit.predict(grid))
    if np.any(~np.isfinite(values)) or np.any(values <= 0.0):
        return False
    slopes = np.asarray(fit.derivative(grid))
    # tolerate microscopic negative slopes from floating-point noise
    tol = -1e-9 * max(abs(values).max(), 1.0) / max(fit.x_max, 1.0)
    if not np.all(slopes >= tol):
        return False
    # growth bound: F(slack * x_max) <= slack^2 * F(x_max)
    at_edge = float(fit.predict(fit.x_max))
    at_far = float(fit.predict(fit.x_max * extrapolation_slack))
    if at_edge > 0.0 and at_far > extrapolation_slack**2 * at_edge:
        return False
    return True


def _clamped_linear_fit(
    xa: np.ndarray, ya: np.ndarray, x_scale: float | None
) -> FitResult | None:
    """Non-negative least squares over inherently monotone bases.

    Any non-negative combination of ``{1, x, x^2, x^3, sqrt x}`` is
    positive and non-decreasing on (0, inf), so this fit is sane by
    construction — the safety net when every unconstrained candidate
    fails the physical-sanity check (typical for strongly convex CPU
    cache-pressure curves, whose best affine fit has a negative
    intercept).
    """
    from scipy.optimize import nnls

    from repro.modeling.basis import CONSTANT, CUBE, LINEAR, SQRT, SQUARE
    from repro.modeling.least_squares import _relative_rmse, r_squared

    basis = (CONSTANT, LINEAR, SQUARE, CUBE, SQRT)
    scale = float(x_scale) if x_scale is not None else float(xa.max())
    if scale <= 0.0 or np.any(xa <= 0.0):
        return None
    u = xa / scale
    design = np.column_stack([b.f(u) for b in basis])
    col_norms = np.linalg.norm(design, axis=0)
    col_norms[col_norms == 0.0] = 1.0
    try:
        coef_scaled, _ = nnls(design / col_norms, ya)
    except Exception:
        return None
    coef = coef_scaled / col_norms
    if not np.any(coef > 0.0):
        # degenerate all-zero model: use the mean as a constant floor
        coef = np.zeros(len(basis))
        coef[0] = max(float(ya.mean()), 1e-12)
    y_hat = design @ coef
    return FitResult(
        basis=basis,
        coefficients=coef,
        x_scale=scale,
        r2=r_squared(ya, y_hat),
        n_points=int(xa.size),
        x_max=float(xa.max()),
        rel_rmse=_relative_rmse(ya, y_hat),
    )


def select_model(
    x: Sequence[float],
    y: Sequence[float],
    *,
    candidates: Sequence[Sequence[BasisFunction]] = CANDIDATE_MODELS,
    weights: Sequence[float] | None = None,
    x_scale: float | None = None,
    require_sane: bool = True,
) -> FitResult:
    """Fit every supportable candidate and return the best.

    "Best" is the highest adjusted R² among *sane* candidates (positive
    and non-decreasing over the usable range — see :func:`_is_sane`);
    ties (within 1e-9) go to the candidate with fewer coefficients.  If
    no candidate is sane the best insane one is returned rather than
    failing (the R² threshold loop in Algorithm 1 will keep probing).
    Requires at least two points.

    Raises
    ------
    FitError
        If no candidate can be fitted (fewer than 2 points, or every
        candidate larger than the point count).
    """
    xa = np.asarray(x, dtype=float)
    if xa.size < 2:
        raise FitError(f"model selection needs >= 2 points, got {xa.size}")
    # Strictly require n_points > n_params for selection candidates so the
    # reported R2 reflects generalisation, not interpolation.  (A 2-term
    # candidate therefore needs 3 points; with exactly 2 points we fall
    # back to the interpolating linear fit below.)
    sane_fits: list[tuple[float, FitResult]] = []
    fallback: FitResult | None = None
    fallback_score = -np.inf
    for cand in candidates:
        if len(cand) >= xa.size:
            continue
        try:
            fit = fit_basis_model(x, y, cand, weights=weights, x_scale=x_scale)
        except FitError:
            continue
        score = adjusted_r2(fit.r2, fit.n_points, len(cand))
        if require_sane and not _is_sane(fit):
            if score > fallback_score:
                fallback, fallback_score = fit, score
            continue
        sane_fits.append((score, fit))
    best: FitResult | None = None
    if sane_fits:
        # Parsimony window: flexible candidates (cubics, exponentials)
        # routinely edge out the true model by a hair of adjusted R2 while
        # extrapolating far worse, so among candidates within
        # PARSIMONY_TOL of the best score we keep the smallest model.
        top = max(score for score, _ in sane_fits)
        near_best = [
            (score, fit)
            for score, fit in sane_fits
            if score >= top - PARSIMONY_TOL
        ]
        near_best.sort(key=lambda sf: (len(sf[1].basis), -sf[0]))
        best = near_best[0][1]
    if best is None and fallback is not None:
        # Every candidate is unphysical somewhere in the usable range
        # (e.g. strongly convex data pushes every affine fit's intercept
        # negative).  A coefficient-clamped linear model is always sane
        # and beats handing the solver a curve that goes negative.
        clamped = _clamped_linear_fit(xa, np.asarray(y, dtype=float), x_scale)
        if clamped is not None:
            best = clamped
        else:
            best = fallback
    if best is None:
        # Too few points for any strict candidate: fall back to the
        # smallest candidate that is exactly determined (interpolation),
        # flagged by r2 of the interpolating fit.
        for cand in sorted(candidates, key=len):
            if len(cand) > xa.size:
                continue
            try:
                return fit_basis_model(x, y, cand, weights=weights, x_scale=x_scale)
            except FitError:
                continue
        raise FitError(
            f"no candidate model supportable with {xa.size} points"
        )
    return best
