"""Guarded least-squares fitting over a basis-function set.

Implements the paper's curve-fitting step: given measured
``(block size, seconds)`` pairs, find coefficients ``a_i`` minimising
``sum_j (y_j - sum_i a_i f_i(x_j / x_scale))^2`` and report the
coefficient of determination R² the algorithm's 0.7 acceptance
threshold is checked against.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.errors import FitError
from repro.modeling.basis import BasisFunction

__all__ = ["FitResult", "fit_basis_model", "r_squared", "_relative_rmse"]


def _relative_rmse(y: np.ndarray, y_hat: np.ndarray) -> float:
    """RMS residual divided by the mean target magnitude."""
    y = np.asarray(y, dtype=float)
    y_hat = np.asarray(y_hat, dtype=float)
    denom = float(np.mean(np.abs(y)))
    if denom == 0.0:
        return 0.0 if float(np.max(np.abs(y - y_hat), initial=0.0)) == 0.0 else float("inf")
    return float(np.sqrt(np.mean((y - y_hat) ** 2))) / denom


def r_squared(y: np.ndarray, y_hat: np.ndarray) -> float:
    """Coefficient of determination of predictions ``y_hat`` against ``y``.

    A constant target with zero residuals scores 1.0; a constant target
    with residuals scores 0.0 (the conventional degenerate-case choices).
    """
    y = np.asarray(y, dtype=float)
    y_hat = np.asarray(y_hat, dtype=float)
    ss_res = float(np.sum((y - y_hat) ** 2))
    ss_tot = float(np.sum((y - y.mean()) ** 2))
    if ss_tot == 0.0:
        return 1.0 if ss_res < 1e-24 else 0.0
    return 1.0 - ss_res / ss_tot


@dataclass(frozen=True)
class FitResult:
    """A fitted basis-expansion model ``F[x] = sum_i a_i f_i(x/x_scale)``.

    Attributes
    ----------
    basis:
        The basis functions used (in coefficient order).
    coefficients:
        Fitted ``a_i``.
    x_scale:
        The raw-coordinate scale; predictions evaluate the basis at
        ``x / x_scale``.
    r2:
        Coefficient of determination on the training points.
    n_points:
        How many observations supported the fit.
    x_max:
        Largest raw x observed (extrapolation beyond it is permitted —
        the paper extrapolates — but flagged by :meth:`in_fitted_range`).
    """

    basis: tuple[BasisFunction, ...]
    coefficients: np.ndarray = field(repr=False)
    x_scale: float
    r2: float
    n_points: int
    x_max: float
    #: root-mean-square residual relative to the mean target — a fit
    #: quality measure that, unlike R², stays meaningful when the target
    #: is nearly constant (R² compares against the mean predictor, which
    #: is unbeatable on flat data).
    rel_rmse: float = float("inf")

    @property
    def names(self) -> tuple[str, ...]:
        """Names of the basis terms, in coefficient order."""
        return tuple(b.name for b in self.basis)

    def _u(self, x: np.ndarray | float) -> np.ndarray:
        return np.asarray(x, dtype=float) / self.x_scale

    def predict(self, x: np.ndarray | float) -> np.ndarray | float:
        """Model value at raw block size(s) ``x``."""
        u = self._u(x)
        out = sum(a * b.f(u) for a, b in zip(self.coefficients, self.basis))
        return float(out) if np.isscalar(x) else np.asarray(out)

    def derivative(self, x: np.ndarray | float) -> np.ndarray | float:
        """dF/dx at raw block size(s) ``x`` (chain rule over the scale)."""
        u = self._u(x)
        out = sum(a * b.df(u) for a, b in zip(self.coefficients, self.basis))
        out = out / self.x_scale
        return float(out) if np.isscalar(x) else np.asarray(out)

    def second_derivative(self, x: np.ndarray | float) -> np.ndarray | float:
        """d²F/dx² at raw block size(s) ``x``."""
        u = self._u(x)
        out = sum(a * b.d2f(u) for a, b in zip(self.coefficients, self.basis))
        out = out / self.x_scale**2
        return float(out) if np.isscalar(x) else np.asarray(out)

    def in_fitted_range(self, x: float, *, slack: float = 4.0) -> bool:
        """Whether ``x`` lies within ``slack`` times the profiled range."""
        return 0.0 <= x <= self.x_max * slack

    def describe(self) -> str:
        """Human-readable model formula."""
        terms = [
            f"{a:+.4g}*{b.name}" for a, b in zip(self.coefficients, self.basis)
        ]
        return f"F[x] = {' '.join(terms)}  (u=x/{self.x_scale:.4g}, R2={self.r2:.3f})"


def fit_basis_model(
    x: Sequence[float],
    y: Sequence[float],
    basis: Sequence[BasisFunction],
    *,
    x_scale: float | None = None,
    weights: Sequence[float] | None = None,
) -> FitResult:
    """Least-squares fit of ``y`` against the basis expansion at ``x``.

    Parameters
    ----------
    x, y:
        Raw block sizes (positive) and measured seconds.
    basis:
        Basis functions to combine linearly.
    x_scale:
        Coordinate scale; defaults to ``max(x)`` so the basis sees
        ``u in (0, 1]``.
    weights:
        Optional per-point weights (e.g. to downweight stale probe
        rounds after a rebalance).

    Raises
    ------
    FitError
        If fewer points than coefficients are supplied, sizes are
        non-positive, or the numerical solve fails.
    """
    xa = np.asarray(x, dtype=float)
    ya = np.asarray(y, dtype=float)
    if xa.ndim != 1 or xa.shape != ya.shape:
        raise FitError(f"x and y must be equal-length 1-D, got {xa.shape}, {ya.shape}")
    if xa.size == 0:
        raise FitError("cannot fit a model to zero points")
    if np.any(xa <= 0.0):
        raise FitError(f"block sizes must be positive, got {xa.min()}")
    if not (np.all(np.isfinite(xa)) and np.all(np.isfinite(ya))):
        raise FitError("x and y must be finite")
    nb = len(basis)
    if nb == 0:
        raise FitError("basis must be non-empty")
    if xa.size < nb:
        raise FitError(
            f"{xa.size} points cannot determine {nb} coefficients"
        )
    scale = float(x_scale) if x_scale is not None else float(xa.max())
    if scale <= 0.0:
        raise FitError(f"x_scale must be positive, got {scale}")

    u = xa / scale
    design = np.column_stack([b.f(u) for b in basis])
    target = ya
    if weights is not None:
        w_raw = np.asarray(weights, dtype=float)
        if w_raw.shape != xa.shape or np.any(w_raw < 0):
            raise FitError("weights must be non-negative and match x")
        w = np.sqrt(w_raw)
        design = design * w[:, None]
        target = ya * w

    # Column scaling keeps mixed-magnitude bases (e^u vs u^3) conditioned.
    col_norms = np.linalg.norm(design, axis=0)
    col_norms[col_norms == 0.0] = 1.0
    try:
        coef_scaled, *_ = np.linalg.lstsq(design / col_norms, target, rcond=None)
    except np.linalg.LinAlgError as exc:  # pragma: no cover - lstsq rarely raises
        raise FitError(f"least-squares solve failed: {exc}") from exc
    coef = coef_scaled / col_norms

    u_all = xa / scale
    y_hat = np.asarray(sum(a * b.f(u_all) for a, b in zip(coef, basis)))
    return FitResult(
        basis=tuple(basis),
        coefficients=np.asarray(coef, dtype=float),
        x_scale=scale,
        r2=r_squared(ya, y_hat),
        n_points=int(xa.size),
        x_max=float(xa.max()),
        rel_rmse=_relative_rmse(ya, y_hat),
    )
