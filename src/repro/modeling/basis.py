"""The paper's basis-function family for execution-time models.

Equation (1): ``F_p[x] = a1*f1(x) + ... + an*fn(x)`` with ``f_i`` drawn
from ``{ln x, x, x^2, x^3, e^x, sqrt(x), x*e^x, x*ln x}`` ("this set
should contemplate the vast majority of applications, but other
functions can be included if necessary").

All basis functions here are evaluated on a *scaled* coordinate
``u = x / x_scale`` with ``x_scale`` the largest profiled block size:
``e^x`` on raw block sizes (tens of thousands of units) overflows
float64 immediately, and scaling also keeps the least-squares system
well conditioned.  Scaling is handled by the fitting layer; basis
functions only ever see ``u`` in roughly ``(0, 1]``.

A constant basis function is also provided: the paper's eq. (1) has no
intercept (the intercept lives in ``G_p``), but dispatch/launch
overheads make an intercept essential when fitting ``F_p`` alone, so
the default candidate models include it (documented deviation, see
DESIGN.md).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.errors import ConfigurationError

__all__ = [
    "BasisFunction",
    "PAPER_BASIS",
    "ALL_BASIS",
    "CANDIDATE_MODELS",
    "basis_by_name",
]

#: Floor applied before logarithms so ``u == 0`` stays finite.
_LOG_FLOOR = 1e-12


@dataclass(frozen=True)
class BasisFunction:
    """One term of the model family, with analytic derivatives.

    Attributes
    ----------
    name:
        Stable identifier, e.g. ``"x"``, ``"ln x"``.
    f / df / d2f:
        Vectorised value, first and second derivative with respect to
        the scaled coordinate ``u``.
    needs_positive:
        True for terms undefined at 0 (logarithms); the fitting layer
        floors inputs accordingly.
    """

    name: str
    f: Callable[[np.ndarray], np.ndarray]
    df: Callable[[np.ndarray], np.ndarray]
    d2f: Callable[[np.ndarray], np.ndarray]
    needs_positive: bool = False

    def __call__(self, u: np.ndarray) -> np.ndarray:
        return self.f(np.asarray(u, dtype=float))


def _safe(u: np.ndarray) -> np.ndarray:
    return np.maximum(np.asarray(u, dtype=float), _LOG_FLOOR)


CONSTANT = BasisFunction(
    name="1",
    f=lambda u: np.ones_like(np.asarray(u, dtype=float)),
    df=lambda u: np.zeros_like(np.asarray(u, dtype=float)),
    d2f=lambda u: np.zeros_like(np.asarray(u, dtype=float)),
)

LINEAR = BasisFunction(
    name="x",
    f=lambda u: np.asarray(u, dtype=float),
    df=lambda u: np.ones_like(np.asarray(u, dtype=float)),
    d2f=lambda u: np.zeros_like(np.asarray(u, dtype=float)),
)

SQUARE = BasisFunction(
    name="x^2",
    f=lambda u: np.asarray(u, dtype=float) ** 2,
    df=lambda u: 2.0 * np.asarray(u, dtype=float),
    d2f=lambda u: np.full_like(np.asarray(u, dtype=float), 2.0),
)

CUBE = BasisFunction(
    name="x^3",
    f=lambda u: np.asarray(u, dtype=float) ** 3,
    df=lambda u: 3.0 * np.asarray(u, dtype=float) ** 2,
    d2f=lambda u: 6.0 * np.asarray(u, dtype=float),
)

SQRT = BasisFunction(
    name="sqrt x",
    f=lambda u: np.sqrt(_safe(u)),
    df=lambda u: 0.5 / np.sqrt(_safe(u)),
    d2f=lambda u: -0.25 * _safe(u) ** -1.5,
)

LOG = BasisFunction(
    name="ln x",
    f=lambda u: np.log(_safe(u)),
    df=lambda u: 1.0 / _safe(u),
    d2f=lambda u: -1.0 / _safe(u) ** 2,
    needs_positive=True,
)

EXP = BasisFunction(
    name="e^x",
    f=lambda u: np.exp(np.asarray(u, dtype=float)),
    df=lambda u: np.exp(np.asarray(u, dtype=float)),
    d2f=lambda u: np.exp(np.asarray(u, dtype=float)),
)

X_EXP = BasisFunction(
    name="x e^x",
    f=lambda u: np.asarray(u, dtype=float) * np.exp(np.asarray(u, dtype=float)),
    df=lambda u: (1.0 + np.asarray(u, dtype=float)) * np.exp(np.asarray(u, dtype=float)),
    d2f=lambda u: (2.0 + np.asarray(u, dtype=float)) * np.exp(np.asarray(u, dtype=float)),
)

X_LOG = BasisFunction(
    name="x ln x",
    f=lambda u: np.asarray(u, dtype=float) * np.log(_safe(u)),
    df=lambda u: np.log(_safe(u)) + 1.0,
    d2f=lambda u: 1.0 / _safe(u),
    needs_positive=True,
)

#: The paper's eq. (1) family.
PAPER_BASIS: tuple[BasisFunction, ...] = (
    LOG,
    LINEAR,
    SQUARE,
    CUBE,
    EXP,
    SQRT,
    X_EXP,
    X_LOG,
)

#: Paper family plus the intercept.
ALL_BASIS: tuple[BasisFunction, ...] = (CONSTANT, *PAPER_BASIS)

#: Candidate models for selection: each is a subset of the family.  The
#: fitting layer picks the best-scoring candidate that the number of
#: observed points can support (see :mod:`repro.modeling.model_select`).
CANDIDATE_MODELS: tuple[tuple[BasisFunction, ...], ...] = (
    (CONSTANT, LINEAR),
    (CONSTANT, LINEAR, SQUARE),
    (CONSTANT, LINEAR, SQUARE, CUBE),
    (CONSTANT, LINEAR, SQRT),
    (CONSTANT, LINEAR, LOG),
    (CONSTANT, LINEAR, X_LOG),
    (CONSTANT, LINEAR, EXP),
    (CONSTANT, LINEAR, X_EXP),
    (CONSTANT, LOG),
    (CONSTANT, SQRT),
    (CONSTANT, LINEAR, SQUARE, SQRT, X_LOG),
    ALL_BASIS,
)

_BY_NAME = {b.name: b for b in ALL_BASIS}


def basis_by_name(name: str) -> BasisFunction:
    """Look one basis function up by its stable name."""
    try:
        return _BY_NAME[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown basis function {name!r}; known: {sorted(_BY_NAME)}"
        )
