"""Per-device online performance profiles and the combined model E_p.

A :class:`PerfProfile` accumulates the (block size, execution seconds,
transfer seconds) observations a processing unit produces at runtime.
Fitting one yields a :class:`DeviceModel` bundling the paper's
``F_p[x]`` (basis-expansion execution model), ``G_p[x]`` (linear
transfer model) and their sum ``E_p[x]``, with analytic derivatives for
the interior-point solver and a guarded inverse for the waterfilling
fallback.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.errors import FitError
from repro.modeling.basis import CANDIDATE_MODELS, BasisFunction
from repro.modeling.least_squares import FitResult
from repro.modeling.model_select import select_model
from repro.modeling.transfer import LinearTransferFit, fit_transfer_model

__all__ = ["ProfilePoint", "PerfProfile", "DeviceModel"]

#: Minimum execution-time value the guarded model will report; keeps the
#: solver away from division by ~0 when extrapolating badly-behaved fits.
_TIME_FLOOR = 1e-9


@dataclass(frozen=True)
class ProfilePoint:
    """One profiling observation of one device."""

    units: float
    exec_s: float
    transfer_s: float
    round_index: int = 0

    def __post_init__(self) -> None:
        if self.units <= 0:
            raise FitError(f"profile point needs positive units, got {self.units}")
        if self.exec_s < 0 or self.transfer_s < 0:
            raise FitError("profile times must be non-negative")


class DeviceModel:
    """The fitted performance model of one processing unit.

    ``E(x) = F(x) + G(x)`` — total seconds to receive and process a block
    of ``x`` units.  Evaluation is *guarded*: values are floored at a
    tiny positive epsilon so downstream solvers never divide by zero or
    take logs of negative extrapolations.
    """

    def __init__(
        self,
        device_id: str,
        exec_fit: FitResult,
        transfer_fit: LinearTransferFit,
    ) -> None:
        self.device_id = device_id
        self.exec_fit = exec_fit
        self.transfer_fit = transfer_fit

    @property
    def r2(self) -> float:
        """The fit quality checked against the paper's 0.7 threshold.

        The execution fit dominates (the transfer ground truth is affine,
        so its fit is essentially exact); we report the minimum of both.
        """
        return min(self.exec_fit.r2, self.transfer_fit.r2)

    @property
    def x_max(self) -> float:
        """Largest profiled block size."""
        return self.exec_fit.x_max

    def F(self, x: np.ndarray | float) -> np.ndarray | float:
        """Fitted execution seconds for block size(s) ``x``."""
        return self.exec_fit.predict(x)

    def G(self, x: np.ndarray | float) -> np.ndarray | float:
        """Fitted transfer seconds for block size(s) ``x``."""
        return self.transfer_fit.predict(x)

    def E(self, x: np.ndarray | float) -> np.ndarray | float:
        """Guarded total seconds ``max(F + G, epsilon)``."""
        out = np.asarray(self.exec_fit.predict(x)) + np.asarray(
            self.transfer_fit.predict(x)
        )
        out = np.maximum(out, _TIME_FLOOR)
        return float(out) if np.isscalar(x) else out

    def dE(self, x: np.ndarray | float) -> np.ndarray | float:
        """dE/dx."""
        out = np.asarray(self.exec_fit.derivative(x)) + np.asarray(
            self.transfer_fit.derivative(x)
        )
        return float(out) if np.isscalar(x) else out

    def d2E(self, x: np.ndarray | float) -> np.ndarray | float:
        """d²E/dx² (the transfer model is affine, so only F contributes)."""
        out = self.exec_fit.second_derivative(x)
        return out

    def rate(self, x: float) -> float:
        """Modelled units per second at block size ``x``."""
        return float(x) / float(self.E(x))

    def invert(self, target_seconds: float, x_hi: float) -> float:
        """Largest ``x in [0, x_hi]`` with ``E(x) <= target_seconds``.

        Robust to (rare) non-monotone fitted curves: a coarse grid scan
        brackets the crossing before bisection refines it.  Returns 0.0
        when even tiny blocks exceed the target and ``x_hi`` when the
        whole range fits.
        """
        if target_seconds <= 0.0 or x_hi <= 0.0:
            return 0.0
        if float(self.E(x_hi)) <= target_seconds:
            return x_hi
        grid = np.linspace(0.0, x_hi, 65)[1:]
        values = np.asarray(self.E(grid))
        below = values <= target_seconds
        if not below.any():
            return 0.0
        # last grid point still within budget starts the bracket
        idx = int(np.max(np.nonzero(below)))
        lo = float(grid[idx])
        hi = float(grid[idx + 1]) if idx + 1 < grid.size else x_hi
        for _ in range(40):
            mid = 0.5 * (lo + hi)
            if float(self.E(mid)) <= target_seconds:
                lo = mid
            else:
                hi = mid
        return lo

    def describe(self) -> str:
        """Human-readable summary of both fitted curves."""
        return (
            f"{self.device_id}: {self.exec_fit.describe()}; "
            f"{self.transfer_fit.describe()}"
        )

    def state_summary(self) -> dict:
        """Plain-data snapshot of the model for the decision ledger.

        Captures what the scheduler knew when it used this model: the
        basis ``model_select`` chose, the fitted coefficients, both fit
        qualities and how many observations supported them.
        """
        return {
            "basis": list(self.exec_fit.names),
            "coefficients": [float(c) for c in self.exec_fit.coefficients],
            "x_scale": float(self.exec_fit.x_scale),
            "r2": float(self.r2),
            "exec_r2": float(self.exec_fit.r2),
            "rel_rmse": float(self.exec_fit.rel_rmse),
            "n_points": int(self.exec_fit.n_points),
            "x_max": float(self.x_max),
            "transfer": {
                "slope": float(self.transfer_fit.slope),
                "intercept": float(self.transfer_fit.intercept),
                "r2": float(self.transfer_fit.r2),
            },
        }


class PerfProfile:
    """Accumulates one device's observations and fits its model.

    Parameters
    ----------
    device_id:
        Stable processing-unit identifier.
    max_points:
        Observation window; older points are dropped beyond it (the
        rebalancing phase keeps refining with recent behaviour, per
        Sec. III.D).
    """

    def __init__(self, device_id: str, *, max_points: int = 512) -> None:
        if max_points < 2:
            raise FitError("max_points must be >= 2")
        self.device_id = device_id
        self.max_points = int(max_points)
        self._points: list[ProfilePoint] = []

    def __len__(self) -> int:
        return len(self._points)

    @property
    def points(self) -> tuple[ProfilePoint, ...]:
        """All retained observations, oldest first."""
        return tuple(self._points)

    #: retained observations per identical block size — executing the
    #: same size hundreds of times (steady-state execution does exactly
    #: that) must not evict the probe points that give the fit its range
    PER_SIZE_LIMIT = 8

    def add(
        self,
        units: float,
        exec_s: float,
        transfer_s: float,
        *,
        round_index: int = 0,
    ) -> None:
        """Record one observation.

        Retention is diversity-preserving: at most
        :data:`PER_SIZE_LIMIT` points per identical size are kept (the
        oldest duplicate is replaced), and the overall window drops the
        oldest point of the *most populous* size first, so the profiled
        size range survives arbitrarily long runs.
        """
        point = ProfilePoint(
            units=units,
            exec_s=exec_s,
            transfer_s=transfer_s,
            round_index=round_index,
        )
        same_size = [i for i, p in enumerate(self._points) if p.units == units]
        if len(same_size) >= self.PER_SIZE_LIMIT:
            del self._points[same_size[0]]
        self._points.append(point)
        while len(self._points) > self.max_points:
            counts: dict[float, int] = {}
            for p in self._points:
                counts[p.units] = counts.get(p.units, 0) + 1
            crowded = max(counts, key=lambda u: counts[u])
            for i, p in enumerate(self._points):
                if p.units == crowded:
                    del self._points[i]
                    break

    def observed_sizes(self) -> np.ndarray:
        """Distinct block sizes observed so far, ascending."""
        return np.unique([p.units for p in self._points])

    def fit(
        self,
        *,
        candidates: Sequence[Sequence[BasisFunction]] = CANDIDATE_MODELS,
        recency_decay: float = 1.0,
    ) -> DeviceModel:
        """Fit F and G to the retained observations.

        Parameters
        ----------
        candidates:
            Basis subsets to consider for F.
        recency_decay:
            Per-observation-age weight multiplier in (0, 1]; 1.0 (default)
            weights all points equally, smaller values favour recent
            behaviour after a rebalance.

        Raises
        ------
        FitError
            With fewer than two observations.
        """
        if len(self._points) < 2:
            raise FitError(
                f"{self.device_id}: need >= 2 observations to fit, "
                f"have {len(self._points)}"
            )
        if not 0.0 < recency_decay <= 1.0:
            raise FitError(f"recency_decay must be in (0, 1], got {recency_decay}")
        x = np.array([p.units for p in self._points], dtype=float)
        y_exec = np.array([p.exec_s for p in self._points], dtype=float)
        y_xfer = np.array([p.transfer_s for p in self._points], dtype=float)
        n = x.size
        weights = None
        if recency_decay < 1.0:
            ages = np.arange(n - 1, -1, -1, dtype=float)
            weights = recency_decay**ages
        exec_fit = select_model(x, y_exec, candidates=candidates, weights=weights)
        transfer_fit = fit_transfer_model(x, y_xfer)
        return DeviceModel(self.device_id, exec_fit, transfer_fit)

    def clear(self) -> None:
        """Drop all observations (fresh profiling epoch)."""
        self._points.clear()
