"""Cluster topology: machines, the master node, and the transfer model."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.cluster.device import Device
from repro.cluster.machine import Machine
from repro.cluster.network import NetworkSpec, PCIeSpec, TransferModel
from repro.errors import ConfigurationError

__all__ = ["Cluster"]


@dataclass(frozen=True)
class Cluster:
    """A set of machines plus the interconnect.

    The first machine is the *master node* (the paper runs Algorithm 1
    "in a single node, called master node"); data originates there, so
    devices on it pay no network transfer.

    Parameters
    ----------
    machines:
        Cluster nodes; names must be unique.
    network / pcie:
        Link specs for the transfer-time ground truth.
    use_cpus:
        Include CPU processing units (the paper always does).
    max_gpus_per_machine:
        Cap GPU units per machine (Fig. 6/7 use one per machine).
    """

    machines: tuple[Machine, ...]
    network: NetworkSpec = field(default_factory=NetworkSpec)
    pcie: PCIeSpec = field(default_factory=PCIeSpec)
    use_cpus: bool = True
    max_gpus_per_machine: int | None = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "machines", tuple(self.machines))
        if not self.machines:
            raise ConfigurationError("a cluster needs at least one machine")
        names = [m.name for m in self.machines]
        if len(set(names)) != len(names):
            raise ConfigurationError(f"duplicate machine names: {names}")
        if self.max_gpus_per_machine is not None and self.max_gpus_per_machine < 0:
            raise ConfigurationError("max_gpus_per_machine must be >= 0 or None")

    @property
    def master(self) -> str:
        """Name of the master machine (the first one)."""
        return self.machines[0].name

    @property
    def transfer_model(self) -> TransferModel:
        """Ground-truth staging model for this topology."""
        return TransferModel(
            network=self.network, pcie=self.pcie, master_machine=self.master
        )

    def devices(self) -> list[Device]:
        """All processing units in deterministic (machine, kind) order."""
        out: list[Device] = []
        for m in self.machines:
            out.extend(
                m.devices(use_cpu=self.use_cpus, max_gpus=self.max_gpus_per_machine)
            )
        if not out:
            raise ConfigurationError(
                "cluster has no processing units (no GPUs and use_cpus=False)"
            )
        return out

    def device(self, device_id: str) -> Device:
        """Look up one processing unit by id."""
        for d in self.devices():
            if d.device_id == device_id:
                return d
        raise ConfigurationError(f"no device {device_id!r} in cluster")

    def machine(self, name: str) -> Machine:
        """Look up one machine by name."""
        for m in self.machines:
            if m.name == name:
                return m
        raise ConfigurationError(f"no machine {name!r} in cluster")

    def subset(self, names: Sequence[str] | Iterable[str]) -> "Cluster":
        """Build a sub-cluster keeping only the named machines (in order)."""
        names = list(names)
        return Cluster(
            machines=tuple(self.machine(n) for n in names),
            network=self.network,
            pcie=self.pcie,
            use_cpus=self.use_cpus,
            max_gpus_per_machine=self.max_gpus_per_machine,
        )

    @property
    def total_peak_gflops(self) -> float:
        """Aggregate theoretical peak of all processing units."""
        return sum(d.peak_gflops for d in self.devices())

    def __len__(self) -> int:
        return len(self.machines)
