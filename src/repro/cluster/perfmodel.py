"""Hidden ground-truth performance functions.

This module is the simulator's stand-in for real silicon: given a device
and an application kernel, it produces the *true* execution time of a
block, which the engine then perturbs with measurement noise and reports
to the scheduling policies.  Policies never import this module — they
must rediscover these curves online, exactly as the paper's algorithm
does on hardware.

The time model, per block of ``u`` application units:

``T(u) = launch + c * u / occ(u) * cache_penalty(u)``
``occ(u) = max(u / (u + h), occ_floor)``

where ``c`` is the asymptotic per-unit cost (work / sustained rate),
``h`` the device's *half-saturation size* (a block of ``u = h`` units
runs at 50 % of the sustained rate — small blocks cannot fill the
parallel lanes), and ``occ_floor`` the small-kernel rate floor (a tiny
kernel still engages a fixed fraction of the device rather than taking
constant time; GPUs bottom out around 1/16 of sustained GEMM rate,
CPUs at one core's worth).  Above the floor the curve is affine,
``T = launch + c*(u + h)``; below it, steeper-sloped linear — matching
measured GEMM/Monte-Carlo rate-vs-size curves and giving the HDSS-style
log-looking saturation of Fig. 1.  This reproduces the two behaviours
the paper's evaluation hinges on:

* GPUs are dramatically inefficient on small blocks (Greedy's fixed
  small pieces waste them; PLB-HeC's large per-GPU blocks do not);
* measured FLOPs/s-vs-size curves saturate, which is exactly the
  logarithmic shape HDSS fits and the curve family of Fig. 1.

CPU units additionally pay a mild cache penalty once a block's working
set overflows the last-level cache, giving the upward curvature of the
CPU curves in Fig. 1.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.cluster.device import CPUSpec, Device, DeviceKind, GPUSpec
from repro.cluster.network import TransferModel
from repro.cluster.topology import Cluster
from repro.errors import ConfigurationError
from repro.util.validation import check_in_range, check_positive

__all__ = ["KernelCharacteristics", "DevicePerformance", "GroundTruth"]

#: Parallel capacity of the reference GPU (Tesla K20c: 13 SMs x 2048).
REF_GPU_CAPACITY = 13 * 2048
#: Core count of the reference GPU (Tesla K20c).
REF_GPU_CORES = 2496
#: Virtual cores of the reference CPU (Xeon E5-2690V2: 10 cores x 2).
REF_CPU_THREADS = 20


@dataclass(frozen=True)
class KernelCharacteristics:
    """How one application kernel loads a device.

    Built by the application (:mod:`repro.apps`) from its own parameters.

    Attributes
    ----------
    name:
        Kernel name, e.g. ``"matmul"``.
    flops_per_unit:
        Floating-point work per application unit (e.g. ``2*n^2`` per
        matrix row).
    bytes_in_per_unit / bytes_out_per_unit:
        Data staged to / retrieved from the device per unit.
    cpu_efficiency / gpu_efficiency:
        Kernel-specific multipliers on the device's sustained efficiency
        (e.g. a branchy kernel runs GPUs below their GEMM efficiency).
    gpu_half_units / cpu_half_units:
        Half-saturation block size for the *reference* device; scaled by
        each device's parallel capacity.
    gpu_launch_overhead_s / cpu_launch_overhead_s:
        Fixed per-dispatch cost (kernel launch + runtime bookkeeping).
    cpu_cache_gamma:
        Relative slowdown of CPU units once the working set overflows
        cache (0 disables the penalty).
    gpu_min_occupancy:
        Small-kernel rate floor for GPUs: the fraction of sustained rate
        a near-empty kernel still achieves (CPUs use one core's worth,
        ``1 / threads``, automatically).
    gpu_half_scaling:
        How the half-saturation size scales across GPU models:
        ``"threads"`` (default) scales with max resident threads —
        right for latency-hiding-limited kernels like tiled GEMM;
        ``"cores"`` scales with the core count — right for
        compute-bound kernels whose units are long-running independent
        threads (one option / one gene per thread), where a few
        thousand threads already saturate the ALUs.
    """

    name: str
    flops_per_unit: float
    bytes_in_per_unit: float
    bytes_out_per_unit: float = 8.0
    cpu_efficiency: float = 1.0
    gpu_efficiency: float = 1.0
    gpu_half_units: float = 256.0
    cpu_half_units: float = 8.0
    gpu_launch_overhead_s: float = 200e-6
    cpu_launch_overhead_s: float = 50e-6
    cpu_cache_gamma: float = 0.0
    gpu_min_occupancy: float = 1.0 / 16.0
    gpu_half_scaling: str = "threads"

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("kernel name must be non-empty")
        check_positive("flops_per_unit", self.flops_per_unit)
        check_positive("bytes_in_per_unit", self.bytes_in_per_unit, strict=False)
        check_positive("bytes_out_per_unit", self.bytes_out_per_unit, strict=False)
        check_positive("cpu_efficiency", self.cpu_efficiency)
        check_positive("gpu_efficiency", self.gpu_efficiency)
        check_positive("gpu_half_units", self.gpu_half_units)
        check_positive("cpu_half_units", self.cpu_half_units)
        check_positive("gpu_launch_overhead_s", self.gpu_launch_overhead_s, strict=False)
        check_positive("cpu_launch_overhead_s", self.cpu_launch_overhead_s, strict=False)
        check_positive("cpu_cache_gamma", self.cpu_cache_gamma, strict=False)
        check_in_range("gpu_min_occupancy", self.gpu_min_occupancy, 0.0, 1.0, inclusive=False)
        if self.gpu_half_scaling not in ("threads", "cores"):
            raise ConfigurationError(
                f"gpu_half_scaling must be 'threads' or 'cores', "
                f"got {self.gpu_half_scaling!r}"
            )

    @property
    def bytes_per_unit(self) -> float:
        """Total bytes moved per unit (in + out)."""
        return self.bytes_in_per_unit + self.bytes_out_per_unit


class DevicePerformance:
    """Ground-truth execution-time function of one (device, kernel) pair."""

    def __init__(self, device: Device, kernel: KernelCharacteristics) -> None:
        self.device = device
        self.kernel = kernel
        eff = device.sustained_efficiency
        if device.kind is DeviceKind.GPU:
            eff *= kernel.gpu_efficiency
            spec = device.spec
            assert isinstance(spec, GPUSpec)
            if kernel.gpu_half_scaling == "cores":
                scale = spec.cores / REF_GPU_CORES
            else:
                scale = device.parallel_capacity / REF_GPU_CAPACITY
            self.half_units = kernel.gpu_half_units * scale
            self.launch_overhead_s = kernel.gpu_launch_overhead_s
            self.occupancy_floor = kernel.gpu_min_occupancy
        else:
            eff *= kernel.cpu_efficiency
            self.half_units = kernel.cpu_half_units * (
                device.parallel_capacity / REF_CPU_THREADS
            )
            self.launch_overhead_s = kernel.cpu_launch_overhead_s
            # a near-empty CPU task still runs at one core's speed
            self.occupancy_floor = 1.0 / device.parallel_capacity
        self.sustained_gflops = device.peak_gflops * eff
        #: asymptotic seconds per unit at full saturation
        self.unit_cost_s = kernel.flops_per_unit / (self.sustained_gflops * 1e9)
        # CPU cache penalty: working sets beyond ~2x LLC run up to
        # (1 + gamma) slower; the transition is smooth (saturating).
        self._cache_units = math.inf
        self._cache_gamma = 0.0
        if device.kind is DeviceKind.CPU and kernel.cpu_cache_gamma > 0.0:
            spec = device.spec
            assert isinstance(spec, CPUSpec)
            cache_bytes = spec.cache_mb * 1e6
            per_unit = max(kernel.bytes_in_per_unit, 1.0)
            self._cache_units = 2.0 * cache_bytes / per_unit
            self._cache_gamma = kernel.cpu_cache_gamma

    def efficiency(self, units: float) -> float:
        """Fraction of the sustained rate a block of this size achieves.

        Ignores the cache penalty and launch overhead: this is the
        floored occupancy curve ``max(u / (u + h), occ_floor)``.
        """
        if units <= 0.0:
            return 0.0
        return max(units / (units + self.half_units), self.occupancy_floor)

    def cache_penalty(self, units: float) -> float:
        """Multiplicative slowdown from cache overflow (1.0 = none)."""
        if self._cache_gamma == 0.0 or units <= 0.0:
            return 1.0
        return 1.0 + self._cache_gamma * units / (units + self._cache_units)

    def exec_time(self, units: float) -> float:
        """True (noise-free) seconds to execute a block of ``units``."""
        if units < 0:
            raise ValueError(f"units must be >= 0, got {units}")
        if units == 0:
            return 0.0
        u = float(units)
        c = self.unit_cost_s
        occ = self.efficiency(u)
        return self.launch_overhead_s + (c * u / occ) * self.cache_penalty(u)

    def rate_gflops(self, units: float) -> float:
        """Achieved GFLOP/s on a block of ``units`` (an HDSS-style view)."""
        t = self.exec_time(units)
        if t <= 0.0:
            return 0.0
        return units * self.kernel.flops_per_unit / t / 1e9


class GroundTruth:
    """All (device, kernel) performance functions for one cluster.

    The simulation backend owns one of these per run; scheduling policies
    must not touch it.
    """

    def __init__(self, cluster: Cluster, kernel: KernelCharacteristics) -> None:
        self.cluster = cluster
        self.kernel = kernel
        self.transfer_model: TransferModel = cluster.transfer_model
        self._perf = {
            d.device_id: DevicePerformance(d, kernel) for d in cluster.devices()
        }

    def performance(self, device_id: str) -> DevicePerformance:
        """The execution-time model of one device."""
        try:
            return self._perf[device_id]
        except KeyError:
            raise ConfigurationError(f"no device {device_id!r} in ground truth")

    def exec_time(self, device_id: str, units: float) -> float:
        """True compute seconds for a block on a device."""
        return self.performance(device_id).exec_time(units)

    def transfer_time(self, device_id: str, units: float) -> float:
        """True staging seconds for a block's input bytes."""
        device = self.cluster.device(device_id)
        return self.transfer_model.transfer_time(
            device, units * self.kernel.bytes_in_per_unit
        )

    def total_time(self, device_id: str, units: float) -> float:
        """Transfer + compute seconds (the paper's ``E_g``)."""
        return self.exec_time(device_id, units) + self.transfer_time(device_id, units)

    def ideal_partition(self, total_units: int) -> dict[str, float]:
        """Oracle equal-time split of ``total_units`` across all devices.

        Solved by bisection on the common finish time; used by the Oracle
        baseline and by tests as the optimum reference.
        """
        devices = [d.device_id for d in self.cluster.devices()]
        if total_units <= 0:
            return {d: 0.0 for d in devices}

        def units_at_time(device_id: str, t: float) -> float:
            # invert the monotone total_time via bisection on units
            lo, hi = 0.0, float(total_units)
            if self.total_time(device_id, hi) <= t:
                return hi
            if self.total_time(device_id, lo + 1e-9) >= t:
                return 0.0
            for _ in range(80):
                mid = 0.5 * (lo + hi)
                if self.total_time(device_id, mid) <= t:
                    lo = mid
                else:
                    hi = mid
            return lo

        # outer bisection on the common completion time
        t_lo = 0.0
        t_hi = max(self.total_time(d, total_units) for d in devices)
        for _ in range(80):
            t_mid = 0.5 * (t_lo + t_hi)
            assigned = sum(units_at_time(d, t_mid) for d in devices)
            if assigned >= total_units:
                t_hi = t_mid
            else:
                t_lo = t_mid
        return {d: units_at_time(d, t_hi) for d in devices}
