"""The paper's testbed: Table I machine configurations.

Machine B's CPU is listed as "Intel i7 a20" in the paper; we read that as
the i7-920 (4 cores @ 2.67 GHz, 8 MB cache), the only i7 matching the
listed figures.  Dual-GPU boards (GTX 295 and, per the paper's Table I,
GTX 680) are modelled as one :class:`~repro.cluster.device.GPUSpec` per
on-board processor; the paper's experiments with "one GPU per machine"
are reproduced by passing ``max_gpus_per_machine=1`` (the default here).
"""

from __future__ import annotations

from repro.cluster.device import CPUSpec, GPUArch, GPUSpec
from repro.cluster.machine import Machine
from repro.cluster.network import NetworkSpec, PCIeSpec
from repro.cluster.topology import Cluster
from repro.errors import ConfigurationError

__all__ = [
    "machine_a",
    "machine_b",
    "machine_c",
    "machine_d",
    "paper_machines",
    "paper_cluster",
    "cloud_cluster",
]


def machine_a() -> Machine:
    """Machine A: Xeon E5-2690V2 (10c @ 3.0 GHz) + Tesla K20c."""
    return Machine(
        name="A",
        cpu=CPUSpec(
            model="Intel Xeon E5-2690V2",
            cores=10,
            clock_ghz=3.0,
            cache_mb=25.0,
            ram_gb=256.0,
        ),
        gpus=(
            GPUSpec(
                model="Tesla K20c",
                cores=2496,
                sms=13,
                clock_ghz=0.706,
                mem_bandwidth_gbs=205.0,
                mem_gb=6.0,
                arch=GPUArch.KEPLER,
            ),
        ),
    )


def machine_b() -> Machine:
    """Machine B: i7-920 (4c @ 2.67 GHz) + GTX 295 (two Tesla-arch GPUs)."""
    gpu = GPUSpec(
        model="GTX 295",
        cores=240,
        sms=30,
        clock_ghz=1.242,
        mem_bandwidth_gbs=111.9,  # per processor: board total 223.8 GB/s
        mem_gb=0.896,
        arch=GPUArch.TESLA,
        flops_per_cycle=2.0,
    )
    return Machine(
        name="B",
        cpu=CPUSpec(
            model="Intel i7-920",
            cores=4,
            clock_ghz=2.67,
            cache_mb=8.0,
            ram_gb=8.0,
            flops_per_cycle=4.0,  # SSE-era part
        ),
        gpus=(gpu, gpu),
    )


def machine_c() -> Machine:
    """Machine C: i7-4930K (6c @ 3.4 GHz) + GTX 680 (listed dual processor)."""
    gpu = GPUSpec(
        model="GTX 680",
        cores=1536,
        sms=8,
        clock_ghz=1.058,
        mem_bandwidth_gbs=96.1,  # per processor: board total 192.2 GB/s
        mem_gb=2.0,
        arch=GPUArch.KEPLER,
    )
    return Machine(
        name="C",
        cpu=CPUSpec(
            model="Intel i7-4930K",
            cores=6,
            clock_ghz=3.4,
            cache_mb=12.0,
            ram_gb=32.0,
        ),
        gpus=(gpu, gpu),
    )


def machine_d() -> Machine:
    """Machine D: i7-3930K (6c @ 3.2 GHz) + GTX Titan."""
    return Machine(
        name="D",
        cpu=CPUSpec(
            model="Intel i7-3930K",
            cores=6,
            clock_ghz=3.2,
            cache_mb=12.0,
            ram_gb=32.0,
        ),
        gpus=(
            GPUSpec(
                model="GTX Titan",
                cores=2688,
                sms=14,
                clock_ghz=0.876,
                mem_bandwidth_gbs=223.8,
                mem_gb=6.0,
                arch=GPUArch.KEPLER,
            ),
        ),
    )


def paper_machines() -> list[Machine]:
    """All four Table I machines, in paper order A, B, C, D."""
    return [machine_a(), machine_b(), machine_c(), machine_d()]


def paper_cluster(
    num_machines: int = 4,
    *,
    max_gpus_per_machine: int | None = 1,
    use_cpus: bool = True,
    network: NetworkSpec | None = None,
    pcie: PCIeSpec | None = None,
) -> Cluster:
    """One of the paper's four scenarios: machines A / AB / ABC / ABCD.

    Parameters
    ----------
    num_machines:
        1-4; machine A is always the master node.
    max_gpus_per_machine:
        Defaults to one GPU per machine, the configuration the paper uses
        in the block-distribution and idleness experiments; pass ``None``
        to expose both processors of the dual boards.
    """
    if not 1 <= num_machines <= 4:
        raise ConfigurationError(
            f"the paper's scenarios use 1..4 machines, got {num_machines}"
        )
    return Cluster(
        machines=tuple(paper_machines()[:num_machines]),
        network=network if network is not None else NetworkSpec(),
        pcie=pcie if pcie is not None else PCIeSpec(),
        use_cpus=use_cpus,
        max_gpus_per_machine=max_gpus_per_machine,
    )


#: VM instance catalogue for :func:`cloud_cluster` — (CPU template,
#: optional GPU template), loosely modelled on 2015-era cloud offerings.
_VM_CATALOG: tuple[tuple[CPUSpec, GPUSpec | None], ...] = (
    (
        CPUSpec(model="vm-compute-8", cores=8, clock_ghz=2.6, cache_mb=20.0,
                ram_gb=32.0),
        None,
    ),
    (
        CPUSpec(model="vm-standard-4", cores=4, clock_ghz=2.4, cache_mb=10.0,
                ram_gb=16.0),
        None,
    ),
    (
        CPUSpec(model="vm-gpu-host-8", cores=8, clock_ghz=2.5, cache_mb=20.0,
                ram_gb=60.0),
        GPUSpec(model="vm-K520", cores=1536, sms=8, clock_ghz=0.8,
                mem_bandwidth_gbs=160.0, mem_gb=4.0, arch=GPUArch.KEPLER),
    ),
    (
        CPUSpec(model="vm-gpu-host-16", cores=16, clock_ghz=2.6, cache_mb=25.0,
                ram_gb=122.0),
        GPUSpec(model="vm-K80", cores=2496, sms=13, clock_ghz=0.56,
                mem_bandwidth_gbs=240.0, mem_gb=12.0, arch=GPUArch.KEPLER),
    ),
    (
        CPUSpec(model="vm-gpu-host-4", cores=4, clock_ghz=2.4, cache_mb=10.0,
                ram_gb=30.0),
        GPUSpec(model="vm-M2050", cores=448, sms=14, clock_ghz=1.15,
                mem_bandwidth_gbs=148.0, mem_gb=3.0, arch=GPUArch.FERMI),
    ),
)


def cloud_cluster(
    num_vms: int = 6,
    *,
    seed: int = 0,
    network: NetworkSpec | None = None,
) -> Cluster:
    """A randomised heterogeneous VM fleet (the paper's Sec. VI outlook).

    Instance types are drawn from a small 2015-era catalogue (CPU-only
    and GPU instances) with per-VM clock jitter of ±10 % — the
    noisy-neighbour variation of shared infrastructure.  At least one
    GPU instance is always included so the cluster exhibits the
    CPU/GPU heterogeneity the balancers target.

    Parameters
    ----------
    num_vms:
        Fleet size (>= 2).
    seed:
        Fleet layout seed; the same seed always builds the same fleet.
    network:
        Interconnect override (cloud networks are slower than cluster
        fabrics; default 0.6 GB/s with 200 us latency).
    """
    import numpy as np

    if num_vms < 2:
        raise ConfigurationError(f"a cloud fleet needs >= 2 VMs, got {num_vms}")
    rng = np.random.default_rng(seed)
    machines = []
    has_gpu = False
    for i in range(num_vms):
        cpu_template, gpu_template = _VM_CATALOG[
            int(rng.integers(len(_VM_CATALOG)))
        ]
        if i == num_vms - 1 and not has_gpu and gpu_template is None:
            cpu_template, gpu_template = _VM_CATALOG[3]
        jitter = float(rng.uniform(0.9, 1.1))
        cpu = CPUSpec(
            model=cpu_template.model,
            cores=cpu_template.cores,
            clock_ghz=round(cpu_template.clock_ghz * jitter, 3),
            cache_mb=cpu_template.cache_mb,
            ram_gb=cpu_template.ram_gb,
        )
        gpus: tuple[GPUSpec, ...] = ()
        if gpu_template is not None:
            has_gpu = True
            gpus = (
                GPUSpec(
                    model=gpu_template.model,
                    cores=gpu_template.cores,
                    sms=gpu_template.sms,
                    clock_ghz=round(gpu_template.clock_ghz * jitter, 3),
                    mem_bandwidth_gbs=gpu_template.mem_bandwidth_gbs,
                    mem_gb=gpu_template.mem_gb,
                    arch=gpu_template.arch,
                ),
            )
        machines.append(Machine(name=f"vm{i}", cpu=cpu, gpus=gpus))
    return Cluster(
        machines=tuple(machines),
        network=network
        if network is not None
        else NetworkSpec(bandwidth_gbs=0.6, latency_s=200e-6),
        pcie=PCIeSpec(),
    )
