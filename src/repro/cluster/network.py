"""Transfer-time ground truth: cluster network and PCIe.

The paper models measured transfer time with ``G_p[x] = a1*x + a2`` where
``a1`` captures network + PCIe bandwidth and ``a2`` the latencies.  The
simulator's ground truth is exactly that affine structure, composed from
the path a block actually travels:

* master -> remote machine: network latency + size / network bandwidth
  (skipped for devices on the master machine);
* host -> GPU: PCIe latency + size / PCIe bandwidth (skipped for CPU
  units);
* host -> CPU: a small memcpy cost at host-memory bandwidth.

So a fitted linear model *can* represent it perfectly — what the
load-balancing algorithms must still discover online are the
coefficients, which differ per device and per application byte volume.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.device import Device
from repro.util.validation import check_positive

__all__ = ["NetworkSpec", "PCIeSpec", "TransferModel"]


@dataclass(frozen=True)
class NetworkSpec:
    """Cluster interconnect (defaults: 10 GbE).

    Attributes
    ----------
    bandwidth_gbs:
        Effective point-to-point bandwidth, GB/s.
    latency_s:
        One-way message latency, seconds.
    """

    bandwidth_gbs: float = 1.25
    latency_s: float = 50e-6

    def __post_init__(self) -> None:
        check_positive("bandwidth_gbs", self.bandwidth_gbs)
        check_positive("latency_s", self.latency_s)


@dataclass(frozen=True)
class PCIeSpec:
    """Host-to-device bus (defaults: PCIe 2.0 x16 effective)."""

    bandwidth_gbs: float = 6.0
    latency_s: float = 20e-6

    def __post_init__(self) -> None:
        check_positive("bandwidth_gbs", self.bandwidth_gbs)
        check_positive("latency_s", self.latency_s)


@dataclass(frozen=True)
class TransferModel:
    """Computes ground-truth staging time for a block of bytes.

    Parameters
    ----------
    network / pcie:
        Link characteristics.
    master_machine:
        Name of the machine the scheduler (and the input data) lives on.
    host_memcpy_gbs:
        Host-memory copy bandwidth used for CPU units, GB/s.
    """

    network: NetworkSpec
    pcie: PCIeSpec
    master_machine: str
    host_memcpy_gbs: float = 20.0

    def __post_init__(self) -> None:
        check_positive("host_memcpy_gbs", self.host_memcpy_gbs)

    def transfer_time(self, device: Device, nbytes: float) -> float:
        """Seconds to stage ``nbytes`` of input onto ``device``.

        Zero bytes still pay latency on each traversed link (a task
        dispatch is at least one message).
        """
        if nbytes < 0:
            raise ValueError(f"nbytes must be >= 0, got {nbytes}")
        t = 0.0
        if device.machine_name != self.master_machine:
            t += self.network.latency_s + nbytes / (self.network.bandwidth_gbs * 1e9)
        if device.is_gpu:
            t += self.pcie.latency_s + nbytes / (self.pcie.bandwidth_gbs * 1e9)
        else:
            t += nbytes / (self.host_memcpy_gbs * 1e9)
        return t

    def bandwidth_to(self, device: Device) -> float:
        """Effective end-to-end bandwidth to a device, bytes/second.

        The serial composition of the traversed links: 1 / sum(1/bw).
        """
        inv = 0.0
        if device.machine_name != self.master_machine:
            inv += 1.0 / (self.network.bandwidth_gbs * 1e9)
        if device.is_gpu:
            inv += 1.0 / (self.pcie.bandwidth_gbs * 1e9)
        else:
            inv += 1.0 / (self.host_memcpy_gbs * 1e9)
        return 1.0 / inv

    def latency_to(self, device: Device) -> float:
        """Fixed per-dispatch latency to a device, seconds."""
        t = 0.0
        if device.machine_name != self.master_machine:
            t += self.network.latency_s
        if device.is_gpu:
            t += self.pcie.latency_s
        return t
