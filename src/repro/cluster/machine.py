"""A cluster machine: one CPU plus zero or more GPUs."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cluster.device import CPUSpec, Device, DeviceKind, GPUSpec
from repro.errors import ConfigurationError

__all__ = ["Machine"]


@dataclass(frozen=True)
class Machine:
    """One node of the cluster.

    Produces the paper's processing units: a single CPU unit aggregating
    every core, plus one unit per GPU processor.

    Attributes
    ----------
    name:
        Short unique name (``"A"``..``"D"`` for the Table I machines).
    cpu:
        The machine's CPU.
    gpus:
        GPU processors installed in the machine (possibly several per
        physical board).
    """

    name: str
    cpu: CPUSpec
    gpus: tuple[GPUSpec, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if not self.name or "." in self.name:
            raise ConfigurationError(
                f"machine name must be non-empty and contain no '.', got {self.name!r}"
            )
        if not isinstance(self.cpu, CPUSpec):
            raise ConfigurationError(f"cpu must be a CPUSpec, got {self.cpu!r}")
        object.__setattr__(self, "gpus", tuple(self.gpus))
        for g in self.gpus:
            if not isinstance(g, GPUSpec):
                raise ConfigurationError(f"gpus must be GPUSpec, got {g!r}")

    def devices(self, *, use_cpu: bool = True, max_gpus: int | None = None) -> list[Device]:
        """Enumerate this machine's processing units.

        Parameters
        ----------
        use_cpu:
            Include the CPU processing unit (the paper always does).
        max_gpus:
            Cap the number of GPU units (the Fig. 6/7 experiments use
            "one GPU per machine"); ``None`` uses all.
        """
        out: list[Device] = []
        if use_cpu:
            out.append(
                Device(
                    device_id=f"{self.name}.cpu",
                    kind=DeviceKind.CPU,
                    machine_name=self.name,
                    spec=self.cpu,
                )
            )
        gpus = self.gpus if max_gpus is None else self.gpus[:max_gpus]
        for i, gpu in enumerate(gpus):
            out.append(
                Device(
                    device_id=f"{self.name}.gpu{i}",
                    kind=DeviceKind.GPU,
                    machine_name=self.name,
                    spec=gpu,
                )
            )
        return out

    @property
    def total_peak_gflops(self) -> float:
        """Aggregate theoretical peak of the machine (CPU + all GPUs)."""
        return self.cpu.peak_gflops + sum(g.peak_gflops for g in self.gpus)
