"""Heterogeneous CPU-GPU cluster substrate.

This package models the hardware side of the paper's testbed:

* :mod:`repro.cluster.device` — CPU/GPU device specifications and the
  :class:`Device` processing-unit abstraction (the paper's "processing
  unit": one device per GPU, one device aggregating all CPU cores of a
  machine);
* :mod:`repro.cluster.machine` — a machine bundling one CPU and its GPUs;
* :mod:`repro.cluster.network` — network + PCIe transfer-time model (the
  ground truth behind the paper's ``G_p[x] = a1*x + a2``);
* :mod:`repro.cluster.topology` — the :class:`Cluster` (machines, master
  node, transfer model);
* :mod:`repro.cluster.presets` — the four Table I machines and the paper's
  four scenarios (A, AB, ABC, ABCD);
* :mod:`repro.cluster.perfmodel` — hidden ground-truth execution-time
  functions.  Scheduling policies never see these; they only observe the
  (noisy) times the simulator reports.
"""

from repro.cluster.device import CPUSpec, Device, DeviceKind, GPUArch, GPUSpec
from repro.cluster.machine import Machine
from repro.cluster.network import NetworkSpec, PCIeSpec, TransferModel
from repro.cluster.perfmodel import (
    DevicePerformance,
    GroundTruth,
    KernelCharacteristics,
)
from repro.cluster.presets import (
    cloud_cluster,
    machine_a,
    machine_b,
    machine_c,
    machine_d,
    paper_cluster,
    paper_machines,
)
from repro.cluster.topology import Cluster

__all__ = [
    "CPUSpec",
    "GPUSpec",
    "GPUArch",
    "Device",
    "DeviceKind",
    "Machine",
    "NetworkSpec",
    "PCIeSpec",
    "TransferModel",
    "Cluster",
    "KernelCharacteristics",
    "DevicePerformance",
    "GroundTruth",
    "machine_a",
    "machine_b",
    "machine_c",
    "machine_d",
    "paper_machines",
    "paper_cluster",
    "cloud_cluster",
]
