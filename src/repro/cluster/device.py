"""Device specifications and the processing-unit abstraction.

Following the paper, a *processing unit* is either one GPU or the set of
all CPU cores of one machine ("we created one thread per virtual core"),
so a machine with one CPU and one GPU contributes two processing units.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.util.validation import check_in_range, check_positive, check_positive_int

__all__ = ["DeviceKind", "GPUArch", "CPUSpec", "GPUSpec", "Device"]


class DeviceKind(enum.Enum):
    """Processing-unit type."""

    CPU = "cpu"
    GPU = "gpu"


class GPUArch(enum.Enum):
    """NVIDIA microarchitectures named in the paper (Sec. I).

    The attached float is the architecture's sustained-efficiency factor:
    the fraction of theoretical peak a well-tuned compute kernel reaches.
    Older architectures sustain a smaller fraction (no cache on Tesla,
    smaller register files), which is exactly the kind of heterogeneity
    the load balancers must discover.
    """

    TESLA = "tesla"
    FERMI = "fermi"
    KEPLER = "kepler"
    MAXWELL = "maxwell"

    @property
    def sustained_efficiency(self) -> float:
        return {
            GPUArch.TESLA: 0.35,
            GPUArch.FERMI: 0.50,
            GPUArch.KEPLER: 0.60,
            GPUArch.MAXWELL: 0.65,
        }[self]


@dataclass(frozen=True)
class CPUSpec:
    """A multicore CPU.

    Attributes
    ----------
    model:
        Marketing name, e.g. ``"Intel Xeon E5-2690V2"``.
    cores:
        Physical core count.
    clock_ghz:
        Base clock in GHz.
    cache_mb / ram_gb:
        Last-level cache and host RAM (informational; RAM bounds are
        checked by applications when staging data).
    threads_per_core:
        2 for hyper-threaded parts (the paper pins one thread per
        *virtual* core).
    flops_per_cycle:
        Per-core single-precision FLOPs per cycle (8 for AVX without FMA,
        matching the 2012-2013 parts in Table I).
    efficiency:
        Sustained fraction of peak for tuned kernels.
    """

    model: str
    cores: int
    clock_ghz: float
    cache_mb: float = 8.0
    ram_gb: float = 16.0
    threads_per_core: int = 2
    flops_per_cycle: float = 8.0
    efficiency: float = 0.75

    def __post_init__(self) -> None:
        check_positive_int("cores", self.cores)
        check_positive("clock_ghz", self.clock_ghz)
        check_positive("cache_mb", self.cache_mb)
        check_positive("ram_gb", self.ram_gb)
        check_positive_int("threads_per_core", self.threads_per_core)
        check_positive("flops_per_cycle", self.flops_per_cycle)
        check_in_range("efficiency", self.efficiency, 0.0, 1.0, inclusive=False)

    @property
    def threads(self) -> int:
        """Virtual cores (execution threads the runtime will create)."""
        return self.cores * self.threads_per_core

    @property
    def peak_gflops(self) -> float:
        """Theoretical single-precision peak in GFLOP/s."""
        return self.cores * self.clock_ghz * self.flops_per_cycle


@dataclass(frozen=True)
class GPUSpec:
    """A single GPU processor.

    Dual-GPU boards (GTX 295, GTX 680 in Table I as listed by the paper)
    are modelled as one :class:`GPUSpec` per on-board processor.

    Attributes
    ----------
    cores:
        CUDA core count of this processor.
    sms:
        Streaming-multiprocessor count (sets the parallel capacity that
        a block must fill before the device reaches peak efficiency).
    mem_bandwidth_gbs:
        Device-memory bandwidth in GB/s.
    mem_gb:
        Device memory capacity.
    arch:
        Microarchitecture (sets sustained efficiency).
    flops_per_cycle:
        Per-core FLOPs per cycle (2 = FMA).
    """

    model: str
    cores: int
    sms: int
    clock_ghz: float
    mem_bandwidth_gbs: float
    mem_gb: float
    arch: GPUArch
    flops_per_cycle: float = 2.0

    def __post_init__(self) -> None:
        check_positive_int("cores", self.cores)
        check_positive_int("sms", self.sms)
        check_positive("clock_ghz", self.clock_ghz)
        check_positive("mem_bandwidth_gbs", self.mem_bandwidth_gbs)
        check_positive("mem_gb", self.mem_gb)
        check_positive("flops_per_cycle", self.flops_per_cycle)
        if not isinstance(self.arch, GPUArch):
            raise ConfigurationError(f"arch must be a GPUArch, got {self.arch!r}")

    @property
    def peak_gflops(self) -> float:
        """Theoretical single-precision peak in GFLOP/s."""
        return self.cores * self.clock_ghz * self.flops_per_cycle

    @property
    def max_resident_threads(self) -> int:
        """Threads the device can keep in flight (2048 per SM, Kepler-era)."""
        return self.sms * 2048


@dataclass(frozen=True)
class Device:
    """One processing unit bound to a machine.

    Attributes
    ----------
    device_id:
        Stable identifier ``"<machine>.<cpu|gpuN>"`` used throughout
        traces, figures and reports.
    kind:
        CPU or GPU.
    machine_name:
        Hosting machine (determines network distance to the master).
    spec:
        The :class:`CPUSpec` or :class:`GPUSpec`.
    """

    device_id: str
    kind: DeviceKind
    machine_name: str
    spec: CPUSpec | GPUSpec = field(repr=False)

    def __post_init__(self) -> None:
        if not self.device_id:
            raise ConfigurationError("device_id must be non-empty")
        if self.kind is DeviceKind.CPU and not isinstance(self.spec, CPUSpec):
            raise ConfigurationError(f"CPU device requires CPUSpec, got {self.spec!r}")
        if self.kind is DeviceKind.GPU and not isinstance(self.spec, GPUSpec):
            raise ConfigurationError(f"GPU device requires GPUSpec, got {self.spec!r}")

    @property
    def is_gpu(self) -> bool:
        return self.kind is DeviceKind.GPU

    @property
    def peak_gflops(self) -> float:
        """Theoretical peak of the whole processing unit."""
        return self.spec.peak_gflops

    @property
    def sustained_efficiency(self) -> float:
        """Architecture/implementation efficiency factor (ground truth)."""
        if self.is_gpu:
            assert isinstance(self.spec, GPUSpec)
            return self.spec.arch.sustained_efficiency
        assert isinstance(self.spec, CPUSpec)
        return self.spec.efficiency

    @property
    def parallel_capacity(self) -> int:
        """Work items the unit can execute concurrently at full occupancy."""
        if self.is_gpu:
            assert isinstance(self.spec, GPUSpec)
            return self.spec.max_resident_threads
        assert isinstance(self.spec, CPUSpec)
        return self.spec.threads

    @property
    def model(self) -> str:
        """Hardware model name."""
        return self.spec.model

    def __str__(self) -> str:
        return self.device_id
