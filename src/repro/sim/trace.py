"""Execution traces: the measured side of every experiment.

The trace recorder captures what the paper's instrumentation captured:

* per-task records (who ran what size, when, for how long) — the input to
  the block-size-distribution analysis (Fig. 6);
* per-worker busy intervals — the input to the idleness analysis (Fig. 7)
  and to Gantt rendering (Fig. 3);
* phase marks and rebalance/solver events — the input to the overhead
  accounting (Sec. V.a).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

__all__ = ["TaskRecord", "BusyInterval", "ExecutionTrace"]


@dataclass(frozen=True)
class TaskRecord:
    """One completed block execution on one processing unit.

    Attributes
    ----------
    worker_id:
        Stable identifier of the processing unit (e.g. ``"A.gpu0"``).
    units:
        Block size in application units (rows / genes / options).
    dispatch_time:
        Virtual time at which the block was handed to the worker.
    transfer_time:
        Seconds spent moving the block's data to the device.
    exec_time:
        Seconds spent computing (excludes transfer).
    start_time / end_time:
        Busy interval covered by the task (transfer + execution).
    phase:
        Phase label assigned by the scheduling policy (``"probe"``,
        ``"exec"``, ...).
    step:
        Dispatch round index within the phase, policy-defined.
    start_unit:
        First unit of the block's contiguous data range, or -1 for
        records predating range tracking (the work-conservation
        invariants need the exact tiling, not just the totals).
    retries / retry_time:
        Transfer-retry attempts survived before the block ran, and the
        seconds those attempts stalled the worker (part of the busy
        interval but not of ``total_time`` — the retries moved no data).
    decision:
        Ledger id of the scheduler decision that placed this block
        (:mod:`repro.obs.ledger`); empty when the policy keeps no
        ledger.  Stamped at dispatch time by the executor, so a block
        completing after a later rebalance still attributes to the
        decision that actually sized it.
    """

    worker_id: str
    units: int
    dispatch_time: float
    transfer_time: float
    exec_time: float
    start_time: float
    end_time: float
    phase: str = "exec"
    step: int = 0
    start_unit: int = -1
    retries: int = 0
    retry_time: float = 0.0
    decision: str = ""

    @property
    def total_time(self) -> float:
        """Transfer + execution seconds."""
        return self.transfer_time + self.exec_time


@dataclass(frozen=True)
class BusyInterval:
    """A half-open interval [start, end) during which a worker was busy."""

    worker_id: str
    start: float
    end: float
    phase: str = "exec"

    @property
    def duration(self) -> float:
        return self.end - self.start


class ExecutionTrace:
    """Accumulates task records and derives the paper's measurements."""

    def __init__(self, worker_ids: Iterable[str]) -> None:
        self.worker_ids: list[str] = list(worker_ids)
        if len(set(self.worker_ids)) != len(self.worker_ids):
            raise ValueError("duplicate worker ids in trace")
        self.records: list[TaskRecord] = []
        self.phase_marks: list[tuple[float, str]] = []
        self.rebalance_times: list[float] = []
        self.solver_overheads: list[float] = []
        self.solver_overhead_times: list[float] = []
        self.failures: list[tuple[float, str]] = []
        self.recoveries: list[tuple[float, str]] = []
        self.lost_blocks: list[tuple[float, str, int, int]] = []
        self.makespan: float = 0.0

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    def add_record(self, record: TaskRecord) -> None:
        """Record one completed task."""
        if record.worker_id not in self.worker_ids:
            raise ValueError(f"unknown worker {record.worker_id!r}")
        if record.end_time < record.start_time:
            raise ValueError("task record ends before it starts")
        self.records.append(record)
        self.makespan = max(self.makespan, record.end_time)

    def mark_phase(self, time: float, name: str) -> None:
        """Note that the policy entered phase ``name`` at ``time``."""
        self.phase_marks.append((time, name))

    def record_rebalance(self, time: float) -> None:
        """Note that a rebalancing pass ran at ``time``."""
        self.rebalance_times.append(time)

    def record_solver_overhead(self, seconds: float, time: float = 0.0) -> None:
        """Charge one model-fit + partition-solve overhead.

        ``time`` is the virtual time at which the charge was applied —
        the start of the dispatch stall it causes.  Recording it lets
        the trace exporter draw the overhead as a span on the scheduler
        track instead of a bare total.
        """
        self.solver_overheads.append(seconds)
        self.solver_overhead_times.append(time)

    def record_failure(self, time: float, device_id: str) -> None:
        """Note that a device went down at ``time``.

        Permanent failures and transient downtimes both land here; a
        later :meth:`record_recovery` for the same device marks the
        downtime as transient.
        """
        self.failures.append((time, device_id))

    def record_recovery(self, time: float, device_id: str) -> None:
        """Note that a transiently-failed device came back at ``time``."""
        self.recoveries.append((time, device_id))

    def record_lost_block(
        self, time: float, device_id: str, units: int, start_unit: int = -1
    ) -> None:
        """Note that ``units`` in flight on ``device_id`` were lost.

        The range returns to the pool and is reprocessed elsewhere; the
        resilience invariants reconcile these entries against the
        completed records.  ``start_unit`` pins the lost contiguous
        range so the critical-path analysis can classify the later
        re-execution of those exact units as rework (-1 when the caller
        does not track ranges).
        """
        self.lost_blocks.append((time, device_id, int(units), int(start_unit)))

    def finalize(self, end_time: float) -> None:
        """Set the run's final makespan (call once, at completion)."""
        self.makespan = max(self.makespan, end_time)

    # ------------------------------------------------------------------
    # derived measurements
    # ------------------------------------------------------------------
    def busy_intervals(self, worker_id: str) -> list[BusyInterval]:
        """Busy intervals of one worker in start order (Gantt row)."""
        rows = [
            BusyInterval(r.worker_id, r.start_time, r.end_time, r.phase)
            for r in self.records
            if r.worker_id == worker_id
        ]
        rows.sort(key=lambda b: b.start)
        return rows

    def busy_time(self, worker_id: str) -> float:
        """Total busy seconds of one worker."""
        return sum(b.duration for b in self.busy_intervals(worker_id))

    def idle_fraction(self, worker_id: str) -> float:
        """Fraction of the run during which the worker sat idle.

        Defined, as in Fig. 7, relative to total execution time
        (the makespan).  0.0 for a zero-length run.
        """
        if self.makespan <= 0.0:
            return 0.0
        frac = 1.0 - self.busy_time(worker_id) / self.makespan
        return min(max(frac, 0.0), 1.0)

    def idle_fractions(self) -> dict[str, float]:
        """Idle fraction for every worker."""
        return {w: self.idle_fraction(w) for w in self.worker_ids}

    def allocated_units(self, *, phase: str | None = None) -> dict[str, int]:
        """Units processed per worker, optionally restricted to a phase."""
        out = {w: 0 for w in self.worker_ids}
        for r in self.records:
            if phase is None or r.phase == phase:
                out[r.worker_id] += r.units
        return out

    def distribution(self, *, phase: str | None = None, step: int | None = None) -> dict[str, float]:
        """Normalised share of units per worker (Fig. 6 measurement).

        Restricting to a ``step`` gives the per-dispatch-round share, which
        is what the paper plots ("ratio of total data allocated on a single
        step").
        """
        out = {w: 0.0 for w in self.worker_ids}
        total = 0
        for r in self.records:
            if phase is not None and r.phase != phase:
                continue
            if step is not None and r.step != step:
                continue
            out[r.worker_id] += r.units
            total += r.units
        if total > 0:
            for w in out:
                out[w] /= total
        return out

    def total_units(self) -> int:
        """Units processed across all workers."""
        return sum(r.units for r in self.records)

    def records_for(self, worker_id: str) -> list[TaskRecord]:
        """All task records of one worker in completion order."""
        return sorted(
            (r for r in self.records if r.worker_id == worker_id),
            key=lambda r: r.end_time,
        )

    def phase_span(self, name: str) -> tuple[float, float] | None:
        """Return (start, end) of the named phase, if it was marked.

        The end is the next phase mark's time, or the makespan for the
        final phase.
        """
        marks = sorted(self.phase_marks)
        for i, (t, phase_name) in enumerate(marks):
            if phase_name == name:
                end = marks[i + 1][0] if i + 1 < len(marks) else self.makespan
                return (t, end)
        return None

    def gantt(self) -> dict[str, list[tuple[float, float, str]]]:
        """Gantt data: per worker, a list of (start, end, phase) tuples."""
        return {
            w: [(b.start, b.end, b.phase) for b in self.busy_intervals(w)]
            for w in self.worker_ids
        }

    @property
    def num_rebalances(self) -> int:
        """How many threshold-triggered rebalances the policy executed."""
        return len(self.rebalance_times)

    @property
    def total_solver_overhead(self) -> float:
        """Summed model-fit/solve overhead seconds charged to the run."""
        return sum(self.solver_overheads)

    def phase_summary(self) -> dict[str, dict[str, float]]:
        """Per-phase aggregates: units, busy seconds, wall span, share.

        Returns ``{phase: {units, busy_s, span_s, unit_share}}``, the
        numbers behind statements like "the initial phase took ~10 % of
        the execution time".

        ``span_s`` prefers the policy's explicit :meth:`mark_phase`
        marks (via :meth:`phase_span`) when a mark with the phase's name
        exists: task records only cover busy intervals, so a phase with
        dispatch gaps (a barrier drain, a solver stall) under-reports
        its wall span when derived from records alone.  Phases never
        marked fall back to the record-derived envelope.
        """
        phases: dict[str, dict[str, float]] = {}
        total_units = max(self.total_units(), 1)
        for r in self.records:
            agg = phases.setdefault(
                r.phase,
                {"units": 0.0, "busy_s": 0.0, "start": r.start_time,
                 "end": r.end_time},
            )
            agg["units"] += r.units
            agg["busy_s"] += r.total_time
            agg["start"] = min(agg["start"], r.start_time)
            agg["end"] = max(agg["end"], r.end_time)
        marked = {name for _, name in self.phase_marks}
        summary: dict[str, dict[str, float]] = {}
        for name, agg in phases.items():
            span_s = agg["end"] - agg["start"]
            if name in marked:
                span = self.phase_span(name)
                if span is not None:
                    span_s = span[1] - span[0]
            summary[name] = {
                "units": agg["units"],
                "busy_s": agg["busy_s"],
                "span_s": span_s,
                "unit_share": agg["units"] / total_units,
            }
        return summary

    # ------------------------------------------------------------------
    # serialisation
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """Serialise the trace to JSON-compatible plain data."""
        return {
            "worker_ids": list(self.worker_ids),
            "makespan": self.makespan,
            "records": [
                {
                    "worker_id": r.worker_id,
                    "units": r.units,
                    "dispatch_time": r.dispatch_time,
                    "transfer_time": r.transfer_time,
                    "exec_time": r.exec_time,
                    "start_time": r.start_time,
                    "end_time": r.end_time,
                    "phase": r.phase,
                    "step": r.step,
                    "start_unit": r.start_unit,
                    "retries": r.retries,
                    "retry_time": r.retry_time,
                    "decision": r.decision,
                }
                for r in self.records
            ],
            "phase_marks": [list(m) for m in self.phase_marks],
            "rebalance_times": list(self.rebalance_times),
            "solver_overheads": list(self.solver_overheads),
            "solver_overhead_times": list(self.solver_overhead_times),
            "failures": [list(f) for f in self.failures],
            "recoveries": [list(r) for r in self.recoveries],
            "lost_blocks": [list(b) for b in self.lost_blocks],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ExecutionTrace":
        """Rebuild a trace serialised by :meth:`to_dict`.

        The round trip is lossless: ``from_dict(t.to_dict()).to_dict()
        == t.to_dict()`` for every trace (verified by the test suite).
        ``solver_overhead_times`` is optional for compatibility with
        traces serialised before it existed (charges default to t=0);
        so are ``recoveries``/``lost_blocks`` and the per-record
        ``start_unit``/``retries``/``retry_time``/``decision`` fields
        (defaulting to empty / untracked).  ``lost_blocks`` entries may
        be 3-wide (pre-range-tracking: ``start_unit`` reads back as -1)
        or 4-wide.

        Raises
        ------
        ValueError
            On missing keys or malformed records (same validation as the
            live recording path).
        """
        try:
            trace = cls(data["worker_ids"])
            for r in data["records"]:
                trace.add_record(TaskRecord(**r))
            trace.phase_marks = [(float(t), str(n)) for t, n in data["phase_marks"]]
            trace.rebalance_times = [float(t) for t in data["rebalance_times"]]
            trace.solver_overheads = [float(s) for s in data["solver_overheads"]]
            trace.solver_overhead_times = [
                float(t)
                for t in data.get(
                    "solver_overhead_times", [0.0] * len(trace.solver_overheads)
                )
            ]
            if len(trace.solver_overhead_times) != len(trace.solver_overheads):
                raise ValueError(
                    "solver_overhead_times length does not match solver_overheads"
                )
            trace.failures = [(float(t), str(d)) for t, d in data["failures"]]
            trace.recoveries = [
                (float(t), str(d)) for t, d in data.get("recoveries", [])
            ]
            trace.lost_blocks = [
                (float(b[0]), str(b[1]), int(b[2]), int(b[3]) if len(b) > 3 else -1)
                for b in data.get("lost_blocks", [])
            ]
            trace.finalize(float(data["makespan"]))
        except KeyError as exc:
            raise ValueError(f"trace dict missing key: {exc}") from exc
        return trace
