"""Reproducible per-entity random streams.

Every noisy quantity in the simulator (execution-time jitter, transfer
jitter, perturbation injection) draws from a stream keyed by a string
name.  Streams are derived from a single root seed via
``numpy.random.SeedSequence`` spawning, so:

* the same (seed, key) pair always yields the same stream, regardless of
  the order in which other streams were created, and
* adding a new consumer of randomness does not shift the draws seen by
  existing consumers — experiments stay comparable across code changes.
"""

from __future__ import annotations

import zlib

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["RandomStreams"]


class RandomStreams:
    """A factory of named, deterministic ``numpy`` generators.

    Parameters
    ----------
    seed:
        Root seed.  Two :class:`RandomStreams` with the same seed produce
        identical streams for identical keys.
    """

    def __init__(self, seed: int = 0) -> None:
        if not isinstance(seed, (int, np.integer)) or isinstance(seed, bool):
            raise ConfigurationError(f"seed must be an integer, got {seed!r}")
        self.seed = int(seed)
        self._cache: dict[str, np.random.Generator] = {}

    @staticmethod
    def _key_to_int(key: str) -> int:
        # crc32 is stable across Python processes (unlike hash()), cheap,
        # and collisions are harmless here because the root seed is also
        # part of the entropy.
        return zlib.crc32(key.encode("utf-8"))

    def stream(self, key: str) -> np.random.Generator:
        """Return the generator for ``key``, creating it on first use."""
        if not isinstance(key, str) or not key:
            raise ConfigurationError(f"stream key must be a non-empty string: {key!r}")
        gen = self._cache.get(key)
        if gen is None:
            ss = np.random.SeedSequence([self.seed, self._key_to_int(key)])
            gen = np.random.default_rng(ss)
            self._cache[key] = gen
        return gen

    def lognormal_factor(self, key: str, sigma: float) -> float:
        """Draw one multiplicative noise factor with unit median.

        ``sigma`` is the log-space standard deviation; ``sigma == 0``
        returns exactly 1.0 without consuming randomness, so noise-free
        simulations are bit-stable.
        """
        if sigma < 0.0:
            raise ConfigurationError(f"sigma must be >= 0, got {sigma}")
        if sigma == 0.0:
            return 1.0
        return float(np.exp(self.stream(key).normal(0.0, sigma)))

    def fork(self, suffix: str) -> "RandomStreams":
        """Return an independent stream family for a sub-component.

        The child derives its root seed from the parent's seed and the
        suffix, so replication i of an experiment can fork ``f"rep{i}"``.
        """
        return RandomStreams(
            (self.seed * 1_000_003 + self._key_to_int(suffix)) % (2**63)
        )
