"""Virtual clock for the discrete-event engine."""

from __future__ import annotations

from repro.errors import SimulationError

__all__ = ["VirtualClock"]


class VirtualClock:
    """A monotonically advancing virtual-time clock.

    Time is measured in simulated seconds as a float.  The clock refuses to
    move backwards: an attempt to do so signals a corrupted event ordering
    and raises :class:`~repro.errors.SimulationError` immediately instead of
    silently producing causality violations.
    """

    __slots__ = ("_now",)

    def __init__(self, start: float = 0.0) -> None:
        if start < 0.0:
            raise SimulationError(f"clock cannot start at negative time {start}")
        self._now = float(start)

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    def advance_to(self, t: float) -> float:
        """Move the clock forward to absolute time ``t`` and return it."""
        if t < self._now:
            raise SimulationError(
                f"clock cannot move backwards: now={self._now}, requested={t}"
            )
        self._now = float(t)
        return self._now

    def advance_by(self, dt: float) -> float:
        """Move the clock forward by ``dt`` seconds and return the new time."""
        if dt < 0.0:
            raise SimulationError(f"cannot advance clock by negative delta {dt}")
        return self.advance_to(self._now + dt)

    def reset(self, start: float = 0.0) -> None:
        """Rewind the clock (only valid between simulation runs)."""
        if start < 0.0:
            raise SimulationError(f"clock cannot reset to negative time {start}")
        self._now = float(start)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"VirtualClock(now={self._now:.6f})"
