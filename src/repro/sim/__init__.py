"""Discrete-event simulation substrate.

This package provides the virtual-time machinery the runtime's simulation
backend is built on: a stable event queue (:mod:`repro.sim.events`), a
monotonic virtual clock (:mod:`repro.sim.clock`), a generic engine
(:mod:`repro.sim.engine`), reproducible per-entity random streams
(:mod:`repro.sim.random`) and an execution-trace recorder
(:mod:`repro.sim.trace`).

Virtual time lets a 65536x65536 matrix-multiplication "cluster run"
complete in milliseconds of wall time while preserving the ordering and
overlap structure that the load-balancing algorithms react to.
"""

from repro.sim.clock import VirtualClock
from repro.sim.engine import Engine
from repro.sim.events import Event, EventQueue
from repro.sim.random import RandomStreams
from repro.sim.trace import BusyInterval, ExecutionTrace, TaskRecord

__all__ = [
    "VirtualClock",
    "Engine",
    "Event",
    "EventQueue",
    "RandomStreams",
    "BusyInterval",
    "ExecutionTrace",
    "TaskRecord",
]
