"""Generic discrete-event engine.

:class:`Engine` binds an :class:`~repro.sim.events.EventQueue` to a
:class:`~repro.sim.clock.VirtualClock` and runs events in causal order.
The runtime's simulation backend drives its task lifecycle through this
engine; it is also usable standalone (see ``tests/sim``).
"""

from __future__ import annotations

from typing import Any, Callable

from repro.errors import SimulationError
from repro.obs.metrics import get_registry
from repro.sim.clock import VirtualClock
from repro.sim.events import Event, EventQueue

__all__ = ["Engine", "PeriodicTask"]


class PeriodicTask:
    """A self-rescheduling engine event (see :meth:`Engine.schedule_periodic`).

    Wraps the schedule/fire/reschedule cycle so observers (e.g. the
    telemetry sampler) don't each reimplement it.  The action receives
    the current virtual time; after it returns, the task reschedules
    itself ``interval`` seconds later while ``continue_while()`` (if
    given) is truthy.  :meth:`cancel` stops it — crucially, a pending
    tick must never be the last event alive, or it would drag the
    virtual clock past the real end of the run.

    Cancellation is final and safe at any point, including from inside
    the action itself (or another event firing at the same instant): a
    cancelled task never re-arms, even when :meth:`cancel` lands between
    the tick firing and the reschedule.
    """

    __slots__ = (
        "_engine",
        "interval",
        "_action",
        "_tag",
        "_continue",
        "_event",
        "_cancelled",
    )

    def __init__(self, engine, interval, action, tag, continue_while) -> None:
        if interval <= 0.0:
            raise SimulationError(
                f"periodic interval must be > 0, got {interval}"
            )
        self._engine = engine
        self.interval = float(interval)
        self._action = action
        self._tag = tag
        self._continue = continue_while
        self._cancelled = False
        self._event = engine.schedule_at(
            engine.clock.now + self.interval, self._fire, tag=tag
        )

    @property
    def active(self) -> bool:
        """True while a next tick is scheduled."""
        return self._event is not None

    def _fire(self) -> None:
        self._event = None
        self._action(self._engine.clock.now)
        # the action (or anything it triggered) may have cancelled us:
        # a cancelled task must never re-arm, or teardown paths racing
        # with their own tick would leave a stray event in the queue
        if self._cancelled:
            return
        if self._continue is None or self._continue():
            self._event = self._engine.schedule_at(
                self._engine.clock.now + self.interval, self._fire, tag=self._tag
            )

    def cancel(self) -> bool:
        """Stop the task for good; returns False if no tick was pending.

        Safe mid-fire: calling this from inside the action (when the
        tick's event has already popped) still prevents the reschedule.
        """
        self._cancelled = True
        event, self._event = self._event, None
        if event is None:
            return False
        return self._engine.cancel(event)


class Engine:
    """Run callbacks at virtual times, advancing a shared clock.

    Parameters
    ----------
    max_events:
        Safety valve: a run that processes more events than this raises
        :class:`~repro.errors.SimulationError` (an unbounded event cascade
        almost always indicates a scheduling-policy bug, e.g. re-dispatching
        zero-size blocks forever).
    """

    def __init__(self, *, max_events: int = 50_000_000) -> None:
        if max_events <= 0:
            raise SimulationError("max_events must be positive")
        self.clock = VirtualClock()
        self.queue = EventQueue()
        self.max_events = int(max_events)
        self._processed = 0
        self._running = False
        # metrics already flushed to the registry (run() publishes
        # deltas, so interleaved runs on several engines never
        # double-count)
        self._flushed = (0, 0, 0)

    @property
    def now(self) -> float:
        """Current virtual time."""
        return self.clock.now

    @property
    def processed_events(self) -> int:
        """Number of events executed so far."""
        return self._processed

    def schedule_at(
        self,
        time: float,
        action: Callable[[], None],
        *,
        tag: str = "",
        payload: Any = None,
    ) -> Event:
        """Schedule ``action`` at absolute time ``time`` (>= now)."""
        if time < self.clock.now:
            raise SimulationError(
                f"cannot schedule event in the past: now={self.clock.now}, t={time}"
            )
        return self.queue.push(time, action, tag=tag, payload=payload)

    def schedule_after(
        self,
        delay: float,
        action: Callable[[], None],
        *,
        tag: str = "",
        payload: Any = None,
    ) -> Event:
        """Schedule ``action`` ``delay`` seconds from now."""
        if delay < 0.0:
            raise SimulationError(f"delay must be non-negative, got {delay}")
        return self.schedule_at(self.clock.now + delay, action, tag=tag, payload=payload)

    def schedule_periodic(
        self,
        interval: float,
        action: Callable[[float], None],
        *,
        tag: str = "",
        continue_while: Callable[[], bool] | None = None,
    ) -> PeriodicTask:
        """Run ``action(now)`` every ``interval`` virtual seconds.

        The first tick fires at ``now + interval``.  After each tick the
        task reschedules itself while ``continue_while()`` (if given)
        returns True; callers that cannot express the stop condition as
        a predicate must :meth:`PeriodicTask.cancel` explicitly before
        the queue drains, or the ticks themselves keep the run alive.
        """
        return PeriodicTask(self, interval, action, tag, continue_while)

    def cancel(self, event: Event) -> bool:
        """Cancel a pending event (see :meth:`EventQueue.cancel`)."""
        return self.queue.cancel(event)

    def step(self) -> Event:
        """Execute the single earliest event and return it."""
        ev = self.queue.pop()
        self.clock.advance_to(ev.time)
        self._processed += 1
        if self._processed > self.max_events:
            raise SimulationError(
                f"event budget exceeded ({self.max_events}); "
                "likely an infinite dispatch loop in a scheduling policy"
            )
        ev.action()
        return ev

    def run(self, *, until: float | None = None) -> float:
        """Run events until the queue empties (or past ``until``).

        Returns the final virtual time.  Re-entrant calls are rejected —
        event actions must schedule, not recurse into ``run``.
        """
        if self._running:
            raise SimulationError("Engine.run is not re-entrant")
        self._running = True
        try:
            while self.queue:
                if until is not None and self.queue.peek_time() > until:
                    self.clock.advance_to(until)
                    break
                self.step()
        finally:
            self._running = False
            self._flush_metrics()
        return self.clock.now

    def _flush_metrics(self) -> None:
        """Publish DES counters to the metrics registry (delta-based).

        Called once per :meth:`run`, never inside the event loop: the
        hot path stays lock-free and allocation-free, at the cost of
        metrics only being current between runs.
        """
        registry = get_registry()
        processed, pushed, cancelled = self._flushed
        registry.inc("sim.events_dispatched", self._processed - processed)
        registry.inc("sim.events_scheduled", self.queue.pushed_total - pushed)
        registry.inc(
            "sim.events_cancelled", self.queue.cancelled_total - cancelled
        )
        registry.set_gauge("sim.queue_max_depth", self.queue.max_depth)
        self._flushed = (
            self._processed,
            self.queue.pushed_total,
            self.queue.cancelled_total,
        )

    def reset(self) -> None:
        """Clear all pending events and rewind the clock to zero."""
        if self._running:
            raise SimulationError("cannot reset a running engine")
        self.queue.clear()
        self.clock.reset()
        self._processed = 0
        self._flushed = (0, self.queue.pushed_total, self.queue.cancelled_total)
