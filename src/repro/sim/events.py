"""Event queue with deterministic tie-breaking.

Events that fire at the same virtual time are delivered in insertion
order (FIFO).  Determinism matters here: the load-balancing experiments
are averaged over seeded replications, and any hidden ordering
nondeterminism would make results irreproducible.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator

from repro.errors import SimulationError

__all__ = ["Event", "EventQueue"]


@dataclass(frozen=True, slots=True)
class Event:
    """A scheduled simulation event.

    Attributes
    ----------
    time:
        Absolute virtual time at which the event fires.
    seq:
        Monotone sequence number used for same-time FIFO ordering.
    action:
        Zero-argument callable executed when the event fires.
    tag:
        Free-form label for tracing/debugging.
    payload:
        Optional data carried for inspection by tests and traces.
    """

    time: float
    seq: int
    action: Callable[[], None] = field(compare=False)
    tag: str = field(default="", compare=False)
    payload: Any = field(default=None, compare=False)


class EventQueue:
    """A priority queue of :class:`Event` ordered by ``(time, seq)``.

    Supports lazy cancellation: :meth:`cancel` marks an event dead and
    :meth:`pop` skips dead entries, so cancelling is O(1).
    """

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, Event]] = []
        self._counter = itertools.count()
        self._cancelled: set[int] = set()
        self._pending: set[int] = set()
        self._live = 0
        #: lifetime observability totals (cheap enough for the hot path:
        #: one add / one compare per operation; flushed to the metrics
        #: registry by :meth:`Engine.run`, never read mid-simulation)
        self.pushed_total = 0
        self.cancelled_total = 0
        self.max_depth = 0

    def __len__(self) -> int:
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0

    def push(
        self,
        time: float,
        action: Callable[[], None],
        *,
        tag: str = "",
        payload: Any = None,
    ) -> Event:
        """Schedule ``action`` at absolute virtual time ``time``.

        Returns the created :class:`Event`, whose ``seq`` can be passed to
        :meth:`cancel`.
        """
        if time < 0.0 or time != time:  # negative or NaN
            raise SimulationError(f"event time must be non-negative, got {time!r}")
        seq = next(self._counter)
        ev = Event(time=float(time), seq=seq, action=action, tag=tag, payload=payload)
        heapq.heappush(self._heap, (ev.time, ev.seq, ev))
        self._pending.add(seq)
        self._live += 1
        self.pushed_total += 1
        if self._live > self.max_depth:
            self.max_depth = self._live
        return ev

    def cancel(self, event: Event) -> bool:
        """Cancel a previously pushed event.

        Returns True if the event was live and is now cancelled; False if it
        had already fired or been cancelled.  O(1): liveness is tracked in a
        membership set, and the dead heap entry is skipped lazily at pop
        time.
        """
        seq = event.seq
        if seq not in self._pending:
            return False
        self._pending.discard(seq)
        self._cancelled.add(seq)
        self._live -= 1
        self.cancelled_total += 1
        return True

    def peek_time(self) -> float:
        """Return the firing time of the earliest live event."""
        self._skip_dead()
        if not self._heap:
            raise SimulationError("peek on empty event queue")
        return self._heap[0][0]

    def pop(self) -> Event:
        """Remove and return the earliest live event."""
        self._skip_dead()
        if not self._heap:
            raise SimulationError("pop on empty event queue")
        _, seq, ev = heapq.heappop(self._heap)
        self._pending.discard(seq)
        self._live -= 1
        return ev

    def _skip_dead(self) -> None:
        while self._heap and self._heap[0][1] in self._cancelled:
            _, seq, _ = heapq.heappop(self._heap)
            self._cancelled.discard(seq)

    def drain(self) -> Iterator[Event]:
        """Yield all remaining live events in firing order (consuming them)."""
        while self:
            yield self.pop()

    def clear(self) -> None:
        """Drop every pending event."""
        self._heap.clear()
        self._cancelled.clear()
        self._pending.clear()
        self._live = 0
