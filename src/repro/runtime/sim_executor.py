"""Virtual-time execution backend.

Drives a scheduling policy against the cluster's hidden ground truth:
idle workers poll the policy for block sizes, completions are scheduled
on the discrete-event engine with lognormal measurement noise, and every
completion is reported back through the policy's
``on_task_finished`` hook — the same dispatch/completion contract the
paper's StarPU implementation uses, minus the silicon.

Master "thinking time" (model fits, interior-point solves) charged via
:meth:`SchedulingContext.charge_overhead` delays subsequent dispatches,
so scheduler overhead degrades the makespan here exactly as it does on
a real cluster.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import partial

from repro.cluster.perfmodel import GroundTruth, KernelCharacteristics
from repro.cluster.topology import Cluster
from repro.errors import ConfigurationError, SchedulingError, SimulationError
from repro.obs.metrics import get_registry
from repro.obs.profiler import switch_phase
from repro.runtime.data import BlockDomain
from repro.runtime.scheduler_api import (
    DeviceInfo,
    SchedulingContext,
    SchedulingPolicy,
)
from repro.runtime.task import Task
from repro.sim.engine import Engine
from repro.sim.random import RandomStreams
from repro.sim.trace import ExecutionTrace, TaskRecord
from repro.util.validation import check_positive, check_positive_int

__all__ = [
    "Perturbation",
    "DeviceFailure",
    "TransientFailure",
    "TransferFault",
    "SimulatedExecutor",
]


@dataclass(frozen=True)
class Perturbation:
    """A mid-run change of one device's speed.

    Models the paper's Sec. VI scenarios (shared clouds, degraded
    nodes): from ``start_time`` on, the device's execution times are
    multiplied by ``factor`` (> 1 slows it down, < 1 speeds it up).
    """

    device_id: str
    start_time: float
    factor: float

    def __post_init__(self) -> None:
        check_positive("factor", self.factor)
        check_positive("start_time", self.start_time, strict=False)


@dataclass(frozen=True)
class DeviceFailure:
    """A device becomes permanently unavailable mid-run.

    The paper's Sec. VI fault-tolerance outlook: "machines may become
    unavailable during execution ... a simple redistribution of the data
    among the remaining devices would permit the application to
    re-adapt."  At ``time`` the device stops; its in-flight block (if
    any) is lost and its data range returns to the pool for the
    surviving devices to reprocess.
    """

    device_id: str
    time: float

    def __post_init__(self) -> None:
        check_positive("time", self.time, strict=False)


@dataclass(frozen=True)
class TransientFailure:
    """A device goes down at ``time`` and returns at ``time + downtime``.

    The Sec. VI "machines may become unavailable" scenario without the
    permanence: while down, the device behaves exactly like a failed one
    (its in-flight block is lost, the policy's ``on_device_failed`` hook
    fires, the runtime stops polling it).  At ``time + downtime`` the
    policy's :meth:`~repro.runtime.scheduler_api.SchedulingPolicy.\
on_device_recovered` hook fires and polling resumes.  A permanent
    :class:`DeviceFailure` for the same device suppresses the recovery.
    Overlapping transient windows on one device are not modelled: the
    first recovery revives it.
    """

    device_id: str
    time: float
    downtime: float

    def __post_init__(self) -> None:
        check_positive("time", self.time, strict=False)
        check_positive("downtime", self.downtime)


@dataclass(frozen=True)
class TransferFault:
    """Transfers to one device fail during ``[time, time + duration)``.

    A dispatch whose transfer would start inside the window stalls: the
    runtime retries with a per-attempt timeout and capped exponential
    backoff, charging the stall to the trace (the worker's busy interval
    grows by ``retry_time``; ``TaskRecord.retries`` counts the
    attempts).  When ``max_retries`` attempts all land inside the
    window, the runtime gives up: the block is lost back to the pool
    and the device is marked permanently failed — the same observable a
    host sees when a PCIe link or NIC wedges for good.

    Timeout and backoff are expressed as factors of the block's nominal
    transfer time (attempt ``i`` costs ``timeout_factor + min(
    backoff_factor * 2**i, backoff_cap_factor)`` transfer times), so the
    fault scales with the workload instead of hard-coding seconds.

    ``jitter`` spreads each backoff by a seeded multiplicative factor in
    ``[1 - jitter, 1 + jitter]``: blocks that fail together stop
    retrying in lock-step, so a wide fault window no longer produces a
    synchronized retry storm the instant it lifts.  The draw is keyed by
    (device, dispatch time, attempt) off the run's root seed, so retry
    timelines stay bit-reproducible — and ``jitter == 0`` (the default)
    consumes no randomness at all, leaving jitter-free runs
    byte-identical to before the knob existed.
    """

    device_id: str
    time: float
    duration: float
    max_retries: int = 4
    timeout_factor: float = 2.0
    backoff_factor: float = 1.0
    backoff_cap_factor: float = 8.0
    jitter: float = 0.0

    def __post_init__(self) -> None:
        check_positive("time", self.time, strict=False)
        check_positive("duration", self.duration)
        check_positive_int("max_retries", self.max_retries)
        check_positive("timeout_factor", self.timeout_factor)
        check_positive("backoff_factor", self.backoff_factor)
        if self.backoff_cap_factor < self.backoff_factor:
            raise ConfigurationError(
                f"backoff_cap_factor ({self.backoff_cap_factor}) must be >= "
                f"backoff_factor ({self.backoff_factor})"
            )
        if not 0.0 <= self.jitter < 1.0:
            raise ConfigurationError(
                f"jitter must be in [0, 1), got {self.jitter}"
            )


class SimulatedExecutor:
    """Runs one policy over one workload on a simulated cluster.

    Parameters
    ----------
    cluster:
        The hardware topology.
    kernel:
        Device-load characterisation of the application's codelet.
    noise_sigma:
        Log-space standard deviation of the multiplicative measurement
        noise on execution and transfer times (0 = deterministic).
    seed:
        Root seed for all noise streams.
    perturbations:
        Optional mid-run device slowdowns.
    failures:
        Optional permanent device failures.
    transients:
        Optional transient device outages (down, then recovered).
    transfer_faults:
        Optional windows during which transfers to a device stall.
    """

    def __init__(
        self,
        cluster: Cluster,
        kernel: KernelCharacteristics,
        *,
        noise_sigma: float = 0.005,
        seed: int = 0,
        perturbations: tuple[Perturbation, ...] = (),
        failures: tuple[DeviceFailure, ...] = (),
        transients: tuple[TransientFailure, ...] = (),
        transfer_faults: tuple[TransferFault, ...] = (),
    ) -> None:
        check_positive("noise_sigma", noise_sigma, strict=False)
        self.cluster = cluster
        self.kernel = kernel
        self.noise_sigma = float(noise_sigma)
        self.seed = int(seed)
        self.ground_truth = GroundTruth(cluster, kernel)
        self.perturbations = tuple(perturbations)
        self.failures = tuple(failures)
        self.transients = tuple(transients)
        self.transfer_faults = tuple(transfer_faults)
        device_ids = {d.device_id for d in cluster.devices()}
        for kind, faults in (
            ("perturbation", self.perturbations),
            ("failure", self.failures),
            ("transient failure", self.transients),
            ("transfer fault", self.transfer_faults),
        ):
            for f in faults:
                if f.device_id not in device_ids:
                    raise ConfigurationError(
                        f"{kind} targets unknown device {f.device_id!r}"
                    )
        if self.failures and len(
            {f.device_id for f in self.failures}
        ) == len(device_ids):
            raise ConfigurationError("cannot fail every device in the cluster")

    def _slowdown(self, device_id: str, now: float) -> float:
        factor = 1.0
        for p in self.perturbations:
            if p.device_id == device_id and now >= p.start_time:
                factor *= p.factor
        return factor

    def suggest_sample_interval(self, total_units: int) -> float:
        """A deterministic telemetry interval: ~1/128th of the predicted run.

        Uses the ground truth's noise-free per-device throughput on a
        ~1 % block to estimate the makespan — a pure function of the
        cluster and workload, so auto-interval sampling stays
        cache-compatible across sweep replays.
        """
        check_positive_int("total_units", total_units)
        block = max(int(total_units) // 100, 1)
        rate = 0.0
        for device in self.cluster.devices():
            seconds = self.ground_truth.transfer_time(
                device.device_id, block
            ) + self.ground_truth.exec_time(device.device_id, block)
            if seconds > 0.0:
                rate += block / seconds
        if rate <= 0.0:  # pragma: no cover - degenerate ground truth
            return 1e-3
        return max(int(total_units) / rate / 128.0, 1e-9)

    def run(
        self,
        policy: SchedulingPolicy,
        total_units: int,
        initial_block_size: int,
        *,
        sampler=None,
    ) -> tuple[ExecutionTrace, float]:
        """Execute the whole domain under ``policy``.

        Returns ``(trace, makespan_seconds)``.

        ``sampler`` (a single-use
        :class:`~repro.obs.timeseries.ClusterSampler`) records periodic
        virtual-time telemetry; it only observes, so the schedule is
        byte-identical with or without one.  A sampler with an
        unresolved (auto) interval gets
        :meth:`suggest_sample_interval` substituted.

        Raises
        ------
        SchedulingError
            If the policy deadlocks (parks every worker while work
            remains) or violates the protocol (negative block size).
        """
        check_positive_int("total_units", total_units)
        check_positive_int("initial_block_size", initial_block_size)

        devices = self.cluster.devices()
        order = [d.device_id for d in devices]
        engine = Engine()
        domain = BlockDomain(int(total_units))
        trace = ExecutionTrace(order)
        streams = RandomStreams(self.seed)
        ctx = SchedulingContext(
            devices=tuple(DeviceInfo.from_device(d) for d in devices),
            total_units=int(total_units),
            initial_block_size=int(initial_block_size),
        )
        policy.setup(ctx)

        busy: dict[str, tuple[Task, object]] = {}
        stall_until = 0.0
        task_counter = 0
        last_phase: str | None = None
        failed: set[str] = set()
        # Hot-path string constants, hoisted so the per-task dispatch loop
        # does not rebuild them for every event (the noise keys must stay
        # byte-identical to the historical f-strings for seed stability).
        complete_tag = {w: "complete:" + w for w in order}
        transfer_key = {w: w + "/transfer/" for w in order}
        exec_key = {w: w + "/exec/" for w in order}
        noisy = self.noise_sigma > 0.0
        # data ranges lost to failed devices, awaiting reprocessing
        pending_retry: list[tuple[int, int]] = []
        fault_events: list = []
        # devices that will never come back (DeviceFailure or transfer
        # give-up), as opposed to `failed` which also holds transient downs
        perm_failed: set[str] = set()
        pending_recoveries = 0
        registry = get_registry()

        def work_remaining() -> int:
            return domain.remaining + sum(u for _, u in pending_retry)

        def grant(requested: int) -> tuple[int, int]:
            """Serve lost ranges first, then fresh domain data."""
            if pending_retry:
                start, units = pending_retry[0]
                take = min(requested, units)
                if take == units:
                    pending_retry.pop(0)
                else:
                    pending_retry[0] = (start + take, units - take)
                return start, take
            return domain.take(requested)

        def charge_pending() -> None:
            nonlocal stall_until
            overhead = ctx.drain_overhead()
            if overhead > 0.0:
                begin = max(stall_until, engine.now)
                stall_until = begin + overhead
                trace.record_solver_overhead(overhead, begin)
            for _ in range(ctx.drain_rebalances()):
                trace.record_rebalance(engine.now)

        def noise(key: str) -> float:
            return streams.lognormal_factor(key, self.noise_sigma)

        def transfer_stall(
            worker_id: str, begin: float, transfer: float, exec_s: float
        ) -> tuple[float, int, bool]:
            """Walk the retry timeline through any transfer-fault window.

            Returns ``(retry_time, retries, gave_up)``.  The timeline is
            deterministic: attempt ``i`` burns ``timeout_factor`` transfer
            times waiting, then ``min(backoff * 2**i, cap)`` backing off;
            the transfer succeeds at the first attempt that starts outside
            every fault window, or the device gives up after
            ``max_retries`` in-window attempts.
            """
            retry_time = 0.0
            retries = 0
            t = begin
            while True:
                fault = None
                for tf in self.transfer_faults:
                    if (
                        tf.device_id == worker_id
                        and tf.time <= t < tf.time + tf.duration
                    ):
                        fault = tf
                        break
                if fault is None:
                    return retry_time, retries, False
                # master-local devices have zero transfer time; scale the
                # stall off the execution time so the fault still bites
                base = transfer if transfer > 0.0 else 0.1 * exec_s
                if base <= 0.0:
                    return retry_time, retries, False
                if retries >= fault.max_retries:
                    return retry_time, retries, True
                backoff = min(
                    fault.backoff_factor * 2.0**retries,
                    fault.backoff_cap_factor,
                )
                if fault.jitter > 0.0:
                    # keyed per (device, dispatch, attempt): concurrent
                    # failures desynchronize, identical seeds replay the
                    # exact same spread
                    spread = streams.stream(
                        f"{worker_id}/transfer_backoff/{begin!r}/{retries}"
                    ).uniform(-1.0, 1.0)
                    backoff *= 1.0 + fault.jitter * float(spread)
                retry_time += (fault.timeout_factor + backoff) * base
                retries += 1
                t = begin + retry_time

        def dispatch_idle() -> None:
            nonlocal task_counter, last_phase
            for worker_id in order:
                if worker_id in busy or worker_id in failed:
                    continue
                if work_remaining() == 0:
                    break
                requested = policy.next_block(worker_id, engine.now)
                charge_pending()
                if requested < 0:
                    raise SchedulingError(
                        f"policy {policy.name!r} returned negative block "
                        f"size {requested} for {worker_id}"
                    )
                if requested == 0:
                    continue  # parked until the next completion
                start_unit, granted = grant(requested)
                if granted == 0:
                    continue
                policy.on_block_dispatched(worker_id, granted, engine.now)
                task_counter += 1
                phase = policy.phase_label(worker_id)
                if phase != last_phase:
                    # first dispatch of a new phase: mark the transition so
                    # phase spans cover stalls, not just busy intervals
                    trace.mark_phase(engine.now, phase)
                    last_phase = phase
                    # keep the CPU profiler's phase in step with the
                    # policy's (probe rounds vs. block execution)
                    switch_phase("probe" if phase == "probe" else "execute")
                task = Task(
                    task_id=task_counter,
                    worker_id=worker_id,
                    start_unit=start_unit,
                    units=granted,
                    phase=phase,
                    step=policy.step_index(worker_id),
                    dispatch_time=engine.now,
                    decision=policy.decision_tag(worker_id) or "",
                )
                begin = max(engine.now, stall_until)
                slow = self._slowdown(worker_id, begin)
                transfer = self.ground_truth.transfer_time(worker_id, granted)
                exec_s = self.ground_truth.exec_time(worker_id, granted) * slow
                if noisy:
                    task_key = str(task.task_id)
                    transfer *= noise(transfer_key[worker_id] + task_key)
                    exec_s *= noise(exec_key[worker_id] + task_key)
                task.transfer_time = transfer
                task.exec_time = exec_s
                task.mark_running(begin)
                if self.transfer_faults:
                    retry_time, retries, gave_up = transfer_stall(
                        worker_id, begin, transfer, exec_s
                    )
                    task.retries = retries
                    task.retry_time = retry_time
                    if retries:
                        registry.inc("sim.transfer_retries", retries)
                    if gave_up:
                        registry.inc("sim.transfer_giveups")
                        event = engine.schedule_at(
                            begin + retry_time,
                            partial(transfer_give_up, task),
                            tag="giveup:" + worker_id,
                            payload=task.task_id,
                        )
                        busy[worker_id] = (task, event)
                        if sampler is not None:
                            sampler.on_dispatch(
                                worker_id, begin, begin + retry_time, granted
                            )
                        continue
                end = begin + task.retry_time + transfer + exec_s
                event = engine.schedule_at(
                    end,
                    partial(complete, task),
                    tag=complete_tag[worker_id],
                    payload=task.task_id,
                )
                busy[worker_id] = (task, event)
                if sampler is not None:
                    sampler.on_dispatch(worker_id, begin, end, granted)

        def complete(task: Task) -> None:
            task.mark_done(engine.now)
            del busy[task.worker_id]
            if sampler is not None:
                sampler.on_complete(task.worker_id, task.units)
            record = TaskRecord(
                worker_id=task.worker_id,
                units=task.units,
                dispatch_time=task.dispatch_time,
                transfer_time=task.transfer_time,
                exec_time=task.exec_time,
                start_time=task.start_time,
                end_time=task.end_time,
                phase=task.phase,
                step=task.step,
                start_unit=task.start_unit,
                retries=task.retries,
                retry_time=task.retry_time,
                decision=task.decision,
            )
            trace.add_record(record)
            policy.on_task_finished(record, work_remaining(), engine.now)
            charge_pending()
            dispatch_idle()
            if work_remaining() == 0 and not busy:
                # the run is over: pending fault events (and the
                # sampler's next tick) must not extend the virtual
                # clock past the last completion
                for ev in fault_events:
                    engine.cancel(ev)
                if sampler is not None:
                    sampler.stop()

        def record_lost(task: Task) -> None:
            # the in-flight block is lost; its range returns to the pool
            pending_retry.append((task.start_unit, task.units))
            trace.record_lost_block(
                engine.now, task.worker_id, task.units, task.start_unit
            )
            if sampler is not None:
                sampler.on_lost(task.worker_id, engine.now)

        def mark_down(device_id: str, *, permanent: bool) -> None:
            if device_id in failed:
                # already down (e.g. a permanent failure landing inside a
                # transient window): upgrade to permanent without notifying
                # the policy a second time
                if permanent:
                    perm_failed.add(device_id)
                return
            failed.add(device_id)
            if permanent:
                perm_failed.add(device_id)
            trace.record_failure(engine.now, device_id)
            registry.inc("sim.device_failures")
            entry = busy.pop(device_id, None)
            if entry is not None:
                task, event = entry
                engine.cancel(event)
                record_lost(task)
            if len(failed) == len(order) and pending_recoveries == 0:
                raise SchedulingError("every device failed; cannot finish")
            policy.on_device_failed(device_id, engine.now)
            charge_pending()
            dispatch_idle()

        def fail_device(failure: DeviceFailure) -> None:
            mark_down(failure.device_id, permanent=True)

        def transient_down(fault: TransientFailure) -> None:
            mark_down(fault.device_id, permanent=False)

        def transfer_give_up(task: Task) -> None:
            # drop the stalled task before going down so mark_down does
            # not try to cancel its (already-fired) give-up event
            del busy[task.worker_id]
            record_lost(task)
            mark_down(task.worker_id, permanent=True)

        def recover_device(fault: TransientFailure) -> None:
            nonlocal pending_recoveries
            pending_recoveries -= 1
            if fault.device_id in perm_failed or fault.device_id not in failed:
                return
            failed.discard(fault.device_id)
            trace.record_recovery(engine.now, fault.device_id)
            registry.inc("sim.device_recoveries")
            policy.on_device_recovered(fault.device_id, engine.now)
            charge_pending()
            dispatch_idle()

        for failure in self.failures:
            fault_events.append(
                engine.schedule_at(
                    failure.time,
                    lambda f=failure: fail_device(f),
                    tag=f"fail:{failure.device_id}",
                )
            )
        for tr in self.transients:
            pending_recoveries += 1
            fault_events.append(
                engine.schedule_at(
                    tr.time,
                    lambda f=tr: transient_down(f),
                    tag=f"down:{tr.device_id}",
                )
            )
            fault_events.append(
                engine.schedule_at(
                    tr.time + tr.downtime,
                    lambda f=tr: recover_device(f),
                    tag=f"recover:{tr.device_id}",
                )
            )

        dispatch_idle()
        if not engine.queue and work_remaining() > 0:
            raise SchedulingError(
                f"policy {policy.name!r} parked every worker at t=0 with "
                f"{work_remaining()} units unprocessed"
            )
        if sampler is not None:
            # started after the parked-at-t=0 check so an empty queue
            # still means "no work was dispatched", and the sampler's
            # first tick can never outlive the run it observes
            if not sampler.interval:
                sampler.interval = self.suggest_sample_interval(total_units)
            sampler.start(
                engine,
                devices=order,
                total_units=int(total_units),
                work_remaining=work_remaining,
            )
        engine.run()

        if work_remaining() > 0:
            raise SchedulingError(
                f"policy {policy.name!r} deadlocked: {work_remaining()} of "
                f"{domain.total_units} units unprocessed with all workers idle"
            )
        if busy:
            raise SimulationError(
                f"engine drained with busy workers: {sorted(busy)}"
            )
        trace.finalize(max((r.end_time for r in trace.records), default=engine.now))
        if sampler is not None:
            # the closing sample lands exactly on the makespan, so the
            # per-device utilization integral matches the trace's busy time
            sampler.finish(trace.makespan)
        return trace, trace.makespan
