"""StarPU-like runtime: codelets, tasks, workers, pluggable schedulers.

The paper implements PLB-HeC as a StarPU scheduling policy.  This
package provides the equivalent runtime surface:

* :mod:`repro.runtime.codelet` — a task type with per-architecture
  implementations (CPU / GPU), like StarPU codelets;
* :mod:`repro.runtime.data` — the divisible application data domain
  (domain decomposition into integer block units);
* :mod:`repro.runtime.task` — one block execution;
* :mod:`repro.runtime.scheduler_api` — the policy protocol: a policy is
  asked for the next block size when a worker goes idle and is told
  about every completion (the paper's ``FinishedTaskExecution`` hook);
* :mod:`repro.runtime.sim_executor` — the virtual-time backend driving
  policies against the cluster ground truth;
* :mod:`repro.runtime.real_executor` — a thread-pool backend running
  real NumPy kernels in wall time;
* :mod:`repro.runtime.runtime` — the :class:`Runtime` facade tying a
  cluster, an application and a policy together.

Information hiding is enforced structurally: policies receive a
:class:`~repro.runtime.scheduler_api.SchedulingContext` holding public
device facts (id, kind, machine) and observed task records — never the
ground-truth performance model.
"""

from repro.runtime.codelet import Codelet
from repro.runtime.data import BlockDomain
from repro.runtime.real_executor import RealExecutor
from repro.runtime.runtime import Runtime, RunResult
from repro.runtime.scheduler_api import (
    DeviceInfo,
    SchedulingContext,
    SchedulingPolicy,
)
from repro.runtime.sim_executor import (
    DeviceFailure,
    Perturbation,
    SimulatedExecutor,
    TransferFault,
    TransientFailure,
)
from repro.runtime.task import Task, TaskState

__all__ = [
    "Codelet",
    "BlockDomain",
    "Task",
    "TaskState",
    "DeviceInfo",
    "SchedulingContext",
    "SchedulingPolicy",
    "Perturbation",
    "DeviceFailure",
    "TransientFailure",
    "TransferFault",
    "SimulatedExecutor",
    "RealExecutor",
    "Runtime",
    "RunResult",
]
