"""Codelets: tasks with one implementation per architecture.

Mirrors StarPU's abstraction: "an abstraction for a task that can be
performed on one core of a multicore CPU or subjected to an
accelerator.  Each codelet may have multiple implementations, one for
each architecture."

Kernel callables take ``(start_unit, num_units)`` and return the
block's result (application-defined).  The simulation backend never
calls them — it uses the codelet's
:class:`~repro.cluster.perfmodel.KernelCharacteristics` instead; the
real (thread) backend executes them and measures wall time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from repro.cluster.device import DeviceKind
from repro.cluster.perfmodel import KernelCharacteristics
from repro.errors import ConfigurationError

__all__ = ["Codelet"]

KernelFn = Callable[[int, int], Any]


@dataclass(frozen=True)
class Codelet:
    """A schedulable task type.

    Attributes
    ----------
    name:
        Codelet name (shows up in traces).
    kernel:
        Device-load characterisation used by the simulation backend.
    cpu_func / gpu_func:
        Real implementations; ``gpu_func`` defaults to ``cpu_func``
        (this library has no CUDA backend — the GPU implementation is
        only distinguished in simulation).
    """

    name: str
    kernel: KernelCharacteristics
    cpu_func: KernelFn | None = None
    gpu_func: KernelFn | None = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("codelet name must be non-empty")
        if not isinstance(self.kernel, KernelCharacteristics):
            raise ConfigurationError(
                f"kernel must be KernelCharacteristics, got {self.kernel!r}"
            )

    def implementation(self, kind: DeviceKind) -> KernelFn:
        """The real kernel for a device kind.

        Raises
        ------
        ConfigurationError
            If the codelet carries no real implementation at all.
        """
        fn = self.gpu_func if kind is DeviceKind.GPU else self.cpu_func
        if fn is None:
            fn = self.cpu_func or self.gpu_func
        if fn is None:
            raise ConfigurationError(
                f"codelet {self.name!r} has no real implementation; "
                "it can only run on the simulation backend"
            )
        return fn

    @property
    def simulation_only(self) -> bool:
        """True when no real kernel implementation was provided."""
        return self.cpu_func is None and self.gpu_func is None
