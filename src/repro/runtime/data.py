"""The divisible application data domain.

Data-parallel applications decompose their input into integer *units*
(matrix rows, genes, options).  :class:`BlockDomain` is the runtime's
accounting of that domain: schedulers request blocks, the domain grants
at most what remains.  It is thread-safe so the real (thread-pool)
backend can share one instance across workers.
"""

from __future__ import annotations

import threading

from repro.errors import DataError

__all__ = ["BlockDomain"]


class BlockDomain:
    """A pool of ``total_units`` indivisible work units.

    Grants are contiguous ranges handed out front-to-back, which is how
    the paper's applications slice their inputs (a range of B-matrix
    rows / genes / options per task).
    """

    def __init__(self, total_units: int) -> None:
        if not isinstance(total_units, int) or isinstance(total_units, bool):
            raise DataError(f"total_units must be an int, got {total_units!r}")
        if total_units <= 0:
            raise DataError(f"total_units must be positive, got {total_units}")
        self.total_units = total_units
        self._next = 0
        self._lock = threading.Lock()

    @property
    def remaining(self) -> int:
        """Units not yet granted."""
        with self._lock:
            return self.total_units - self._next

    @property
    def consumed(self) -> int:
        """Units granted so far."""
        with self._lock:
            return self._next

    @property
    def exhausted(self) -> bool:
        """True when every unit has been granted."""
        return self.remaining == 0

    def take(self, requested: int) -> tuple[int, int]:
        """Grant up to ``requested`` units.

        Returns ``(start_unit, granted)``; ``granted`` may be less than
        requested (tail of the domain) or zero (domain exhausted).
        Requests are floored at zero — policies returning negative sizes
        are a protocol violation caught by the executor, but the domain
        itself degrades safely.
        """
        req = max(int(requested), 0)
        with self._lock:
            granted = min(req, self.total_units - self._next)
            start = self._next
            self._next += granted
        return start, granted

    def reset(self) -> None:
        """Return every unit to the pool (new run over the same data)."""
        with self._lock:
            self._next = 0
