"""Wall-clock thread-pool execution backend.

Runs real codelet kernels (NumPy implementations) on host threads — one
thread per processing unit — under the same policy protocol as the
simulation backend.  Times are measured with ``perf_counter``.  Device
heterogeneity can be emulated with per-device ``speed_factors`` (a
factor-f device sleeps f-1 times the measured kernel duration, so its
observed rate is 1/f of the host's), which lets the load-balancing
algorithms be demonstrated end-to-end on a laptop.
"""

from __future__ import annotations

import threading
import time
from typing import Mapping

from repro.cluster.topology import Cluster
from repro.errors import SchedulingError
from repro.runtime.codelet import Codelet
from repro.runtime.data import BlockDomain
from repro.runtime.scheduler_api import (
    DeviceInfo,
    SchedulingContext,
    SchedulingPolicy,
)
from repro.sim.trace import ExecutionTrace, TaskRecord
from repro.util.validation import check_positive, check_positive_int

__all__ = ["RealExecutor"]


class RealExecutor:
    """Executes a codelet's real kernels across worker threads.

    Parameters
    ----------
    cluster:
        Topology — device ids/kinds structure the worker pool; actual
        computation always happens on the host CPU.
    codelet:
        Must carry at least one real implementation.
    speed_factors:
        Optional ``{device_id: factor}`` slowdowns (>= 1) emulating
        heterogeneity.
    """

    def __init__(
        self,
        cluster: Cluster,
        codelet: Codelet,
        *,
        speed_factors: Mapping[str, float] | None = None,
    ) -> None:
        if codelet.simulation_only:
            raise SchedulingError(
                f"codelet {codelet.name!r} has no real implementation"
            )
        self.cluster = cluster
        self.codelet = codelet
        self.speed_factors = dict(speed_factors or {})
        known = {d.device_id for d in cluster.devices()}
        for device_id, factor in self.speed_factors.items():
            if device_id not in known:
                raise SchedulingError(f"speed factor for unknown device {device_id!r}")
            check_positive(f"speed_factors[{device_id}]", factor)

    def run(
        self,
        policy: SchedulingPolicy,
        total_units: int,
        initial_block_size: int,
    ) -> tuple[ExecutionTrace, float, list[tuple[int, int, object]]]:
        """Process the whole domain; returns (trace, makespan, results).

        ``results`` is a list of ``(start_unit, units, value)`` per
        completed block, in completion order.
        """
        check_positive_int("total_units", total_units)
        check_positive_int("initial_block_size", initial_block_size)

        devices = self.cluster.devices()
        order = [d.device_id for d in devices]
        domain = BlockDomain(int(total_units))
        trace = ExecutionTrace(order)
        ctx = SchedulingContext(
            devices=tuple(DeviceInfo.from_device(d) for d in devices),
            total_units=int(total_units),
            initial_block_size=int(initial_block_size),
        )
        policy.setup(ctx)

        t0 = time.perf_counter()

        def now() -> float:
            return time.perf_counter() - t0

        cond = threading.Condition()
        busy_count = 0
        errors: list[BaseException] = []
        results: list[tuple[int, int, object]] = []
        stop = False
        # Deadlock detection must distinguish "momentarily waiting between
        # poll wake-ups" from "nothing can ever progress".  Policy state
        # only changes on dispatch/completion events; ``state_gen`` counts
        # them, and a worker that polls 0 records the generation it saw.
        # A true deadlock is every worker having polled 0 under the
        # *current* generation with nothing in flight.
        state_gen = 0
        zero_gen: dict[str, int] = {}

        def worker_loop(device) -> None:
            nonlocal busy_count, stop, state_gen
            worker_id = device.device_id
            kernel_fn = self.codelet.implementation(device.kind)
            factor = self.speed_factors.get(worker_id, 1.0)
            while True:
                with cond:
                    grant = None
                    while grant is None:
                        if stop or domain.exhausted:
                            return
                        requested = policy.next_block(worker_id, now())
                        ctx.drain_overhead()  # real overhead is real time
                        if requested < 0:
                            raise SchedulingError(
                                f"policy returned negative size {requested}"
                            )
                        if requested > 0:
                            start_unit, granted = domain.take(requested)
                            if granted > 0:
                                policy.on_block_dispatched(
                                    worker_id, granted, now()
                                )
                                state_gen += 1
                                cond.notify_all()
                                grant = (start_unit, granted)
                                break
                            if domain.exhausted:
                                return
                        # parked: remember under which state generation
                        # this worker was refused work
                        zero_gen[worker_id] = state_gen
                        if (
                            busy_count == 0
                            and not domain.exhausted
                            and all(
                                zero_gen.get(w) == state_gen for w in order
                            )
                        ):
                            stop = True
                            cond.notify_all()
                            raise SchedulingError(
                                f"policy {policy.name!r} deadlocked with "
                                f"{domain.remaining} units unprocessed"
                            )
                        cond.wait(timeout=0.05)
                    busy_count += 1
                    phase = policy.phase_label(worker_id)
                    step = policy.step_index(worker_id)
                    decision = policy.decision_tag(worker_id) or ""
                    dispatch_t = now()

                start_unit, granted = grant
                begin = now()
                value = kernel_fn(start_unit, granted)
                exec_s = now() - begin
                if factor > 1.0:
                    time.sleep(exec_s * (factor - 1.0))
                    exec_s = now() - begin
                end = now()

                with cond:
                    busy_count -= 1
                    state_gen += 1  # completion: policy state may change
                    record = TaskRecord(
                        worker_id=worker_id,
                        units=granted,
                        dispatch_time=dispatch_t,
                        transfer_time=0.0,
                        exec_time=exec_s,
                        start_time=begin,
                        end_time=end,
                        phase=phase,
                        step=step,
                        decision=decision,
                    )
                    trace.add_record(record)
                    results.append((start_unit, granted, value))
                    policy.on_task_finished(record, domain.remaining, now())
                    ctx.drain_overhead()
                    for _ in range(ctx.drain_rebalances()):
                        trace.record_rebalance(now())
                    cond.notify_all()

        threads = []
        for device in devices:
            def runner(dev=device):
                try:
                    worker_loop(dev)
                except BaseException as exc:  # propagate to the caller
                    with cond:
                        errors.append(exc)
                        nonlocal_stop()
                        cond.notify_all()

            t = threading.Thread(target=runner, name=device.device_id, daemon=True)
            threads.append(t)

        def nonlocal_stop() -> None:
            nonlocal stop
            stop = True

        for t in threads:
            t.start()
        for t in threads:
            t.join()

        if errors:
            raise errors[0]
        if not domain.exhausted:
            raise SchedulingError(
                f"real run ended with {domain.remaining} units unprocessed"
            )
        makespan = now()
        trace.finalize(makespan)
        return trace, makespan, results
