"""The :class:`Runtime` facade: cluster + codelet + backend in one object.

This is the library's main entry point::

    from repro import Runtime, paper_cluster
    from repro.apps import MatMul
    from repro.core import PLBHeC

    app = MatMul(n=16384)
    rt = Runtime(paper_cluster(4), app.codelet(), seed=7)
    result = rt.run(PLBHeC(), total_units=app.total_units,
                    initial_block_size=app.default_initial_block_size())
    print(result.makespan, result.trace.idle_fractions())
"""

from __future__ import annotations

import contextlib
import time
from dataclasses import dataclass, field

from repro.cluster.topology import Cluster
from repro.errors import ConfigurationError
from repro.obs.events import EventLog, current_run_id, new_run_id, push_run_id
from repro.obs.profiler import profile_phase
from repro.runtime.codelet import Codelet
from repro.runtime.real_executor import RealExecutor
from repro.runtime.scheduler_api import SchedulingPolicy
from repro.runtime.sim_executor import (
    DeviceFailure,
    Perturbation,
    SimulatedExecutor,
    TransferFault,
    TransientFailure,
)
from repro.sim.trace import ExecutionTrace

__all__ = ["Runtime", "RunResult"]

_events = EventLog("runtime")


@dataclass(frozen=True)
class RunResult:
    """Outcome of one complete application run.

    Attributes
    ----------
    policy_name / backend:
        What ran and where (``"sim"`` or ``"real"``).
    total_units:
        Domain size processed.
    makespan:
        Completion time in seconds (virtual for sim, wall for real).
    trace:
        Full execution trace (Gantt, idleness, distributions).
    wall_time_s:
        Host seconds the run took to compute.
    results:
        Real-backend block results (``None`` on the sim backend).
    run_id:
        Correlation id structured log events of this run carry (the
        ambient :func:`repro.obs.events.current_run_id` if one was
        pushed, else a fresh id minted by :meth:`Runtime.run`).
    ledger:
        The policy's :class:`~repro.obs.ledger.DecisionLedger` (None
        for policies that keep none) — the input to ``repro explain``
        and the calibration exports.
    """

    policy_name: str
    backend: str
    total_units: int
    makespan: float
    trace: ExecutionTrace = field(repr=False)
    wall_time_s: float
    results: list[tuple[int, int, object]] | None = field(
        default=None, repr=False
    )
    run_id: str = ""
    ledger: "object | None" = field(default=None, repr=False)

    @property
    def idle_fractions(self) -> dict[str, float]:
        """Per-device idle share of the makespan (Fig. 7 measurement)."""
        return self.trace.idle_fractions()

    @property
    def num_rebalances(self) -> int:
        """Threshold-triggered rebalances the policy executed."""
        return self.trace.num_rebalances

    @property
    def solver_overhead_s(self) -> float:
        """Total scheduler decision time charged to the run."""
        return self.trace.total_solver_overhead

    def summary(self) -> str:
        """One-paragraph human-readable run summary."""
        idle = self.idle_fractions
        mean_idle = sum(idle.values()) / len(idle) if idle else 0.0
        phases = self.trace.phase_summary()
        probe_share = phases.get("probe", {}).get("unit_share", 0.0)
        return (
            f"{self.policy_name} on {self.backend}: {self.total_units} units "
            f"in {self.makespan:.3f}s; mean idleness {mean_idle:.1%}, "
            f"probing consumed {probe_share:.1%} of the data, "
            f"{self.num_rebalances} rebalance(s), "
            f"{self.solver_overhead_s * 1e3:.0f} ms scheduler overhead"
        )


class Runtime:
    """Binds a cluster and a codelet to an execution backend.

    Parameters
    ----------
    cluster:
        Hardware topology (e.g. :func:`repro.cluster.paper_cluster`).
    codelet:
        The application's codelet.
    backend:
        ``"sim"`` (virtual time, default) or ``"real"`` (host threads).
    noise_sigma / seed / perturbations / failures / transients /
    transfer_faults:
        Simulation-backend knobs (ignored by the real backend).  Fault
        device ids are validated against the cluster up front; an
        unknown id raises :class:`ConfigurationError` naming it.
    speed_factors:
        Real-backend heterogeneity emulation (ignored by sim).
    """

    def __init__(
        self,
        cluster: Cluster,
        codelet: Codelet,
        *,
        backend: str = "sim",
        noise_sigma: float = 0.005,
        seed: int = 0,
        perturbations: tuple[Perturbation, ...] = (),
        failures: tuple[DeviceFailure, ...] = (),
        transients: tuple[TransientFailure, ...] = (),
        transfer_faults: tuple[TransferFault, ...] = (),
        speed_factors: dict[str, float] | None = None,
    ) -> None:
        if backend not in ("sim", "real"):
            raise ConfigurationError(
                f"backend must be 'sim' or 'real', got {backend!r}"
            )
        self.cluster = cluster
        self.codelet = codelet
        self.backend = backend
        if backend == "sim":
            self._executor = SimulatedExecutor(
                cluster,
                codelet.kernel,
                noise_sigma=noise_sigma,
                seed=seed,
                perturbations=perturbations,
                failures=failures,
                transients=transients,
                transfer_faults=transfer_faults,
            )
        else:
            self._executor = RealExecutor(
                cluster, codelet, speed_factors=speed_factors
            )

    def run(
        self,
        policy: SchedulingPolicy,
        total_units: int,
        initial_block_size: int | None = None,
        *,
        sampler=None,
    ) -> RunResult:
        """Process ``total_units`` under ``policy`` and return the result.

        ``initial_block_size`` defaults to ~1 % of the domain (clamped to
        at least one unit); experiments normally pass the application's
        own heuristic instead.

        ``sampler`` attaches a single-use
        :class:`~repro.obs.timeseries.ClusterSampler` that records
        virtual-time telemetry (per-device utilization, backlog,
        fairness) while the run executes.  Simulation-only: the real
        backend has no virtual clock to sample and rejects it.
        """
        if initial_block_size is None:
            initial_block_size = max(1, total_units // 100)
        if sampler is not None and self.backend != "sim":
            raise ConfigurationError(
                "telemetry sampling requires the simulated backend "
                f"(got backend={self.backend!r})"
            )
        t0 = time.perf_counter()
        results = None
        run_id = current_run_id()
        scope = (
            contextlib.nullcontext(run_id)
            if run_id
            else push_run_id(new_run_id())
        )
        with scope as run_id:
            with _events.span(
                "runtime.run",
                policy=policy.name,
                backend=self.backend,
                total_units=int(total_units),
            ) as span:
                # Host-time attribution for `repro profile`: the whole
                # executor loop runs as "execute"; the policy's fit and
                # solve scopes and the executor's probe transitions
                # re-attribute their slices from inside.
                with profile_phase("execute"):
                    if self.backend == "sim":
                        trace, makespan = self._executor.run(
                            policy, total_units, initial_block_size,
                            sampler=sampler,
                        )
                    else:
                        trace, makespan, results = self._executor.run(
                            policy, total_units, initial_block_size
                        )
                span["makespan"] = float(makespan)
        return RunResult(
            policy_name=policy.name,
            backend=self.backend,
            total_units=int(total_units),
            makespan=float(makespan),
            trace=trace,
            wall_time_s=time.perf_counter() - t0,
            results=results,
            run_id=run_id or "",
            ledger=getattr(policy, "ledger", None),
        )
