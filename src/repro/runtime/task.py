"""Task objects: one block execution through its lifecycle."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.errors import SchedulingError

__all__ = ["TaskState", "Task"]


class TaskState(enum.Enum):
    """Lifecycle of a task."""

    PENDING = "pending"
    RUNNING = "running"
    DONE = "done"


@dataclass
class Task:
    """One dispatched block.

    Attributes
    ----------
    task_id:
        Monotone id assigned by the executor.
    worker_id:
        Processing unit the block was dispatched to.
    start_unit / units:
        The granted contiguous range of the data domain.
    phase / step:
        Policy-assigned labels propagated into the trace.
    """

    task_id: int
    worker_id: str
    start_unit: int
    units: int
    phase: str = "exec"
    step: int = 0
    state: TaskState = TaskState.PENDING
    dispatch_time: float = 0.0
    start_time: float = 0.0
    end_time: float = 0.0
    transfer_time: float = 0.0
    exec_time: float = 0.0
    retries: int = 0
    retry_time: float = 0.0
    #: ledger id of the scheduler decision that placed this block (see
    #: :mod:`repro.obs.ledger`); empty for policies that keep no ledger
    decision: str = ""
    result: object = field(default=None, repr=False)

    def mark_running(self, now: float) -> None:
        """PENDING -> RUNNING."""
        if self.state is not TaskState.PENDING:
            raise SchedulingError(f"task {self.task_id} already {self.state.value}")
        self.state = TaskState.RUNNING
        self.start_time = now

    def mark_done(self, now: float) -> None:
        """RUNNING -> DONE."""
        if self.state is not TaskState.RUNNING:
            raise SchedulingError(
                f"task {self.task_id} cannot finish from {self.state.value}"
            )
        self.state = TaskState.DONE
        self.end_time = now

    @property
    def total_time(self) -> float:
        """Transfer + execution seconds."""
        return self.transfer_time + self.exec_time
