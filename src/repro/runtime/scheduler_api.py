"""The scheduling-policy protocol.

StarPU lets schedulers hook task dispatch and completion; the paper's
Algorithm 2 is written against exactly two hooks — "give this worker a
task" and ``FinishedTaskExecution``.  The protocol here mirrors that:

* :meth:`SchedulingPolicy.next_block` — called whenever a worker is
  idle and work remains.  Return the block size (units) to dispatch, or
  0 to *park* the worker (used by synchronising phases).  Parked
  workers are re-polled after every completion.
* :meth:`SchedulingPolicy.on_task_finished` — called with the completed
  task's :class:`~repro.sim.trace.TaskRecord` (measured transfer and
  execution times — the policy's only window into device performance).

Policies charge their own decision overhead (model fitting, the
interior-point solve) through
:meth:`SchedulingContext.charge_overhead`; the executor serialises
subsequent dispatches behind it, so "thinking time" shows up in the
makespan exactly as the paper's 170 ms solver calls did.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field

from repro.cluster.device import Device, DeviceKind
from repro.errors import SchedulingError
from repro.sim.trace import TaskRecord

__all__ = ["DeviceInfo", "SchedulingContext", "SchedulingPolicy"]


@dataclass(frozen=True)
class DeviceInfo:
    """Public facts about a processing unit (safe for policies to see)."""

    device_id: str
    kind: DeviceKind
    machine_name: str
    model: str

    @classmethod
    def from_device(cls, device: Device) -> "DeviceInfo":
        return cls(
            device_id=device.device_id,
            kind=device.kind,
            machine_name=device.machine_name,
            model=device.model,
        )


@dataclass
class SchedulingContext:
    """Everything a policy may know about the run.

    Attributes
    ----------
    devices:
        Public device facts, in dispatch-polling order.
    total_units:
        Size of the data domain.
    initial_block_size:
        The user-chosen probe size every algorithm starts from (the
        paper uses the same value for all algorithms).
    """

    devices: tuple[DeviceInfo, ...]
    total_units: int
    initial_block_size: int
    _overhead_charges: list[tuple[float, str]] = field(default_factory=list)
    _rebalance_notes: int = 0

    def __post_init__(self) -> None:
        if self.total_units <= 0:
            raise SchedulingError("total_units must be positive")
        if self.initial_block_size <= 0:
            raise SchedulingError("initial_block_size must be positive")
        if not self.devices:
            raise SchedulingError("a run needs at least one device")

    @property
    def device_ids(self) -> tuple[str, ...]:
        """Processing-unit ids in polling order."""
        return tuple(d.device_id for d in self.devices)

    def note_rebalance(self) -> None:
        """Tell the runtime a rebalancing pass just ran (trace annotation)."""
        self._rebalance_notes += 1

    def drain_rebalances(self) -> int:
        """Executor-side: collect and clear pending rebalance notes."""
        count = self._rebalance_notes
        self._rebalance_notes = 0
        return count

    def charge_overhead(self, seconds: float, label: str = "") -> None:
        """Charge scheduler decision time to the run.

        The executor drains the charges after each policy callback and
        delays subsequent dispatches by their sum.
        """
        if seconds < 0.0:
            raise SchedulingError(f"overhead must be >= 0, got {seconds}")
        if seconds > 0.0:
            self._overhead_charges.append((float(seconds), label))

    def drain_overhead(self) -> float:
        """Executor-side: collect and clear pending overhead charges."""
        total = sum(s for s, _ in self._overhead_charges)
        self._overhead_charges.clear()
        return total


class SchedulingPolicy(abc.ABC):
    """Base class of every load-balancing algorithm in this library."""

    #: short name used in reports ("plb-hec", "greedy", "hdss", "acosta")
    name: str = "policy"

    def setup(self, ctx: SchedulingContext) -> None:
        """Called once before the run starts.  Default: store the context."""
        self.ctx = ctx

    @abc.abstractmethod
    def next_block(self, worker_id: str, now: float) -> int:
        """Units to dispatch to an idle worker, or 0 to park it.

        Must not exceed the domain's remaining units by design — the
        executor clamps, and the policy sees the clamped size in the
        completion record.
        """

    def on_block_dispatched(
        self, worker_id: str, granted_units: int, now: float
    ) -> None:
        """Confirm a successful dispatch.

        Called synchronously after ``next_block`` whenever the domain
        actually granted units (the grant may be smaller than requested
        at the tail of the domain).  If a request could not be granted
        at all — the domain ran dry between the poll and the take — no
        confirmation arrives and the worker simply idles, so barrier
        bookkeeping must key off this hook, not off ``next_block``.
        Default: no-op.
        """

    def on_task_finished(
        self, record: TaskRecord, remaining: int, now: float
    ) -> None:
        """Observe a completion.  Default: no-op."""

    def on_device_failed(self, device_id: str, now: float) -> None:
        """A device became permanently unavailable (Sec. VI scenario).

        The runtime will never poll the device again; any in-flight
        block it held has returned to the work pool.  Policies holding
        per-device state (barriers, assignments) must forget the device
        here or they will deadlock waiting for it.  Default: no-op —
        sufficient for stateless self-schedulers like Greedy.
        """

    def on_device_recovered(self, device_id: str, now: float) -> None:
        """A transiently-failed device came back online.

        Fired by :class:`~repro.runtime.sim_executor.TransientFailure`
        at ``time + downtime``.  The runtime resumes polling the device
        immediately after this hook; policies that dropped the device in
        :meth:`on_device_failed` should fold it back into their
        assignments here (PLB-HeC restores the device's profile and
        re-solves the partition).  Default: no-op — the device then
        competes for work under whatever the policy answers
        ``next_block`` with, which is already correct for stateless
        self-schedulers.
        """

    def decision_tag(self, worker_id: str) -> str | None:
        """Ledger id of the decision governing this worker's next block.

        Called by the executor at dispatch time, right after
        :meth:`on_block_dispatched`; the id is stamped onto the task and
        travels into its completion :class:`~repro.sim.trace.TaskRecord`
        so the policy can attribute the observed block time back to the
        decision that sized it — even if the governing decision changed
        while the block was in flight.  Default: None (no ledger).
        """
        return None

    def phase_label(self, worker_id: str) -> str:
        """Trace phase label for the next block of this worker."""
        return "exec"

    def step_index(self, worker_id: str) -> int:
        """Trace step index for the next block of this worker."""
        return 0
