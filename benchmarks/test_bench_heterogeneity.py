"""Benchmark H1: speedup as a function of cluster heterogeneity.

Quantifies the paper's central qualitative claim ("PLB-HeC obtained the
highest performance gains with more heterogeneous clusters"): machine
speeds are spread geometrically at constant aggregate capacity and the
speedup over Greedy is measured per spread.
"""

from benchmarks.conftest import fast_mode
from repro.experiments.heterogeneity import (
    render_heterogeneity,
    run_heterogeneity,
)


def test_bench_heterogeneity(benchmark):
    spreads = (1.0, 4.0, 16.0) if fast_mode() else (1.0, 2.0, 4.0, 8.0, 16.0)
    n = 8192 if fast_mode() else 16384
    points = benchmark.pedantic(
        run_heterogeneity, kwargs={"spreads": spreads, "n": n},
        rounds=1, iterations=1,
    )
    print()
    print(render_heterogeneity(points))
    # PLB-HeC beats both baselines at every spread
    for p in points:
        assert p.plb_speedup > 1.0
        assert p.plb_s <= p.hdss_s * 1.01
    # and its advantage grows toward the heterogeneous end
    assert points[-1].plb_speedup > points[1].plb_speedup
