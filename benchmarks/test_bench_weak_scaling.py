"""Benchmark (extension): weak scaling with capacity-matched work.

Fixes the work per unit of cluster capacity and grows the machine count,
reporting parallel efficiency for Greedy and PLB-HeC alongside a
GSS baseline column from the classic self-scheduling literature.
"""

from benchmarks.conftest import fast_mode
from repro.experiments.weak_scaling import (
    render_weak_scaling,
    run_weak_scaling,
)


def test_bench_weak_scaling(benchmark):
    counts = (1, 4) if fast_mode() else (1, 2, 3, 4)
    base = 8192 if fast_mode() else 16384
    points = benchmark.pedantic(
        run_weak_scaling,
        kwargs={"machine_counts": counts, "base_order": base},
        rounds=1,
        iterations=1,
    )
    print()
    print(render_weak_scaling(points))
    # PLB-HeC's scaled makespan never degrades worse than Greedy's
    base_g, base_p = points[0].greedy_s, points[0].plb_s
    for p in points[1:]:
        plb_eff = base_p / p.plb_s
        greedy_eff = base_g / p.greedy_s
        assert plb_eff > greedy_eff * 0.8
    # and at full scale it is the faster policy outright
    assert points[-1].plb_s < points[-1].greedy_s
