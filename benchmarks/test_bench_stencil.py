"""Benchmark (extension app): memory-bound stencil ensemble.

The paper claims its basis family "should contemplate the vast majority
of applications"; this benchmark checks the whole pipeline on a kernel
regime none of the paper's applications exercises — a memory-bandwidth-
bound Jacobi ensemble — and verifies the ranking carries over.
"""

from benchmarks.conftest import fast_mode
from repro import Greedy, HDSS, PLBHeC, Runtime, paper_cluster
from repro.apps import Stencil2D
from repro.util.tables import format_table


def test_bench_stencil(benchmark):
    tiles = 8192 if fast_mode() else 32768
    app = Stencil2D(tiles, sweeps=2000)
    cluster = paper_cluster(4)

    def sweep():
        rows = []
        base = None
        for policy in (Greedy(), HDSS(), PLBHeC()):
            rt = Runtime(cluster, app.codelet(), seed=2)
            res = rt.run(
                policy, app.total_units, app.default_initial_block_size()
            )
            if base is None:
                base = res.makespan
            rows.append([policy.name, res.makespan, base / res.makespan])
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    print(
        format_table(
            ["policy", "time_s", "speedup"],
            rows,
            title=f"Memory-bound stencil ensemble ({tiles} tiles, 4 machines)",
        )
    )
    speedup = {r[0]: r[2] for r in rows}
    # The bandwidth-bound ensemble at fast-mode size is dominated by
    # probing plus the measured solver overhead: both profile-based
    # policies trail greedy (observed ~0.72-0.74 speedup), and only the
    # full-size grid amortises the modeling cost into a genuine win.
    floor = 0.65 if fast_mode() else 1.0
    assert speedup["plb-hec"] > floor
