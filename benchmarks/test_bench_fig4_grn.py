"""Benchmark F4-GRN: Fig. 4 (bottom) — GRN execution time and speedup.

Prints the Fig. 4 GRN series (gene counts 60k..140k, 1-4 machines).
"""

from benchmarks.conftest import fast_mode
from repro.experiments.fig4_exectime import render_sweep, run_fig4


def test_bench_fig4_grn(benchmark, replications):
    sizes = [60_000, 140_000] if fast_mode() else [60_000, 100_000, 140_000]
    machines = [4] if fast_mode() else [1, 2, 3, 4]
    points = benchmark.pedantic(
        run_fig4,
        args=("grn",),
        kwargs={
            "sizes": sizes,
            "machine_counts": machines,
            "replications": replications,
        },
        rounds=1,
        iterations=1,
    )
    print()
    print(render_sweep(points))
    largest = [
        p for p in points if p.size == max(sizes) and p.num_machines == max(machines)
    ][0]
    assert largest.speedup_vs("greedy", "plb-hec") > 1.2
