"""Benchmark F6: Fig. 6 — block-size distribution among processing units.

Prints, for each (application, input size), every estimating algorithm's
per-device share of one dispatch step — Fig. 6's bars.  Shape
assertions: distributions normalise, GPUs receive the dominant share,
and machine B's units receive the least.
"""

from benchmarks.conftest import fast_mode
from repro.experiments.fig6_distribution import (
    DEFAULT_CASES,
    gpu_share,
    render_fig6,
    run_fig6,
)


def test_bench_fig6_distribution(benchmark, replications):
    cases = (
        (("matmul", (16384, 65536)),)
        if fast_mode()
        else DEFAULT_CASES
    )
    results = benchmark.pedantic(
        run_fig6,
        kwargs={"cases": cases, "replications": replications},
        rounds=1,
        iterations=1,
    )
    print()
    print(render_fig6(results))
    for case in results:
        for policy, dist in case.distributions.items():
            total = sum(dist.values())
            assert abs(total - 1.0) < 1e-6, (case.app_name, policy, total)
            assert gpu_share(dist) > 0.5
            weakest = min(v for d, v in dist.items() if "gpu" in d)
            strongest = max(v for d, v in dist.items() if "gpu" in d)
            assert strongest > weakest
