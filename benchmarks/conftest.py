"""Benchmark-suite configuration.

Every benchmark regenerates one of the paper's tables or figures and
prints the corresponding rows/series (run with ``-s`` to see them
inline; they are also echoed into the captured output).  The
``REPRO_BENCH_FAST=1`` environment variable switches to reduced grids
for quick smoke runs.
"""

import os

import pytest


def fast_mode() -> bool:
    return os.environ.get("REPRO_BENCH_FAST", "0") == "1"


@pytest.fixture(scope="session")
def replications() -> int:
    return 1 if fast_mode() else 2
