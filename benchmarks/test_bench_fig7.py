"""Benchmark F7: Fig. 7 — processing-unit idleness.

Prints, for each (application, input size), the per-device idle fraction
under HDSS and PLB-HeC — Fig. 7's bars.  Shape assertions encode the
paper's findings: PLB-HeC idles less than HDSS in every scenario, and
idleness shrinks with input size.
"""

from benchmarks.conftest import fast_mode
from repro.experiments.fig6_distribution import DEFAULT_CASES
from repro.experiments.fig7_idleness import render_fig7, run_fig7


def test_bench_fig7_idleness(benchmark, replications):
    cases = (
        (("matmul", (16384, 65536)),)
        if fast_mode()
        else DEFAULT_CASES
    )
    results = benchmark.pedantic(
        run_fig7,
        kwargs={"cases": cases, "replications": replications},
        rounds=1,
        iterations=1,
    )
    print()
    print(render_fig7(results))
    for case in results:
        assert case.mean_idle("plb-hec") < case.mean_idle("hdss"), (
            case.app_name,
            case.size,
        )
    # PLB-HeC's idleness shrinks (or stays flat) with input size — its
    # initial phase amortises, the paper's Sec. V.c observation.  (HDSS's
    # adaptive budget scales with the input, so its trend is app-dependent.)
    by_app: dict[str, list] = {}
    for case in results:
        by_app.setdefault(case.app_name, []).append(case)
    for app_cases in by_app.values():
        app_cases.sort(key=lambda c: c.size)
        small, large = app_cases[0], app_cases[-1]
        assert large.mean_idle("plb-hec") <= small.mean_idle("plb-hec") * 1.25
