"""Benchmark (generalisation): the paper's ranking on random cloud fleets.

The paper's Sec. VI positions PLB-HeC for public clouds; this benchmark
checks the headline ranking is not an artefact of the Table I cluster by
rerunning MM on several randomised heterogeneous VM fleets.
"""

from benchmarks.conftest import fast_mode
from repro import Greedy, HDSS, PLBHeC, Runtime
from repro.apps import MatMul
from repro.cluster import cloud_cluster
from repro.util.tables import format_table


def test_bench_cloud_generalisation(benchmark):
    n = 16384 if fast_mode() else 32768
    seeds = range(2) if fast_mode() else range(5)

    def sweep():
        rows = []
        for seed in seeds:
            cluster = cloud_cluster(6, seed=seed)
            app = MatMul(n=n)
            times = {}
            for policy in (Greedy(), HDSS(), PLBHeC()):
                rt = Runtime(cluster, app.codelet(), seed=1)
                res = rt.run(
                    policy, app.total_units, app.default_initial_block_size()
                )
                times[policy.name] = res.makespan
            rows.append(
                [
                    seed,
                    len(cluster.devices()),
                    times["greedy"],
                    times["hdss"],
                    times["plb-hec"],
                    times["greedy"] / times["plb-hec"],
                ]
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    print(
        format_table(
            ["fleet_seed", "units", "greedy_s", "hdss_s", "plb_hec_s", "speedup"],
            rows,
            title=f"Random cloud fleets (MM {n}, 6 VMs each)",
        )
    )
    # PLB-HeC must beat greedy on every fleet.  At the fast-mode size
    # the probe phase consumes a big slice of the (much smaller) domain
    # and the measured solver overhead charged into the makespan is
    # proportionally heavy, so near-homogeneous fleets can come out
    # slightly below parity (observed ~0.94); full-size fleets must
    # genuinely win.
    floor = 0.85 if fast_mode() else 1.0
    for row in rows:
        assert row[-1] > floor, f"fleet {row[0]} lost to greedy ({row[-1]:.3f})"
