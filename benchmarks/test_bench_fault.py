"""Benchmark (Sec. VI): device failure mid-run.

The paper's fault-tolerance outlook: "machines may become unavailable
during execution ... a simple redistribution of the data among the
remaining devices would permit the application to re-adapt."  This
benchmark kills the fastest GPU at 40 % of the run and compares how much
each policy's makespan degrades; PLB-HeC's model-driven redistribution
should contain the damage best.
"""

from benchmarks.conftest import fast_mode
from repro import Greedy, HDSS, PLBHeC, Runtime, paper_cluster
from repro.apps import MatMul
from repro.runtime.sim_executor import DeviceFailure
from repro.util.tables import format_table


def test_bench_fault_tolerance(benchmark):
    n = 16384 if fast_mode() else 32768
    cluster = paper_cluster(4)
    app = MatMul(n=n)

    baseline = Runtime(cluster, app.codelet(), seed=9).run(
        PLBHeC(), app.total_units, app.default_initial_block_size()
    )
    failure = DeviceFailure(device_id="D.gpu0", time=baseline.makespan * 0.4)

    def sweep():
        rows = []
        for policy in (Greedy(), HDSS(), PLBHeC(num_steps=8)):
            rt = Runtime(cluster, app.codelet(), seed=9, failures=(failure,))
            res = rt.run(
                policy, app.total_units, app.default_initial_block_size()
            )
            rows.append(
                [
                    policy.name,
                    res.makespan,
                    res.makespan / baseline.makespan,
                    res.num_rebalances,
                ]
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    print(
        f"undisturbed PLB-HeC baseline: {baseline.makespan:.1f} s; "
        f"D.gpu0 killed at t={failure.time:.1f} s"
    )
    print(
        format_table(
            ["policy", "makespan_s", "degradation", "rebalances"],
            rows,
            title=f"Losing the fastest GPU mid-run (MM {n}, 4 machines)",
        )
    )
    degradation = {row[0]: row[2] for row in rows}
    # PLB-HeC's redistribution contains the damage better than both baselines
    assert degradation["plb-hec"] < degradation["greedy"]
    assert degradation["plb-hec"] < degradation["hdss"]
