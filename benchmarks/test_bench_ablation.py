"""Benchmarks A1/A2: the DESIGN.md ablation studies.

* A1 selection: the full IPM chain vs waterfill-only vs
  proportional-only selection, against the Oracle bound;
* A2 rebalance: the Sec. VI "degraded cloud resource" scenario with
  rebalancing on/off at two step granularities;
* A3 probing: HDSS uniform vs per-device probing vs PLB-HeC's
  speed-scaled probes (where the phase-1 idleness gap comes from).
"""

from benchmarks.conftest import fast_mode
from repro.experiments.ablations import (
    render_ablation,
    run_probe_ablation,
    run_rebalance_ablation,
    run_selection_ablation,
)


def test_bench_ablation_selection(benchmark):
    n = 16384 if fast_mode() else 65536
    rows = benchmark.pedantic(
        run_selection_ablation, kwargs={"n": n}, rounds=1, iterations=1
    )
    print()
    print(render_ablation(rows, title=f"A1 selection method (MM {n}, 4 machines)"))
    oracle = [r for r in rows if r.variant == "oracle"][0]
    for r in rows:
        assert r.makespan >= oracle.makespan * 0.999


def test_bench_ablation_rebalance(benchmark):
    n = 16384 if fast_mode() else 65536
    rows = benchmark.pedantic(
        run_rebalance_ablation,
        kwargs={"n": n, "slow_factor": 4.0, "at_fraction_of_run": 0.3},
        rounds=1,
        iterations=1,
    )
    print()
    print(
        render_ablation(
            rows, title=f"A2 rebalancing under 4x mid-run slowdown (MM {n})"
        )
    )
    undisturbed = rows[0]
    perturbed = rows[1:]
    # the perturbation costs something in every configuration
    assert all(r.makespan >= undisturbed.makespan * 0.95 for r in perturbed)
    # fine-step rebalancing recovers at least part of the damage.  On
    # the reduced fast grid the probe/solver overhead (which includes
    # *measured* host solve time, so it jitters between runs) is a much
    # larger share of the makespan, and the rebalance win shrinks into
    # that noise — observed ratios hover around 1.06; full-size runs
    # sit comfortably under 1.02.
    fine_on = [r for r in perturbed if "on, fine" in r.variant][0]
    coarse_off = [r for r in perturbed if r.variant == "perturbed, rebalancing off"][0]
    limit = 1.15 if fast_mode() else 1.02
    assert fine_on.makespan <= coarse_off.makespan * limit


def test_bench_ablation_probing(benchmark):
    n = 16384 if fast_mode() else 65536
    rows = benchmark.pedantic(
        run_probe_ablation, kwargs={"n": n}, rounds=1, iterations=1
    )
    print()
    print(render_ablation(rows, title=f"A3 probing strategy (MM {n}, 4 machines)"))
    uniform = [r for r in rows if "uniform" in r.variant][0]
    plb = [r for r in rows if "plb-hec" in r.variant][0]
    assert plb.makespan < uniform.makespan
    assert plb.mean_idle < uniform.mean_idle
