"""Benchmark S1: Sec. V.a — interior-point solve overhead.

The paper reports a mean of 170 ms (std 32.3 ms) per block-size solve
for 4 machines and matrices of order 65536.  This benchmark times our
solve chain on models fitted for exactly that scenario; absolute
numbers depend on the host, the claim that must survive is
*milliseconds-scale and amortised*.
"""

import numpy as np

from repro.experiments.solver_overhead import (
    fitted_models_for_scenario,
    run_solver_overhead,
)
from repro.solver import solve_block_partition


def test_bench_solver_overhead(benchmark):
    models = fitted_models_for_scenario(size=65536, num_machines=4)
    quantum = 65536 * 0.9 / 5

    result = benchmark(lambda: solve_block_partition(models, quantum))
    stats = run_solver_overhead(repetitions=20, size=65536, num_machines=4)
    print()
    print(
        f"solver overhead (4 machines, MM 65536): "
        f"{stats.mean_ms:.1f} ms +- {stats.std_ms:.1f} ms over "
        f"{stats.samples} solves; method={stats.method}, "
        f"iterations={stats.iterations} (paper: 170 ms +- 32.3 ms)"
    )
    assert result.units.sum() > 0
    # milliseconds-scale: same order as the paper's IPOPT-on-2015-hardware
    assert stats.mean_ms < 1000.0


def test_bench_solver_barrier_strategies(benchmark):
    """NWW 2009 ablation: monotone vs adaptive barrier updates."""
    from repro.solver.ipm import IPMOptions, InteriorPointSolver
    from repro.solver.problem import build_partition_nlp, initial_partition_point

    models = fitted_models_for_scenario(size=65536, num_machines=4)
    quantum = 65536 * 0.9 / 5
    nlp_models = list(models.values())
    rows = []
    for strategy in ("monotone", "adaptive", "probing"):
        opts = IPMOptions(barrier_strategy=strategy, max_iter=300)
        nlp = build_partition_nlp(nlp_models, quantum)
        z0 = initial_partition_point(nlp_models, quantum)
        result = InteriorPointSolver(opts).solve(nlp, z0)
        rows.append((strategy, result.status, result.iterations, result.wall_time_s))
    benchmark(
        lambda: InteriorPointSolver(
            IPMOptions(barrier_strategy="adaptive")
        ).solve(
            build_partition_nlp(nlp_models, quantum),
            initial_partition_point(nlp_models, quantum),
        )
    )
    print()
    for strategy, status, iters, wall in rows:
        print(f"  {strategy:9s} status={status} iterations={iters} wall={wall*1e3:.1f} ms")
    assert all(status == "optimal" for _, status, _, _ in rows)
    assert rows[1][2] <= rows[0][2]  # adaptive no worse than monotone


def test_bench_solver_scaling_with_devices(benchmark):
    """Solve cost as the cluster grows (devices 2 -> 8)."""
    rows = []
    for machines in (1, 2, 4):
        models = fitted_models_for_scenario(size=65536, num_machines=machines)
        quantum = 65536 * 0.9 / 5
        stats_runs = []
        for _ in range(10):
            stats_runs.append(solve_block_partition(models, quantum).solve_time_s)
        rows.append((machines, len(models), float(np.mean(stats_runs)) * 1e3))
    models = fitted_models_for_scenario(size=65536, num_machines=4)
    benchmark(lambda: solve_block_partition(models, 65536 * 0.9 / 5))
    print()
    for machines, n_devices, mean_ms in rows:
        print(
            f"  machines={machines} devices={n_devices} "
            f"mean solve={mean_ms:.1f} ms"
        )
    assert rows[-1][2] < 1000.0
