"""Benchmark S2: sensitivity to the initial block size.

The paper tunes ``initialBlockSize`` empirically per application; this
study quantifies how much that knob matters to each algorithm.  The
adaptive algorithms must tolerate a badly chosen value far better than
fixed-granularity self-scheduling does.
"""

from benchmarks.conftest import fast_mode
from repro.experiments.sensitivity import render_sensitivity, run_sensitivity


def test_bench_s0_sensitivity(benchmark):
    n = 8192 if fast_mode() else 16384
    factors = (0.5, 1.0, 2.0) if fast_mode() else (0.25, 0.5, 1.0, 2.0, 4.0)
    sizes, rows = benchmark.pedantic(
        run_sensitivity, kwargs={"n": n, "s0_factors": factors},
        rounds=1, iterations=1,
    )
    print()
    print(render_sensitivity(sizes, rows))
    sensitivity = {row.policy: row.sensitivity for row in rows}
    # the adaptive algorithms tolerate a bad s0 far better than greedy
    assert sensitivity["plb-hec"] < sensitivity["greedy"] / 2
    assert sensitivity["hdss"] < sensitivity["greedy"] / 2
