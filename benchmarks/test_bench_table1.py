"""Benchmark T1: render Table I (machine configurations)."""

from repro.experiments.table1 import render_table1, table1_rows


def test_bench_table1(benchmark):
    rows = benchmark(table1_rows)
    print()
    print(render_table1())
    assert {r[0] for r in rows} == {"A", "B", "C", "D"}
