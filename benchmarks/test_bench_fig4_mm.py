"""Benchmark F4-MM: Fig. 4 (top) — MatMul execution time and speedup.

Prints one row per (machines, size, policy) with mean execution time and
speedup vs Greedy, the series Fig. 4's MM panels plot.  Shape assertions
encode the paper's findings: PLB-HeC wins at the largest size with four
machines; Greedy wins at the smallest.
"""

from benchmarks.conftest import fast_mode
from repro.experiments.fig4_exectime import render_sweep, run_fig4


def test_bench_fig4_matmul(benchmark, replications):
    sizes = [4096, 65536] if fast_mode() else [4096, 16384, 65536]
    machines = [4] if fast_mode() else [1, 2, 3, 4]
    points = benchmark.pedantic(
        run_fig4,
        args=("matmul",),
        kwargs={
            "sizes": sizes,
            "machine_counts": machines,
            "replications": replications,
        },
        rounds=1,
        iterations=1,
    )
    print()
    print(render_sweep(points))
    largest = [
        p for p in points if p.size == max(sizes) and p.num_machines == max(machines)
    ][0]
    assert largest.speedup_vs("greedy", "plb-hec") > 1.5
    assert largest.speedup_vs("greedy", "plb-hec") > largest.speedup_vs(
        "greedy", "hdss"
    )
    smallest = [
        p for p in points if p.size == min(sizes) and p.num_machines == max(machines)
    ][0]
    assert smallest.speedup_vs("greedy", "plb-hec") < 1.0
