"""Benchmark W: wall clock of the sweep engine itself.

Times the Fig. 4 MatMul fast grid serial, parallel, cold-cached and
warm-cached, checks the engine's correctness guarantees (parallel ==
serial bit for bit; a warm cache replays the cold run exactly), and
writes the numbers to ``BENCH_wallclock.json`` at the repository root —
the data the repo's perf trajectory is judged against.

The >= 2x parallel-speedup assertion only makes sense with real cores;
it is gated on ``os.cpu_count() >= 4``.  The warm-cache-is-near-instant
assertion holds everywhere.
"""

import os

from benchmarks.conftest import fast_mode
from repro.experiments.wallclock import BENCH_PATH, run_wallclock_bench


def test_bench_wallclock(tmp_path):
    replications = 1 if fast_mode() else 2
    jobs = min(4, os.cpu_count() or 1)
    report = run_wallclock_bench(
        replications=replications,
        jobs=jobs,
        cache_dir=tmp_path / "cache",
        output=BENCH_PATH,
    )
    timings = report["timings_s"]
    meta = report["meta"]
    print()
    for phase in ("serial", "parallel", "cache_cold", "cache_warm", "serve"):
        print(f"  {phase:11s} {timings[phase]:8.3f}s")
    speedup = meta["parallel_speedup"]
    speedup_text = (
        f"{speedup:.2f}x"
        if speedup is not None
        else f"n/a ({meta['parallel_speedup_reason']})"
    )
    print(
        f"  jobs={meta['jobs']} effective_jobs={meta['effective_jobs']} "
        f"speedup={speedup_text} "
        f"warm/cold={meta['warm_over_cold_fraction']:.1%}"
    )

    assert meta["parallel_matches_serial"], "parallel run diverged from serial"
    assert meta["warm_matches_cold"], "cache replay diverged from cold run"
    assert meta["warm_cache_hits"] == meta["runs_per_sweep"]
    assert timings["cache_warm"] < 0.10 * timings["cache_cold"]
    assert meta["serve_invariants_ok"], "serve lap violated service invariants"
    assert meta["serve_jobs_completed"] > 0
    assert meta["serve_jobs_per_wall_s"] > 0
    assert os.path.exists(BENCH_PATH)
    if (os.cpu_count() or 1) >= 4 and not meta["parallel_fell_back_serial"]:
        assert meta["parallel_speedup"] >= 2.0
