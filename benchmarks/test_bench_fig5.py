"""Benchmark F5: Fig. 5 — Black-Scholes execution time and speedup.

Prints the Fig. 5 series (option counts 10k..500k, 1-4 machines).  The
paper's BS findings: the smallest gains of the three applications, with
Greedy ahead on small option books (scheduler overhead dominates) and
PLB-HeC ahead on large ones.
"""

from benchmarks.conftest import fast_mode
from repro.experiments.fig4_exectime import render_sweep
from repro.experiments.fig5_blackscholes import run_fig5


def test_bench_fig5_blackscholes(benchmark, replications):
    sizes = [10_000, 500_000] if fast_mode() else [10_000, 100_000, 500_000]
    machines = [4] if fast_mode() else [1, 2, 3, 4]
    points = benchmark.pedantic(
        run_fig5,
        kwargs={
            "sizes": sizes,
            "machine_counts": machines,
            "replications": replications,
        },
        rounds=1,
        iterations=1,
    )
    print()
    print(render_sweep(points))
    largest = [
        p for p in points if p.size == max(sizes) and p.num_machines == max(machines)
    ][0]
    smallest = [
        p for p in points if p.size == min(sizes) and p.num_machines == max(machines)
    ][0]
    assert largest.speedup_vs("greedy", "plb-hec") > 1.0
    assert smallest.speedup_vs("greedy", "plb-hec") < 1.0
