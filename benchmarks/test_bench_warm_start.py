"""Benchmark (extension): warm-started PLB-HeC on multi-phase workloads.

Data-parallel applications execute many phases over the same kernels
(Sec. III: "the threads merge the processed results and the application
proceeds to its next phase").  With ``warm_start=True`` the fitted
profiles carry over, so phases after the first skip the probing rounds
entirely — removing the ~10 % initial-phase cost the paper measures.
"""

from benchmarks.conftest import fast_mode
from repro import PLBHeC, Runtime, paper_cluster
from repro.apps import MatMul
from repro.util.tables import format_table


def test_bench_warm_start(benchmark):
    n = 8192 if fast_mode() else 16384
    phases = 4
    cluster = paper_cluster(4)
    app = MatMul(n=n)

    def run_phases(warm: bool) -> list[float]:
        policy = PLBHeC(warm_start=True) if warm else None
        spans = []
        for phase in range(phases):
            p = policy if warm else PLBHeC()
            rt = Runtime(cluster, app.codelet(), seed=20 + phase)
            res = rt.run(p, app.total_units, app.default_initial_block_size())
            spans.append(res.makespan)
        return spans

    def sweep():
        return run_phases(warm=False), run_phases(warm=True)

    cold, warm = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = [
        [i, c, w, 1.0 - w / c] for i, (c, w) in enumerate(zip(cold, warm))
    ]
    print()
    print(
        format_table(
            ["phase", "cold_s", "warm_s", "saving"],
            rows,
            title=f"Warm-started multi-phase PLB-HeC (MM {n}, {phases} phases)",
        )
    )
    print(
        f"  totals: cold {sum(cold):.2f} s, warm {sum(warm):.2f} s "
        f"({1 - sum(warm)/sum(cold):.0%} saved)"
    )
    # phases after the first must be faster warm than cold
    for c, w in zip(cold[1:], warm[1:]):
        assert w < c
    assert sum(warm) < sum(cold)
