"""Benchmark F1: Fig. 1 — measured times and fitted performance models.

Prints, per (application, device), the measured/fitted execution-time
series and the selected basis with its R² — the data behind Fig. 1.
"""

from benchmarks.conftest import fast_mode
from repro.experiments.fig1_models import render_fig1, run_fig1


def test_bench_fig1(benchmark):
    sizes = (
        {"matmul": 4096, "blackscholes": 20_000}
        if fast_mode()
        else {"matmul": 16384, "blackscholes": 100_000}
    )
    curves = benchmark.pedantic(
        run_fig1, kwargs={"sizes": sizes, "points": 12}, rounds=1, iterations=1
    )
    print()
    print(render_fig1(curves))
    # every fit must at least clear the paper's acceptance bar in-range
    for c in curves:
        assert c.model.r2 > 0.7 or c.model.exec_fit.rel_rmse < 0.05
