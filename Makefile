PYTHON ?= python
export PYTHONPATH := src:$(PYTHONPATH)

.PHONY: test bench bench-fast clean

test:
	$(PYTHON) -m pytest -x -q

# Regenerate BENCH_wallclock.json (serial vs parallel vs cached sweeps).
bench:
	$(PYTHON) -m repro bench

bench-fast:
	REPRO_BENCH_FAST=1 $(PYTHON) -m pytest benchmarks/ -q -s \
		-p no:cacheprovider --override-ini addopts=

clean:
	rm -rf .repro_cache .benchmarks
	find . -name __pycache__ -type d -exec rm -rf {} +
