PYTHON ?= python
export PYTHONPATH := src:$(PYTHONPATH)

.PHONY: test bench bench-fast check dashboard clean

test:
	$(PYTHON) -m pytest -x -q

# Regenerate BENCH_wallclock.json (serial vs parallel vs cached sweeps).
# Each run also appends to the .repro_history/ trend store.
bench:
	$(PYTHON) -m repro bench

bench-fast:
	REPRO_BENCH_FAST=1 $(PYTHON) -m pytest benchmarks/ -q -s \
		-p no:cacheprovider --override-ini addopts=

# Gate the current bench run against local history (exit 2 on regression).
check:
	$(PYTHON) -m repro bench --check

# Self-contained HTML observability dashboard (policies, trends, solver,
# Gantt, anomalies) at dashboard.html.
dashboard:
	$(PYTHON) -m repro dashboard

clean:
	rm -rf .repro_cache .benchmarks .repro_history
	rm -f dashboard.html
	find . -name __pycache__ -type d -exec rm -rf {} +
