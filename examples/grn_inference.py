#!/usr/bin/env python3
"""Gene regulatory network inference under load balancing.

Part 1 runs a small exhaustive pair-predictor search *for real* on host
threads, PLB-HeC balancing target genes across emulated-heterogeneous
workers, and spot-verifies the best-pair scores against an independent
brute-force scorer.
Part 2 simulates the paper-scale configuration (60k..140k genes, large
candidate pool) on the Table I cluster.

Run:
    python examples/grn_inference.py
"""

from repro import Greedy, HDSS, PLBHeC, Runtime, paper_cluster
from repro.apps import GRNInference
from repro.util.tables import format_table


def real_inference() -> None:
    app = GRNInference(num_genes=600, candidate_pool=20, samples=32)
    cluster = paper_cluster(2)
    runtime = Runtime(
        cluster,
        app.codelet(),
        backend="real",
        speed_factors={"B.cpu": 2.0, "B.gpu0": 1.5},
    )
    result = runtime.run(PLBHeC(num_steps=3), app.total_units, 20)
    print("Part 1: real GRN inference (600 targets, 20-gene pool)")
    print(f"  wall time: {result.makespan:.3f} s, blocks: {len(result.results)}")
    print(f"  spot-check vs brute force: {app.verify(result.results)}")


def simulated_sweep() -> None:
    rows = []
    for genes in (60_000, 100_000, 140_000):
        app = GRNInference(num_genes=genes, candidate_pool=4096, samples=24)
        cluster = paper_cluster(4)
        times = {}
        for policy in (Greedy(), HDSS(), PLBHeC()):
            runtime = Runtime(cluster, app.codelet(), seed=13)
            result = runtime.run(
                policy, app.total_units, app.default_initial_block_size()
            )
            times[policy.name] = result.makespan
        rows.append(
            [
                genes,
                times["greedy"],
                times["hdss"],
                times["plb-hec"],
                times["greedy"] / times["plb-hec"],
            ]
        )
    print()
    print(
        format_table(
            ["genes", "greedy_s", "hdss_s", "plb_hec_s", "speedup"],
            rows,
            title="Part 2: paper-scale GRN inference (sim, 4 machines)",
        )
    )


def main() -> None:
    real_inference()
    simulated_sweep()


if __name__ == "__main__":
    main()
