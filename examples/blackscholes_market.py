#!/usr/bin/env python3
"""Black-Scholes option pricing under load balancing.

Part 1 prices a small option book *for real* on host threads with the
CRR binomial-lattice kernel, self-scheduled by PLB-HeC, and verifies the
lattice prices against the closed-form Black-Scholes solution.
Part 2 sweeps paper-scale option counts in simulation and shows the
crossover the paper reports: Greedy wins on tiny books (scheduler
overhead dominates), PLB-HeC wins on large ones.

Run:
    python examples/blackscholes_market.py
"""

import numpy as np

from repro import Greedy, PLBHeC, Runtime, paper_cluster
from repro.apps import BlackScholes
from repro.util.tables import format_table


def real_pricing() -> None:
    app = BlackScholes(num_options=3000, lattice_steps=256)
    cluster = paper_cluster(2)
    runtime = Runtime(
        cluster,
        app.codelet(),
        backend="real",
        speed_factors={"B.cpu": 2.5, "B.gpu0": 1.5},
    )
    result = runtime.run(PLBHeC(num_steps=3), app.total_units, 64)
    prices = np.empty(app.total_units)
    for start, count, value in result.results:
        prices[start : start + count] = value
    exact = app.closed_form(0, app.total_units)
    err = float(np.abs(prices - exact).max())
    print("Part 1: real pricing run (3000 options, 256-step lattice)")
    print(f"  wall time: {result.makespan:.3f} s, blocks: {len(result.results)}")
    print(f"  max |lattice - closed form| = {err:.4f}")
    print(f"  verified: {app.verify(result.results)}")


def simulated_sweep() -> None:
    rows = []
    for options in (10_000, 100_000, 500_000):
        app = BlackScholes(num_options=options)
        cluster = paper_cluster(4)
        times = {}
        for policy in (Greedy(), PLBHeC()):
            runtime = Runtime(cluster, app.codelet(), seed=5)
            result = runtime.run(
                policy, app.total_units, app.default_initial_block_size()
            )
            times[policy.name] = result.makespan
        rows.append(
            [
                options,
                times["greedy"],
                times["plb-hec"],
                times["greedy"] / times["plb-hec"],
            ]
        )
    print()
    print(
        format_table(
            ["options", "greedy_s", "plb_hec_s", "speedup"],
            rows,
            title="Part 2: the paper's small-input crossover (sim, 4 machines)",
        )
    )


def main() -> None:
    real_pricing()
    simulated_sweep()


if __name__ == "__main__":
    main()
