#!/usr/bin/env python3
"""Matrix multiplication across cluster configurations.

Part 1 reproduces the paper's headline experiment in miniature: PLB-HeC's
speedup over Greedy grows with cluster heterogeneity (1 to 4 machines).
Part 2 runs a small multiplication *for real* on host threads with
emulated device speeds, verifies the numerical result block-by-block
against a single-shot reference, and shows that the distribution the
balancer found matches the emulated speed ratios.

Run:
    python examples/matmul_cluster.py
"""

from repro import Greedy, PLBHeC, Runtime, paper_cluster
from repro.apps import MatMul
from repro.util.tables import format_table


def machine_sweep() -> None:
    app = MatMul(n=32768)
    rows = []
    for machines in (1, 2, 3, 4):
        cluster = paper_cluster(machines)
        times = {}
        for policy in (Greedy(), PLBHeC()):
            runtime = Runtime(cluster, app.codelet(), seed=11)
            result = runtime.run(
                policy, app.total_units, app.default_initial_block_size()
            )
            times[policy.name] = result.makespan
        rows.append(
            [
                machines,
                times["greedy"],
                times["plb-hec"],
                times["greedy"] / times["plb-hec"],
            ]
        )
    print(
        format_table(
            ["machines", "greedy_s", "plb_hec_s", "speedup"],
            rows,
            title="Part 1: speedup grows with cluster heterogeneity (MM 32768, sim)",
        )
    )


def real_run() -> None:
    app = MatMul(n=512, materialize_limit=4096)
    cluster = paper_cluster(2)
    # emulate heterogeneity on host threads: machine B is 3x slower
    speed_factors = {"B.cpu": 3.0, "B.gpu0": 2.0}
    runtime = Runtime(
        cluster, app.codelet(), backend="real", speed_factors=speed_factors
    )
    result = runtime.run(PLBHeC(num_steps=3), app.total_units, 16)
    shares = result.trace.distribution()
    ok = app.verify(result.results)
    print()
    print("Part 2: real thread-backend run (MM 512, emulated heterogeneity)")
    print(f"  wall time: {result.makespan:.3f} s over {len(result.results)} blocks")
    print("  work shares:", {d: round(v, 3) for d, v in shares.items()})
    print(f"  block-assembled result matches reference: {ok}")
    if not ok:
        raise SystemExit("verification FAILED")


def main() -> None:
    machine_sweep()
    real_run()


if __name__ == "__main__":
    main()
