#!/usr/bin/env python3
"""Quickstart: compare the four load balancers on one workload.

Simulates a 16384x16384 matrix multiplication on the paper's four-machine
heterogeneous cluster (Table I) and prints execution time, speedup vs the
StarPU greedy baseline, and mean processing-unit idleness per algorithm.

Run:
    python examples/quickstart.py
"""

from repro import HDSS, Acosta, Greedy, PLBHeC, Runtime, paper_cluster
from repro.apps import MatMul
from repro.util.tables import format_table


def main() -> None:
    app = MatMul(n=16384)
    cluster = paper_cluster(4)
    print(
        f"Workload: {app.name}, {app.total_units} units "
        f"(initial block {app.default_initial_block_size()})"
    )
    print(f"Cluster: {len(cluster)} machines, {len(cluster.devices())} processing units")
    print()

    rows = []
    baseline = None
    for policy in (Greedy(), Acosta(), HDSS(), PLBHeC()):
        runtime = Runtime(cluster, app.codelet(), seed=7)
        result = runtime.run(
            policy, app.total_units, app.default_initial_block_size()
        )
        if baseline is None:
            baseline = result.makespan
        idle = result.idle_fractions
        rows.append(
            [
                policy.name,
                result.makespan,
                baseline / result.makespan,
                sum(idle.values()) / len(idle),
                result.num_rebalances,
                result.solver_overhead_s * 1e3,
            ]
        )

    print(
        format_table(
            ["policy", "time_s", "speedup", "mean_idle", "rebalances", "overhead_ms"],
            rows,
            title="MatMul 16384, 4 heterogeneous machines (simulated)",
        )
    )


if __name__ == "__main__":
    main()
