#!/usr/bin/env python3
"""The paper's Sec. VI outlook: rebalancing on degraded cloud resources.

A device slows down 4x mid-run (a noisy neighbour on shared
infrastructure).  PLB-HeC's finish-time skew monitor detects the drift,
refits the degraded device's performance model with recency-weighted
measurements and re-solves the block distribution.  The example compares
three setups under the same perturbation:

* rebalancing enabled, fine execution steps (detects and adapts fast);
* rebalancing enabled, coarse steps (detection lags a full block);
* rebalancing disabled (the pull model's self-correction only).

Run:
    python examples/cloud_rebalance.py
"""

from repro import PLBHeC, Runtime, paper_cluster
from repro.apps import MatMul
from repro.runtime.sim_executor import Perturbation
from repro.util.tables import format_table


def main() -> None:
    app = MatMul(n=65536)
    cluster = paper_cluster(4)

    # baseline: measure the undisturbed makespan to place the slowdown
    baseline = Runtime(cluster, app.codelet(), seed=21).run(
        PLBHeC(), app.total_units, app.default_initial_block_size()
    )
    slow_at = baseline.makespan * 0.3
    perturbation = Perturbation(
        device_id="D.gpu0", start_time=slow_at, factor=4.0
    )
    print(
        f"undisturbed makespan: {baseline.makespan:.1f} s; injecting 4x "
        f"slowdown of D.gpu0 at t={slow_at:.1f} s"
    )

    rows = []
    for label, policy in [
        ("rebalancing on, fine steps", PLBHeC(num_steps=12)),
        ("rebalancing on, coarse steps", PLBHeC(num_steps=5)),
        ("rebalancing off", PLBHeC(rebalance_threshold=1e9)),
    ]:
        runtime = Runtime(
            cluster, app.codelet(), seed=21, perturbations=(perturbation,)
        )
        result = runtime.run(
            policy, app.total_units, app.default_initial_block_size()
        )
        idle = result.idle_fractions
        rows.append(
            [
                label,
                result.makespan,
                result.makespan / baseline.makespan - 1.0,
                sum(idle.values()) / len(idle),
                result.num_rebalances,
            ]
        )
    print(
        format_table(
            ["setup", "makespan_s", "degradation", "mean_idle", "rebalances"],
            rows,
            title="Mid-run 4x slowdown of the fastest GPU (MM 65536, sim)",
        )
    )


if __name__ == "__main__":
    main()
