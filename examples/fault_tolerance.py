#!/usr/bin/env python3
"""The paper's Sec. VI fault-tolerance outlook: a machine dies mid-run.

The fastest GPU fails at 40% of the run.  Its in-flight block is lost
and returns to the work pool; PLB-HeC drops the device, re-solves the
block distribution over the survivors and finishes the workload.  The
example compares damage across policies and shows PLB-HeC's
post-failure redistribution.

Run:
    python examples/fault_tolerance.py
"""

from repro import Greedy, HDSS, PLBHeC, Runtime, paper_cluster
from repro.apps import MatMul
from repro.runtime.sim_executor import DeviceFailure
from repro.util.tables import format_table


def main() -> None:
    app = MatMul(n=32768)
    cluster = paper_cluster(4)

    baseline = Runtime(cluster, app.codelet(), seed=9).run(
        PLBHeC(), app.total_units, app.default_initial_block_size()
    )
    t_fail = baseline.makespan * 0.4
    failure = DeviceFailure(device_id="D.gpu0", time=t_fail)
    print(
        f"undisturbed PLB-HeC makespan: {baseline.makespan:.1f} s; "
        f"killing D.gpu0 (the fastest GPU) at t={t_fail:.1f} s"
    )

    rows = []
    plb = PLBHeC(num_steps=8)
    for policy in (Greedy(), HDSS(), plb):
        rt = Runtime(cluster, app.codelet(), seed=9, failures=(failure,))
        res = rt.run(policy, app.total_units, app.default_initial_block_size())
        rows.append(
            [
                policy.name,
                res.makespan,
                res.makespan / baseline.makespan,
                len(res.trace.failures),
                res.num_rebalances,
            ]
        )
    print(
        format_table(
            ["policy", "makespan_s", "vs undisturbed", "failures", "rebalances"],
            rows,
            title="Losing the fastest GPU at 40% of the run (MM 32768, sim)",
        )
    )

    last = plb.selection_history[-1]
    print()
    print("PLB-HeC's post-failure distribution (D.gpu0 excluded):")
    for device, units in last.units_by_device.items():
        marker = "  <- failed" if device == "D.gpu0" else ""
        print(f"  {device:7s} {units:9.0f} units{marker}")


if __name__ == "__main__":
    main()
