"""Tests for the exception hierarchy."""

import pytest

from repro.errors import (
    ConfigurationError,
    ConvergenceError,
    DataError,
    FitError,
    InfeasibleError,
    ModelingError,
    ReproError,
    SchedulingError,
    SimulationError,
    SolverError,
    WorkloadError,
)


class TestHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [
            ConfigurationError,
            SimulationError,
            SchedulingError,
            ModelingError,
            FitError,
            SolverError,
            InfeasibleError,
            ConvergenceError,
            DataError,
            WorkloadError,
        ],
    )
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, ReproError)

    def test_configuration_is_value_error(self):
        assert issubclass(ConfigurationError, ValueError)

    def test_data_is_value_error(self):
        assert issubclass(DataError, ValueError)

    def test_runtime_flavoured_errors(self):
        for exc in (SimulationError, SchedulingError, SolverError):
            assert issubclass(exc, RuntimeError)

    def test_fit_error_is_modeling_error(self):
        assert issubclass(FitError, ModelingError)

    def test_solver_specialisations(self):
        assert issubclass(InfeasibleError, SolverError)
        assert issubclass(ConvergenceError, SolverError)

    def test_one_catch_all(self):
        try:
            raise FitError("nope")
        except ReproError as exc:
            assert "nope" in str(exc)
