"""Tests for repro.experiments.wallclock helpers (no timed sweeps)."""

from repro.experiments.wallclock import parallel_speedup_meta


class TestParallelSpeedupMeta:
    def test_real_parallelism_reports_ratio(self):
        meta = parallel_speedup_meta(
            {"serial": 2.0, "parallel": 1.0}, jobs=4, cpu_count=8
        )
        assert meta["parallel_speedup"] == 2.0
        assert meta["effective_jobs"] == 4
        assert "parallel_speedup_reason" not in meta

    def test_single_core_host_reports_null_with_reason(self):
        meta = parallel_speedup_meta(
            {"serial": 2.0, "parallel": 2.2}, jobs=4, cpu_count=1
        )
        assert meta["parallel_speedup"] is None
        assert meta["effective_jobs"] == 1
        assert "cpu_count=1" in meta["parallel_speedup_reason"]

    def test_jobs_one_reports_null_with_reason(self):
        meta = parallel_speedup_meta(
            {"serial": 2.0, "parallel": 2.0}, jobs=1, cpu_count=8
        )
        assert meta["parallel_speedup"] is None
        assert meta["effective_jobs"] == 1

    def test_effective_jobs_capped_by_cpus(self):
        meta = parallel_speedup_meta(
            {"serial": 4.0, "parallel": 2.0}, jobs=16, cpu_count=2
        )
        assert meta["effective_jobs"] == 2
        assert meta["parallel_speedup"] == 2.0

    def test_zero_parallel_lap_is_null(self):
        meta = parallel_speedup_meta(
            {"serial": 1.0, "parallel": 0.0}, jobs=4, cpu_count=8
        )
        assert meta["parallel_speedup"] is None
        assert "no wall time" in meta["parallel_speedup_reason"]

    def test_meta_is_json_safe(self):
        import json

        for cpus in (1, 8):
            meta = parallel_speedup_meta(
                {"serial": 1.0, "parallel": 0.5}, jobs=4, cpu_count=cpus
            )
            json.dumps(meta)
