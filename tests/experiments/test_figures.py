"""Tests for the figure/table experiment drivers (reduced grids)."""

import numpy as np
import pytest

from repro.experiments.ablations import (
    render_ablation,
    run_probe_ablation,
    run_rebalance_ablation,
    run_selection_ablation,
)
from repro.experiments.fig1_models import render_fig1, run_fig1
from repro.experiments.fig4_exectime import render_sweep, run_fig4
from repro.experiments.fig5_blackscholes import run_fig5
from repro.experiments.fig6_distribution import (
    gpu_share,
    render_fig6,
    run_fig6,
)
from repro.experiments.fig7_idleness import render_fig7, run_fig7
from repro.experiments.solver_overhead import run_solver_overhead
from repro.experiments.table1 import render_table1, table1_rows


class TestTable1:
    def test_rows_cover_all_machines(self):
        rows = table1_rows()
        machines = {r[0] for r in rows}
        assert machines == {"A", "B", "C", "D"}

    def test_render_contains_models(self):
        text = render_table1()
        for model in ("Tesla K20c", "GTX 295", "GTX 680", "GTX Titan"):
            assert model in text


class TestFig1:
    def test_curves_and_fits(self):
        curves = run_fig1(points=8, sizes={"matmul": 4096, "blackscholes": 20_000})
        assert len(curves) == 4  # 2 apps x 2 devices
        for c in curves:
            assert len(c.block_sizes) >= 5
            assert np.all(c.measured_s > 0)
            assert np.all(c.fitted_s > 0)

    def test_cpu_fits_track_measurements(self):
        curves = run_fig1(points=8, sizes={"matmul": 4096, "blackscholes": 20_000})
        for c in curves:
            if c.device_id == "A.cpu":
                assert c.max_relative_error < 0.25

    def test_render(self):
        curves = run_fig1(points=6, sizes={"matmul": 4096, "blackscholes": 20_000})
        text = render_fig1(curves)
        assert "Fig.1" in text
        assert "R2" in text


class TestFig4Fig5:
    def test_fig4_grid_shape(self):
        points = run_fig4(
            "matmul", sizes=[2048], machine_counts=[2], replications=1,
            policies=("greedy", "plb-hec"),
        )
        assert len(points) == 1
        assert points[0].app_name == "matmul"

    def test_render_sweep(self):
        points = run_fig4(
            "matmul", sizes=[2048], machine_counts=[2], replications=1,
            policies=("greedy", "plb-hec"),
        )
        text = render_sweep(points)
        assert "speedup" in text
        assert "plb-hec" in text

    def test_fig5_runs(self):
        points = run_fig5(
            sizes=[20_000], machine_counts=[2], replications=1,
            policies=("greedy", "hdss"),
        )
        assert points[0].app_name == "blackscholes"


class TestFig6:
    def test_distributions_normalised(self):
        cases = run_fig6(
            cases=(("matmul", (8192,)),), replications=1,
        )
        case = cases[0]
        for dist in case.distributions.values():
            assert sum(dist.values()) == pytest.approx(1.0, abs=1e-6)

    def test_gpus_dominate(self):
        cases = run_fig6(cases=(("matmul", (16384,)),), replications=1)
        for dist in cases[0].distributions.values():
            assert gpu_share(dist) > 0.5

    def test_render(self):
        cases = run_fig6(cases=(("matmul", (8192,)),), replications=1)
        assert "gpu_total" in render_fig6(cases)


class TestFig7:
    def test_plb_less_idle_than_hdss(self):
        cases = run_fig7(cases=(("matmul", (16384,)),), replications=1)
        case = cases[0]
        assert case.mean_idle("plb-hec") < case.mean_idle("hdss")

    def test_render(self):
        cases = run_fig7(cases=(("matmul", (8192,)),), replications=1)
        assert "rebalances" in render_fig7(cases)


class TestSolverOverhead:
    def test_stats(self):
        stats = run_solver_overhead(repetitions=5, size=16384)
        assert stats.mean_ms > 0
        assert stats.samples == 5
        assert stats.method in ("ipm", "waterfill", "proportional")


class TestAblations:
    def test_selection_ablation_rows(self):
        rows = run_selection_ablation(n=8192)
        names = [r.variant for r in rows]
        assert any("ipm" in n for n in names)
        assert any("oracle" in n for n in names)
        oracle_time = [r for r in rows if r.variant == "oracle"][0].makespan
        for r in rows:
            assert r.makespan >= oracle_time * 0.999

    def test_rebalance_ablation_rows(self):
        rows = run_rebalance_ablation(n=8192)
        assert rows[0].variant == "undisturbed"
        perturbed = [r for r in rows[1:]]
        assert all(r.makespan >= rows[0].makespan * 0.8 for r in perturbed)

    def test_probe_ablation_ordering(self):
        rows = run_probe_ablation(n=16384)
        uniform = [r for r in rows if "uniform" in r.variant][0]
        per_device = [r for r in rows if "per-device" in r.variant][0]
        assert per_device.makespan < uniform.makespan

    def test_render(self):
        rows = run_selection_ablation(n=8192)
        assert "variant" in render_ablation(rows, title="t")
