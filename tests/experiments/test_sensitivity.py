"""Tests for repro.experiments.sensitivity."""

import pytest

from repro.experiments.sensitivity import (
    SensitivityRow,
    render_sensitivity,
    run_sensitivity,
)


class TestSensitivityRow:
    def test_derived_quantities(self):
        row = SensitivityRow(policy="p", makespans=(2.0, 1.0, 4.0))
        assert row.best == 1.0
        assert row.worst == 4.0
        assert row.sensitivity == 4.0

    def test_flat_row(self):
        row = SensitivityRow(policy="p", makespans=(3.0, 3.0))
        assert row.sensitivity == 1.0


class TestRunSensitivity:
    def test_sweep_structure(self):
        sizes, rows = run_sensitivity(n=4096, s0_factors=(0.5, 1.0))
        assert len(sizes) == 2
        assert {r.policy for r in rows} == {"greedy", "hdss", "plb-hec"}
        for row in rows:
            assert len(row.makespans) == 2
            assert all(m > 0 for m in row.makespans)

    def test_sizes_scale_with_factors(self):
        sizes, _ = run_sensitivity(n=4096, s0_factors=(1.0, 2.0))
        assert sizes[1] == 2 * sizes[0]

    def test_render(self):
        sizes, rows = run_sensitivity(n=4096, s0_factors=(1.0,))
        out = render_sensitivity(sizes, rows)
        assert "worst/best" in out
        assert "plb-hec" in out
