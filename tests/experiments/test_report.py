"""Tests for repro.experiments.report."""

import pytest

from repro.experiments.report import ShapeCheck, generate_report


class TestGenerateReport:
    @pytest.fixture(scope="class")
    def report(self):
        return generate_report(replications=1, fast=True)

    def test_contains_checklist(self, report):
        assert "Shape checks:" in report
        assert "| PASS |" in report or "| FAIL |" in report

    def test_all_fast_checks_pass(self, report):
        header = [
            line for line in report.splitlines() if "Shape checks:" in line
        ][0]
        # "Shape checks: N/M passed."
        ratio = header.split(":")[1].split("passed")[0].strip()
        passed, total = map(int, ratio.split("/"))
        assert passed == total

    def test_contains_tables(self, report):
        assert "Table I" in report
        assert "speedup" in report
        assert "Solver overhead" in report

    def test_mentions_policies(self, report):
        for policy in ("greedy", "acosta", "hdss", "plb-hec"):
            assert policy in report


class TestShapeCheck:
    def test_fields(self):
        c = ShapeCheck(claim="x", passed=True, detail="d")
        assert c.passed
        assert c.claim == "x"


class TestCliReport:
    def test_cli_report_fast(self, capsys):
        from repro.cli import main

        assert main(["report", "--fast", "--replications", "1"]) == 0
        out = capsys.readouterr().out
        assert "reproduction report" in out
